#!/usr/bin/env python3
"""Determinism linter: static scan for nondeterminism sources in src/.

Every figure this reproduction emits is bitwise-reproducible from the run
seed, across worker counts and partition layouts. That contract dies quietly:
one iteration over a hash container, one wall-clock read, one pointer used as
a sort key, and results depend on allocator layout / libstdc++ internals /
machine time — in ways golden tests catch late or never. This linter rejects
the known sources at review time.

Rules (ids are stable; `--list-rules` prints this table):

  unordered-container   declaration/use of std::unordered_{map,set,multimap,
                        multiset}: iteration order is bucket-layout dependent.
                        Use std::map, a sorted vector, or gossip::WindowRing.
  unordered-iteration   range-for / .begin() over an identifier declared as an
                        unordered container in the same file (the actual
                        order-dependence, reported precisely).
  std-hash              std::hash usage: hash values are implementation
                        details; deriving order, sampling, or seeds from them
                        is layout-dependence by another name.
  pointer-order         ordering by address: std::less<T*>, std::owner_less,
                        or relational comparison of uintptr_t casts. Addresses
                        differ run to run; sort by index or id instead.
  wall-clock            std::chrono clocks, time(), gettimeofday, clock(),
                        clock_gettime, timespec_get: simulation time is
                        sim::SimTime; wall time belongs in bench/ only.
  raw-random            rand/srand/random_device/mt19937/default_random_engine
                        /*rand48: all randomness flows from the run seed via
                        hg::Rng (common/rng.hpp) so runs replay bit-for-bit.
  thread-id             std::this_thread::get_id, pthread_self, gettid:
                        logic keyed on thread identity breaks worker-count
                        invariance. Partition/node ids are the stable keys.

Escape hatch (line level, same line or the line above):

    // hg-lint: allow(<rule>) <reason>

The reason is mandatory: an allow without one is itself a finding. Sanctioned
files (common/rng.hpp, common/rng.cpp) are exempt from raw-random — that is
where the one true randomness source lives.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Rule id -> (compiled pattern, message). Patterns run against code with
# comments and string/char literals stripped (so prose and log text never
# trip a rule) but with line structure preserved (findings carry file:line).
RULES: dict[str, tuple[re.Pattern[str], str]] = {
    "unordered-container": (
        re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
        "hash container: iteration order depends on bucket layout; use std::map, "
        "a sorted vector, or gossip::WindowRing",
    ),
    "std-hash": (
        re.compile(r"\bstd\s*::\s*hash\s*<"),
        "std::hash is an implementation detail; derive order/sampling/seeds from "
        "ids and the run seed (hg::Rng / splitmix64)",
    ),
    "pointer-order": (
        re.compile(
            r"std\s*::\s*less\s*<[^<>;]*\*\s*>"
            r"|std\s*::\s*owner_less\b"
            r"|reinterpret_cast\s*<\s*(?:std\s*::\s*)?uintptr_t\s*>\s*\([^)]*\)\s*[<>]=?"
        ),
        "ordering by address: pointer values differ run to run; sort by index or id",
    ),
    "wall-clock": (
        re.compile(
            r"\b(?:system_clock|steady_clock|high_resolution_clock|file_clock|utc_clock)\b"
            r"|\bgettimeofday\b|\bclock_gettime\b|\btimespec_get\b"
            r"|std\s*::\s*time\s*\(|(?<![\w.:>])time\s*\(\s*(?:nullptr|NULL|0|&)"
            r"|(?<![\w.:>])clock\s*\(\s*\)"
        ),
        "wall-clock read: simulation time is sim::SimTime (timing harnesses live in "
        "bench/, outside this scan)",
    ),
    "raw-random": (
        re.compile(
            r"\brandom_device\b|\bmt19937(?:_64)?\b|\bdefault_random_engine\b"
            r"|\bminstd_rand0?\b|\branlux(?:24|48)\b"
            r"|(?<![\w.:>])s?rand\s*\(|\b[dlm]rand48\b|\brandom_shuffle\b"
        ),
        "unseeded/global randomness: draw from hg::Rng (common/rng.hpp), forked from "
        "the run seed, so runs replay bit-for-bit",
    ),
    "thread-id": (
        re.compile(r"\bthis_thread\s*::\s*get_id\b|\bpthread_self\b|\bgettid\b"),
        "thread-identity-dependent logic breaks worker-count invariance; key on "
        "partition or node ids",
    ),
}

# unordered-iteration is synthesized per file (needs the declared names).
ITER_RULE = "unordered-iteration"
ITER_MSG = (
    "iteration over a hash container: visit order is bucket-layout dependent "
    "and leaks into results"
)

ALL_RULES = sorted([*RULES, ITER_RULE])

# Files exempt from a rule: the sanctioned home of the behaviour.
SANCTIONED: dict[str, set[str]] = {
    "raw-random": {"common/rng.hpp", "common/rng.cpp"},
}

ALLOW_RE = re.compile(r"hg-lint:\s*allow\(([a-z-]+)\)\s*(.*)")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{}]*>\s+(\w+)\s*[;={(]"
)
SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc", ".cxx", ".hh", ".ipp"}


def strip_code(text: str) -> str:
    """Remove comments and string/char literal *contents*, keeping newlines."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:end])
            i = end
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_allows(raw_lines: list[str], findings: list[Finding], path: Path) -> dict[int, set[str]]:
    """Map line number -> rules allowed there (the comment covers its own line
    and the next). Malformed allows (unknown rule, missing reason) are
    findings themselves, so the escape hatch cannot rot silently."""
    allows: dict[int, set[str]] = {}
    for ln, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m is None:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in ALL_RULES:
            findings.append(
                Finding(path, ln, "bad-allow", f"unknown rule '{rule}' (see --list-rules)")
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    path, ln, "bad-allow",
                    f"allow({rule}) without a reason: justify why this is deterministic",
                )
            )
            continue
        allows.setdefault(ln, set()).add(rule)
        allows.setdefault(ln + 1, set()).add(rule)
    return allows


def scan_file(path: Path, rel: str) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    findings: list[Finding] = []
    allows = parse_allows(raw_lines, findings, path)
    code_lines = strip_code(raw).splitlines()

    # Names declared as unordered containers in this file, for the iteration
    # rule (best effort: same-file declarations, which is how members and
    # locals overwhelmingly appear).
    unordered_names = {
        m.group(1) for line in code_lines for m in UNORDERED_DECL_RE.finditer(line)
    }
    iter_res = []
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        iter_res = [
            re.compile(r":\s*(?:this\s*->\s*)?(?:" + names + r")\s*\)"),  # range-for
            re.compile(r"\b(?:" + names + r")\s*\.\s*(?:c?begin|c?end)\s*\("),
        ]

    for ln, line in enumerate(code_lines, start=1):
        allowed = allows.get(ln, set())
        for rule, (pattern, message) in RULES.items():
            if rel in SANCTIONED.get(rule, set()):
                continue
            if pattern.search(line) and rule not in allowed:
                findings.append(Finding(path, ln, rule, message))
        for pattern in iter_res:
            if pattern.search(line) and ITER_RULE not in allowed:
                findings.append(Finding(path, ln, ITER_RULE, ITER_MSG))
    return findings


def collect(paths: list[Path]) -> list[tuple[Path, str]]:
    files: list[tuple[Path, str]] = []
    for p in paths:
        if p.is_file():
            files.append((p, p.name))
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in SOURCE_SUFFIXES and f.is_file():
                    files.append((f, f.relative_to(p).as_posix()))
        else:
            print(f"lint_determinism: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description="Static scan for nondeterminism sources.")
    ap.add_argument("paths", nargs="*", type=Path, help="files or directories (default: src/)")
    ap.add_argument("--list-rules", action="store_true", help="print rule ids and exit")
    args = ap.parse_args()

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0

    paths = args.paths or [Path(__file__).resolve().parent.parent / "src"]
    findings: list[Finding] = []
    scanned = 0
    for path, rel in collect(paths):
        scanned += 1
        findings.extend(scan_file(path, rel))

    for f in findings:
        print(f)
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in {scanned} file(s); "
            "fix, or justify with '// hg-lint: allow(<rule>) <reason>'",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: {scanned} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
