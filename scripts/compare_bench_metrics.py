#!/usr/bin/env python3
"""Diff two BENCH_*.json files on their *metrics*, ignoring timing fields.

Used by CI to assert that intra-run parallelism (HG_WORKERS) changes wall
clock but not results: a sharded run at W workers must produce bit-identical
simulation outputs (event counts, per-class percentiles) to the same run at
1 worker. Timing-derived fields (wall_sec, events_per_sec, nodes_per_sec,
peak_rss_mb, speedup_vs_1w) and the worker count itself legitimately differ
and are stripped before comparison.

Usage: compare_bench_metrics.py A.json B.json
Exit 0 when the metric payloads match exactly; exit 1 with a unified diff
of the normalized payloads otherwise.
"""

import difflib
import json
import sys

# Fields that measure the machine, not the simulation.
TIMING_KEYS = frozenset(
    ["wall_sec", "events_per_sec", "nodes_per_sec", "peak_rss_mb", "speedup_vs_1w", "workers"]
)


def strip_timing(obj):
    if isinstance(obj, dict):
        return {k: strip_timing(v) for k, v in obj.items() if k not in TIMING_KEYS}
    if isinstance(obj, list):
        return [strip_timing(v) for v in obj]
    return obj


def normalize(path):
    with open(path, encoding="utf-8") as f:
        payload = strip_timing(json.load(f))
    return json.dumps(payload, indent=2, sort_keys=True).splitlines(keepends=True)


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} A.json B.json", file=sys.stderr)
        return 2
    a, b = normalize(argv[1]), normalize(argv[2])
    if a == b:
        print(f"metrics match: {argv[1]} == {argv[2]} (timing fields ignored)")
        return 0
    sys.stdout.writelines(difflib.unified_diff(a, b, fromfile=argv[1], tofile=argv[2]))
    print("\nMETRICS DIFFER: parallel execution changed simulation results", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
