#!/usr/bin/env python3
"""Diff two BENCH_*.json files on their *metrics*, ignoring timing fields.

Used by CI to assert that intra-run parallelism (HG_WORKERS) changes wall
clock but not results: a sharded run at W workers must produce bit-identical
simulation outputs (event counts, per-class percentiles) to the same run at
1 worker. Timing-derived fields (wall_sec, events_per_sec, nodes_per_sec,
peak_rss_mb, speedup_vs_1w, and their total_* aggregates) and the worker
count itself legitimately differ and are stripped before comparison.

Memory is gated separately: with --rss-tolerance FRAC, the peak_rss_mb
values of the two files are also compared pairwise and may deviate by at
most FRAC (relative to the first file), so a memory regression fails CI
even though exact RSS equality across runs is never expected.

Fields that are *layout* metrics rather than simulation results — the
partition count and the superstep counters derived from it (epochs_run,
epochs_skipped, xpart_datagrams, xpart_exchange_bytes,
xpart_datagram_fraction) — are simulation-deterministic for a fixed
partition layout but legitimately differ across partition counts. They are
kept by default (so worker-count comparisons also pin the superstep
schedule) and stripped on demand with repeatable --strip KEY flags when
comparing runs at different HG_PARTITIONS values.

Usage: compare_bench_metrics.py [--rss-tolerance FRAC] [--strip KEY]... A.json B.json
Exit 0 when the metric payloads match exactly (and, if requested, RSS is
within tolerance); exit 1 with a diagnostic otherwise.
"""

import difflib
import json
import sys

# Fields that measure the machine, not the simulation.
TIMING_KEYS = frozenset(
    [
        "wall_sec",
        "events_per_sec",
        "nodes_per_sec",
        "peak_rss_mb",
        "speedup_vs_1w",
        "workers",
        "total_wall_sec",
        "total_events_per_sec",
        "total_nodes_per_sec",
        "total_peak_rss_mb",
    ]
)


def strip_keys(obj, keys):
    if isinstance(obj, dict):
        return {k: strip_keys(v, keys) for k, v in obj.items() if k not in keys}
    if isinstance(obj, list):
        return [strip_keys(v, keys) for v in obj]
    return obj


def collect_rss(obj, out):
    """Appends every peak_rss_mb value in document order."""
    if isinstance(obj, dict):
        for k, v in obj.items():
            if k == "peak_rss_mb":
                out.append(float(v))
            else:
                collect_rss(v, out)
    elif isinstance(obj, list):
        for v in obj:
            collect_rss(v, out)


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def normalize(payload, extra_strip):
    keys = TIMING_KEYS | extra_strip
    return json.dumps(strip_keys(payload, keys), indent=2, sort_keys=True).splitlines(
        keepends=True
    )


def compare_rss(a_doc, b_doc, a_path, b_path, tolerance):
    a_rss, b_rss = [], []
    collect_rss(a_doc, a_rss)
    collect_rss(b_doc, b_rss)
    if len(a_rss) != len(b_rss):
        print(
            f"RSS DIFFER: {a_path} has {len(a_rss)} peak_rss_mb entries, "
            f"{b_path} has {len(b_rss)}",
            file=sys.stderr,
        )
        return False
    ok = True
    for i, (a, b) in enumerate(zip(a_rss, b_rss)):
        limit = abs(a) * tolerance
        if abs(b - a) > limit:
            print(
                f"RSS DIFFER: entry {i}: {a:.1f} MB -> {b:.1f} MB "
                f"(|delta| {abs(b - a):.1f} > {limit:.1f} at tolerance {tolerance})",
                file=sys.stderr,
            )
            ok = False
    if ok and a_rss:
        print(
            f"rss within tolerance {tolerance}: "
            + ", ".join(f"{a:.1f}->{b:.1f}MB" for a, b in zip(a_rss, b_rss))
        )
    return ok


def main(argv):
    args = list(argv[1:])
    tolerance = None
    if "--rss-tolerance" in args:
        i = args.index("--rss-tolerance")
        try:
            tolerance = float(args[i + 1])
        except (IndexError, ValueError):
            print("--rss-tolerance needs a numeric argument", file=sys.stderr)
            return 2
        del args[i : i + 2]
    extra_strip = set()
    while "--strip" in args:
        i = args.index("--strip")
        try:
            extra_strip.add(args[i + 1])
        except IndexError:
            print("--strip needs a KEY argument", file=sys.stderr)
            return 2
        del args[i : i + 2]
    if len(args) != 2:
        print(
            f"usage: {argv[0]} [--rss-tolerance FRAC] [--strip KEY]... A.json B.json",
            file=sys.stderr,
        )
        return 2
    a_doc, b_doc = load(args[0]), load(args[1])
    a, b = normalize(a_doc, extra_strip), normalize(b_doc, extra_strip)
    rc = 0
    if a == b:
        print(f"metrics match: {args[0]} == {args[1]} (timing fields ignored)")
    else:
        sys.stdout.writelines(difflib.unified_diff(a, b, fromfile=args[0], tofile=args[1]))
        print(
            "\nMETRICS DIFFER: parallel execution changed simulation results",
            file=sys.stderr,
        )
        rc = 1
    if tolerance is not None and not compare_rss(a_doc, b_doc, args[0], args[1], tolerance):
        rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
