// Fig. 1 — unconstrained PlanetLab, standard gossip, fanout 7: CDF of nodes
// receiving >= 99% of the stream vs stream lag.
#include "bench_common.hpp"

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 1: lag CDF, unconstrained capacities, standard gossip f=7",
               "Figure 1 (and the intro experiment)",
               "50% of nodes @ 1.3 s, 75% @ 2.4 s, 90% @ 21 s (PlanetLab tail)");

  auto exp = run(base_config(s, core::Mode::kStandard,
                             scenario::BandwidthDistribution::unconstrained()),
                 "fig1-unconstrained");

  const auto lags = stream_fraction_lags(exp, 0.99);
  const auto cdf = scenario::cdf_over_grid(lags, lag_grid(s), exp.receivers());
  std::printf("%s\n",
              metrics::render_cdf_table("lag (s)", {"99% delivery"}, {cdf}).c_str());

  std::printf("percentiles of lag to 99%% delivery (%zu/%zu nodes reached it):\n",
              lags.count(), exp.receivers());
  if (!lags.empty()) {
    std::printf("  p50 = %.2f s   p75 = %.2f s   p90 = %.2f s\n", lags.percentile(50),
                lags.percentile(75), lags.percentile(90));
  }
  return 0;
}
