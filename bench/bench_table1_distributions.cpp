// Table 1 — the input bandwidth distributions (ref-691, ref-724, ms-691)
// with their capability supply ratios. Verifies the configured presets
// against the paper's numbers; the other benches consume these presets.
#include "bench_common.hpp"

int main() {
  using namespace hg;
  using namespace hg::bench;

  print_header("Table 1: upload capability distributions", "Table 1",
               "ref-691: CSR 1.15; ref-724: CSR 1.20; ms-691: CSR 1.15 with "
               "85% of nodes below the stream rate");

  const double stream_kbps = stream::StreamConfig{}.effective_rate_kbps();
  metrics::Table t({"name", "CSR", "average", "class", "capability", "fraction"});
  for (const auto& dist :
       {scenario::BandwidthDistribution::ref691(), scenario::BandwidthDistribution::ref724(),
        scenario::BandwidthDistribution::ms691()}) {
    bool first = true;
    for (const auto& cls : dist.classes()) {
      t.add_row({first ? dist.name() : "",
                 first ? metrics::Table::num(dist.csr(stream_kbps), 2) : "",
                 first ? metrics::Table::num(dist.average_kbps(), 0) + " kbps" : "",
                 cls.name, to_string(cls.capability),
                 metrics::Table::num(cls.fraction, 2)});
      first = false;
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("stream rate: %.0f kbps effective (551 kbps payload + 9/101 FEC)\n",
              stream_kbps);
  return 0;
}
