// Fig. 2 — standard gossip under constrained heterogeneous bandwidth:
// lag CDFs for several fanouts on dist1 (= ms-691) and dist2 (uniform, same
// average). The paper's point: a moderate fanout increase (15-20) helps the
// skewed distribution, a blind increase (25-30) hurts, and the "good" range
// flips entirely under a different distribution with the same average.
#include "bench_common.hpp"

int main() {
  using namespace hg;
  using namespace hg::bench;

  Scale s = scale_from_env();
  // Fanout-25/30 runs drown poor nodes in propose traffic (that is the
  // point); keep the quick-scale streams shorter so the sweep stays fast.
  if (s.windows > 10 && std::getenv("HG_SCALE") == nullptr) s.windows = 10;

  print_header("Fig. 2: lag CDF (99% delivery), std gossip, fanout sweep",
               "Figure 2",
               "dist1: f=15/20 beat f=7; f>=25 degrades. dist2: f=7 optimal");

  const auto grid = lag_grid(s);
  std::vector<std::string> names;
  std::vector<std::vector<metrics::CdfPoint>> series;

  for (double fanout : {7.0, 15.0, 20.0, 25.0, 30.0}) {
    auto cfg = base_config(s, core::Mode::kStandard,
                           scenario::BandwidthDistribution::ms691(), fanout);
    auto exp = run(std::move(cfg), ("dist1 f=" + std::to_string(static_cast<int>(fanout))).c_str());
    names.push_back("f=" + std::to_string(static_cast<int>(fanout)) + " dist1");
    series.push_back(scenario::cdf_over_grid(stream_fraction_lags(exp, 0.99),
                                             grid, exp.receivers()));
  }
  for (double fanout : {7.0, 15.0, 20.0}) {
    auto cfg = base_config(s, core::Mode::kStandard,
                           scenario::BandwidthDistribution::dist2_uniform(), fanout);
    auto exp = run(std::move(cfg), ("dist2 f=" + std::to_string(static_cast<int>(fanout))).c_str());
    names.push_back("f=" + std::to_string(static_cast<int>(fanout)) + " dist2");
    series.push_back(scenario::cdf_over_grid(stream_fraction_lags(exp, 0.99),
                                             grid, exp.receivers()));
  }

  std::printf("%s\n", metrics::render_cdf_table("lag (s)", names, series).c_str());
  return 0;
}
