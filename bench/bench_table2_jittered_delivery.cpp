// Table 2 — average delivery ratio inside windows that cannot be fully
// decoded (at 10 s lag), per capability class, for all three distributions.
// Systematic FEC keeps the raw data packets of a jittered window viewable;
// this measures how much of them arrived.
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Table 2: mean delivery ratio in jittered windows (10 s lag)",
               "Table 2",
               "ms-691 std: 42.8/56.5/64.5%; HEAP: 83.7/80.7/90.9% — HEAP's "
               "jittered windows are also fuller (and far fewer)");

  for (const auto& dist :
       {scenario::BandwidthDistribution::ref691(), scenario::BandwidthDistribution::ref724(),
        scenario::BandwidthDistribution::ms691()}) {
    auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "table2-standard");
    auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "table2-heap");

    const auto std_ratio = delivery_in_jittered_by_class(std_exp, 10.0);
    const auto heap_ratio = delivery_in_jittered_by_class(heap_exp, 10.0);
    const auto std_jit = jitter_free_pct_by_class(std_exp, 10.0);
    const auto heap_jit = jitter_free_pct_by_class(heap_exp, 10.0);

    std::printf("%s:\n", dist.name().c_str());
    metrics::Table t({"class", "std delivery", "HEAP delivery", "std jittered",
                      "HEAP jittered"});
    for (std::size_t c = 0; c < std_ratio.size(); ++c) {
      auto pct_or_dash = [](double v) {
        return std::isnan(v) ? std::string("-- (none)") : metrics::Table::pct(v);
      };
      t.add_row({std_ratio[c].class_name, pct_or_dash(std_ratio[c].value),
                 pct_or_dash(heap_ratio[c].value),
                 metrics::Table::pct(1.0 - std_jit[c].value),
                 metrics::Table::pct(1.0 - heap_jit[c].value)});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf("note: the paper stresses Table 2 counts *only jittered* windows —\n"
              "HEAP has so few that its entry can dip on a handful of outliers.\n");
  return 0;
}
