// Fig. 9 — cumulative distribution of nodes vs the stream lag they need for
// (a) a jitter-free stream and (b) at most 1% jitter, std gossip vs HEAP,
// on ref-691 (9a) and ms-691 (9b).
#include "bench_common.hpp"

namespace {

void one(const hg::bench::Scale& s, hg::scenario::BandwidthDistribution dist,
         const char* fig) {
  using namespace hg;
  using namespace hg::bench;
  auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "fig9-standard");
  auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "fig9-heap");

  const auto grid = lag_grid(s);
  const std::vector<std::vector<metrics::CdfPoint>> series{
      scenario::cdf_over_grid(jitter_free_lags(std_exp, 0.0), grid,
                              std_exp.receivers()),
      scenario::cdf_over_grid(jitter_free_lags(std_exp, 0.01), grid,
                              std_exp.receivers()),
      scenario::cdf_over_grid(jitter_free_lags(heap_exp, 0.0), grid,
                              heap_exp.receivers()),
      scenario::cdf_over_grid(jitter_free_lags(heap_exp, 0.01), grid,
                              heap_exp.receivers()),
  };
  std::printf("Fig. %s (%s): CDF of lag needed per jitter budget\n", fig,
              dist.name().c_str());
  std::printf("%s\n", metrics::render_cdf_table("lag (s)",
                                                {"std no jitter", "std <=1% jitter",
                                                 "HEAP no jitter", "HEAP <=1% jitter"},
                                                series)
                          .c_str());
}

}  // namespace

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 9: lag CDFs (no-jitter and <=1% jitter)",
               "Figures 9a (ref-691) and 9b (ms-691)",
               "ref-691: HEAP reaches 80% of nodes jitter-free at 12 s where "
               "std needs 26.6 s");

  one(s, scenario::BandwidthDistribution::ref691(), "9a");
  one(s, scenario::BandwidthDistribution::ms691(), "9b");
  return 0;
}
