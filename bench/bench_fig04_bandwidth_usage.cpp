// Fig. 4 — average upload bandwidth usage by capability class, standard
// gossip vs HEAP, on ref-691 (4a) and ms-691 (4b).
#include "bench_common.hpp"

namespace {

void one_distribution(const hg::bench::Scale& s, hg::scenario::BandwidthDistribution dist,
                      const char* fig) {
  using namespace hg;
  using namespace hg::bench;
  auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "fig4-standard");
  auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "fig4-heap");

  std::printf("Fig. %s (%s): mean upload usage (incl. protocol overhead)\n", fig,
              dist.name().c_str());
  print_class_table("", {"standard gossip", "HEAP"},
                    {usage_by_class(std_exp), usage_by_class(heap_exp)});
}

}  // namespace

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 4: bandwidth usage by class, standard vs HEAP",
               "Figures 4a (ref-691) and 4b (ms-691)",
               "std: poor ~88%, rich under-used (55.8% ref / 40.8% ms); "
               "HEAP: all classes roughly equal (~70-80%)");

  one_distribution(s, scenario::BandwidthDistribution::ref691(), "4a");
  one_distribution(s, scenario::BandwidthDistribution::ms691(), "4b");
  return 0;
}
