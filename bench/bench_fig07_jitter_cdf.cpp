// Fig. 7 — cumulative distribution of nodes vs experienced jitter (% of
// jittered windows) on ref-691: std gossip and HEAP, each at 10 s lag and
// offline viewing.
#include "bench_common.hpp"

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 7: CDF of experienced jitter (ref-691)",
               "Figure 7",
               "HEAP @10 s lag: 93% of nodes under 10% jitter; std @10 s: most "
               "windows jittered; offline both recover");

  const auto dist = scenario::BandwidthDistribution::ref691();
  auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "fig7-standard");
  auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "fig7-heap");

  const auto grid = metrics::Cdf::uniform_grid(100.0, 21);  // jitter % axis
  const auto series = std::vector<std::vector<metrics::CdfPoint>>{
      scenario::cdf_over_grid(jitter_percent_at_lag(std_exp, 10.0), grid,
                              std_exp.receivers()),
      scenario::cdf_over_grid(jitter_percent_offline(std_exp), grid,
                              std_exp.receivers()),
      scenario::cdf_over_grid(jitter_percent_at_lag(heap_exp, 10.0), grid,
                              heap_exp.receivers()),
      scenario::cdf_over_grid(jitter_percent_offline(heap_exp), grid,
                              heap_exp.receivers()),
  };
  std::printf("%s\n", metrics::render_cdf_table("jitter (%)",
                                                {"std 10s lag", "std offline",
                                                 "HEAP 10s lag", "HEAP offline"},
                                                series)
                          .c_str());

  const auto heap10 = jitter_percent_at_lag(heap_exp, 10.0);
  std::printf("HEAP @10 s: %.0f%% of nodes experience <= 10%% jitter\n",
              heap10.fraction_at_most(10.0) * 100.0);
  return 0;
}
