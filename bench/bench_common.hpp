// Shared plumbing for the figure/table reproduction binaries.
//
// Scale control: HG_SCALE=quick (default) runs ~23 s streams; HG_SCALE=paper
// runs the paper's full ~180 s streams (93 windows). Either way the binary
// prints the same series the paper's figure shows.
//
// Replication control: HG_SEEDS=n (default 1) runs every experiment as n
// seeds in parallel on HG_THREADS workers (default: hardware cores) via
// scenario::SweepRunner, and the report helpers below pool/average across
// the replicas. With the default HG_SEEDS=1 the output matches a plain
// single-run binary.
//
// Every binary also appends machine-readable timings to BENCH_<name>.json
// (wall-clock and simulator events/sec per experiment) so the engine's
// throughput can be tracked across commits. HG_BENCH_JSON_DIR overrides the
// output directory; HG_BENCH_JSON=0 disables the file.
#pragma once

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/heap.hpp"
#include "metrics/table.hpp"

namespace hg::bench {

// Name of the running binary, for the BENCH_<name>.json file.
inline const char* bench_binary_name() {
#if defined(__GLIBC__)
  return program_invocation_short_name;
#else
  return "bench";
#endif
}

struct Scale {
  std::size_t nodes = 270;
  std::uint32_t windows = 12;    // ~23 s of stream
  double grid_max_sec = 40.0;    // lag axis of the CDF plots
  std::size_t grid_steps = 21;
  sim::SimTime tail = sim::SimTime::sec(45.0);
};

inline Scale scale_from_env() {
  Scale s;
  const char* env = std::getenv("HG_SCALE");
  if (env != nullptr && std::strcmp(env, "paper") == 0) {
    s.windows = 93;  // ~180 s, the paper's run length
    s.grid_max_sec = 60.0;
    s.grid_steps = 25;
    s.tail = sim::SimTime::sec(65.0);
  }
  return s;
}

// Strict parsing (common/env.hpp): zero, negative, or garbage values abort
// with a clear message instead of silently falling back — a typo'd
// HG_SEEDS must not quietly produce a single-seed "sweep".
inline std::size_t seeds_from_env() {
  return static_cast<std::size_t>(env_int_or("HG_SEEDS", 1, 1, 100000));
}

inline std::size_t threads_from_env() {
  // Unset = 0 = SweepRunner picks hardware concurrency; an explicit value
  // must be a positive worker count.
  return static_cast<std::size_t>(env_int_or("HG_THREADS", 0, 1, 4096));
}

inline std::size_t workers_from_env() {
  // HG_WORKERS: intra-run worker threads (superstep-sharded engine).
  // Unset/0 = the classic sequential event loop.
  return env_workers();
}

inline scenario::ExperimentConfig base_config(const Scale& s, core::Mode mode,
                                              scenario::BandwidthDistribution dist,
                                              double fanout = 7.0,
                                              std::uint64_t seed = 2009) {
  scenario::ExperimentConfig cfg;
  cfg.node_count = s.nodes;
  cfg.stream_windows = s.windows;
  cfg.tail = s.tail;
  cfg.mode = mode;
  cfg.fanout = fanout;
  cfg.distribution = std::move(dist);
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// BENCH_*.json emission
// ---------------------------------------------------------------------------

// Opens BENCH_<binary>.json for writing under the shared env contract:
// HG_BENCH_JSON=0 disables (returns nullptr), HG_BENCH_JSON_DIR overrides
// the output directory (default cwd). Caller fcloses.
inline std::FILE* open_bench_json() {
  const char* toggle = std::getenv("HG_BENCH_JSON");
  if (toggle != nullptr && std::strcmp(toggle, "0") == 0) return nullptr;
  std::string dir = ".";
  if (const char* d = std::getenv("HG_BENCH_JSON_DIR"); d != nullptr && *d != '\0') dir = d;
  const std::string path = dir + "/BENCH_" + bench_binary_name() + ".json";
  return std::fopen(path.c_str(), "w");
}

struct JsonRun {
  std::string label;
  std::string mode;
  std::size_t nodes = 0;
  std::uint32_t windows = 0;
  std::size_t seeds = 0;
  std::size_t workers = 0;  // intra-run workers (0 = sequential engine)
  double wall_sec = 0.0;
  std::uint64_t events = 0;
};

class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  void record(JsonRun run) { runs_.push_back(std::move(run)); }

  ~JsonReport() {
    if (runs_.empty()) return;
    std::FILE* f = open_bench_json();
    if (f == nullptr) return;

    double total_wall = 0.0;
    std::uint64_t total_events = 0;
    for (const auto& r : runs_) {
      total_wall += r.wall_sec;
      total_events += r.events;
    }
    const char* scale = std::getenv("HG_SCALE");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", bench_binary_name());
    std::fprintf(f, "  \"scale\": \"%s\",\n", scale != nullptr ? scale : "quick");
    std::fprintf(f, "  \"total_wall_sec\": %.6f,\n", total_wall);
    std::fprintf(f, "  \"total_events\": %llu,\n",
                 static_cast<unsigned long long>(total_events));
    std::fprintf(f, "  \"total_events_per_sec\": %.1f,\n",
                 total_wall > 0 ? static_cast<double>(total_events) / total_wall : 0.0);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const JsonRun& r = runs_[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"mode\": \"%s\", \"nodes\": %zu, "
                   "\"windows\": %u, \"seeds\": %zu, \"workers\": %zu, \"wall_sec\": %.6f, "
                   "\"events\": %llu, \"events_per_sec\": %.1f}%s\n",
                   r.label.c_str(), r.mode.c_str(), r.nodes, r.windows, r.seeds, r.workers,
                   r.wall_sec, static_cast<unsigned long long>(r.events),
                   r.wall_sec > 0 ? static_cast<double>(r.events) / r.wall_sec : 0.0,
                   i + 1 < runs_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::vector<JsonRun> runs_;
};

// ---------------------------------------------------------------------------
// Multi-seed experiment sets
// ---------------------------------------------------------------------------

// The finished replicas of one experiment configuration (HG_SEEDS runs).
// Flat receiver indexing spans all replicas: [seed0's receivers, seed1's...].
struct SeedSet {
  std::vector<std::unique_ptr<scenario::Experiment>> runs;

  [[nodiscard]] const scenario::Experiment& first() const { return *runs.front(); }
  [[nodiscard]] std::size_t seeds() const { return runs.size(); }

  [[nodiscard]] std::size_t receivers() const {
    std::size_t n = 0;
    for (const auto& r : runs) n += r->receivers();
    return n;
  }

  // Publish timeline is seed-independent (the source schedule is fixed).
  [[nodiscard]] const stream::LagAnalyzer& analyzer() const { return first().analyzer(); }

  [[nodiscard]] const scenario::ReceiverInfo& info(std::size_t flat) const {
    const auto [run, i] = locate(flat);
    return runs[run]->info(i);
  }
  [[nodiscard]] double upload_usage(std::size_t flat) const {
    const auto [run, i] = locate(flat);
    return runs[run]->upload_usage(i);
  }

 private:
  [[nodiscard]] std::pair<std::size_t, std::size_t> locate(std::size_t flat) const {
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (flat < runs[r]->receivers()) return {r, flat};
      flat -= runs[r]->receivers();
    }
    HG_ASSERT_MSG(false, "flat receiver index out of range");
    return {0, 0};
  }
};

// Runs `cfg` as HG_SEEDS replicas (seeds cfg.seed, cfg.seed+1, ...) in
// parallel on HG_THREADS workers, with a progress note on stderr (stdout
// carries only the tables). Records wall-clock + events into the JSON report.
inline SeedSet run(scenario::ExperimentConfig cfg, const char* label) {
  const std::size_t n_seeds = seeds_from_env();
  if (cfg.workers == 0) cfg.workers = workers_from_env();
  warn_if_oversubscribed(cfg.workers,
                         threads_from_env() > 0 ? std::min(threads_from_env(), n_seeds)
                                                : n_seeds);
  std::fprintf(stderr,
               "[bench] running %-28s (%s, %zu nodes, %u windows, %zu seed%s, %zu worker%s)...\n",
               label, cfg.mode == core::Mode::kHeap ? "HEAP" : "standard", cfg.node_count,
               cfg.stream_windows, n_seeds, n_seeds == 1 ? "" : "s", cfg.workers,
               cfg.workers == 1 ? "" : "s");

  std::vector<std::uint64_t> seeds;
  seeds.reserve(n_seeds);
  for (std::size_t i = 0; i < n_seeds; ++i) seeds.push_back(cfg.seed + i);

  JsonRun record;
  record.label = label;
  record.mode = cfg.mode == core::Mode::kHeap ? "heap" : "standard";
  record.nodes = cfg.node_count;
  record.windows = cfg.stream_windows;
  record.seeds = n_seeds;
  record.workers = cfg.workers;

  const auto t0 = std::chrono::steady_clock::now();
  // Both parallelism levels share the one thread budget: the sweep divides
  // HG_THREADS (or hardware cores) by the intra-run worker count.
  scenario::SweepRunner runner(scenario::SweepOptions{.threads = threads_from_env(),
                                                      .workers_per_job = cfg.workers});
  SeedSet set{runner.run_experiments(scenario::SweepRunner::seed_sweep(std::move(cfg), seeds))};
  record.wall_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const auto& e : set.runs) record.events += e->events_executed();
  JsonReport::instance().record(std::move(record));
  return set;
}

// ---------------------------------------------------------------------------
// Report builders pooled across replicas
// ---------------------------------------------------------------------------

// Per-node samples: pool all replicas into one distribution.
template <class Fn>
metrics::Samples pooled_samples(const SeedSet& set, Fn&& per_run) {
  metrics::Samples out;
  for (const auto& run : set.runs) {
    const metrics::Samples per_seed = per_run(*run);
    for (const double v : per_seed.values()) out.add(v);
  }
  return out;
}

inline metrics::Samples stream_fraction_lags(const SeedSet& set, double fraction) {
  return pooled_samples(
      set, [&](const scenario::Experiment& e) { return scenario::stream_fraction_lags(e, fraction); });
}
inline metrics::Samples jitter_free_lags(const SeedSet& set, double max_jitter) {
  return pooled_samples(
      set, [&](const scenario::Experiment& e) { return scenario::jitter_free_lags(e, max_jitter); });
}
inline metrics::Samples jitter_percent_at_lag(const SeedSet& set, double lag_sec) {
  return pooled_samples(
      set, [&](const scenario::Experiment& e) { return scenario::jitter_percent_at_lag(e, lag_sec); });
}
inline metrics::Samples jitter_percent_offline(const SeedSet& set) {
  return pooled_samples(
      set, [](const scenario::Experiment& e) { return scenario::jitter_percent_offline(e); });
}

// Per-class stats: node-weighted mean of each class across replicas (NaN
// entries — e.g. "no jittered windows in this class this seed" — are skipped).
template <class Fn>
std::vector<scenario::ClassStat> merged_class_stats(const SeedSet& set, Fn&& per_run) {
  std::vector<scenario::ClassStat> merged;
  std::vector<double> weights;
  for (const auto& run : set.runs) {
    const auto stats = per_run(*run);
    if (merged.empty()) {
      merged.resize(stats.size());
      weights.assign(stats.size(), 0.0);
      for (std::size_t c = 0; c < stats.size(); ++c) {
        merged[c].class_name = stats[c].class_name;
        merged[c].value = 0.0;
      }
    }
    for (std::size_t c = 0; c < stats.size(); ++c) {
      merged[c].nodes += stats[c].nodes;
      if (std::isnan(stats[c].value)) continue;
      merged[c].value += stats[c].value * static_cast<double>(stats[c].nodes);
      weights[c] += static_cast<double>(stats[c].nodes);
    }
  }
  for (std::size_t c = 0; c < merged.size(); ++c) {
    merged[c].value = weights[c] > 0 ? merged[c].value / weights[c] : std::nan("");
  }
  return merged;
}

inline std::vector<scenario::ClassStat> usage_by_class(const SeedSet& set) {
  return merged_class_stats(
      set, [](const scenario::Experiment& e) { return scenario::usage_by_class(e); });
}
inline std::vector<scenario::ClassStat> jitter_free_pct_by_class(const SeedSet& set,
                                                                 double lag_sec) {
  return merged_class_stats(set, [&](const scenario::Experiment& e) {
    return scenario::jitter_free_pct_by_class(e, lag_sec);
  });
}
inline std::vector<scenario::ClassStat> mean_lag_to_jitter_free_by_class(const SeedSet& set,
                                                                         double cap_sec) {
  return merged_class_stats(set, [&](const scenario::Experiment& e) {
    return scenario::mean_lag_to_jitter_free_by_class(e, cap_sec);
  });
}
inline std::vector<scenario::ClassStat> jitter_free_nodes_pct_by_class(const SeedSet& set,
                                                                       double lag_sec) {
  return merged_class_stats(set, [&](const scenario::Experiment& e) {
    return scenario::jitter_free_nodes_pct_by_class(e, lag_sec);
  });
}
inline std::vector<scenario::ClassStat> delivery_in_jittered_by_class(const SeedSet& set,
                                                                      double lag_sec) {
  return merged_class_stats(set, [&](const scenario::Experiment& e) {
    return scenario::delivery_in_jittered_by_class(e, lag_sec);
  });
}

// Per-window decode series: elementwise mean across replicas (the series is
// already a percentage of the initial population).
inline std::vector<double> per_window_decode_percent(const SeedSet& set, double lag_sec) {
  std::vector<double> mean;
  for (const auto& run : set.runs) {
    const auto series = scenario::per_window_decode_percent(*run, lag_sec);
    if (mean.empty()) mean.assign(series.size(), 0.0);
    for (std::size_t w = 0; w < series.size(); ++w) mean[w] += series[w];
  }
  for (double& v : mean) v /= static_cast<double>(set.runs.size());
  return mean;
}

inline std::vector<metrics::CdfPoint> cdf_over_grid(const metrics::Samples& samples,
                                                    const std::vector<double>& grid,
                                                    std::size_t population) {
  return scenario::cdf_over_grid(samples, grid, population);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

inline std::vector<double> lag_grid(const Scale& s) {
  return metrics::Cdf::uniform_grid(s.grid_max_sec, s.grid_steps);
}

inline void print_header(const char* what, const char* paper_ref,
                         const char* paper_observation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("  reproduces : %s\n", paper_ref);
  std::printf("  paper shape: %s\n", paper_observation);
  std::printf("==============================================================\n\n");
}

inline void print_class_table(const char* title,
                              const std::vector<const char*>& col_names,
                              const std::vector<std::vector<scenario::ClassStat>>& cols) {
  std::printf("%s\n", title);
  std::vector<std::string> headers{"class", "nodes"};
  for (const auto* n : col_names) headers.emplace_back(n);
  metrics::Table t(headers);
  for (std::size_t c = 0; c < cols[0].size(); ++c) {
    std::vector<std::string> row{cols[0][c].class_name, std::to_string(cols[0][c].nodes)};
    for (const auto& col : cols) row.push_back(metrics::Table::pct(col[c].value));
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace hg::bench
