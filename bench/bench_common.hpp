// Shared plumbing for the figure/table reproduction binaries.
//
// Scale control: HG_SCALE=quick (default) runs ~23 s streams; HG_SCALE=paper
// runs the paper's full ~180 s streams (93 windows). Either way the binary
// prints the same series the paper's figure shows.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/heap.hpp"
#include "metrics/table.hpp"

namespace hg::bench {

struct Scale {
  std::size_t nodes = 270;
  std::uint32_t windows = 12;    // ~23 s of stream
  double grid_max_sec = 40.0;    // lag axis of the CDF plots
  std::size_t grid_steps = 21;
  sim::SimTime tail = sim::SimTime::sec(45.0);
};

inline Scale scale_from_env() {
  Scale s;
  const char* env = std::getenv("HG_SCALE");
  if (env != nullptr && std::strcmp(env, "paper") == 0) {
    s.windows = 93;  // ~180 s, the paper's run length
    s.grid_max_sec = 60.0;
    s.grid_steps = 25;
    s.tail = sim::SimTime::sec(65.0);
  }
  return s;
}

inline scenario::ExperimentConfig base_config(const Scale& s, core::Mode mode,
                                              scenario::BandwidthDistribution dist,
                                              double fanout = 7.0,
                                              std::uint64_t seed = 2009) {
  scenario::ExperimentConfig cfg;
  cfg.node_count = s.nodes;
  cfg.stream_windows = s.windows;
  cfg.tail = s.tail;
  cfg.mode = mode;
  cfg.fanout = fanout;
  cfg.distribution = std::move(dist);
  cfg.seed = seed;
  return cfg;
}

// Runs with a progress note on stderr (stdout carries only the tables).
inline std::unique_ptr<scenario::Experiment> run(scenario::ExperimentConfig cfg,
                                                 const char* label) {
  std::fprintf(stderr, "[bench] running %-28s (%s, %zu nodes, %u windows)...\n", label,
               cfg.mode == core::Mode::kHeap ? "HEAP" : "standard", cfg.node_count,
               cfg.stream_windows);
  auto exp = std::make_unique<scenario::Experiment>(std::move(cfg));
  exp->run();
  return exp;
}

inline std::vector<double> lag_grid(const Scale& s) {
  return metrics::Cdf::uniform_grid(s.grid_max_sec, s.grid_steps);
}

inline void print_header(const char* what, const char* paper_ref,
                         const char* paper_observation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("  reproduces : %s\n", paper_ref);
  std::printf("  paper shape: %s\n", paper_observation);
  std::printf("==============================================================\n\n");
}

inline void print_class_table(const char* title,
                              const std::vector<const char*>& col_names,
                              const std::vector<std::vector<scenario::ClassStat>>& cols) {
  std::printf("%s\n", title);
  std::vector<std::string> headers{"class", "nodes"};
  for (const auto* n : col_names) headers.emplace_back(n);
  metrics::Table t(headers);
  for (std::size_t c = 0; c < cols[0].size(); ++c) {
    std::vector<std::string> row{cols[0][c].class_name, std::to_string(cols[0][c].nodes)};
    for (const auto& col : cols) row.push_back(metrics::Table::pct(col[c].value));
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace hg::bench
