// FEC-vs-retransmission ablation at scale.
//
// The paper's stream protocol pairs a proactive window code (101 data + 9
// parity, §2) with reactive per-packet retransmission (Algorithm 2). This
// bench isolates the two repair mechanisms on ScalePreset populations: a
// retransmission-only arm (parity 0), pure-FEC arms at two parity budgets,
// and the combined arm the paper runs. Per arm it reports pooled lag/jitter
// percentiles plus the deterministic repair counters (requests, serves,
// retransmit retries, decode-on-k cancellations, bytes sent), and emits
// BENCH_bench_fig_fec.json.
//
// A trailing "kernels" section times the GF(256) substrate in-process:
// scalar vs SIMD-dispatched mul_add_slice and whole-window encode/decode
// ns/byte. Kernel numbers are wall-clock (machine-dependent); CI strips the
// block with `compare_bench_metrics.py --strip kernels` when diffing runs.
//
// Usage: bench_fig_fec [nodes...]   (default: 10000; the paper-scale
// ablation adds 100000). All simulation metrics are bit-deterministic for a
// given seed regardless of HG_WORKERS / HG_THREADS.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fec/gf256.hpp"
#include "gossip/gossip_module.hpp"
#include "scenario/scale_preset.hpp"
#include "scenario/sweep_runner.hpp"

namespace {

using namespace hg;

// One repair-strategy arm of the ablation. Everything else (population,
// network, stream rate, window geometry) is the shared ScalePreset.
struct Arm {
  const char* label;
  std::size_t parity;    // parity packets per 101-data window
  int max_retransmits;   // 0 disables the reactive path entirely
};

constexpr Arm kArms[] = {
    {"rtx-only", 0, 8},   // Algorithm 2 alone: every loss needs a round trip
    {"fec-5", 5, 0},      // half the paper's parity budget, no retransmission
    {"fec-9", 9, 0},      // the paper's parity budget, no retransmission
    {"fec-9+rtx", 9, 8},  // the paper's combined configuration
};

constexpr double kLagCapSec = 60.0;    // "never jitter-free" cap (plot axis)
constexpr double kJitterLagSec = 10.0;  // paper's headline operating point

// Per-seed results: percentile set over all surviving receivers plus the
// protocol counters that distinguish the repair strategies. All fields are
// functions of the seed alone — never of HG_WORKERS.
struct SeedStats {
  std::uint64_t events = 0;
  double lag_p50 = 0, lag_p90 = 0, lag_p99 = 0;
  double jitter_p50 = 0, jitter_p90 = 0, jitter_p99 = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t serves_sent = 0;
  std::uint64_t retx_retries = 0;
  std::uint64_t retx_gave_up = 0;
  std::uint64_t windows_cancelled = 0;
  std::uint64_t timers_cancelled = 0;
  std::int64_t sent_bytes = 0;  // receiver upload volume, protocol included
};

SeedStats analyze(const scenario::Experiment& e) {
  auto lag = metrics::Samples::streaming();
  auto jitter = metrics::Samples::streaming();
  SeedStats s;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    if (e.info(i).crashed) continue;
    const auto to_jitter_free = e.analyzer().lag_to_jitter_at_most(e.player(i), 0.0);
    lag.add(std::min(to_jitter_free.value_or(kLagCapSec), kLagCapSec));
    jitter.add(100.0 * e.analyzer().jitter_fraction(e.player(i), kJitterLagSec));
    if (const auto* gm = e.node(i).find_module<gossip::GossipModule>()) {
      const auto& gs = gm->engine().stats();
      s.requests_sent += gs.requests_sent;
      s.serves_sent += gs.serves_sent;
      s.windows_cancelled += gs.windows_cancelled;
      s.timers_cancelled += gs.timers_cancelled_by_window;
      const auto& rs = gm->engine().retransmit_stats();
      s.retx_retries += rs.retries_fired;
      s.retx_gave_up += rs.gave_up;
    }
    s.sent_bytes += e.meter(i).total_sent_bytes();
  }
  if (!lag.empty()) {
    s.lag_p50 = lag.percentile(50);
    s.lag_p90 = lag.percentile(90);
    s.lag_p99 = lag.percentile(99);
    s.jitter_p50 = jitter.percentile(50);
    s.jitter_p90 = jitter.percentile(90);
    s.jitter_p99 = jitter.percentile(99);
  }
  return s;
}

struct ArmRow {
  const Arm* arm = nullptr;
  std::size_t nodes = 0;
  std::size_t seeds = 0;
  std::size_t workers = 0;
  double wall_sec = 0;
  // Percentiles are seed-order means; counters are summed over seeds.
  SeedStats sum;
};

ArmRow run_arm(std::size_t n, const Arm& arm, std::size_t n_seeds, std::size_t threads,
               std::size_t workers) {
  std::fprintf(stderr, "[bench] fec ablation: %zu nodes, arm %-9s (%zu seed%s, %zu worker%s)...\n",
               n, arm.label, n_seeds, n_seeds == 1 ? "" : "s", workers,
               workers == 1 ? "" : "s");
  scenario::ExperimentConfig cfg = scenario::ScalePreset::config(n);
  cfg.partitions = env_partitions();  // 0 = auto
  cfg.stream.parity_per_window = arm.parity;
  cfg.max_retransmits = arm.max_retransmits;
  cfg.workers = workers;

  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < n_seeds; ++i) seeds.push_back(cfg.seed + i);

  const auto t0 = std::chrono::steady_clock::now();
  scenario::SweepRunner runner(
      scenario::SweepOptions{.threads = threads, .workers_per_job = workers});
  auto per_seed = runner.map(scenario::SweepRunner::seed_sweep(std::move(cfg), seeds),
                            [](scenario::Experiment& e) {
                              SeedStats s = analyze(e);
                              s.events = e.events_executed();
                              return s;
                            });

  ArmRow row;
  row.arm = &arm;
  row.nodes = n;
  row.seeds = n_seeds;
  row.workers = workers;
  row.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const SeedStats& s : per_seed) {
    row.sum.events += s.events;
    row.sum.lag_p50 += s.lag_p50;
    row.sum.lag_p90 += s.lag_p90;
    row.sum.lag_p99 += s.lag_p99;
    row.sum.jitter_p50 += s.jitter_p50;
    row.sum.jitter_p90 += s.jitter_p90;
    row.sum.jitter_p99 += s.jitter_p99;
    row.sum.requests_sent += s.requests_sent;
    row.sum.serves_sent += s.serves_sent;
    row.sum.retx_retries += s.retx_retries;
    row.sum.retx_gave_up += s.retx_gave_up;
    row.sum.windows_cancelled += s.windows_cancelled;
    row.sum.timers_cancelled += s.timers_cancelled;
    row.sum.sent_bytes += s.sent_bytes;
  }
  const auto ns = static_cast<double>(per_seed.size());
  row.sum.lag_p50 /= ns;
  row.sum.lag_p90 /= ns;
  row.sum.lag_p99 /= ns;
  row.sum.jitter_p50 /= ns;
  row.sum.jitter_p90 /= ns;
  row.sum.jitter_p99 /= ns;
  return row;
}

void print_rows(const std::vector<ArmRow>& rows) {
  metrics::Table t({"arm", "parity", "rtx", "lag p50", "lag p90", "lag p99", "jitter% p50",
                    "jitter% p90", "jitter% p99", "retx retries", "win cancels", "MB sent"});
  for (const ArmRow& r : rows) {
    t.add_row({r.arm->label, std::to_string(r.arm->parity),
               std::to_string(r.arm->max_retransmits), metrics::Table::num(r.sum.lag_p50),
               metrics::Table::num(r.sum.lag_p90), metrics::Table::num(r.sum.lag_p99),
               metrics::Table::num(r.sum.jitter_p50), metrics::Table::num(r.sum.jitter_p90),
               metrics::Table::num(r.sum.jitter_p99), std::to_string(r.sum.retx_retries),
               std::to_string(r.sum.windows_cancelled),
               metrics::Table::num(static_cast<double>(r.sum.sent_bytes) / (1024.0 * 1024.0))});
  }
  std::printf("%s\n", t.render().c_str());
}

// ---------------------------------------------------------------------------
// GF(256) kernel timings (in-process, wall-clock — stripped in CI diffs)
// ---------------------------------------------------------------------------

struct KernelReport {
  const char* simd_level = "scalar";
  double mul_add_scalar_ns_per_byte = 0;
  double mul_add_simd_ns_per_byte = 0;
  double mul_add_speedup = 0;
  double encode_ns_per_byte = 0;
  double decode_ns_per_byte = 0;
};

// Fixed-iteration timing over deterministic buffers; the checksum keeps the
// optimizer honest.
template <class Fn>
double time_ns_per_byte(std::size_t iters, std::size_t bytes_per_iter, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile std::uint8_t sink = 0;
  for (std::size_t i = 0; i < iters; ++i) sink = sink ^ fn(i);
  const double ns =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
          .count();
  return ns / static_cast<double>(iters * bytes_per_iter);
}

KernelReport measure_kernels() {
  std::fprintf(stderr, "[bench] gf256 kernels (%s dispatch)...\n",
               fec::GF256::simd_level_name());
  KernelReport k;
  k.simd_level = fec::GF256::simd_level_name();

  constexpr std::size_t kLen = 1316;  // one stream packet
  std::vector<std::uint8_t> src(kLen), dst(kLen, 0);
  for (std::size_t i = 0; i < kLen; ++i) src[i] = static_cast<std::uint8_t>(i * 37 + 11);

  constexpr std::size_t kMulIters = 40'000;
  k.mul_add_scalar_ns_per_byte = time_ns_per_byte(kMulIters, kLen, [&](std::size_t i) {
    fec::GF256::mul_add_slice_scalar(dst.data(), src.data(), kLen,
                                     static_cast<std::uint8_t>(i | 1));
    return dst[0];
  });
  k.mul_add_simd_ns_per_byte = time_ns_per_byte(kMulIters, kLen, [&](std::size_t i) {
    fec::GF256::mul_add_slice(dst.data(), src.data(), kLen,
                              static_cast<std::uint8_t>(i | 1));
    return dst[0];
  });
  k.mul_add_speedup = k.mul_add_simd_ns_per_byte > 0
                          ? k.mul_add_scalar_ns_per_byte / k.mul_add_simd_ns_per_byte
                          : 0.0;

  // Whole-window coding at the paper geometry (101 + 9, 1316 B packets).
  const fec::WindowCodecConfig cfg{
      .data_per_window = 101, .parity_per_window = 9, .packet_bytes = kLen};
  fec::WindowCodec codec(cfg);
  std::vector<std::vector<std::uint8_t>> data(cfg.data_per_window,
                                              std::vector<std::uint8_t>(kLen));
  for (std::size_t p = 0; p < data.size(); ++p) {
    for (std::size_t i = 0; i < kLen; ++i) {
      data[p][i] = static_cast<std::uint8_t>(p * 131 + i * 7 + 3);
    }
  }
  const std::size_t window_bytes = cfg.data_per_window * kLen;
  k.encode_ns_per_byte = time_ns_per_byte(20, window_bytes, [&](std::size_t) {
    return codec.encode_window(data)[0][0];
  });

  auto parity = codec.encode_window(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> received(codec.window_packets());
  for (std::size_t i = 0; i < cfg.data_per_window; ++i) received[i] = data[i];
  for (std::size_t i = 0; i < cfg.parity_per_window; ++i) {
    received[cfg.data_per_window + i] = parity[i];
  }
  for (std::size_t i = 0; i < cfg.parity_per_window; ++i) received[i * 11].reset();
  k.decode_ns_per_byte = time_ns_per_byte(20, window_bytes, [&](std::size_t) {
    return (*codec.decode_window(received))[0][0];
  });
  return k;
}

void print_kernels(const KernelReport& k) {
  std::printf("GF(256) kernels (%s dispatch):\n", k.simd_level);
  std::printf("  mul_add_slice  scalar %.3f ns/B | simd %.3f ns/B | %.2fx\n",
              k.mul_add_scalar_ns_per_byte, k.mul_add_simd_ns_per_byte, k.mul_add_speedup);
  std::printf("  window (101+9) encode %.3f ns/B | decode(9 erasures) %.3f ns/B\n\n",
              k.encode_ns_per_byte, k.decode_ns_per_byte);
}

void write_json(const std::vector<ArmRow>& rows, const KernelReport& k) {
  std::FILE* f = hg::bench::open_bench_json();
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", hg::bench::bench_binary_name());
  std::fprintf(f,
               "  \"kernels\": {\"simd_level\": \"%s\", "
               "\"mul_add_scalar_ns_per_byte\": %.4f, "
               "\"mul_add_simd_ns_per_byte\": %.4f, \"mul_add_speedup\": %.3f, "
               "\"encode_ns_per_byte\": %.4f, \"decode_ns_per_byte\": %.4f},\n",
               k.simd_level, k.mul_add_scalar_ns_per_byte, k.mul_add_simd_ns_per_byte,
               k.mul_add_speedup, k.encode_ns_per_byte, k.decode_ns_per_byte);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ArmRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"nodes\": %zu, \"arm\": \"%s\", \"parity\": %zu, "
        "\"max_retransmits\": %d, \"seeds\": %zu, \"workers\": %zu, "
        "\"wall_sec\": %.3f, \"events\": %llu, \"events_per_sec\": %.1f, "
        "\"lag_p50\": %.4f, \"lag_p90\": %.4f, \"lag_p99\": %.4f, "
        "\"jitter_pct_p50\": %.4f, \"jitter_pct_p90\": %.4f, \"jitter_pct_p99\": %.4f, "
        "\"requests_sent\": %llu, \"serves_sent\": %llu, "
        "\"retx_retries\": %llu, \"retx_gave_up\": %llu, "
        "\"windows_cancelled\": %llu, \"timers_cancelled\": %llu, "
        "\"sent_bytes\": %lld}%s\n",
        r.nodes, r.arm->label, r.arm->parity, r.arm->max_retransmits, r.seeds, r.workers,
        r.wall_sec, static_cast<unsigned long long>(r.sum.events),
        r.wall_sec > 0 ? static_cast<double>(r.sum.events) / r.wall_sec : 0.0,
        r.sum.lag_p50, r.sum.lag_p90, r.sum.lag_p99, r.sum.jitter_p50, r.sum.jitter_p90,
        r.sum.jitter_p99, static_cast<unsigned long long>(r.sum.requests_sent),
        static_cast<unsigned long long>(r.sum.serves_sent),
        static_cast<unsigned long long>(r.sum.retx_retries),
        static_cast<unsigned long long>(r.sum.retx_gave_up),
        static_cast<unsigned long long>(r.sum.windows_cancelled),
        static_cast<unsigned long long>(r.sum.timers_cancelled),
        static_cast<long long>(r.sum.sent_bytes), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hg::bench;

  std::vector<std::size_t> rungs;
  for (int i = 1; i < argc; ++i) {
    rungs.push_back(
        static_cast<std::size_t>(hg::parse_env_int("nodes argument", argv[i], 1, 10'000'000)));
  }
  if (rungs.empty()) rungs = {10'000};

  print_header("FEC vs retransmission: repair-strategy ablation at scale",
               "the paper's proactive (window FEC) + reactive (Algorithm 2) split",
               "parity trades constant overhead for loss-independent lag; "
               "retransmission alone pays a round trip per loss");

  const std::size_t workers = workers_from_env();
  hg::warn_if_oversubscribed(workers, threads_from_env() > 0 ? threads_from_env()
                                                             : seeds_from_env());
  std::vector<ArmRow> rows;
  for (const std::size_t n : rungs) {
    std::printf("--- %zu nodes ---\n", n);
    std::vector<ArmRow> rung_rows;
    for (const Arm& arm : kArms) {
      rung_rows.push_back(run_arm(n, arm, seeds_from_env(), threads_from_env(), workers));
    }
    print_rows(rung_rows);
    for (ArmRow& r : rung_rows) rows.push_back(std::move(r));
  }

  const KernelReport kernels = measure_kernels();
  print_kernels(kernels);
  write_json(rows, kernels);
  return 0;
}
