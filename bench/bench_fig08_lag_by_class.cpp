// Fig. 8 — average stream lag needed for a fully jitter-free stream, by
// capability class, on ref-691 (8a) and ms-691 (8b).
#include "bench_common.hpp"

namespace {

void one(const hg::bench::Scale& s, hg::scenario::BandwidthDistribution dist,
         const char* fig, double cap_sec) {
  using namespace hg;
  using namespace hg::bench;
  auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "fig8-standard");
  auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "fig8-heap");

  const auto std_lag = mean_lag_to_jitter_free_by_class(std_exp, cap_sec);
  const auto heap_lag = mean_lag_to_jitter_free_by_class(heap_exp, cap_sec);

  std::printf("Fig. %s (%s): mean lag to a jitter-free stream (capped at %.0f s)\n", fig,
              dist.name().c_str(), cap_sec);
  metrics::Table t({"class", "nodes", "standard gossip", "HEAP"});
  for (std::size_t c = 0; c < std_lag.size(); ++c) {
    t.add_row({std_lag[c].class_name, std::to_string(std_lag[c].nodes),
               metrics::Table::num(std_lag[c].value, 1) + " s",
               metrics::Table::num(heap_lag[c].value, 1) + " s"});
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 8: mean stream lag for a jitter-free stream, by class",
               "Figures 8a (ref-691) and 8b (ms-691)",
               "HEAP cuts lag 40-60% on ref-691; on ms-691 the gap widens "
               "further with the skew");

  one(s, scenario::BandwidthDistribution::ref691(), "8a", s.grid_max_sec);
  one(s, scenario::BandwidthDistribution::ms691(), "8b", s.grid_max_sec);
  return 0;
}
