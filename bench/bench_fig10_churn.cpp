// Fig. 10 — resilience to catastrophic failures: 20% (10a) and 50% (10b) of
// the nodes crash simultaneously at t=60 s into the stream (detection ~10 s
// later). Series: % of the initial population decoding each window, HEAP at
// 12 s lag vs standard gossip at 20 s and 30 s lag.
//
// At quick scale the crash lands mid-stream (40% of the stream in) instead
// of at the 60 s mark; HG_SCALE=paper reproduces the exact timeline.
#include "bench_common.hpp"

namespace {

void one(const hg::bench::Scale& s, double kill_fraction, const char* fig) {
  using namespace hg;
  using namespace hg::bench;

  const auto dist = scenario::BandwidthDistribution::ref691();
  const double stream_sec =
      stream::StreamConfig{}.window_duration_sec() * static_cast<double>(s.windows);
  // Paper: failure at t=60 s of a 180 s stream -> 1/3 in. Same ratio here.
  const auto crash_at = sim::SimTime::sec(2.0 + stream_sec / 3.0);

  auto make = [&](core::Mode mode) {
    auto cfg = base_config(s, mode, dist);
    cfg.churn = {{crash_at, kill_fraction}};
    cfg.detection.mean = sim::SimTime::sec(10.0);  // paper: learn ~10 s later
    return cfg;
  };
  auto heap_exp = run(make(core::Mode::kHeap), "fig10-heap");
  auto std_exp = run(make(core::Mode::kStandard), "fig10-standard");

  const auto heap12 = per_window_decode_percent(heap_exp, 12.0);
  const auto std20 = per_window_decode_percent(std_exp, 20.0);
  const auto std30 = per_window_decode_percent(std_exp, 30.0);

  std::printf("Fig. %s: %.0f%% of nodes crash at t=%.1f s (stream starts at 2.0 s)\n",
              fig, kill_fraction * 100.0, crash_at.as_sec());
  metrics::Table t({"window", "publish t (s)", "HEAP 12s lag", "std 20s lag",
                    "std 30s lag"});
  for (std::size_t w = 0; w < heap12.size(); ++w) {
    t.add_row({std::to_string(w),
               metrics::Table::num(
                   heap_exp.analyzer().window_complete_time(static_cast<std::uint32_t>(w))
                       .as_sec(), 1),
               metrics::Table::num(heap12[w], 1) + "%",
               metrics::Table::num(std20[w], 1) + "%",
               metrics::Table::num(std30[w], 1) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 10: catastrophic failures (ref-691)",
               "Figures 10a (20% crash) and 10b (50% crash)",
               "HEAP@12 s: near the surviving fraction for every window except "
               "those published right at the failure; std degrades over time "
               "(congestion) and loses a wider band of windows");

  one(s, 0.20, "10a");
  one(s, 0.50, "10b");
  return 0;
}
