// Fig. 5 — stream quality on ref-691: average percentage of jitter-free
// windows per capability class at a 10 s stream lag, std gossip vs HEAP.
#include "bench_common.hpp"

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 5: jitter-free window share by class at 10 s lag (ref-691)",
               "Figure 5",
               "std: 256 kbps nodes only ~18% jitter-free; HEAP: >90% for all classes");

  const auto dist = scenario::BandwidthDistribution::ref691();
  auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "fig5-standard");
  auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "fig5-heap");

  print_class_table("jitter-free share of windows at 10 s lag:",
                    {"standard gossip", "HEAP"},
                    {jitter_free_pct_by_class(std_exp, 10.0),
                     jitter_free_pct_by_class(heap_exp, 10.0)});
  return 0;
}
