// Micro-benchmarks (google-benchmark) for the hot substrate paths: GF(256)
// Reed-Solomon coding, event-queue churn, wire serialization, and the
// aggregation estimator.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>

#include "aggregation/freshness_aggregator.hpp"
#include "common/rng.hpp"
#include "fec/gf256.hpp"
#include "fec/reed_solomon.hpp"
#include "fec/window_codec.hpp"
#include "gossip/messages.hpp"
#include "gossip/window_ring.hpp"
#include "net/fabric.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"

// Bench-local hash support: src/ deliberately defines no std::hash for the id
// types (hash containers are banned there by the determinism linter), but the
// retained HashMap baseline rows are exactly hash containers.
template <>
struct std::hash<hg::EventId> {
  std::size_t operator()(hg::EventId id) const noexcept {
    return static_cast<std::size_t>(id.raw() * 0x9e3779b97f4a7c15ULL);  // Fibonacci hash
  }
};

namespace {

using namespace hg;

// GF(256) slice kernels: the scalar log/exp loop vs the runtime-dispatched
// split-nibble SIMD path (PSHUFB / NEON TBL). Identical bytes by contract
// (gf256_test.cpp proves it); this row tracks the speedup.
void BM_Gf256MulAddScalar(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> dst(len, 0), src(len);
  for (std::size_t i = 0; i < len; ++i) src[i] = static_cast<std::uint8_t>(i * 37 + 11);
  std::uint8_t coeff = 1;
  for (auto _ : state) {
    fec::GF256::mul_add_slice_scalar(dst.data(), src.data(), len, coeff);
    coeff = static_cast<std::uint8_t>(coeff + 2);  // odd: never the 0 fast path
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_Gf256MulAddScalar)->Arg(64)->Arg(1316);

void BM_Gf256MulAddSimd(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> dst(len, 0), src(len);
  for (std::size_t i = 0; i < len; ++i) src[i] = static_cast<std::uint8_t>(i * 37 + 11);
  std::uint8_t coeff = 1;
  state.SetLabel(fec::GF256::simd_level_name());
  for (auto _ : state) {
    fec::GF256::mul_add_slice(dst.data(), src.data(), len, coeff);
    coeff = static_cast<std::uint8_t>(coeff + 2);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_Gf256MulAddSimd)->Arg(64)->Arg(1316);

// Raw ReedSolomon decode at the paper window: the all-data fast path (pure
// validation + copy) vs an m-erasure repair (Gaussian elimination on the
// k x k subsystem plus reconstruction mul_adds).
void run_rs_decode(benchmark::State& state, std::size_t erasures) {
  const std::size_t k = 101, m = 9;
  fec::ReedSolomon rs(k, m);
  Rng rng(17);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(1316));
  for (auto& p : data) {
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.below(256));
  }
  auto parity = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> shards(k + m);
  for (std::size_t i = 0; i < k; ++i) shards[i] = data[i];
  for (std::size_t i = 0; i < m; ++i) shards[k + i] = parity[i];
  std::vector<std::uint32_t> drop;
  rng.sample_indices(k, erasures, drop);  // erase data shards (worst case)
  for (auto d : drop) shards[d].reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(shards));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * 1316));
}

void BM_RsDecodeAllData(benchmark::State& state) { run_rs_decode(state, 0); }
BENCHMARK(BM_RsDecodeAllData);

void BM_RsDecodeErasure(benchmark::State& state) {
  run_rs_decode(state, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_RsDecodeErasure)->Arg(1)->Arg(9);

void BM_FecEncodeWindow(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  fec::WindowCodec codec({.data_per_window = k, .parity_per_window = m,
                          .packet_bytes = 1316});
  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(1316));
  for (auto& p : data) {
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode_window(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * 1316));
}
BENCHMARK(BM_FecEncodeWindow)->Args({101, 9})->Args({50, 5})->Args({16, 4});

void BM_FecDecodeWindow(benchmark::State& state) {
  const std::size_t k = 101, m = 9;
  const auto erasures = static_cast<std::size_t>(state.range(0));
  fec::WindowCodec codec({.data_per_window = k, .parity_per_window = m,
                          .packet_bytes = 1316});
  Rng rng(2);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(1316));
  for (auto& p : data) {
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.below(256));
  }
  auto parity = codec.encode_window(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> received(k + m);
  for (std::size_t i = 0; i < k; ++i) received[i] = data[i];
  for (std::size_t i = 0; i < m; ++i) received[k + i] = parity[i];
  std::vector<std::uint32_t> drop;
  rng.sample_indices(k, erasures, drop);  // erase data packets (worst case)
  for (auto d : drop) received[d].reset();

  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode_window(received));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * 1316));
}
BENCHMARK(BM_FecDecodeWindow)->Arg(0)->Arg(1)->Arg(5)->Arg(9);

// --------------------------------------------------------------------------
// Pooled event queue vs the pre-refactor std::function baseline.
//
// LegacyEventQueue reproduces the engine this repo shipped with: one
// std::function per entry moved through the heap, plus a shared_ptr<bool>
// allocation per cancellable event. The pooled queue must beat it by >= 2x
// events/sec on the representative workload (datagram-sized captures).
// --------------------------------------------------------------------------

class LegacyEventQueue {
 public:
  using Fn = std::function<void()>;

  std::shared_ptr<bool> schedule(sim::SimTime at, Fn fn) {
    auto alive = std::make_shared<bool>(true);
    heap_.push_back(Entry{at, next_seq_++, std::move(fn), alive});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    return alive;
  }

  void schedule_fire_and_forget(sim::SimTime at, Fn fn) {
    heap_.push_back(Entry{at, next_seq_++, std::move(fn), nullptr});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool run_next(sim::SimTime& now) {
    while (!heap_.empty() && heap_.front().alive && !*heap_.front().alive) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    }
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    now = e.at;
    ++executed_;
    if (e.alive) *e.alive = false;
    e.fn();
    return true;
  }

  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    sim::SimTime at;
    std::uint64_t seq;
    Fn fn;
    std::shared_ptr<bool> alive;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

// The real delivery path captures a fabric pointer + a Datagram (~40 bytes
// with its shared payload): big enough to defeat std::function's 16-byte
// inline buffer, small enough for the pooled queue's 48-byte slots.
struct DeliveryCapture {
  void* fabric;
  std::uint32_t src, dst, msg_class;
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  std::uint64_t* sink;
};

void BM_EventQueuePooledScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  auto payload = std::make_shared<const std::vector<std::uint8_t>>(1316, 0xab);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    sim::SimTime now = sim::SimTime::zero();
    for (int i = 0; i < batch; ++i) {
      DeliveryCapture d{nullptr, 1, 2, 3, payload, &sink};
      q.schedule_fire_and_forget(sim::SimTime::us(i % 1000),
                                 [d] { *d.sink += d.bytes->size(); });
    }
    while (q.run_next(now)) {
    }
    benchmark::DoNotOptimize(q.executed());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_EventQueuePooledScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueueLegacyScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  auto payload = std::make_shared<const std::vector<std::uint8_t>>(1316, 0xab);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    LegacyEventQueue q;
    sim::SimTime now = sim::SimTime::zero();
    for (int i = 0; i < batch; ++i) {
      DeliveryCapture d{nullptr, 1, 2, 3, payload, &sink};
      q.schedule_fire_and_forget(sim::SimTime::us(i % 1000),
                                 [d] { *d.sink += d.bytes->size(); });
    }
    while (q.run_next(now)) {
    }
    benchmark::DoNotOptimize(q.executed());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_EventQueueLegacyScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

// The headline engine comparison: the steady-state mix a gossip simulation
// actually generates. Every cycle schedules one datagram delivery (40-byte
// capture), arms one cancellable retransmission timer, cancels the timer
// armed kRetxWindow cycles ago (serves almost always beat the timeout), and
// executes one event. The pooled queue runs this with zero allocations; the
// legacy queue pays a std::function heap allocation per delivery plus a
// shared_ptr control block per timer.
constexpr std::size_t kRetxWindow = 64;

void BM_EventQueuePooledSimMix(benchmark::State& state) {
  auto payload = std::make_shared<const std::vector<std::uint8_t>>(1316, 0xab);
  std::uint64_t sink = 0;
  sim::EventQueue q;
  sim::SimTime now = sim::SimTime::zero();
  std::vector<sim::EventHandle> retx(kRetxWindow);
  std::size_t w = 0;
  std::int64_t t = 1;
  for (auto _ : state) {
    DeliveryCapture d{nullptr, 1, 2, 3, payload, &sink};
    q.schedule_fire_and_forget(sim::SimTime::us(t + 7),
                               [d] { *d.sink += d.bytes->size(); });
    retx[w].cancel();
    retx[w] = q.schedule(sim::SimTime::us(t + 1000), [] {});
    w = (w + 1) % kRetxWindow;
    q.run_next(now);
    ++t;
  }
  benchmark::DoNotOptimize(sink);
  benchmark::DoNotOptimize(q.executed());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueuePooledSimMix);

void BM_EventQueueLegacySimMix(benchmark::State& state) {
  auto payload = std::make_shared<const std::vector<std::uint8_t>>(1316, 0xab);
  std::uint64_t sink = 0;
  LegacyEventQueue q;
  sim::SimTime now = sim::SimTime::zero();
  std::vector<std::shared_ptr<bool>> retx(kRetxWindow);
  std::size_t w = 0;
  std::int64_t t = 1;
  for (auto _ : state) {
    DeliveryCapture d{nullptr, 1, 2, 3, payload, &sink};
    q.schedule_fire_and_forget(sim::SimTime::us(t + 7),
                               [d] { *d.sink += d.bytes->size(); });
    if (retx[w]) *retx[w] = false;
    retx[w] = q.schedule(sim::SimTime::us(t + 1000), [] {});
    w = (w + 1) % kRetxWindow;
    q.run_next(now);
    ++t;
  }
  benchmark::DoNotOptimize(sink);
  benchmark::DoNotOptimize(q.executed());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueLegacySimMix);

void BM_EventQueuePooledCancellation(benchmark::State& state) {
  // The retransmission pattern: schedule + cancel nearly everything.
  for (auto _ : state) {
    sim::EventQueue q;
    sim::SimTime now = sim::SimTime::zero();
    std::vector<sim::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(q.schedule(sim::SimTime::us(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    while (q.run_next(now)) {
    }
    benchmark::DoNotOptimize(q.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_EventQueuePooledCancellation);

void BM_EventQueueLegacyCancellation(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEventQueue q;
    sim::SimTime now = sim::SimTime::zero();
    std::vector<std::shared_ptr<bool>> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(q.schedule(sim::SimTime::us(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) *handles[i] = false;
    while (q.run_next(now)) {
    }
    benchmark::DoNotOptimize(q.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_EventQueueLegacyCancellation);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim(1);
    for (int i = 0; i < batch; ++i) {
      sim.after_fire_and_forget(sim::SimTime::us(i % 1000), [] {});
    }
    sim.run_to_completion();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SerializePropose(benchmark::State& state) {
  const auto ids_count = static_cast<std::size_t>(state.range(0));
  gossip::ProposeMsg msg;
  msg.sender = NodeId{7};
  for (std::size_t i = 0; i < ids_count; ++i) {
    msg.ids.emplace_back(static_cast<std::uint32_t>(i / 110),
                         static_cast<std::uint16_t>(i % 110));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::encode(msg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SerializePropose)->Arg(11)->Arg(100);

void BM_DeserializeServe(benchmark::State& state) {
  auto payload = net::BufferRef::copy_of(std::vector<std::uint8_t>(1316, 0xab));
  const auto buf =
      gossip::encode(gossip::ServeMsg{NodeId{1}, {gossip::EventId{3, 4}, payload}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::decode_serve(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_DeserializeServe);

// --------------------------------------------------------------------------
// The wire path: pooled BufferRef vs the pre-refactor shared_ptr<vector>
// baseline.
//
// ServeMix models one request round of the steady state: `batch` stored
// MTU-sized events are encoded as serves for a peer, pass through a delivery
// queue, and are decoded on arrival. The pooled path encodes the whole batch
// into one recycled buffer, sends zero-copy slices, and decodes payloads as
// slices of the arrival buffer; the legacy path pays one vector + one
// shared_ptr control block per encode and a payload copy per decode. The
// pooled path must win by >= 1.3x events/sec.
// --------------------------------------------------------------------------

// The shared_ptr<vector> wire path this repo shipped with, reproduced.
using LegacyBytes = std::shared_ptr<const std::vector<std::uint8_t>>;

LegacyBytes legacy_encode_serve(NodeId sender, gossip::EventId id,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> buf;
  buf.reserve(16 + payload.size());
  buf.push_back(static_cast<std::uint8_t>(gossip::MsgTag::kServe));
  const std::uint32_t s = sender.value();
  const std::uint64_t raw = id.raw();
  const auto append = [&buf](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + n);
  };
  append(&s, sizeof s);
  append(&raw, sizeof raw);
  std::uint64_t len = payload.size();
  while (len >= 0x80) {
    buf.push_back(static_cast<std::uint8_t>(len) | 0x80);
    len >>= 7;
  }
  buf.push_back(static_cast<std::uint8_t>(len));
  buf.insert(buf.end(), payload.begin(), payload.end());
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(buf));
}

struct LegacyServe {
  NodeId sender;
  gossip::EventId id;
  LegacyBytes payload;  // copied out of the arrival buffer, as decode did
};

std::optional<LegacyServe> legacy_decode_serve(const std::vector<std::uint8_t>& buf) {
  net::ByteReader r(buf);
  LegacyServe m;
  const auto tag = r.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(gossip::MsgTag::kServe)) return std::nullopt;
  const auto s = r.u32();
  const auto raw = r.u64();
  if (!s || !raw) return std::nullopt;
  m.sender = NodeId{*s};
  m.id = gossip::EventId::from_raw(*raw);
  const auto payload = r.bytes();
  if (!payload) return std::nullopt;
  m.payload =
      std::make_shared<const std::vector<std::uint8_t>>(payload->begin(), payload->end());
  return m;
}

void BM_WirePathPooledServeMix(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<gossip::Event> store;
  for (std::size_t k = 0; k < batch; ++k) {
    store.push_back(gossip::Event{
        gossip::EventId{1, static_cast<std::uint16_t>(k)},
        net::BufferRef::copy_of(std::vector<std::uint8_t>(1316, 0xab))});
  }
  sim::EventQueue q;
  sim::SimTime now = sim::SimTime::zero();
  std::uint64_t sink = 0;
  std::int64_t t = 1;
  std::vector<gossip::ServeSpan> spans;
  for (auto _ : state) {
    // Sender: the production batching path — one pooled buffer per request.
    const net::BufferRef all = gossip::encode_serve_batch(NodeId{1}, store, spans);
    // Wire: one delivery event per datagram; receiver decodes zero-copy.
    for (const auto& [off, len, phantom] : spans) {
      q.schedule_fire_and_forget(
          sim::SimTime::us(t++), [slice = all.slice(off, len), &sink]() {
            const auto msg = gossip::decode_serve(slice);
            sink += msg->event.payload.size();
          });
    }
    while (q.run_next(now)) {
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_WirePathPooledServeMix)->Arg(1)->Arg(11)->Arg(100);

void BM_WirePathLegacyServeMix(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  struct LegacyEvent {
    gossip::EventId id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<LegacyEvent> store;
  for (std::size_t k = 0; k < batch; ++k) {
    store.push_back(LegacyEvent{gossip::EventId{1, static_cast<std::uint16_t>(k)},
                                std::vector<std::uint8_t>(1316, 0xab)});
  }
  sim::EventQueue q;
  sim::SimTime now = sim::SimTime::zero();
  std::uint64_t sink = 0;
  std::int64_t t = 1;
  for (auto _ : state) {
    for (const auto& ev : store) {
      // Sender: one heap vector + one control block per serve.
      LegacyBytes bytes = legacy_encode_serve(NodeId{1}, ev.id, ev.payload);
      q.schedule_fire_and_forget(sim::SimTime::us(t++),
                                 [bytes = std::move(bytes), &sink]() {
                                   const auto msg = legacy_decode_serve(*bytes);
                                   sink += msg->payload->size();
                                 });
    }
    while (q.run_next(now)) {
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_WirePathLegacyServeMix)->Arg(1)->Arg(11)->Arg(100);

void BM_AggregationEstimate(benchmark::State& state) {
  // Cost of computing b̄ over `range` known origins.
  sim::Simulator sim(3);
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(1)),
                            std::make_unique<net::NoLoss>());
  membership::Directory dir(sim, membership::DetectionConfig{});
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{0});
  aggregation::FreshnessAggregator agg(sim, fabric, *view, NodeId{0}, BitRate::kbps(512),
                                       {});
  fabric.register_node(NodeId{0}, BitRate::unlimited(), nullptr);
  // Seed records directly through the wire path.
  std::vector<gossip::CapabilityRecord> records;
  for (std::uint32_t i = 1; i < n; ++i) {
    records.push_back({NodeId{i}, 512'000 + i, sim::SimTime::ms(i)});
    if (records.size() == 10 || i + 1 == n) {
      const auto bytes = gossip::encode(gossip::AggregationMsg{NodeId{i}, records});
      agg.on_datagram(net::Datagram{NodeId{i}, NodeId{0}, net::MsgClass::kAggregation,
                                    bytes});
      records.clear();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.average_capability_bps());
  }
}
BENCHMARK(BM_AggregationEstimate)->Arg(16)->Arg(270)->Arg(1000);

// --------------------------------------------------------------------------
// Superstep-sharded engine: epoch stepping and the cross-partition exchange
// --------------------------------------------------------------------------

void BM_ParallelSuperstepEpochDrain(benchmark::State& state) {
  // Cost of driving 4 partitions through 1 ms epochs (barrier per epoch) with
  // purely local event load. Arg = worker threads; 1 measures pure engine
  // overhead, >1 adds the fork-join synchronization.
  const auto workers = static_cast<std::size_t>(state.range(0));
  sim::ShardedEngine engine(7, 256, {4, workers, sim::SimTime::ms(1)});
  constexpr int kEventsPerPartition = 64;
  std::vector<std::uint64_t> fired(engine.partitions(), 0);
  for (auto _ : state) {
    const sim::SimTime start = engine.now();
    for (std::uint32_t p = 0; p < engine.partitions(); ++p) {
      sim::Simulator& s = engine.sim_of(p);
      std::uint64_t* count = &fired[p];  // partition-private: no write sharing
      for (int i = 0; i < kEventsPerPartition; ++i) {
        s.after_fire_and_forget(sim::SimTime::us(100 * (i + 1)),
                                [count] { benchmark::DoNotOptimize(++*count); });
      }
    }
    engine.run_until(start + sim::SimTime::ms(10));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.partitions()) *
                          kEventsPerPartition);
}
BENCHMARK(BM_ParallelSuperstepEpochDrain)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelSuperstepBufferExchange(benchmark::State& state) {
  // Cost of the barrier exchange itself: every datagram crosses a partition
  // boundary, so each epoch gathers, orders, imports, and re-schedules the
  // full outbox volume (default batched mode). Arg = worker threads.
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kNodes = 256;
  sim::ShardedEngine engine(11, kNodes, {4, workers, sim::SimTime::ms(1)});
  net::NetworkFabric fabric(engine, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(1)),
                            std::make_unique<net::NoLoss>());
  std::vector<std::uint64_t> received(engine.partitions(), 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    std::uint64_t* count = &received[engine.partition_of(i)];
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [count](const net::Datagram&) { ++*count; });
  }
  const std::vector<std::uint8_t> payload(64, 0x5a);
  for (auto _ : state) {
    const sim::SimTime start = engine.now();
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      // Destination 64 ids away: always a different partition of the 4.
      fabric.send(NodeId{i}, NodeId{(i + 64) % kNodes}, net::MsgClass::kPropose,
                  net::BufferRef::copy_of(payload));
    }
    engine.run_until(start + sim::SimTime::ms(3));
  }
  state.SetItemsProcessed(state.iterations() * kNodes);
}
BENCHMARK(BM_ParallelSuperstepBufferExchange)->Arg(1)->Arg(2)->Arg(4);

// Batched (pooled segment blocks, one import copy per <=256 KiB) vs
// per-message deep-copy exchange, at stream-packet payload sizes where the
// per-message allocation cost dominates. Results are bit-identical between
// the two modes; only the import path differs.
void run_parallel_exchange(benchmark::State& state, net::FabricConfig::ExchangeMode mode) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kNodes = 256;
  sim::ShardedEngine engine(11, kNodes, {4, workers, sim::SimTime::ms(1)});
  net::FabricConfig cfg;
  cfg.exchange = mode;
  net::NetworkFabric fabric(engine, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(1)),
                            std::make_unique<net::NoLoss>(), cfg);
  std::vector<std::uint64_t> received(engine.partitions(), 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    std::uint64_t* count = &received[engine.partition_of(i)];
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [count](const net::Datagram&) { ++*count; });
  }
  const std::vector<std::uint8_t> payload(1316, 0x5a);  // one stream packet
  for (auto _ : state) {
    const sim::SimTime start = engine.now();
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      fabric.send(NodeId{i}, NodeId{(i + 64) % kNodes}, net::MsgClass::kServe,
                  net::BufferRef::copy_of(payload));
    }
    engine.run_until(start + sim::SimTime::ms(3));
  }
  state.SetItemsProcessed(state.iterations() * kNodes);
}

void BM_ParallelExchangeBatched(benchmark::State& state) {
  run_parallel_exchange(state, net::FabricConfig::ExchangeMode::kBatched);
}
BENCHMARK(BM_ParallelExchangeBatched)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelExchangeDeepCopy(benchmark::State& state) {
  run_parallel_exchange(state, net::FabricConfig::ExchangeMode::kDeepCopy);
}
BENCHMARK(BM_ParallelExchangeDeepCopy)->Arg(1)->Arg(2)->Arg(4);

// Adaptive epoch widening over a sparse, quiescent-tail event pattern: one
// event per partition every 50 ms against a 1 ms epoch floor. Widening jumps
// barrier-to-event; the baseline grinds 50 empty barriers per event. Results
// (event order, counts) are identical in both modes.
void run_epoch_widen(benchmark::State& state, bool widen) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  sim::ShardedEngine::Config cfg{4, workers, sim::SimTime::ms(1)};
  cfg.epoch_widening = widen;
  sim::ShardedEngine engine(7, 256, std::move(cfg));
  constexpr int kEventsPerPartition = 10;
  std::vector<std::uint64_t> fired(engine.partitions(), 0);
  for (auto _ : state) {
    const sim::SimTime start = engine.now();
    for (std::uint32_t p = 0; p < engine.partitions(); ++p) {
      sim::Simulator& s = engine.sim_of(p);
      std::uint64_t* count = &fired[p];  // partition-private: no write sharing
      for (int i = 0; i < kEventsPerPartition; ++i) {
        s.after_fire_and_forget(sim::SimTime::ms(50 * (i + 1)),
                                [count] { benchmark::DoNotOptimize(++*count); });
      }
    }
    engine.run_until(start + sim::SimTime::ms(500));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.partitions()) *
                          kEventsPerPartition);
}

void BM_EpochWidenOn(benchmark::State& state) { run_epoch_widen(state, true); }
BENCHMARK(BM_EpochWidenOn)->Arg(1)->Arg(2)->Arg(4);

void BM_EpochWidenOff(benchmark::State& state) { run_epoch_widen(state, false); }
BENCHMARK(BM_EpochWidenOff)->Arg(1)->Arg(2)->Arg(4);

// --------------------------------------------------------------------------
// WindowRing vs the unordered_map it replaced in the gossip engine.
//
// Workload shape matches steady-state dissemination: a sliding domain of
// `horizon` windows x 110 packets, fully populated, probed with a mix of
// hits and (gc'd / not-yet-seen) misses, and advanced one window at a time.
// --------------------------------------------------------------------------

constexpr std::uint32_t kRingSlots = 110;
constexpr std::uint32_t kRingHorizon = 41;  // gc_window_horizon 40 -> 41 live windows

template <typename Fill>
void ring_lookup_ids(std::vector<gossip::EventId>& ids, Fill&& fill) {
  // 3/4 hits spread over the domain, 1/4 misses (half stale, half future).
  Rng rng(7);
  for (std::size_t i = 0; i < 4096; ++i) {
    const auto roll = rng.below(4);
    const std::uint32_t window =
        roll == 0 ? (i % 2 ? kRingHorizon + 1 + static_cast<std::uint32_t>(rng.below(8))
                           : 0)
                  : 1 + static_cast<std::uint32_t>(rng.below(kRingHorizon - 1));
    ids.emplace_back(window, static_cast<std::uint16_t>(rng.below(kRingSlots)));
    fill(ids.back());
  }
}

void BM_WindowRingLookup(benchmark::State& state) {
  gossip::WindowRing<std::uint64_t> ring({kRingHorizon, kRingSlots});
  ring.advance(1);  // window 0 is gc'd: stale probes miss below base
  for (std::uint32_t w = 1; w < kRingHorizon; ++w) {
    for (std::uint16_t i = 0; i < kRingSlots; ++i) {
      *ring.insert(gossip::EventId{w, i}).first = w + i;
    }
  }
  std::vector<gossip::EventId> ids;
  ring_lookup_ids(ids, [](gossip::EventId) {});
  for (auto _ : state) {
    for (const gossip::EventId id : ids) {
      benchmark::DoNotOptimize(ring.find(id));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_WindowRingLookup);

void BM_HashMapLookup(benchmark::State& state) {
  std::unordered_map<gossip::EventId, std::uint64_t> map;
  for (std::uint32_t w = 1; w < kRingHorizon; ++w) {
    for (std::uint16_t i = 0; i < kRingSlots; ++i) {
      map.emplace(gossip::EventId{w, i}, w + i);
    }
  }
  std::vector<gossip::EventId> ids;
  ring_lookup_ids(ids, [](gossip::EventId) {});
  for (auto _ : state) {
    for (const gossip::EventId id : ids) {
      benchmark::DoNotOptimize(map.find(id));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_HashMapLookup);

void BM_WindowRingInsertGc(benchmark::State& state) {
  // One iteration = one stream window: insert its 110 ids, then advance the
  // gc cutoff by one window (what ThreePhaseGossip::gc does per window).
  gossip::WindowRing<std::uint64_t> ring({kRingHorizon, kRingSlots});
  std::uint32_t window = 0;
  for (auto _ : state) {
    for (std::uint16_t i = 0; i < kRingSlots; ++i) {
      *ring.insert(gossip::EventId{window, i}).first = i;
    }
    ++window;
    if (window >= kRingHorizon) ring.advance(window - kRingHorizon + 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRingSlots);
}
BENCHMARK(BM_WindowRingInsertGc);

void BM_HashMapInsertGc(benchmark::State& state) {
  std::unordered_map<gossip::EventId, std::uint64_t> map;
  std::uint32_t window = 0;
  for (auto _ : state) {
    for (std::uint16_t i = 0; i < kRingSlots; ++i) {
      map.emplace(gossip::EventId{window, i}, i);
    }
    ++window;
    if (window >= kRingHorizon) {
      const std::uint32_t cutoff = window - kRingHorizon + 1;
      std::erase_if(map, [&](const auto& kv) { return kv.first.window() < cutoff; });
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRingSlots);
}
BENCHMARK(BM_HashMapInsertGc);

}  // namespace

BENCHMARK_MAIN();
