// Scale ladder: 10k / 50k / 100k-node runs of the HEAP preset.
//
// Not a paper figure — the paper stops at ~700 PlanetLab nodes. This bench
// is the engine's scale regression: it runs scenario::ScalePreset
// populations, reports class-stratified lag/jitter percentiles through
// *streaming* (fixed-memory) metrics, and emits BENCH_bench_fig_scale.json
// with nodes/sec, events/sec, and peak RSS so throughput and footprint are
// tracked across commits.
//
// Usage: bench_fig_scale [nodes...]   (default: 10000 50000 100000)
// HG_SEEDS replicas per population run in parallel on HG_THREADS workers;
// results are bit-deterministic for a given seed regardless of HG_THREADS.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gossip/gossip_module.hpp"
#include "scenario/report.hpp"
#include "scenario/scale_preset.hpp"
#include "scenario/sweep_runner.hpp"

namespace {

using namespace hg;

double peak_rss_mb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

struct ClassPercentiles {
  std::string name;
  std::size_t nodes = 0;
  double lag_p50 = 0, lag_p90 = 0, lag_p99 = 0;        // s to jitter-free
  double jitter_p50 = 0, jitter_p90 = 0, jitter_p99 = 0;  // % windows jittered
};

struct RunStats {
  std::uint64_t events = 0;
  double gossip_state_bytes_per_node = 0;  // end-of-run mean per receiver
  std::vector<ClassPercentiles> classes;
  // Superstep engine counters (all zero in sequential runs). Functions of
  // (seed, partitions, placement) only — never of the worker count.
  std::uint32_t partitions = 0;
  std::uint64_t epochs_run = 0;
  std::uint64_t epochs_skipped = 0;
  std::uint64_t local_datagrams = 0;
  std::uint64_t xpart_datagrams = 0;
  std::uint64_t filtered_dead = 0;
  std::uint64_t xpart_exchange_bytes = 0;
};

// Lag beyond which a node counts as "never jitter-free" (axis cap, matching
// the paper's largest plotted lag).
constexpr double kLagCapSec = 60.0;
// Jitter is evaluated at a 10 s stream lag (the paper's headline operating
// point, Figs. 5/6).
constexpr double kJitterLagSec = 10.0;

// One replica's per-class percentile set, computed through fixed-memory
// streaming reservoirs — report memory is O(classes * sketch), independent
// of the population size.
RunStats analyze(const scenario::Experiment& e) {
  const auto& classes = e.config().distribution.classes();
  std::vector<metrics::Samples> lag;
  std::vector<metrics::Samples> jitter;
  std::vector<std::size_t> nodes(classes.size(), 0);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    lag.push_back(metrics::Samples::streaming());
    jitter.push_back(metrics::Samples::streaming());
  }
  std::size_t state_bytes = 0;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    if (e.info(i).crashed) continue;
    const auto c = static_cast<std::size_t>(e.info(i).class_index);
    ++nodes[c];
    const auto to_jitter_free = e.analyzer().lag_to_jitter_at_most(e.player(i), 0.0);
    lag[c].add(std::min(to_jitter_free.value_or(kLagCapSec), kLagCapSec));
    jitter[c].add(100.0 * e.analyzer().jitter_fraction(e.player(i), kJitterLagSec));
    if (const auto* gm = e.node(i).find_module<gossip::GossipModule>()) {
      state_bytes += gm->engine().state_bytes();
    }
  }
  RunStats stats;
  stats.events = 0;  // filled by the caller (simulator is gone after map())
  stats.gossip_state_bytes_per_node =
      e.receivers() > 0 ? static_cast<double>(state_bytes) / static_cast<double>(e.receivers())
                        : 0.0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    ClassPercentiles p;
    p.name = classes[c].name;
    p.nodes = nodes[c];
    if (!lag[c].empty()) {
      p.lag_p50 = lag[c].percentile(50);
      p.lag_p90 = lag[c].percentile(90);
      p.lag_p99 = lag[c].percentile(99);
      p.jitter_p50 = jitter[c].percentile(50);
      p.jitter_p90 = jitter[c].percentile(90);
      p.jitter_p99 = jitter[c].percentile(99);
    }
    stats.classes.push_back(std::move(p));
  }
  return stats;
}

struct LadderRow {
  const char* scenario = "steady";
  std::size_t nodes = 0;
  std::size_t seeds = 0;
  std::size_t workers = 0;     // intra-run workers (0 = sequential engine)
  double wall_sec = 0;
  double speedup_vs_1w = 0;    // wall(1 worker) / wall; 0 when not measured
  std::uint64_t events = 0;
  double rss_mb = 0;
  double gossip_state_bytes_per_node = 0;  // seed-averaged, end-of-run
  std::vector<ClassPercentiles> classes;   // seed-averaged
  // Superstep counters, summed over seeds (zero in sequential runs).
  std::uint32_t partitions = 0;
  std::uint64_t epochs_run = 0;
  std::uint64_t epochs_skipped = 0;
  std::uint64_t local_datagrams = 0;
  std::uint64_t xpart_datagrams = 0;
  std::uint64_t filtered_dead = 0;
  std::uint64_t xpart_exchange_bytes = 0;

  // Share of fabric sends that had to cross a partition boundary (dead-
  // destination drops count as sends: the sender paid for them).
  [[nodiscard]] double xpart_fraction() const {
    const auto total = local_datagrams + xpart_datagrams + filtered_dead;
    return total > 0 ? static_cast<double>(xpart_datagrams) / static_cast<double>(total)
                     : 0.0;
  }
};

// Runs one rung's seed sweep at the given intra-run worker count; returns
// wall-clock seconds and (optionally) the per-seed stats.
double time_rung(const scenario::ExperimentConfig& base, const std::vector<std::uint64_t>& seeds,
                 std::size_t threads, std::size_t workers, std::vector<RunStats>* out) {
  scenario::ExperimentConfig cfg = base;
  cfg.workers = workers;
  const auto t0 = std::chrono::steady_clock::now();
  scenario::SweepRunner runner(
      scenario::SweepOptions{.threads = threads, .workers_per_job = workers});
  auto per_seed = runner.map(scenario::SweepRunner::seed_sweep(std::move(cfg), seeds),
                             [&](scenario::Experiment& e) {
                               RunStats s = analyze(e);
                               s.events = e.events_executed();
                               if (e.deployment().parallel()) {
                                 const auto& eng = e.deployment().engine();
                                 s.partitions = eng.partitions();
                                 s.epochs_run = eng.epochs_run();
                                 s.epochs_skipped = eng.epochs_skipped();
                                 const auto c = e.fabric().superstep_counters();
                                 s.local_datagrams = c.local_datagrams;
                                 s.xpart_datagrams = c.xpart_datagrams;
                                 s.filtered_dead = c.filtered_dead;
                                 s.xpart_exchange_bytes = c.xpart_exchange_bytes;
                               }
                               return s;
                             });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (out != nullptr) *out = std::move(per_seed);
  return wall;
}

// Rung configs. "steady": the HEAP scale preset as-is. "churn": standard
// gossip (event-driven nodes go idle between bursts, so epoch widening has
// phases to skip) plus a 20% mass crash a third of the way into the stream —
// the startup ramp, the crash wake, and the post-stream tail all exercise
// the widening and dead-destination paths.
scenario::ExperimentConfig rung_config(std::size_t n, bool churn) {
  if (!churn) {
    scenario::ExperimentConfig cfg = scenario::ScalePreset::config(n);
    cfg.partitions = env_partitions();  // 0 = auto
    return cfg;
  }
  scenario::ExperimentConfig cfg = scenario::ScalePreset::config(n, core::Mode::kStandard);
  cfg.partitions = env_partitions();
  const double stream_sec =
      cfg.stream.window_duration_sec() * static_cast<double>(cfg.stream_windows);
  cfg.churn = {{sim::SimTime::sec(2.0 + stream_sec / 3.0), 0.2}};
  cfg.detection.mean = sim::SimTime::sec(10.0);
  return cfg;
}

LadderRow run_rung(std::size_t n, std::size_t n_seeds, std::size_t threads,
                   std::size_t workers, bool churn) {
  std::fprintf(stderr, "[bench] scale rung (%s): %zu nodes, %zu seed%s, %zu worker%s...\n",
               churn ? "churn" : "steady", n, n_seeds, n_seeds == 1 ? "" : "s", workers,
               workers == 1 ? "" : "s");
  const scenario::ExperimentConfig base = rung_config(n, churn);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < n_seeds; ++i) seeds.push_back(base.seed + i);

  std::vector<RunStats> per_seed;
  LadderRow row;
  row.scenario = churn ? "churn" : "steady";
  row.nodes = n;
  row.seeds = n_seeds;
  row.workers = workers;
  row.wall_sec = time_rung(base, seeds, threads, workers, &per_seed);
  if (workers > 1) {
    // Speedup reference: the same rung on one intra-run worker (same sharded
    // engine, same partition layout, identical metrics by construction).
    std::fprintf(stderr, "[bench] scale rung: %zu nodes 1-worker reference...\n", n);
    const double ref_wall = time_rung(base, seeds, threads, 1, nullptr);
    row.speedup_vs_1w = row.wall_sec > 0 ? ref_wall / row.wall_sec : 0.0;
  }
  // Deterministic merge: seed-order mean of each class percentile; `nodes`
  // stays the per-run class size (identical across seeds — apportionment is
  // a function of N alone). (map() returns results in config order
  // regardless of worker scheduling.)
  row.classes = per_seed.front().classes;
  for (std::size_t s = 1; s < per_seed.size(); ++s) {
    for (std::size_t c = 0; c < row.classes.size(); ++c) {
      const ClassPercentiles& p = per_seed[s].classes[c];
      row.classes[c].lag_p50 += p.lag_p50;
      row.classes[c].lag_p90 += p.lag_p90;
      row.classes[c].lag_p99 += p.lag_p99;
      row.classes[c].jitter_p50 += p.jitter_p50;
      row.classes[c].jitter_p90 += p.jitter_p90;
      row.classes[c].jitter_p99 += p.jitter_p99;
    }
  }
  const auto ns = static_cast<double>(per_seed.size());
  for (auto& c : row.classes) {
    c.lag_p50 /= ns;
    c.lag_p90 /= ns;
    c.lag_p99 /= ns;
    c.jitter_p50 /= ns;
    c.jitter_p90 /= ns;
    c.jitter_p99 /= ns;
  }
  for (const RunStats& s : per_seed) {
    row.events += s.events;
    row.gossip_state_bytes_per_node += s.gossip_state_bytes_per_node;
    row.partitions = s.partitions;  // identical across seeds (function of N)
    row.epochs_run += s.epochs_run;
    row.epochs_skipped += s.epochs_skipped;
    row.local_datagrams += s.local_datagrams;
    row.xpart_datagrams += s.xpart_datagrams;
    row.filtered_dead += s.filtered_dead;
    row.xpart_exchange_bytes += s.xpart_exchange_bytes;
  }
  row.gossip_state_bytes_per_node /= static_cast<double>(per_seed.size());
  row.rss_mb = peak_rss_mb();
  return row;
}

void print_row(const LadderRow& row) {
  std::printf("--- %zu nodes, %s (%zu seed%s, %zu worker%s) ---\n", row.nodes, row.scenario,
              row.seeds, row.seeds == 1 ? "" : "s", row.workers, row.workers == 1 ? "" : "s");
  std::printf(
      "wall %.1f s | %.0f events/s | %.0f node-runs/s | peak RSS %.0f MB | gossip state "
      "%.0f B/node",
      row.wall_sec, static_cast<double>(row.events) / row.wall_sec,
      static_cast<double>(row.nodes * row.seeds) / row.wall_sec, row.rss_mb,
      row.gossip_state_bytes_per_node);
  if (row.speedup_vs_1w > 0) {
    std::printf(" | %.2fx vs 1 worker", row.speedup_vs_1w);
  }
  std::printf("\n");
  if (row.partitions > 0) {
    std::printf(
        "superstep: %u partitions | %llu epochs (+%llu skipped) | %llu xpart msgs "
        "(%.1f%% of sends) | %.1f MB exchanged\n",
        row.partitions, static_cast<unsigned long long>(row.epochs_run),
        static_cast<unsigned long long>(row.epochs_skipped),
        static_cast<unsigned long long>(row.xpart_datagrams), 100.0 * row.xpart_fraction(),
        static_cast<double>(row.xpart_exchange_bytes) / (1024.0 * 1024.0));
  }
  metrics::Table t({"class", "nodes", "lag p50", "lag p90", "lag p99", "jitter% p50",
                    "jitter% p90", "jitter% p99"});
  for (const auto& c : row.classes) {
    t.add_row({c.name, std::to_string(c.nodes), metrics::Table::num(c.lag_p50),
               metrics::Table::num(c.lag_p90), metrics::Table::num(c.lag_p99),
               metrics::Table::num(c.jitter_p50), metrics::Table::num(c.jitter_p90),
               metrics::Table::num(c.jitter_p99)});
  }
  std::printf("%s\n", t.render().c_str());
}

void write_json(const std::vector<LadderRow>& rows) {
  std::FILE* f = hg::bench::open_bench_json();
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"runs\": [\n",
               hg::bench::bench_binary_name());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LadderRow& r = rows[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"scenario\": \"%s\", \"seeds\": %zu, "
                 "\"workers\": %zu, \"wall_sec\": %.3f, "
                 "\"speedup_vs_1w\": %.3f, "
                 "\"events\": %llu, \"events_per_sec\": %.1f, \"nodes_per_sec\": %.1f, "
                 "\"peak_rss_mb\": %.1f, \"gossip_state_bytes_per_node\": %.1f, "
                 "\"partitions\": %u, \"epochs_run\": %llu, \"epochs_skipped\": %llu, "
                 "\"xpart_datagrams\": %llu, \"xpart_exchange_bytes\": %llu, "
                 "\"xpart_datagram_fraction\": %.6f, "
                 "\"classes\": [",
                 r.nodes, r.scenario, r.seeds, r.workers, r.wall_sec, r.speedup_vs_1w,
                 static_cast<unsigned long long>(r.events),
                 static_cast<double>(r.events) / r.wall_sec,
                 static_cast<double>(r.nodes * r.seeds) / r.wall_sec, r.rss_mb,
                 r.gossip_state_bytes_per_node, r.partitions,
                 static_cast<unsigned long long>(r.epochs_run),
                 static_cast<unsigned long long>(r.epochs_skipped),
                 static_cast<unsigned long long>(r.xpart_datagrams),
                 static_cast<unsigned long long>(r.xpart_exchange_bytes),
                 r.xpart_fraction());
    for (std::size_t c = 0; c < r.classes.size(); ++c) {
      const ClassPercentiles& p = r.classes[c];
      std::fprintf(f,
                   "%s{\"class\": \"%s\", \"nodes\": %zu, \"lag_p50\": %.4f, "
                   "\"lag_p90\": %.4f, \"lag_p99\": %.4f, \"jitter_pct_p50\": %.4f, "
                   "\"jitter_pct_p90\": %.4f, \"jitter_pct_p99\": %.4f}",
                   c == 0 ? "" : ", ", p.name.c_str(), p.nodes, p.lag_p50, p.lag_p90,
                   p.lag_p99, p.jitter_p50, p.jitter_p90, p.jitter_p99);
    }
    std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hg::bench;

  std::vector<std::size_t> ladder;
  for (int i = 1; i < argc; ++i) {
    ladder.push_back(
        static_cast<std::size_t>(hg::parse_env_int("nodes argument", argv[i], 1, 10'000'000)));
  }
  if (ladder.empty()) ladder = {10'000, 50'000, 100'000};

  print_header("Scale ladder: HEAP at 10k-100k nodes (streaming metrics)",
               "engine scale regression (beyond the paper's 700-node testbed)",
               "class stratification persists at large N; footprint stays bounded");

  const std::size_t workers = workers_from_env();
  hg::warn_if_oversubscribed(workers, threads_from_env() > 0 ? threads_from_env()
                                                             : seeds_from_env());
  std::vector<LadderRow> rows;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    rows.push_back(run_rung(ladder[i], seeds_from_env(), threads_from_env(), workers,
                            /*churn=*/false));
    print_row(rows.back());
    if (i == 0) {
      // Churn rung (smallest population only): standard-mode nodes idle
      // between gossip bursts, so this is where epochs_skipped and the
      // dead-destination filter actually move.
      rows.push_back(run_rung(ladder[i], seeds_from_env(), threads_from_env(), workers,
                              /*churn=*/true));
      print_row(rows.back());
    }
  }
  write_json(rows);
  return 0;
}
