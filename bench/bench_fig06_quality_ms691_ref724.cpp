// Fig. 6 — stream quality by class at 10 s lag on ms-691 (6a) and ref-724
// (6b), standard gossip vs HEAP.
#include "bench_common.hpp"

namespace {

void one(const hg::bench::Scale& s, hg::scenario::BandwidthDistribution dist,
         const char* fig) {
  using namespace hg;
  using namespace hg::bench;
  auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "fig6-standard");
  auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "fig6-heap");
  std::printf("Fig. %s (%s): jitter-free share of windows at 10 s lag\n", fig,
              dist.name().c_str());
  print_class_table("", {"standard gossip", "HEAP"},
                    {jitter_free_pct_by_class(std_exp, 10.0),
                     jitter_free_pct_by_class(heap_exp, 10.0)});
}

}  // namespace

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 6: jitter-free window share by class at 10 s lag",
               "Figures 6a (ms-691) and 6b (ref-724)",
               "6a: std rich nodes <33%, HEAP all classes >95%; "
               "6b: std poor 47% -> HEAP 93%");

  one(s, scenario::BandwidthDistribution::ms691(), "6a");
  one(s, scenario::BandwidthDistribution::ref724(), "6b");
  return 0;
}
