// Ablation studies for the design choices DESIGN.md §4 calls out:
//   (a) retransmission off vs on
//   (b) FIFO vs control-priority upload queue
//   (c) HEAP max-fanout cap
//   (d) aggregation gossip fanout (estimate accuracy vs cost)
//   (e) randomized-rounding vs floor fanout
// Each row reports stream quality on ms-691 (the hardest distribution).
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace hg;
using namespace hg::bench;

struct Row {
  std::string name;
  double jitter10_pct;     // mean % jittered windows at 10 s lag
  double median_lag;       // median lag to jitter-free (s), or inf
  double mean_usage_pct;   // mean upload usage over constrained nodes
};

Row measure(const std::string& name, scenario::ExperimentConfig cfg) {
  auto exp = run(std::move(cfg), name.c_str());
  Row r;
  r.name = name;
  r.jitter10_pct = jitter_percent_at_lag(exp, 10.0).mean();
  const auto lags = jitter_free_lags(exp, 0.0);
  r.median_lag = (lags.count() * 2 >= exp.receivers()) ? lags.percentile(50)
                                                       : std::nan("");
  double usage = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) {
    if (exp.info(i).actual_capacity.is_unlimited() || exp.info(i).crashed) continue;
    usage += exp.upload_usage(i);
    ++n;
  }
  r.mean_usage_pct = 100.0 * usage / static_cast<double>(n);
  return r;
}

}  // namespace

int main() {
  const Scale s = scale_from_env();
  print_header("Ablations on ms-691 (HEAP unless noted)", "DESIGN.md §4",
               "quantifies each design choice in isolation");

  const auto dist = scenario::BandwidthDistribution::ms691();
  std::vector<Row> rows;

  rows.push_back(measure("baseline HEAP", base_config(s, core::Mode::kHeap, dist)));

  {
    auto cfg = base_config(s, core::Mode::kHeap, dist);
    cfg.max_retransmits = 0;
    rows.push_back(measure("(a) no retransmission", std::move(cfg)));
  }
  {
    auto cfg = base_config(s, core::Mode::kHeap, dist);
    cfg.discipline = net::QueueDiscipline::kControlPriority;
    rows.push_back(measure("(b) control-priority queue", std::move(cfg)));
  }
  {
    auto cfg = base_config(s, core::Mode::kHeap, dist);
    cfg.max_fanout = 12.0;  // caps the 3 Mbps class at 12 instead of ~31
    rows.push_back(measure("(c) max fanout 12", std::move(cfg)));
  }
  {
    auto cfg = base_config(s, core::Mode::kHeap, dist);
    cfg.aggregation.fanout = 3;  // 3x the aggregation traffic
    rows.push_back(measure("(d) aggregation fanout 3", std::move(cfg)));
  }
  {
    auto cfg = base_config(s, core::Mode::kHeap, dist);
    cfg.rounding = gossip::FanoutRounding::kFloor;
    rows.push_back(measure("(e) floor fanout rounding", std::move(cfg)));
  }
  {
    auto cfg = base_config(s, core::Mode::kHeap, dist);
    cfg.smart_receivers = false;
    rows.push_back(measure("(f) naive receivers", std::move(cfg)));
  }

  metrics::Table t({"variant", "jitter@10s", "median lag (s)", "upload usage"});
  for (const auto& r : rows) {
    t.add_row({r.name, metrics::Table::num(r.jitter10_pct, 1) + "%",
               std::isnan(r.median_lag) ? "> horizon" : metrics::Table::num(r.median_lag, 1),
               metrics::Table::num(r.mean_usage_pct, 1) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
