// Fig. 3 — HEAP on dist1 (= ms-691), average fanout 7: lag CDF of nodes
// receiving >= 99% of the stream. The companion of Fig. 2: same network
// where every fixed fanout struggled.
#include "bench_common.hpp"

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Fig. 3: lag CDF (99% delivery), HEAP on dist1 (ms-691)",
               "Figure 3",
               "50% of nodes @ 13.3 s, 75% @ 14.1 s, 90% @ 19.5 s — far better "
               "than any fixed fanout of Fig. 2");

  auto heap = run(base_config(s, core::Mode::kHeap, scenario::BandwidthDistribution::ms691()),
                  "fig3-heap-dist1");
  // Standard gossip f=7 alongside, for the head-to-head the text makes.
  auto std_exp = run(
      base_config(s, core::Mode::kStandard, scenario::BandwidthDistribution::ms691()),
      "fig3-std-dist1");

  const auto grid = lag_grid(s);
  const auto heap_lags = stream_fraction_lags(heap, 0.99);
  const auto std_lags = stream_fraction_lags(std_exp, 0.99);
  std::printf("%s\n", metrics::render_cdf_table(
                          "lag (s)", {"HEAP f̄=7", "std f=7"},
                          {scenario::cdf_over_grid(heap_lags, grid, heap.receivers()),
                           scenario::cdf_over_grid(std_lags, grid, std_exp.receivers())})
                          .c_str());

  if (!heap_lags.empty()) {
    std::printf("HEAP lag percentiles: p50 = %.1f s, p75 = %.1f s, p90 = %.1f s\n",
                heap_lags.percentile(50), heap_lags.percentile(75),
                heap_lags.percentile(90));
  }
  return 0;
}
