// Table 3 — percentage of nodes receiving a completely jitter-free stream
// per capability class (ref-691/ref-724 at 10 s lag; ms-691 at 20 s lag).
#include "bench_common.hpp"

namespace {

void one(const hg::bench::Scale& s, hg::scenario::BandwidthDistribution dist,
         double lag_sec) {
  using namespace hg;
  using namespace hg::bench;
  auto std_exp = run(base_config(s, core::Mode::kStandard, dist), "table3-standard");
  auto heap_exp = run(base_config(s, core::Mode::kHeap, dist), "table3-heap");
  std::printf("%s (%.0f s lag): %% of nodes with a fully jitter-free stream\n",
              dist.name().c_str(), lag_sec);
  print_class_table("", {"standard gossip", "HEAP"},
                    {jitter_free_nodes_pct_by_class(std_exp, lag_sec),
                     jitter_free_nodes_pct_by_class(heap_exp, lag_sec)});
}

}  // namespace

int main() {
  using namespace hg;
  using namespace hg::bench;

  const Scale s = scale_from_env();
  print_header("Table 3: nodes receiving a jitter-free stream, by class",
               "Table 3",
               "std on ms-691 @20 s: 0/0/0%; HEAP: 84.6/89.7/85.7%. On ref-691 "
               "@10 s std poor class: 0%, HEAP: 65.9%");

  one(s, scenario::BandwidthDistribution::ref691(), 10.0);
  one(s, scenario::BandwidthDistribution::ref724(), 10.0);
  one(s, scenario::BandwidthDistribution::ms691(), 20.0);
  return 0;
}
