// Parallel golden regression at scale: a 2k-node mixed-population run on the
// superstep-sharded engine must (a) produce byte-identical metrics for every
// worker count and (b) match the checked-in golden digest, pinning the
// sharded engine's output across refactors the same way the sequential
// fig05 golden pins the classic loop.
//
// Regenerate after an *intended* behaviour change with:
//   HG_UPDATE_GOLDEN=1 ./hg_scale_tests --gtest_filter='ParallelGolden.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/report.hpp"

#ifndef HG_GOLDEN_DIR
#error "HG_GOLDEN_DIR must point at tests/golden"
#endif

namespace hg::scenario {
namespace {

std::string golden_path() {
  return std::string(HG_GOLDEN_DIR) + "/parallel_mixed_2k_digest.txt";
}

ExperimentConfig mixed_2k(std::size_t workers) {
  ExperimentConfig cfg;
  cfg.node_count = 2000;
  cfg.stream_windows = 6;
  cfg.tail = sim::SimTime::sec(25.0);
  cfg.mode = core::Mode::kHeap;
  cfg.distribution = BandwidthDistribution::ref691();
  cfg.seed = 424242;
  cfg.workers = workers;
  cfg.partitions = 8;
  cfg.churn.push_back(ChurnEvent{sim::SimTime::sec(8.0), 0.1});
  // Mixed population: every third receiver runs the non-adaptive standard
  // stack amid HEAP peers — exercises tag-routed dispatch across partitions.
  cfg.node_factory = [](sim::Simulator& s, net::NetworkFabric& f, membership::Directory& dir,
                        NodeId id, const core::NodeConfig& base) {
    core::NodeConfig node_cfg = base;
    if (id.value() != 0 && id.value() % 3 == 0) node_cfg.mode = core::Mode::kStandard;
    return core::NodeRuntime::make(s, f, dir, id, node_cfg);
  };
  return cfg;
}

std::string run_digest(std::size_t workers) {
  Experiment e(mixed_2k(workers));
  e.run();
  std::string out;
  char buf[128];
  for (const ClassStat& stat : jitter_free_pct_by_class(e, /*lag_sec=*/2.0)) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", stat.class_name.c_str(), stat.value);
    out += buf;
  }
  std::int64_t uploaded = 0;
  std::size_t crashed = 0;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    uploaded += e.meter(i).total_sent_bytes();
    if (e.info(i).crashed) ++crashed;
  }
  std::snprintf(buf, sizeof buf, "delivered=%llu lost=%llu uploaded=%lld crashed=%zu\n",
                static_cast<unsigned long long>(e.fabric().datagrams_delivered()),
                static_cast<unsigned long long>(e.fabric().datagrams_lost()),
                static_cast<long long>(uploaded), crashed);
  out += buf;
  return out;
}

TEST(ParallelGolden, Mixed2kByteIdenticalAcrossWorkersAndMatchesGolden) {
  const std::string base = run_digest(1);

  if (std::getenv("HG_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << golden_path();
    out << base;
    out.close();
    // Still verify worker invariance before declaring the digest golden.
  } else {
    std::ifstream in(golden_path());
    ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                           << " (run with HG_UPDATE_GOLDEN=1 to create it)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), base)
        << "sharded-engine output drifted from the checked-in digest — if intended, "
           "regenerate with HG_UPDATE_GOLDEN=1 and justify in the commit";
  }

  for (std::size_t workers : {2u, 3u, 8u}) {
    EXPECT_EQ(run_digest(workers), base) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace hg::scenario
