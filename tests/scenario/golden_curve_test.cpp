// Golden-curve regression: a checked-in fig05-shaped metric JSON pins the
// paper curves at small N. The scenario reruns deterministically, so any
// metric-pipeline refactor (exact-mode Samples, CDF evaluation, report
// builders) or protocol change that bends the curves fails here instead of
// silently shipping different "paper" numbers.
//
// Regenerate after an *intended* behaviour change with:
//   HG_UPDATE_GOLDEN=1 ./hg_scale_tests --gtest_filter='GoldenCurve.*'
// and commit the diff under tests/golden/ alongside its justification.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/report.hpp"

#ifndef HG_GOLDEN_DIR
#error "HG_GOLDEN_DIR must point at tests/golden"
#endif

namespace hg::scenario {
namespace {

// 2 s is where the curves separate hard at this scale (at 10 s everything
// is jitter-free and the regression would have no signal).
constexpr double kLagSec = 2.0;
// Tolerance band in percentage points. The run is bit-deterministic, so the
// band is not statistical slack — it is the amount of silent curve-bending
// we are willing to wave through before a human looks.
constexpr double kTolerancePct = 2.0;

ExperimentConfig small_fig05(core::Mode mode) {
  ExperimentConfig cfg;
  cfg.node_count = 100;
  cfg.stream_windows = 8;
  cfg.tail = sim::SimTime::sec(30.0);
  cfg.mode = mode;
  cfg.distribution = BandwidthDistribution::ref691();
  cfg.seed = 2009;
  return cfg;
}

struct GoldenRow {
  std::string mode;
  std::string class_name;
  double jitter_free_pct = 0.0;
};

std::string golden_path() { return std::string(HG_GOLDEN_DIR) + "/fig05_ref691_small.json"; }

// Extracts the value of `"key": "..."` or `"key": <number>` after `from`.
std::string json_field(const std::string& text, const std::string& key, std::size_t from,
                       std::size_t* end) {
  const std::string needle = "\"" + key + "\":";
  const auto at = text.find(needle, from);
  EXPECT_NE(at, std::string::npos) << "missing field " << key;
  auto begin = text.find_first_not_of(" \t", at + needle.size());
  std::size_t stop;
  if (text[begin] == '"') {
    ++begin;
    stop = text.find('"', begin);
  } else {
    stop = text.find_first_of(",}\n", begin);
  }
  if (end != nullptr) *end = stop;
  return text.substr(begin, stop - begin);
}

std::vector<GoldenRow> parse_golden(const std::string& text) {
  std::vector<GoldenRow> rows;
  std::size_t at = text.find("\"series\"");
  while ((at = text.find("{\"mode\"", at)) != std::string::npos) {
    GoldenRow row;
    std::size_t end = at;
    row.mode = json_field(text, "mode", at, &end);
    row.class_name = json_field(text, "class", end, &end);
    row.jitter_free_pct = std::stod(json_field(text, "jitter_free_pct", end, &end));
    rows.push_back(std::move(row));
    at = end;
  }
  return rows;
}

std::vector<GoldenRow> run_current() {
  std::vector<GoldenRow> rows;
  for (const core::Mode mode : {core::Mode::kStandard, core::Mode::kHeap}) {
    Experiment e(small_fig05(mode));
    e.run();
    for (const ClassStat& stat : jitter_free_pct_by_class(e, kLagSec)) {
      rows.push_back(GoldenRow{mode == core::Mode::kHeap ? "heap" : "standard",
                               stat.class_name, stat.value * 100.0});
    }
  }
  return rows;
}

void write_golden(const std::vector<GoldenRow>& rows) {
  std::FILE* f = std::fopen(golden_path().c_str(), "w");
  ASSERT_NE(f, nullptr) << golden_path();
  std::fprintf(f,
               "{\n  \"scenario\": \"fig05_ref691_small\",\n  \"nodes\": 100,\n"
               "  \"windows\": 8,\n  \"seed\": 2009,\n  \"lag_sec\": %.1f,\n"
               "  \"series\": [\n",
               kLagSec);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    {\"mode\": \"%s\", \"class\": \"%s\", \"jitter_free_pct\": %.6f}%s\n",
                 rows[i].mode.c_str(), rows[i].class_name.c_str(), rows[i].jitter_free_pct,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

TEST(GoldenCurve, Fig05SmallNMatchesCheckedInJson) {
  const std::vector<GoldenRow> current = run_current();

  if (std::getenv("HG_UPDATE_GOLDEN") != nullptr) {
    write_golden(current);
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (run with HG_UPDATE_GOLDEN=1 to create it)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::vector<GoldenRow> golden = parse_golden(buf.str());

  ASSERT_EQ(golden.size(), current.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(golden[i].mode, current[i].mode) << i;
    EXPECT_EQ(golden[i].class_name, current[i].class_name) << i;
    EXPECT_NEAR(golden[i].jitter_free_pct, current[i].jitter_free_pct, kTolerancePct)
        << golden[i].mode << "/" << golden[i].class_name
        << ": paper curve bent beyond the tolerance band — if intended, regenerate "
           "with HG_UPDATE_GOLDEN=1 and justify in the commit";
  }

  // The qualitative paper shape must hold outright: HEAP lifts the poorest
  // class far above standard gossip (Fig. 5's headline).
  double std_poor = -1.0;
  double heap_poor = -1.0;
  for (const GoldenRow& row : current) {
    if (row.class_name.find("256") != std::string::npos) {
      (row.mode == "standard" ? std_poor : heap_poor) = row.jitter_free_pct;
    }
  }
  ASSERT_GE(std_poor, 0.0);
  ASSERT_GE(heap_poor, 0.0);
  EXPECT_GT(heap_poor, std_poor);
}

}  // namespace
}  // namespace hg::scenario
