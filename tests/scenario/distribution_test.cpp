#include "scenario/distribution.hpp"

#include <gtest/gtest.h>

namespace hg::scenario {
namespace {

TEST(Distribution, Table1Averages) {
  // Table 1: averages 691 / 724 / 691 kbps; CSR 1.15 / 1.20 / 1.15 at 600 kbps.
  EXPECT_NEAR(BandwidthDistribution::ref691().average_kbps(), 691.0, 1.0);
  EXPECT_NEAR(BandwidthDistribution::ref724().average_kbps(), 724.0, 1.0);
  EXPECT_NEAR(BandwidthDistribution::ms691().average_kbps(), 691.0, 1.0);
  EXPECT_NEAR(BandwidthDistribution::ref691().csr(600.0), 1.15, 0.01);
  EXPECT_NEAR(BandwidthDistribution::ref724().csr(600.0), 1.20, 0.01);
}

TEST(Distribution, Ms691Skewness) {
  const auto d = BandwidthDistribution::ms691();
  // "only 15% of nodes have an upload capability higher than the stream rate"
  double above = 0;
  for (const auto& c : d.classes()) {
    if (c.capability.kbits_per_sec() > 600.0) above += c.fraction;
  }
  EXPECT_NEAR(above, 0.15, 1e-9);
}

TEST(Distribution, AssignMatchesFractions) {
  Rng rng(1);
  const auto d = BandwidthDistribution::ref691();
  const auto a = d.assign(270, rng);
  ASSERT_EQ(a.size(), 270u);
  std::vector<int> counts(3, 0);
  for (const auto& n : a) counts[n.class_index]++;
  EXPECT_EQ(counts[0], 27);   // 10% of 270
  EXPECT_EQ(counts[1], 135);  // 50%
  EXPECT_EQ(counts[2], 108);  // 40%
}

TEST(Distribution, AssignHandlesRoundingRemainder) {
  Rng rng(2);
  const auto a = BandwidthDistribution::ms691().assign(271, rng);
  ASSERT_EQ(a.size(), 271u);
  std::vector<int> counts(3, 0);
  for (const auto& n : a) counts[n.class_index]++;
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 271);
  // Largest remainder keeps each class within 1 of the exact share.
  EXPECT_NEAR(counts[0], 271 * 0.05, 1.0);
  EXPECT_NEAR(counts[1], 271 * 0.10, 1.0);
  EXPECT_NEAR(counts[2], 271 * 0.85, 1.0);
}

TEST(Distribution, AssignIsShuffled) {
  Rng rng(3);
  const auto a = BandwidthDistribution::ref691().assign(270, rng);
  // The first 27 nodes must not all be the first class.
  int first_class = 0;
  for (int i = 0; i < 27; ++i) first_class += (a[i].class_index == 0);
  EXPECT_LT(first_class, 15);
}

TEST(Distribution, AssignRealizedAverageTracksTable) {
  Rng rng(4);
  const auto a = BandwidthDistribution::ms691().assign(270, rng);
  double avg = 0;
  for (const auto& n : a) avg += n.capability.kbits_per_sec();
  avg /= 270.0;
  EXPECT_NEAR(avg, 691.0, 5.0);
}

TEST(Distribution, Dist2UniformRange) {
  Rng rng(5);
  const auto d = BandwidthDistribution::dist2_uniform(0.5);
  EXPECT_NEAR(d.average_kbps(), 691.0, 1e-9);
  const auto a = d.assign(1000, rng);
  double avg = 0, lo = 1e9, hi = 0;
  for (const auto& n : a) {
    const double k = n.capability.kbits_per_sec();
    avg += k;
    lo = std::min(lo, k);
    hi = std::max(hi, k);
  }
  avg /= 1000.0;
  EXPECT_NEAR(avg, 691.0, 10.0);
  EXPECT_GE(lo, 691.0 * 0.5 - 1e-6);
  EXPECT_LE(hi, 691.0 * 1.5 + 1e-6);
}

TEST(Distribution, UnconstrainedIsUnlimited) {
  Rng rng(6);
  const auto a = BandwidthDistribution::unconstrained().assign(10, rng);
  for (const auto& n : a) EXPECT_TRUE(n.capability.is_unlimited());
}

TEST(Distribution, AssignIsDeterministicPerSeed) {
  Rng r1(7), r2(7), r3(8);
  const auto d = BandwidthDistribution::ref724();
  const auto a = d.assign(100, r1);
  const auto b = d.assign(100, r2);
  const auto c = d.assign(100, r3);
  bool same_ab = true, same_ac = true;
  for (std::size_t i = 0; i < 100; ++i) {
    same_ab &= (a[i].class_index == b[i].class_index);
    same_ac &= (a[i].class_index == c[i].class_index);
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

}  // namespace
}  // namespace hg::scenario
