#include "scenario/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "scenario/report.hpp"

namespace hg::scenario {
namespace {

ExperimentConfig tiny_cfg() {
  ExperimentConfig cfg;
  cfg.node_count = 30;
  cfg.stream_windows = 2;
  cfg.mode = core::Mode::kHeap;
  cfg.distribution = BandwidthDistribution::ref691();
  cfg.tail = sim::SimTime::sec(15.0);
  return cfg;
}

// Everything a replica produces that the figures consume, captured exactly.
struct SeedMetrics {
  std::uint64_t events = 0;
  std::vector<std::uint64_t> packets_received;
  std::vector<std::int64_t> sent_bytes;
  std::vector<double> lag_samples;

  bool operator==(const SeedMetrics&) const = default;
};

SeedMetrics collect(Experiment& e) {
  SeedMetrics m;
  m.events = e.simulator().events_executed();
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    m.packets_received.push_back(e.player(i).packets_received());
    m.sent_bytes.push_back(e.meter(i).total_sent_bytes());
  }
  m.lag_samples = stream_fraction_lags(e, 0.99).values();
  return m;
}

TEST(SweepRunner, SeedSweepSubstitutesSeeds) {
  const auto configs = SweepRunner::seed_sweep(tiny_cfg(), {11, 22, 33});
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_EQ(configs[0].seed, 11u);
  EXPECT_EQ(configs[1].seed, 22u);
  EXPECT_EQ(configs[2].seed, 33u);
  EXPECT_EQ(configs[0].node_count, configs[2].node_count);
}

TEST(SweepRunner, ParallelSweepBitwiseIdenticalToSequential) {
  // The acceptance property of the engine refactor: 8 seeds on 8 threads
  // merge to exactly the metrics of 8 sequential runs — replicas share
  // nothing, and results land by job index, not completion order.
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
  const auto configs = SweepRunner::seed_sweep(tiny_cfg(), seeds);

  std::vector<SeedMetrics> sequential;
  for (const auto& cfg : configs) {
    Experiment exp(cfg);
    exp.run();
    sequential.push_back(collect(exp));
  }

  SweepRunner parallel(SweepOptions{.threads = 8});
  const auto swept = parallel.map(configs, collect);

  ASSERT_EQ(swept.size(), sequential.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(swept[i], sequential[i]) << "seed " << seeds[i];
  }
  // Different seeds must actually be different realizations.
  EXPECT_NE(swept[0], swept[1]);
}

TEST(SweepRunner, RunExperimentsKeepsConfigOrder) {
  auto base = tiny_cfg();
  base.node_count = 20;
  base.stream_windows = 1;
  base.tail = sim::SimTime::sec(10.0);
  SweepRunner runner(SweepOptions{.threads = 4});
  const auto exps = runner.run_experiments(SweepRunner::seed_sweep(base, {5, 6, 7, 8}));
  ASSERT_EQ(exps.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_NE(exps[i], nullptr);
    EXPECT_EQ(exps[i]->config().seed, 5 + i);
    EXPECT_GT(exps[i]->simulator().events_executed(), 0u);
  }
}

TEST(SweepRunner, MapOverDistinctConfigs) {
  // Seeds × configs: the runner is agnostic to what varies between jobs.
  auto heap = tiny_cfg();
  auto standard = tiny_cfg();
  standard.mode = core::Mode::kStandard;
  SweepRunner runner(SweepOptions{.threads = 2});
  const auto modes = runner.map(std::vector<ExperimentConfig>{heap, standard},
                                [](Experiment& e) { return e.config().mode; });
  ASSERT_EQ(modes.size(), 2u);
  EXPECT_EQ(modes[0], core::Mode::kHeap);
  EXPECT_EQ(modes[1], core::Mode::kStandard);
}

}  // namespace
}  // namespace hg::scenario
