// Worker-count invariance of the superstep-sharded engine, end to end: the
// same seed and partition count must produce byte-identical metrics no
// matter how many threads drive the run. This is the contract that lets
// HG_WORKERS vary freely across machines without bending any paper curve.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "scenario/report.hpp"

namespace hg::scenario {
namespace {

ExperimentConfig parallel_cfg(std::size_t workers) {
  ExperimentConfig cfg;
  cfg.node_count = 96;
  cfg.stream_windows = 4;
  cfg.tail = sim::SimTime::sec(20.0);
  cfg.mode = core::Mode::kHeap;
  cfg.distribution = BandwidthDistribution::ref691();
  cfg.seed = 77;
  cfg.workers = workers;
  // Explicit: auto-partitioning keeps runs this small on one block, which
  // would not exercise the cross-partition exchange at all.
  cfg.partitions = 4;
  return cfg;
}

// Full-precision textual digest of everything the figures are built from:
// per-class curve points, wire totals, per-node upload bytes, event count.
// Compared with string equality — "close" is a bug here.
std::string digest(Experiment& e) {
  std::string out;
  char buf[128];
  for (const ClassStat& stat : jitter_free_pct_by_class(e, /*lag_sec=*/2.0)) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", stat.class_name.c_str(), stat.value);
    out += buf;
  }
  std::int64_t uploaded = 0;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    uploaded += e.meter(i).total_sent_bytes();
  }
  std::snprintf(buf, sizeof buf, "delivered=%llu lost=%llu uploaded=%lld events=%llu\n",
                static_cast<unsigned long long>(e.fabric().datagrams_delivered()),
                static_cast<unsigned long long>(e.fabric().datagrams_lost()),
                static_cast<long long>(uploaded),
                static_cast<unsigned long long>(e.events_executed()));
  out += buf;
  return out;
}

std::string run_digest(std::size_t workers) {
  Experiment e(parallel_cfg(workers));
  e.run();
  return digest(e);
}

TEST(ParallelDeterminism, MetricsAreByteIdenticalAcrossWorkerCounts) {
  const std::string base = run_digest(1);
  EXPECT_NE(base.find("delivered="), std::string::npos);
  for (std::size_t workers : {2u, 8u, 16u}) {
    EXPECT_EQ(run_digest(workers), base) << "workers=" << workers;
  }
}

TEST(ParallelDeterminism, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(run_digest(2), run_digest(2));
}

TEST(ParallelDeterminism, ChurnAndDetectionStayDeterministic) {
  auto with_churn = [](std::size_t workers) {
    ExperimentConfig cfg = parallel_cfg(workers);
    cfg.churn.push_back(ChurnEvent{sim::SimTime::sec(6.0), 0.3});
    Experiment e(cfg);
    e.run();
    std::string out = digest(e);
    std::size_t crashed = 0;
    for (std::size_t i = 0; i < e.receivers(); ++i) {
      if (e.info(i).crashed) ++crashed;
    }
    out += "crashed=" + std::to_string(crashed);
    return out;
  };
  const std::string base = with_churn(1);
  EXPECT_NE(base.find("crashed=28"), std::string::npos);  // 0.3 * 96 receivers
  for (std::size_t workers : {3u, 8u}) {
    EXPECT_EQ(with_churn(workers), base) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace hg::scenario
