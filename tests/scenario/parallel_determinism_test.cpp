// Worker-count invariance of the superstep-sharded engine, end to end: the
// same seed and partition count must produce byte-identical metrics no
// matter how many threads drive the run. This is the contract that lets
// HG_WORKERS vary freely across machines without bending any paper curve.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "scenario/report.hpp"

namespace hg::scenario {
namespace {

ExperimentConfig parallel_cfg(std::size_t workers) {
  ExperimentConfig cfg;
  cfg.node_count = 96;
  cfg.stream_windows = 4;
  cfg.tail = sim::SimTime::sec(20.0);
  cfg.mode = core::Mode::kHeap;
  cfg.distribution = BandwidthDistribution::ref691();
  cfg.seed = 77;
  cfg.workers = workers;
  // Explicit: auto-partitioning keeps runs this small on one block, which
  // would not exercise the cross-partition exchange at all.
  cfg.partitions = 4;
  return cfg;
}

// Full-precision textual digest of everything the figures are built from:
// per-class curve points, wire totals, per-node upload bytes, event count.
// Compared with string equality — "close" is a bug here.
std::string digest(Experiment& e) {
  std::string out;
  char buf[128];
  for (const ClassStat& stat : jitter_free_pct_by_class(e, /*lag_sec=*/2.0)) {
    std::snprintf(buf, sizeof buf, "%s=%.17g\n", stat.class_name.c_str(), stat.value);
    out += buf;
  }
  std::int64_t uploaded = 0;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    uploaded += e.meter(i).total_sent_bytes();
  }
  std::snprintf(buf, sizeof buf, "delivered=%llu lost=%llu uploaded=%lld events=%llu\n",
                static_cast<unsigned long long>(e.fabric().datagrams_delivered()),
                static_cast<unsigned long long>(e.fabric().datagrams_lost()),
                static_cast<long long>(uploaded),
                static_cast<unsigned long long>(e.events_executed()));
  out += buf;
  return out;
}

std::string run_digest(std::size_t workers) {
  Experiment e(parallel_cfg(workers));
  e.run();
  return digest(e);
}

TEST(ParallelDeterminism, MetricsAreByteIdenticalAcrossWorkerCounts) {
  const std::string base = run_digest(1);
  EXPECT_NE(base.find("delivered="), std::string::npos);
  for (std::size_t workers : {2u, 8u, 16u}) {
    EXPECT_EQ(run_digest(workers), base) << "workers=" << workers;
  }
}

TEST(ParallelDeterminism, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(run_digest(2), run_digest(2));
}

TEST(ParallelDeterminism, MetricsInvariantAcrossPartitionCountsAndPlacement) {
  // The partition layout — count, single-node extremes, capability-clustered
  // placement — may only move work between shards, never change a result.
  auto digest_with = [](std::uint32_t partitions, Placement placement) {
    ExperimentConfig cfg = parallel_cfg(2);
    cfg.partitions = partitions;
    cfg.placement = placement;
    Experiment e(cfg);
    e.run();
    return digest(e);
  };
  const std::string base = digest_with(4, Placement::kContiguous);
  EXPECT_NE(base.find("delivered="), std::string::npos);
  EXPECT_EQ(digest_with(2, Placement::kContiguous), base) << "partitions=2";
  EXPECT_EQ(digest_with(5, Placement::kClustered), base) << "partitions=5 clustered";
  EXPECT_EQ(digest_with(4, Placement::kClustered), base) << "clustered placement";
  // 97 partitions for 96 receivers + source: every partition holds exactly
  // one node, every datagram crosses the exchange.
  EXPECT_EQ(digest_with(97, Placement::kContiguous), base) << "single-node partitions";
}

TEST(ParallelDeterminism, DegeneratePartitioningMatchesSequentialEngine) {
  // More partitions than nodes clamps to a single partition, and a
  // single-partition "parallel" run is the sequential engine behind a
  // barrier facade — it must be *byte-identical* to workers=0, not merely
  // deterministic.
  ExperimentConfig cfg = parallel_cfg(2);
  cfg.partitions = 500;  // > 97 nodes -> clamped to 1
  Experiment par(cfg);
  par.run();

  ExperimentConfig seq_cfg = parallel_cfg(0);
  seq_cfg.partitions = 0;
  Experiment seq(seq_cfg);
  seq.run();
  EXPECT_EQ(digest(par), digest(seq));
}

TEST(ParallelDeterminism, EpochWideningPreservesChurnResults) {
  // Satellite guard for the widening rule: a churn window keeps control
  // tasks (crashes, detection notices) and retransmit timers in flight; the
  // widened run must execute every one of them at the same instant as the
  // un-widened run — digest equality includes the event count.
  auto digest_widen = [](bool widen) {
    ExperimentConfig cfg = parallel_cfg(2);
    cfg.epoch_widening = widen;
    cfg.churn.push_back(ChurnEvent{sim::SimTime::sec(6.0), 0.3});
    Experiment e(cfg);
    e.run();
    std::string out = digest(e);
    out += "epochs_run=" + std::to_string(e.deployment().engine().epochs_run());
    return out;
  };
  const std::string widened = digest_widen(true);
  const std::string literal = digest_widen(false);
  // Same simulation, different barrier schedule: everything but the
  // epochs_run trailer must match.
  EXPECT_EQ(widened.substr(0, widened.find("epochs_run=")),
            literal.substr(0, literal.find("epochs_run=")));
  const auto epochs = [](const std::string& s) {
    return std::stoull(s.substr(s.find("epochs_run=") + 11));
  };
  EXPECT_LT(epochs(widened), epochs(literal));
}

TEST(ParallelDeterminism, ChurnAndDetectionStayDeterministic) {
  auto with_churn = [](std::size_t workers) {
    ExperimentConfig cfg = parallel_cfg(workers);
    cfg.churn.push_back(ChurnEvent{sim::SimTime::sec(6.0), 0.3});
    Experiment e(cfg);
    e.run();
    std::string out = digest(e);
    std::size_t crashed = 0;
    for (std::size_t i = 0; i < e.receivers(); ++i) {
      if (e.info(i).crashed) ++crashed;
    }
    out += "crashed=" + std::to_string(crashed);
    return out;
  };
  const std::string base = with_churn(1);
  EXPECT_NE(base.find("crashed=28"), std::string::npos);  // 0.3 * 96 receivers
  for (std::size_t workers : {3u, 8u}) {
    EXPECT_EQ(with_churn(workers), base) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace hg::scenario
