// Deployment builder validation + mixed protocol-stack populations.
#include "scenario/deployment.hpp"

#include <gtest/gtest.h>

#include "gossip/gossip_module.hpp"
#include "scenario/experiment.hpp"
#include "scenario/report.hpp"

namespace hg::scenario {
namespace {

PopulationPlan tiny_population(std::size_t n) {
  PopulationPlan plan;
  plan.node_count = n;
  plan.distribution = BandwidthDistribution::ref691();
  return plan;
}

TEST(DeploymentBuilderDeathTest, ChurnFractionAboveOneRejected) {
  EXPECT_DEATH(Deployment::Builder{}
                   .population(tiny_population(5))
                   .churn(ChurnPlan{{{sim::SimTime::sec(5.0), 1.5}}, {}})
                   .build(),
               "fraction must be within");
}

TEST(DeploymentBuilderDeathTest, NegativeChurnFractionRejected) {
  EXPECT_DEATH(Deployment::Builder{}
                   .population(tiny_population(5))
                   .churn(ChurnPlan{{{sim::SimTime::sec(5.0), -0.25}}, {}})
                   .build(),
               "fraction must be within");
}

TEST(DeploymentBuilderDeathTest, NonMonotoneChurnScheduleRejected) {
  EXPECT_DEATH(Deployment::Builder{}
                   .population(tiny_population(5))
                   .churn(ChurnPlan{{{sim::SimTime::sec(9.0), 0.1},
                                     {sim::SimTime::sec(5.0), 0.1}},
                                    {}})
                   .build(),
               "sorted by time");
}

TEST(DeploymentBuilder, ValidChurnScheduleBuilds) {
  auto d = Deployment::Builder{}
               .population(tiny_population(5))
               .churn(ChurnPlan{{{sim::SimTime::sec(5.0), 0.0},
                                 {sim::SimTime::sec(5.0), 0.2},
                                 {sim::SimTime::sec(9.0), 1.0}},
                                {}})
               .build();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->receivers(), 5u);
}

TEST(DeploymentBuilder, DefaultFactoryHandsOutPresetByMode) {
  PopulationPlan plan = tiny_population(3);
  plan.node.mode = core::Mode::kStandard;
  auto d = Deployment::Builder{}.population(plan).build();
  EXPECT_EQ(d->node(0).config().mode, core::Mode::kStandard);
  EXPECT_EQ(d->node(0).module_names().size(), 2u);  // gossip + player glue
}

// The tentpole's payoff scenario: a standard-gossip minority runs inside a
// HEAP deployment via the node factory — and the deployment still delivers
// the stream to (essentially) everyone.
TEST(Deployment, MixedPopulationStillConverges) {
  constexpr std::size_t kNodes = 80;
  constexpr std::uint32_t kStandardCount = 20;  // 25% fixed-fanout minority

  ExperimentConfig cfg;
  cfg.node_count = kNodes;
  cfg.stream_windows = 8;
  cfg.mode = core::Mode::kHeap;
  cfg.distribution = BandwidthDistribution::ref691();
  cfg.tail = sim::SimTime::sec(40.0);
  cfg.seed = 5;
  cfg.node_factory = [](sim::Simulator& s, net::NetworkFabric& f, membership::Directory& dir,
                        NodeId id, const core::NodeConfig& node_cfg) {
    const bool standard_minority = id.value() >= 1 && id.value() <= kStandardCount;
    auto rt = standard_minority ? core::NodeRuntime::standard(s, f, dir, id, node_cfg)
                                : core::NodeRuntime::make(s, f, dir, id, node_cfg);
    // Fixed-fanout stacks (the minority AND the non-adapting source) keep
    // receiving kAggregation records from HEAP peers: expected, not junk.
    // With those declared, the whole mixed run passes under strict tags.
    if (rt->config().mode == core::Mode::kStandard) {
      rt->ignore_tag(gossip::MsgTag::kAggregation);
    }
    rt->set_strict_unknown_tags(true);
    return rt;
  };
  Experiment exp(cfg);
  exp.run();

  // Both sub-populations exist as requested.
  std::size_t standard_nodes = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) {
    standard_nodes += exp.node(i).config().mode == core::Mode::kStandard;
  }
  EXPECT_EQ(standard_nodes, kStandardCount);

  // Convergence: at a 15 s lag, both groups enjoy a near-jitter-free stream
  // on the reference distribution.
  const auto jitter = jitter_percent_at_lag(exp, 15.0);
  EXPECT_LT(jitter.mean(), 5.0);
  double standard_jitter = 0;
  double heap_jitter = 0;
  stream::LagAnalyzer analyzer(exp.source());
  for (std::size_t i = 0; i < exp.receivers(); ++i) {
    const double j = 100.0 * analyzer.jitter_fraction(exp.player(i), 15.0);
    if (exp.node(i).config().mode == core::Mode::kStandard) {
      standard_jitter += j / kStandardCount;
    } else {
      heap_jitter += j / (kNodes - kStandardCount);
    }
  }
  EXPECT_LT(standard_jitter, 8.0);
  EXPECT_LT(heap_jitter, 8.0);
}

}  // namespace
}  // namespace hg::scenario
