// Report builders over a real (small) experiment: the quantities feeding
// every figure/table binary must be internally consistent.
#include "scenario/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hg::scenario {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  static const Experiment& experiment() {
    static auto* exp = [] {
      ExperimentConfig cfg;
      cfg.node_count = 80;
      cfg.stream_windows = 6;
      cfg.mode = core::Mode::kHeap;
      cfg.distribution = BandwidthDistribution::ref691();
      cfg.tail = sim::SimTime::sec(40.0);
      cfg.seed = 31;
      auto* e = new Experiment(cfg);
      e->run();
      return e;
    }();
    return *exp;
  }
};

TEST_F(ReportFixture, ClassStatsCoverAllNodes) {
  const auto usage = usage_by_class(experiment());
  ASSERT_EQ(usage.size(), 3u);
  std::size_t total = 0;
  for (const auto& c : usage) total += c.nodes;
  EXPECT_EQ(total, experiment().receivers());
  for (const auto& c : usage) {
    EXPECT_GT(c.value, 0.0) << c.class_name;
    EXPECT_LE(c.value, 1.0) << c.class_name;  // the limiter enforces this
  }
}

TEST_F(ReportFixture, JitterFreePctConsistentWithNodeCount) {
  const auto q = jitter_free_pct_by_class(experiment(), 10.0);
  for (const auto& c : q) {
    EXPECT_GE(c.value, 0.0);
    EXPECT_LE(c.value, 1.0);
  }
}

TEST_F(ReportFixture, LagSamplesMonotoneInJitterBudget) {
  // Allowing more jitter can only reduce the lag each node needs.
  const auto strict = jitter_free_lags(experiment(), 0.0);
  const auto loose = jitter_free_lags(experiment(), 0.05);
  ASSERT_FALSE(strict.empty());
  ASSERT_GE(loose.count(), strict.count());
  EXPECT_LE(loose.percentile(50), strict.percentile(50) + 1e-9);
  EXPECT_LE(loose.percentile(90), strict.percentile(90) + 1e-9);
}

TEST_F(ReportFixture, JitterPercentMonotoneInLag) {
  const auto at5 = jitter_percent_at_lag(experiment(), 5.0);
  const auto at20 = jitter_percent_at_lag(experiment(), 20.0);
  const auto offline = jitter_percent_offline(experiment());
  EXPECT_GE(at5.mean(), at20.mean() - 1e-9);
  EXPECT_GE(at20.mean(), offline.mean() - 1e-9);
}

TEST_F(ReportFixture, PerWindowSeriesBounded) {
  const auto series = per_window_decode_percent(experiment(), 10.0);
  ASSERT_EQ(series.size(), 6u);
  for (double v : series) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST_F(ReportFixture, StreamFractionLagGrowsWithFraction) {
  const auto p90 = stream_fraction_lags(experiment(), 0.90);
  const auto p99 = stream_fraction_lags(experiment(), 0.99);
  ASSERT_FALSE(p90.empty());
  ASSERT_FALSE(p99.empty());
  EXPECT_LE(p90.percentile(50), p99.percentile(50) + 1e-9);
}

TEST_F(ReportFixture, CdfGridEvaluation) {
  const auto lags = jitter_free_lags(experiment(), 0.0);
  const auto cdf = cdf_over_grid(lags, {0.0, 5.0, 40.0}, experiment().receivers());
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_LE(cdf[0].percent, cdf[1].percent);
  EXPECT_LE(cdf[1].percent, cdf[2].percent);
  EXPECT_LE(cdf[2].percent, 100.0);
}

TEST_F(ReportFixture, MeanLagCapApplies) {
  const auto capped = mean_lag_to_jitter_free_by_class(experiment(), 1e-3);
  for (const auto& c : capped) EXPECT_LE(c.value, 1e-3 + 1e-12);
}

}  // namespace
}  // namespace hg::scenario
