// Strict env-knob parsing: accepted values parse exactly; zero / negative /
// garbage / overflow / empty all terminate with a message naming the
// variable instead of silently falling back.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"

namespace hg {
namespace {

TEST(EnvParse, AcceptsValidIntegers) {
  EXPECT_EQ(parse_env_int("HG_SEEDS", "1", 1, 100000), 1);
  EXPECT_EQ(parse_env_int("HG_SEEDS", "42", 1, 100000), 42);
  EXPECT_EQ(parse_env_int("HG_THREADS", "4096", 1, 4096), 4096);
  EXPECT_EQ(parse_env_int("X", "-3", -10, 10), -3);  // bounds are the contract
}

TEST(EnvParse, FallbackOnlyWhenUnset) {
  unsetenv("HG_TEST_KNOB");
  EXPECT_EQ(env_int_or("HG_TEST_KNOB", 7, 1, 100), 7);
  setenv("HG_TEST_KNOB", "31", 1);
  EXPECT_EQ(env_int_or("HG_TEST_KNOB", 7, 1, 100), 31);
  unsetenv("HG_TEST_KNOB");
}

using EnvParseDeathTest = ::testing::Test;

TEST(EnvParseDeathTest, RejectsZeroWhenMinIsOne) {
  ASSERT_DEATH((void)parse_env_int("HG_SEEDS", "0", 1, 100000), "HG_SEEDS.*out of range");
}

TEST(EnvParseDeathTest, RejectsNegative) {
  ASSERT_DEATH((void)parse_env_int("HG_SEEDS", "-4", 1, 100000), "HG_SEEDS.*out of range");
}

TEST(EnvParseDeathTest, RejectsGarbage) {
  ASSERT_DEATH((void)parse_env_int("HG_THREADS", "fast", 1, 4096),
               "HG_THREADS.*not an integer");
}

TEST(EnvParseDeathTest, RejectsTrailingGarbage) {
  ASSERT_DEATH((void)parse_env_int("HG_SEEDS", "1O", 1, 100000), "HG_SEEDS.*not an integer");
}

TEST(EnvParseDeathTest, RejectsOverflow) {
  ASSERT_DEATH((void)parse_env_int("HG_SEEDS", "99999999999999999999", 1, 100000),
               "HG_SEEDS.*out of range");
}

TEST(EnvParseDeathTest, RejectsEmptySetValue) {
  ASSERT_DEATH((void)parse_env_int("HG_SEEDS", "", 1, 100000), "HG_SEEDS: empty value");
}

TEST(EnvParseDeathTest, EnvWrapperRejectsGarbageToo) {
  ASSERT_DEATH(
      {
        setenv("HG_TEST_KNOB2", "nope", 1);
        (void)env_int_or("HG_TEST_KNOB2", 1, 1, 100);
      },
      "HG_TEST_KNOB2.*not an integer");
}

TEST(EnvWorkers, UnsetMeansSequential) {
  unsetenv("HG_WORKERS");
  EXPECT_EQ(env_workers(), 0u);
  setenv("HG_WORKERS", "0", 1);
  EXPECT_EQ(env_workers(), 0u);  // explicit 0 = the classic engine
  setenv("HG_WORKERS", "16", 1);
  EXPECT_EQ(env_workers(), 16u);
  unsetenv("HG_WORKERS");
}

TEST(EnvParseDeathTest, WorkersRejectsNegative) {
  ASSERT_DEATH(
      {
        setenv("HG_WORKERS", "-2", 1);
        (void)env_workers();
      },
      "HG_WORKERS.*out of range");
}

TEST(EnvParseDeathTest, WorkersRejectsGarbage) {
  ASSERT_DEATH(
      {
        setenv("HG_WORKERS", "many", 1);
        (void)env_workers();
      },
      "HG_WORKERS.*not an integer");
}

TEST(EnvParseDeathTest, WorkersRejectsOverRange) {
  ASSERT_DEATH(
      {
        setenv("HG_WORKERS", "5000", 1);
        (void)env_workers();
      },
      "HG_WORKERS.*out of range");
}

}  // namespace
}  // namespace hg
