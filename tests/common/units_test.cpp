#include "common/units.hpp"

#include <gtest/gtest.h>

namespace hg {
namespace {

TEST(BitRate, Construction) {
  EXPECT_EQ(BitRate::bps(1000).bits_per_sec(), 1000);
  EXPECT_EQ(BitRate::kbps(512).bits_per_sec(), 512'000);
  EXPECT_EQ(BitRate::mbps(3).bits_per_sec(), 3'000'000);
  EXPECT_DOUBLE_EQ(BitRate::kbps(551).kbits_per_sec(), 551.0);
}

TEST(BitRate, Unlimited) {
  EXPECT_TRUE(BitRate::unlimited().is_unlimited());
  EXPECT_FALSE(BitRate::kbps(512).is_unlimited());
}

TEST(BitRate, Comparison) {
  EXPECT_LT(BitRate::kbps(512), BitRate::mbps(1));
  EXPECT_GT(BitRate::mbps(3), BitRate::kbps(768));
}

TEST(BitRate, Arithmetic) {
  EXPECT_EQ(BitRate::kbps(512) + BitRate::kbps(256), BitRate::kbps(768));
  EXPECT_DOUBLE_EQ(BitRate::mbps(2) / BitRate::mbps(1), 2.0);
  EXPECT_EQ(BitRate::kbps(100) * 2.0, BitRate::kbps(200));
}

TEST(BitRate, ToString) {
  EXPECT_EQ(to_string(BitRate::kbps(512)), "512 kbps");
  EXPECT_EQ(to_string(BitRate::mbps(3)), "3 Mbps");
  EXPECT_EQ(to_string(BitRate::unlimited()), "unlimited");
}

TEST(TransmissionTime, MatchesRateArithmetic) {
  // 1000 bytes at 1 Mbps = 8000 bits / 1e6 bps = 8 ms.
  EXPECT_EQ(transmission_time_us(1000, BitRate::mbps(1)), 8000);
  // 1316-byte stream packet at 512 kbps ~= 20.6 ms: this is why serving
  // saturates poor nodes in the paper.
  EXPECT_NEAR(transmission_time_us(1316, BitRate::kbps(512)), 20563, 1);
}

TEST(TransmissionTime, UnlimitedIsInstant) {
  EXPECT_EQ(transmission_time_us(1'000'000, BitRate::unlimited()), 0);
}

TEST(TransmissionTime, RoundsUp) {
  // 1 byte at 1 Gbps = 0.008 us -> rounds up to 1 us.
  EXPECT_EQ(transmission_time_us(1, BitRate::bps(1'000'000'000)), 1);
}

}  // namespace
}  // namespace hg
