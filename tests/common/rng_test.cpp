#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hg {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.1);
}

TEST(Rng, ForkIsIndependentOfParentUsage) {
  Rng a(99);
  Rng fork_before = a.fork(1);
  (void)a.next();
  (void)a.next();
  Rng fork_after = a.fork(1);
  // fork() depends only on the seed and tag, not on how much the parent used.
  EXPECT_EQ(fork_before.next(), fork_after.next());
}

TEST(Rng, ForkDifferentTagsDiverge) {
  Rng a(99);
  Rng f1 = a.fork(1), f2 = a.fork(2);
  EXPECT_NE(f1.next(), f2.next());
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(21);
  std::vector<std::uint32_t> out;
  for (std::size_t n : {1UL, 5UL, 100UL, 1000UL}) {
    for (std::size_t k = 0; k <= std::min<std::size_t>(n, 20); ++k) {
      rng.sample_indices(n, k, out);
      ASSERT_EQ(out.size(), k);
      std::set<std::uint32_t> uniq(out.begin(), out.end());
      EXPECT_EQ(uniq.size(), k);
      for (auto v : out) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleIndicesUniformCoverage) {
  Rng rng(23);
  std::vector<std::uint32_t> out;
  std::vector<int> counts(50, 0);
  constexpr int kRounds = 20000;
  for (int i = 0; i < kRounds; ++i) {
    rng.sample_indices(50, 5, out);
    for (auto v : out) counts[v]++;
  }
  // Each index expected kRounds * 5 / 50 = 2000 times.
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace hg
