#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/freshness_aggregator.hpp"
#include "aggregation/push_sum.hpp"

namespace hg::aggregation {
namespace {

struct AggSwarm {
  sim::Simulator sim;
  net::NetworkFabric fabric;
  membership::Directory directory;
  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<FreshnessAggregator>> aggs;

  AggSwarm(const std::vector<double>& capabilities_kbps, AggregationConfig cfg = {},
           std::uint64_t seed = 5)
      : sim(seed),
        fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(20)),
               std::make_unique<net::NoLoss>()),
        directory(sim, membership::DetectionConfig{}) {
    const auto n = capabilities_kbps.size();
    for (std::uint32_t i = 0; i < n; ++i) directory.add_node(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeId id{i};
      views.push_back(directory.make_view(id));
      aggs.push_back(std::make_unique<FreshnessAggregator>(
          sim, fabric, *views.back(), id, BitRate::kbps(capabilities_kbps[i]), cfg));
      fabric.register_node(id, BitRate::unlimited(),
                           [a = aggs.back().get()](const net::Datagram& d) {
                             a->on_datagram(d);
                           });
    }
    for (auto& a : aggs) a->start();
  }
};

std::vector<double> ms691_like(std::size_t n) {
  // 5% 3072, 10% 1024, 85% 512 (paper ms-691).
  std::vector<double> caps;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n / 20) {
      caps.push_back(3072);
    } else if (i < n / 20 + n / 10) {
      caps.push_back(1024);
    } else {
      caps.push_back(512);
    }
  }
  return caps;
}

TEST(FreshnessAggregator, ColdStartReportsOwnCapability) {
  AggSwarm s({512, 1024, 2048});
  EXPECT_DOUBLE_EQ(s.aggs[0]->average_capability_bps(), 512'000.0);
  EXPECT_DOUBLE_EQ(s.aggs[2]->average_capability_bps(), 2'048'000.0);
}

TEST(FreshnessAggregator, ConvergesToTrueAverage) {
  const auto caps = ms691_like(100);
  double truth = 0;
  for (double c : caps) truth += c * 1000.0;
  truth /= static_cast<double>(caps.size());

  AggSwarm s(caps);
  s.sim.run_until(sim::SimTime::sec(20));
  for (const auto& a : s.aggs) {
    EXPECT_NEAR(a->average_capability_bps(), truth, truth * 0.10);
  }
}

TEST(FreshnessAggregator, EstimateErrorShrinksOverTime) {
  const auto caps = ms691_like(100);
  double truth = 0;
  for (double c : caps) truth += c * 1000.0;
  truth /= static_cast<double>(caps.size());

  AggSwarm s(caps);
  auto mean_err = [&]() {
    double err = 0;
    for (const auto& a : s.aggs) {
      err += std::abs(a->average_capability_bps() - truth) / truth;
    }
    return err / static_cast<double>(s.aggs.size());
  };
  s.sim.run_until(sim::SimTime::sec(1));
  const double early = mean_err();
  s.sim.run_until(sim::SimTime::sec(30));
  const double late = mean_err();
  EXPECT_LT(late, early);
  EXPECT_LT(late, 0.05);
}

TEST(FreshnessAggregator, TracksCapabilityChange) {
  AggSwarm s({1000, 1000, 1000, 1000});
  s.sim.run_until(sim::SimTime::sec(10));
  EXPECT_NEAR(s.aggs[0]->average_capability_bps(), 1'000'000, 1);
  // Node 3 drops to 200 kbps; the estimate must follow.
  s.aggs[3]->set_own_capability(BitRate::kbps(200));
  s.sim.run_until(sim::SimTime::sec(40));
  const double expect = (3 * 1'000'000.0 + 200'000.0) / 4.0;
  for (const auto& a : s.aggs) {
    EXPECT_NEAR(a->average_capability_bps(), expect, expect * 0.05);
  }
}

TEST(FreshnessAggregator, ExpiryForgetsCrashedNodes) {
  AggregationConfig cfg;
  cfg.record_expiry = sim::SimTime::sec(5);
  AggSwarm s({400, 400, 400, 4000}, cfg);
  s.sim.run_until(sim::SimTime::sec(10));
  // All nodes should see avg = (3*400+4000)/4 = 1300 kbps.
  EXPECT_NEAR(s.aggs[0]->average_capability_bps(), 1'300'000, 1'300'000 * 0.05);

  // Crash the rich node: stop its gossip and its reception.
  s.aggs[3]->stop();
  s.fabric.kill(NodeId{3});
  s.directory.kill(NodeId{3});
  s.sim.run_until(sim::SimTime::sec(40));
  // Its record expired everywhere: estimate returns to 400 kbps.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(s.aggs[i]->average_capability_bps(), 400'000, 400'000 * 0.05) << i;
  }
}

TEST(FreshnessAggregator, GossipCostIsMarginal) {
  AggSwarm s(ms691_like(50));
  s.sim.run_until(sim::SimTime::sec(10));
  // Paper: "costing around 1 KB/s ... completely marginal".
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto& meter = s.fabric.meter(NodeId{i});
    const double bytes_per_sec =
        static_cast<double>(meter.sent(net::MsgClass::kAggregation).bytes) / 10.0;
    EXPECT_LT(bytes_per_sec, 1500.0) << i;
  }
}

TEST(PushSum, ConvergesToAverage) {
  sim::Simulator sim(9);
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
                            std::make_unique<net::NoLoss>());
  membership::Directory dir(sim, membership::DetectionConfig{});
  const std::size_t n = 64;
  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<PushSumNode>> nodes;
  double truth = 0;
  for (std::uint32_t i = 0; i < n; ++i) dir.add_node(NodeId{i});
  for (std::uint32_t i = 0; i < n; ++i) {
    const double value = 100.0 + i;  // average = 131.5 (sum arg, weight 1)
    truth += value;
    views.push_back(dir.make_view(NodeId{i}));
    nodes.push_back(std::make_unique<PushSumNode>(sim, fabric, *views.back(), NodeId{i},
                                                  value, 1.0, PushSumConfig{}));
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [p = nodes.back().get()](const net::Datagram& d) {
                           p->on_datagram(d);
                         });
  }
  truth /= static_cast<double>(n);
  for (auto& p : nodes) p->start();
  sim.run_until(sim::SimTime::sec(10));
  for (const auto& p : nodes) {
    EXPECT_NEAR(p->estimate(), truth, truth * 0.02);
  }
}

TEST(PushSum, MassConservation) {
  // Sum of (sum, weight) over all nodes is invariant without loss.
  sim::Simulator sim(10);
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(5)),
                            std::make_unique<net::NoLoss>());
  membership::Directory dir(sim, membership::DetectionConfig{});
  const std::size_t n = 16;
  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<PushSumNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) dir.add_node(NodeId{i});
  for (std::uint32_t i = 0; i < n; ++i) {
    views.push_back(dir.make_view(NodeId{i}));
    nodes.push_back(std::make_unique<PushSumNode>(sim, fabric, *views.back(), NodeId{i},
                                                  static_cast<double>(i), 1.0,
                                                  PushSumConfig{}));
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [p = nodes.back().get()](const net::Datagram& d) {
                           p->on_datagram(d);
                         });
  }
  for (auto& p : nodes) p->start();
  // Run to a quiescent instant: drain all in-flight messages by running
  // until shortly after a period boundary and summing.
  sim.run_until(sim::SimTime::sec(7.777));
  double sum = 0, weight = 0;
  for (const auto& p : nodes) {
    sum += p->sum();
    weight += p->weight();
  }
  // In-flight mass makes this approximate at any instant; with 16 nodes and
  // 200 ms periods the in-flight share is small.
  EXPECT_NEAR(weight, static_cast<double>(n), 2.0);
  EXPECT_NEAR(sum / weight, (0.0 + 15.0) / 2.0, 1.5);
}

TEST(PushSum, SizeEstimation) {
  // value=1 everywhere, weight=1 only at node 0: estimate -> n at node 0.
  sim::Simulator sim(11);
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(5)),
                            std::make_unique<net::NoLoss>());
  membership::Directory dir(sim, membership::DetectionConfig{});
  const std::size_t n = 32;
  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<PushSumNode>> nodes;
  for (std::uint32_t i = 0; i < n; ++i) dir.add_node(NodeId{i});
  for (std::uint32_t i = 0; i < n; ++i) {
    views.push_back(dir.make_view(NodeId{i}));
    nodes.push_back(std::make_unique<PushSumNode>(sim, fabric, *views.back(), NodeId{i},
                                                  1.0, i == 0 ? 1.0 : 0.0, PushSumConfig{}));
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [p = nodes.back().get()](const net::Datagram& d) {
                           p->on_datagram(d);
                         });
  }
  for (auto& p : nodes) p->start();
  sim.run_until(sim::SimTime::sec(15));
  // 1/estimate-of-(1/n)... here estimate = sum/weight = n directly.
  double est_sum = 0;
  std::size_t est_count = 0;
  for (const auto& p : nodes) {
    if (!std::isnan(p->estimate())) {
      est_sum += p->estimate();
      ++est_count;
    }
  }
  ASSERT_GT(est_count, n / 2);
  EXPECT_NEAR(est_sum / static_cast<double>(est_count), static_cast<double>(n),
              static_cast<double>(n) * 0.15);
}

}  // namespace
}  // namespace hg::aggregation
