#include "membership/directory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/simulator.hpp"

namespace hg::membership {
namespace {

TEST(Directory, SelectNodesExcludesSelf) {
  sim::Simulator s(1);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 10; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{3});
  Rng rng(1);
  std::vector<NodeId> out;
  for (int trial = 0; trial < 100; ++trial) {
    view->select_nodes(5, out, rng);
    EXPECT_EQ(out.size(), 5u);
    for (NodeId id : out) EXPECT_NE(id, NodeId{3});
  }
}

TEST(Directory, SelectNodesDistinct) {
  sim::Simulator s(2);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 20; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{0});
  Rng rng(2);
  std::vector<NodeId> out;
  view->select_nodes(19, out, rng);
  std::set<NodeId> uniq(out.begin(), out.end());
  EXPECT_EQ(uniq.size(), 19u);
}

TEST(Directory, SelectNodesCappedByPopulation) {
  sim::Simulator s(3);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 4; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{0});
  Rng rng(3);
  std::vector<NodeId> out;
  view->select_nodes(10, out, rng);
  EXPECT_EQ(out.size(), 3u);  // only 3 peers exist
}

TEST(Directory, SelectionIsUniform) {
  sim::Simulator s(4);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 11; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{0});
  Rng rng(4);
  std::vector<NodeId> out;
  std::vector<int> counts(11, 0);
  constexpr int kRounds = 20000;
  for (int r = 0; r < kRounds; ++r) {
    view->select_nodes(2, out, rng);
    for (NodeId id : out) counts[id.value()]++;
  }
  // Each of the 10 peers expected kRounds*2/10 = 4000.
  EXPECT_EQ(counts[0], 0);
  for (std::uint32_t i = 1; i < 11; ++i) EXPECT_NEAR(counts[i], 4000, 400);
}

TEST(Directory, KillPropagatesAfterDetectionDelay) {
  sim::Simulator s(5);
  DetectionConfig det;
  det.mean = sim::SimTime::sec(10);
  det.spread = 0.0;  // deterministic delay for the test
  Directory dir(s, det);
  for (std::uint32_t i = 0; i < 5; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{0});

  s.run_until(sim::SimTime::sec(1));
  dir.kill(NodeId{2});
  EXPECT_FALSE(dir.alive(NodeId{2}));
  EXPECT_EQ(dir.alive_count(), 4u);

  // Before detection: still believed alive.
  s.run_until(sim::SimTime::sec(10));
  EXPECT_EQ(view->believed_peers(), 4u);
  // After detection: removed.
  s.run_until(sim::SimTime::sec(12));
  EXPECT_EQ(view->believed_peers(), 3u);

  Rng rng(5);
  std::vector<NodeId> out;
  for (int t = 0; t < 50; ++t) {
    view->select_nodes(3, out, rng);
    for (NodeId id : out) EXPECT_NE(id, NodeId{2});
  }
}

TEST(Directory, DetectionDelayIsSpread) {
  sim::Simulator s(6);
  DetectionConfig det;
  det.mean = sim::SimTime::sec(10);
  det.spread = 0.5;
  Directory dir(s, det);
  for (std::uint32_t i = 0; i < 100; ++i) dir.add_node(NodeId{i});
  std::vector<std::unique_ptr<LocalView>> views;
  for (std::uint32_t i = 0; i < 100; ++i) views.push_back(dir.make_view(NodeId{i}));

  dir.kill(NodeId{7});
  // At t=5s (min possible delay) nobody has detected yet.
  s.run_until(sim::SimTime::sec(4.9));
  int detected = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (i != 7 && views[i]->believed_peers() == 98) ++detected;
  }
  EXPECT_EQ(detected, 0);
  // Half-way (t=10s): roughly half have detected.
  s.run_until(sim::SimTime::sec(10));
  detected = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (i != 7 && views[i]->believed_peers() == 98) ++detected;
  }
  EXPECT_GT(detected, 25);
  EXPECT_LT(detected, 75);
  // By t=15s everyone has.
  s.run_until(sim::SimTime::sec(15.1));
  detected = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (i != 7 && views[i]->believed_peers() == 98) ++detected;
  }
  EXPECT_EQ(detected, 99);
}

TEST(Directory, DoubleKillIsIdempotent) {
  sim::Simulator s(7);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 3; ++i) dir.add_node(NodeId{i});
  dir.kill(NodeId{1});
  dir.kill(NodeId{1});
  EXPECT_EQ(dir.alive_count(), 2u);
}

TEST(Directory, LazyViewStoresNothingUntilADeathIsDetected) {
  // Copy-on-write views: over an all-alive population a view is the
  // implicit identity mapping; only the first detected death materializes
  // the private peer array.
  sim::Simulator s(9);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 1000; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{500});
  EXPECT_FALSE(view->materialized());
  EXPECT_EQ(view->believed_peers(), 999u);
  Rng rng(3);
  std::vector<NodeId> out;
  view->select_nodes(20, out, rng);
  EXPECT_FALSE(view->materialized());  // selection alone never materializes

  view->mark_dead(NodeId{7});
  EXPECT_TRUE(view->materialized());
  EXPECT_EQ(view->believed_peers(), 998u);
}

TEST(Directory, CowViewMatchesClassicSnapshotAlgorithm) {
  // The lazy mapping (and its materialization) must be indistinguishable
  // from the classic eager snapshot + swap-remove bookkeeping: same RNG
  // stream in, same peers out, before and after deaths. The reference
  // implementation lives right here.
  sim::Simulator s(10);
  Directory dir(s, DetectionConfig{});
  const std::uint32_t n = 50;
  const NodeId owner{10};
  for (std::uint32_t i = 0; i < n; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(owner);

  std::vector<NodeId> ref_members;  // the classic snapshot, id order
  for (std::uint32_t i = 0; i < n; ++i) {
    if (NodeId{i} != owner) ref_members.push_back(NodeId{i});
  }
  auto ref_mark_dead = [&](NodeId id) {  // classic swap-remove
    const auto it = std::find(ref_members.begin(), ref_members.end(), id);
    ASSERT_NE(it, ref_members.end());
    *it = ref_members.back();
    ref_members.pop_back();
  };
  Rng view_rng(77);
  Rng ref_rng(77);
  std::vector<NodeId> got;
  std::vector<std::uint32_t> idx;
  auto expect_lockstep = [&](int trials) {
    for (int t = 0; t < trials; ++t) {
      view->select_nodes(7, got, view_rng);
      idx.clear();
      ref_rng.sample_indices(ref_members.size(), 7, idx);
      ASSERT_EQ(got.size(), idx.size());
      for (std::size_t k = 0; k < idx.size(); ++k) EXPECT_EQ(got[k], ref_members[idx[k]]);
    }
  };

  ASSERT_FALSE(view->materialized());
  expect_lockstep(200);  // lazy phase

  view->mark_dead(NodeId{23});  // materializes mid-run
  ref_mark_dead(NodeId{23});
  ASSERT_TRUE(view->materialized());
  expect_lockstep(200);

  view->mark_dead(NodeId{49});  // swap-remove order must also match
  ref_mark_dead(NodeId{49});
  view->mark_dead(NodeId{0});
  ref_mark_dead(NodeId{0});
  expect_lockstep(200);
}

TEST(Directory, ViewBuiltAfterDeathsMaterializesEagerly) {
  // The identity mapping only holds over an all-alive population; a view
  // built later must fall back to the snapshot and exclude the dead.
  sim::Simulator s(11);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 10; ++i) dir.add_node(NodeId{i});
  dir.kill(NodeId{4});
  auto view = dir.make_view(NodeId{0});
  EXPECT_TRUE(view->materialized());
  EXPECT_EQ(view->believed_peers(), 8u);
  Rng rng(5);
  std::vector<NodeId> out;
  for (int trial = 0; trial < 50; ++trial) {
    view->select_nodes(8, out, rng);
    for (NodeId id : out) EXPECT_NE(id, NodeId{4});
  }
}

TEST(Directory, DetectionWheelSchedulesOneEventPerBucket) {
  // A death with N views must cost O(spread / wheel_tick) scheduled events,
  // not O(N): detections land in shared tick buckets. With spread 0 every
  // observer fires from the same bucket — exactly one event in the queue.
  sim::Simulator s(3);
  DetectionConfig det;
  det.mean = sim::SimTime::sec(10.0);
  det.spread = 0.0;
  Directory dir(s, det);
  constexpr std::uint32_t kNodes = 200;
  for (std::uint32_t i = 0; i < kNodes; ++i) dir.add_node(NodeId{i});
  std::vector<std::unique_ptr<LocalView>> views;
  for (std::uint32_t i = 0; i < kNodes; ++i) views.push_back(dir.make_view(NodeId{i}));

  const std::uint64_t before = s.events_executed();
  dir.kill(NodeId{7});
  s.run_until(sim::SimTime::sec(30));
  // One drain event total (plus nothing else pending in this run).
  EXPECT_EQ(s.events_executed() - before, 1u);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    if (i == 7) continue;
    EXPECT_EQ(views[i]->believed_peers(), kNodes - 2) << i;
  }
}

TEST(Directory, WheelTickRoundsDetectionUpAtMostOneTick) {
  // Quantization contract: a detection fires at the first wheel tick at or
  // after its sampled delay — never before, never more than a tick late.
  sim::Simulator s(5);
  DetectionConfig det;
  det.mean = sim::SimTime::sec(10.0);
  det.spread = 0.0;
  det.wheel_tick = sim::SimTime::ms(250);
  Directory dir(s, det);
  for (std::uint32_t i = 0; i < 3; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{0});
  dir.kill(NodeId{1});
  // Exactly 10 s is already a tick multiple: must not fire before 10 s.
  s.run_until(sim::SimTime::sec(10.0) - sim::SimTime::us(1));
  EXPECT_EQ(view->believed_peers(), 2u);
  s.run_until(sim::SimTime::sec(10.0));
  EXPECT_EQ(view->believed_peers(), 1u);
}

TEST(Directory, WheelBucketsAreReusableAfterDrain) {
  // A second death whose detection maps to an already-drained bucket index
  // range must re-create buckets, not vanish.
  sim::Simulator s(6);
  DetectionConfig det;
  det.mean = sim::SimTime::sec(1.0);
  det.spread = 0.0;
  Directory dir(s, det);
  for (std::uint32_t i = 0; i < 4; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{0});
  dir.kill(NodeId{1});
  s.run_until(sim::SimTime::sec(5));
  EXPECT_EQ(view->believed_peers(), 2u);
  dir.kill(NodeId{2});
  s.run_until(sim::SimTime::sec(10));
  EXPECT_EQ(view->believed_peers(), 1u);
}

TEST(Directory, ViewOfKilledOwnerUnaffected) {
  // A dead node's own view is not updated (it is dead), but destroying the
  // view must not crash pending detection events.
  sim::Simulator s(8);
  Directory dir(s, DetectionConfig{});
  for (std::uint32_t i = 0; i < 3; ++i) dir.add_node(NodeId{i});
  auto view = dir.make_view(NodeId{1});
  dir.kill(NodeId{0});
  view.reset();  // destroyed before detection event fires
  s.run_until(sim::SimTime::sec(30));
}

}  // namespace
}  // namespace hg::membership
