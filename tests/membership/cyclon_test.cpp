#include "membership/cyclon.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace hg::membership {
namespace {

struct Swarm {
  sim::Simulator sim{99};
  net::NetworkFabric fabric;
  std::vector<std::unique_ptr<CyclonNode>> nodes;

  explicit Swarm(std::size_t n, CyclonConfig cfg = {})
      : fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(20)),
               std::make_unique<net::NoLoss>()) {
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      auto node = std::make_unique<CyclonNode>(sim, fabric, id, cfg);
      fabric.register_node(id, BitRate::unlimited(),
                           [raw = node.get()](const net::Datagram& d) { raw->on_datagram(d); });
      nodes.push_back(std::move(node));
    }
    // Bootstrap: ring + a few shortcuts, the standard worst-ish case.
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<NodeId> init;
      for (std::size_t k = 1; k <= 5; ++k) {
        init.push_back(NodeId{static_cast<std::uint32_t>((i + k) % n)});
      }
      nodes[i]->bootstrap(init);
      nodes[i]->start();
    }
  }
};

TEST(Cyclon, ViewsFillToCapacity) {
  CyclonConfig cfg;
  cfg.view_size = 10;
  Swarm swarm(50, cfg);
  swarm.sim.run_until(sim::SimTime::sec(30));
  std::size_t full = 0;
  for (const auto& n : swarm.nodes) {
    if (n->view_size() == cfg.view_size) ++full;
  }
  EXPECT_GT(full, 45u);  // nearly all views saturate
}

TEST(Cyclon, NoSelfOrDuplicateEntries) {
  Swarm swarm(30);
  swarm.sim.run_until(sim::SimTime::sec(20));
  for (std::size_t i = 0; i < swarm.nodes.size(); ++i) {
    auto view = swarm.nodes[i]->view_snapshot();
    std::set<NodeId> uniq(view.begin(), view.end());
    EXPECT_EQ(uniq.size(), view.size()) << "duplicates in view of node " << i;
    EXPECT_EQ(uniq.count(NodeId{static_cast<std::uint32_t>(i)}), 0u) << "self in view";
  }
}

TEST(Cyclon, ViewsMixBeyondBootstrapNeighbors) {
  // After shuffling, views must contain nodes far outside the initial ring
  // neighbourhood (i+1..i+5).
  Swarm swarm(100);
  swarm.sim.run_until(sim::SimTime::sec(60));
  int far_entries = 0, total = 0;
  for (std::size_t i = 0; i < swarm.nodes.size(); ++i) {
    for (NodeId id : swarm.nodes[i]->view_snapshot()) {
      const std::size_t dist = (id.value() + 100 - i) % 100;
      if (dist > 10 && dist < 90) ++far_entries;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(far_entries) / total, 0.5);
}

TEST(Cyclon, InDegreeStaysBalanced) {
  // Cyclon's hallmark: in-degree (how often a node appears in others' views)
  // concentrates around the view size.
  Swarm swarm(100);
  swarm.sim.run_until(sim::SimTime::sec(60));
  std::vector<int> indegree(100, 0);
  for (const auto& n : swarm.nodes) {
    for (NodeId id : n->view_snapshot()) indegree[id.value()]++;
  }
  int max_in = 0, min_in = 1 << 30;
  for (int d : indegree) {
    max_in = std::max(max_in, d);
    min_in = std::min(min_in, d);
  }
  EXPECT_GT(min_in, 3);
  EXPECT_LT(max_in, 60);
}

TEST(Cyclon, SelectNodesReturnsDistinctPeers) {
  Swarm swarm(30);
  swarm.sim.run_until(sim::SimTime::sec(10));
  Rng rng(1);
  std::vector<NodeId> out;
  swarm.nodes[0]->select_nodes(5, out, rng);
  EXPECT_LE(out.size(), 5u);
  EXPECT_GE(out.size(), 1u);
  std::set<NodeId> uniq(out.begin(), out.end());
  EXPECT_EQ(uniq.size(), out.size());
}

}  // namespace
}  // namespace hg::membership
