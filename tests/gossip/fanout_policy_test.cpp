#include "gossip/fanout_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aggregation/freshness_aggregator.hpp"

namespace hg::gossip {
namespace {

class FakeEstimator final : public aggregation::CapabilityEstimator {
 public:
  explicit FakeEstimator(double bps) : bps_(bps) {}
  double average_capability_bps() const override { return bps_; }
  void set(double bps) { bps_ = bps; }

 private:
  double bps_;
};

TEST(FixedFanout, IntegerIsExact) {
  FixedFanout p(7.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.fanout_for_round(rng), 7u);
  EXPECT_DOUBLE_EQ(p.current_target(), 7.0);
}

TEST(FixedFanout, FractionalAveragesOut) {
  FixedFanout p(7.4);
  Rng rng(2);
  double sum = 0;
  constexpr int kRounds = 100000;
  for (int i = 0; i < kRounds; ++i) sum += static_cast<double>(p.fanout_for_round(rng));
  EXPECT_NEAR(sum / kRounds, 7.4, 0.02);
}

TEST(FixedFanout, ZeroFanoutIsZero) {
  FixedFanout p(0.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.fanout_for_round(rng), 0u);
}

TEST(FixedFanout, NegativeFanoutClampsToZeroInsteadOfWrapping) {
  // A sweep config of -1 used to floor through size_t and wrap to ~2^64.
  FixedFanout p(-1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.fanout_for_round(rng), 0u);
  FixedFanout tiny(-0.3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tiny.fanout_for_round(rng), 0u);
}

TEST(FixedFanoutDeathTest, NanFanoutAbortsLoudly) {
  EXPECT_DEATH(FixedFanout{std::numeric_limits<double>::quiet_NaN()}, "NaN");
}

TEST(AdaptiveFanoutDeathTest, NanBaseFanoutAbortsLoudly) {
  FakeEstimator est(691'000.0);
  AdaptiveFanoutConfig cfg;
  cfg.base_fanout = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(AdaptiveFanout(BitRate::kbps(512), &est, cfg), "NaN");
}

TEST(AdaptiveFanout, PaperEquationFp) {
  // ms-691: b̄=691 kbps, f=7. Expected targets: 512k -> 5.19, 1M -> 10.37,
  // 3M -> 31.1 (paper Eq. 1 with the aggregation estimate).
  FakeEstimator est(691'000.0);
  AdaptiveFanoutConfig cfg;
  AdaptiveFanout poor(BitRate::kbps(512), &est, cfg);
  AdaptiveFanout mid(BitRate::kbps(1024), &est, cfg);
  AdaptiveFanout rich(BitRate::kbps(3072), &est, cfg);
  EXPECT_NEAR(poor.current_target(), 7.0 * 512.0 / 691.0, 0.01);
  EXPECT_NEAR(mid.current_target(), 7.0 * 1024.0 / 691.0, 0.01);
  EXPECT_NEAR(rich.current_target(), 7.0 * 3072.0 / 691.0, 0.01);
}

TEST(AdaptiveFanout, PopulationAverageEqualsBaseFanout) {
  // The property HEAP relies on: sum of fanouts over the population equals
  // n * f when the estimate is the true average (Eq. 1 + [15]).
  FakeEstimator est(0.0);
  std::vector<double> caps_kbps;
  for (int i = 0; i < 85; ++i) caps_kbps.push_back(512);
  for (int i = 0; i < 10; ++i) caps_kbps.push_back(1024);
  for (int i = 0; i < 5; ++i) caps_kbps.push_back(3072);
  double avg = 0;
  for (double c : caps_kbps) avg += c;
  avg /= static_cast<double>(caps_kbps.size());
  est.set(avg * 1000.0);

  double target_sum = 0;
  Rng rng(3);
  double drawn_sum = 0;
  constexpr int kRounds = 2000;
  for (double c : caps_kbps) {
    AdaptiveFanout p(BitRate::kbps(c), &est, AdaptiveFanoutConfig{});
    target_sum += p.current_target();
    for (int r = 0; r < kRounds; ++r) drawn_sum += static_cast<double>(p.fanout_for_round(rng));
  }
  EXPECT_NEAR(target_sum / static_cast<double>(caps_kbps.size()), 7.0, 1e-9);
  EXPECT_NEAR(drawn_sum / (static_cast<double>(caps_kbps.size()) * kRounds), 7.0, 0.05);
}

TEST(AdaptiveFanout, NoEstimateFallsBackToBase) {
  FakeEstimator est(0.0);
  AdaptiveFanout p(BitRate::kbps(512), &est, AdaptiveFanoutConfig{});
  EXPECT_DOUBLE_EQ(p.current_target(), 7.0);
}

TEST(AdaptiveFanout, MaxFanoutCap) {
  FakeEstimator est(100'000.0);  // avg 100 kbps, own 100 Mbps -> ratio 1000
  AdaptiveFanoutConfig cfg;
  cfg.max_fanout = 20.0;
  AdaptiveFanout p(BitRate::mbps(100), &est, cfg);
  EXPECT_DOUBLE_EQ(p.current_target(), 20.0);
}

TEST(AdaptiveFanout, TracksEstimateChanges) {
  FakeEstimator est(1'000'000.0);
  AdaptiveFanout p(BitRate::kbps(1000), &est, AdaptiveFanoutConfig{});
  EXPECT_NEAR(p.current_target(), 7.0, 1e-9);
  est.set(500'000.0);  // average halves -> this node is now twice as capable
  EXPECT_NEAR(p.current_target(), 14.0, 1e-9);
}

TEST(AdaptiveFanout, FloorRoundingBiasesLow) {
  FakeEstimator est(691'000.0);
  AdaptiveFanoutConfig cfg;
  cfg.rounding = FanoutRounding::kFloor;
  AdaptiveFanout p(BitRate::kbps(512), &est, cfg);  // target 5.19
  Rng rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p.fanout_for_round(rng), 5u);
}

TEST(AdaptiveFanout, RandomizedRoundingIsExactInExpectation) {
  FakeEstimator est(691'000.0);
  AdaptiveFanout p(BitRate::kbps(512), &est, AdaptiveFanoutConfig{});
  Rng rng(5);
  double sum = 0;
  constexpr int kRounds = 200000;
  for (int i = 0; i < kRounds; ++i) sum += static_cast<double>(p.fanout_for_round(rng));
  EXPECT_NEAR(sum / kRounds, 7.0 * 512.0 / 691.0, 0.01);
}

}  // namespace
}  // namespace hg::gossip
