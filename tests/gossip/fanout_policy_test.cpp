#include "gossip/fanout_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "aggregation/freshness_aggregator.hpp"

namespace hg::gossip {
namespace {

class FakeEstimator final : public aggregation::CapabilityEstimator {
 public:
  explicit FakeEstimator(double bps) : bps_(bps) {}
  double average_capability_bps() const override { return bps_; }
  void set(double bps) { bps_ = bps; }

 private:
  double bps_;
};

TEST(FixedFanout, IntegerIsExact) {
  FixedFanout p(7.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.fanout_for_round(rng), 7u);
  EXPECT_DOUBLE_EQ(p.current_target(), 7.0);
}

TEST(FixedFanout, FractionalAveragesOut) {
  FixedFanout p(7.4);
  Rng rng(2);
  double sum = 0;
  constexpr int kRounds = 100000;
  for (int i = 0; i < kRounds; ++i) sum += static_cast<double>(p.fanout_for_round(rng));
  EXPECT_NEAR(sum / kRounds, 7.4, 0.02);
}

TEST(FixedFanout, ZeroFanoutIsZero) {
  FixedFanout p(0.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.fanout_for_round(rng), 0u);
}

TEST(FixedFanout, NegativeFanoutClampsToZeroInsteadOfWrapping) {
  // A sweep config of -1 used to floor through size_t and wrap to ~2^64.
  FixedFanout p(-1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.fanout_for_round(rng), 0u);
  FixedFanout tiny(-0.3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tiny.fanout_for_round(rng), 0u);
}

TEST(FixedFanoutDeathTest, NanFanoutAbortsLoudly) {
  EXPECT_DEATH(FixedFanout{std::numeric_limits<double>::quiet_NaN()}, "NaN");
}

TEST(AdaptiveFanoutDeathTest, NanBaseFanoutAbortsLoudly) {
  FakeEstimator est(691'000.0);
  AdaptiveFanoutConfig cfg;
  cfg.base_fanout = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(AdaptiveFanout(BitRate::kbps(512), &est, cfg), "NaN");
}

TEST(AdaptiveFanout, PaperEquationFp) {
  // ms-691: b̄=691 kbps, f=7. Expected targets: 512k -> 5.19, 1M -> 10.37,
  // 3M -> 31.1 (paper Eq. 1 with the aggregation estimate).
  FakeEstimator est(691'000.0);
  AdaptiveFanoutConfig cfg;
  AdaptiveFanout poor(BitRate::kbps(512), &est, cfg);
  AdaptiveFanout mid(BitRate::kbps(1024), &est, cfg);
  AdaptiveFanout rich(BitRate::kbps(3072), &est, cfg);
  EXPECT_NEAR(poor.current_target(), 7.0 * 512.0 / 691.0, 0.01);
  EXPECT_NEAR(mid.current_target(), 7.0 * 1024.0 / 691.0, 0.01);
  EXPECT_NEAR(rich.current_target(), 7.0 * 3072.0 / 691.0, 0.01);
}

TEST(AdaptiveFanout, PopulationAverageEqualsBaseFanout) {
  // The property HEAP relies on: sum of fanouts over the population equals
  // n * f when the estimate is the true average (Eq. 1 + [15]).
  FakeEstimator est(0.0);
  std::vector<double> caps_kbps;
  for (int i = 0; i < 85; ++i) caps_kbps.push_back(512);
  for (int i = 0; i < 10; ++i) caps_kbps.push_back(1024);
  for (int i = 0; i < 5; ++i) caps_kbps.push_back(3072);
  double avg = 0;
  for (double c : caps_kbps) avg += c;
  avg /= static_cast<double>(caps_kbps.size());
  est.set(avg * 1000.0);

  double target_sum = 0;
  Rng rng(3);
  double drawn_sum = 0;
  constexpr int kRounds = 2000;
  for (double c : caps_kbps) {
    AdaptiveFanout p(BitRate::kbps(c), &est, AdaptiveFanoutConfig{});
    target_sum += p.current_target();
    for (int r = 0; r < kRounds; ++r) drawn_sum += static_cast<double>(p.fanout_for_round(rng));
  }
  EXPECT_NEAR(target_sum / static_cast<double>(caps_kbps.size()), 7.0, 1e-9);
  EXPECT_NEAR(drawn_sum / (static_cast<double>(caps_kbps.size()) * kRounds), 7.0, 0.05);
}

TEST(AdaptiveFanout, NoEstimateFallsBackToBase) {
  FakeEstimator est(0.0);
  AdaptiveFanout p(BitRate::kbps(512), &est, AdaptiveFanoutConfig{});
  EXPECT_DOUBLE_EQ(p.current_target(), 7.0);
}

TEST(AdaptiveFanout, MaxFanoutCap) {
  FakeEstimator est(100'000.0);  // avg 100 kbps, own 100 Mbps -> ratio 1000
  AdaptiveFanoutConfig cfg;
  cfg.max_fanout = 20.0;
  AdaptiveFanout p(BitRate::mbps(100), &est, cfg);
  EXPECT_DOUBLE_EQ(p.current_target(), 20.0);
}

TEST(AdaptiveFanout, TracksEstimateChanges) {
  FakeEstimator est(1'000'000.0);
  AdaptiveFanout p(BitRate::kbps(1000), &est, AdaptiveFanoutConfig{});
  EXPECT_NEAR(p.current_target(), 7.0, 1e-9);
  est.set(500'000.0);  // average halves -> this node is now twice as capable
  EXPECT_NEAR(p.current_target(), 14.0, 1e-9);
}

TEST(AdaptiveFanout, FloorRoundingBiasesLow) {
  FakeEstimator est(691'000.0);
  AdaptiveFanoutConfig cfg;
  cfg.rounding = FanoutRounding::kFloor;
  AdaptiveFanout p(BitRate::kbps(512), &est, cfg);  // target 5.19
  Rng rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p.fanout_for_round(rng), 5u);
}

TEST(AdaptiveFanout, RandomizedRoundingIsExactInExpectation) {
  FakeEstimator est(691'000.0);
  AdaptiveFanout p(BitRate::kbps(512), &est, AdaptiveFanoutConfig{});
  Rng rng(5);
  double sum = 0;
  constexpr int kRounds = 200000;
  for (int i = 0; i < kRounds; ++i) sum += static_cast<double>(p.fanout_for_round(rng));
  EXPECT_NEAR(sum / kRounds, 7.0 * 512.0 / 691.0, 0.01);
}

// --- property-based: the HEAP invariant over randomized populations --------
//
// Equation 1 (f_p = f * b_p / b̄) promises that however capabilities are
// distributed, (a) the *system-wide* expected fanout stays N * f — the
// ln(n)+c reliability threshold is preserved — and (b) each node's share is
// proportional to its capability, monotone, never negative, and never NaN.

TEST(AdaptiveFanoutProperty, ExpectedTotalFanoutIsPopulationTimesBase) {
  Rng rng(0xfa42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 50 + static_cast<std::size_t>(rng.below(400));
    const double base_fanout = 2.0 + rng.uniform(0.0, 10.0);
    std::vector<double> caps_bps;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Heavy spread: three decades of capability, like real populations.
      caps_bps.push_back(std::exp(rng.uniform(std::log(64e3), std::log(64e6))));
      sum += caps_bps.back();
    }
    FakeEstimator est(sum / static_cast<double>(n));

    AdaptiveFanoutConfig cfg;
    cfg.base_fanout = base_fanout;
    cfg.min_fanout = 0.0;
    cfg.max_fanout = 1e9;  // no clamping: the algebraic identity must be exact
    double total_target = 0.0;
    for (double c : caps_bps) {
      AdaptiveFanout p(BitRate::bps(static_cast<std::int64_t>(c)), &est, cfg);
      const double target = p.current_target();
      EXPECT_GE(target, 0.0);
      EXPECT_FALSE(std::isnan(target));
      total_target += target;
    }
    const double expected = static_cast<double>(n) * base_fanout;
    EXPECT_NEAR(total_target / expected, 1.0, 1e-6)
        << "trial " << trial << " n=" << n << " f=" << base_fanout;
  }
}

TEST(AdaptiveFanoutProperty, EmpiricalRoundedFanoutMatchesExpectationWithinTolerance) {
  // Same invariant through the randomized-rounding path: averaging the
  // integer per-round fanouts over many rounds recovers N * f.
  Rng rng(0xbeef);
  FakeEstimator est(0.0);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t n = 100;
    const double base_fanout = 7.0;
    std::vector<double> caps_bps;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      caps_bps.push_back(rng.uniform(128e3, 8e6));
      sum += caps_bps.back();
    }
    est.set(sum / static_cast<double>(n));
    AdaptiveFanoutConfig cfg;
    cfg.base_fanout = base_fanout;
    cfg.max_fanout = 1e6;
    double rounds_total = 0.0;
    constexpr int kRounds = 2000;
    for (double c : caps_bps) {
      AdaptiveFanout p(BitRate::bps(static_cast<std::int64_t>(c)), &est, cfg);
      for (int r = 0; r < kRounds; ++r) {
        rounds_total += static_cast<double>(p.fanout_for_round(rng));
      }
    }
    const double mean_total = rounds_total / kRounds;
    EXPECT_NEAR(mean_total / (static_cast<double>(n) * base_fanout), 1.0, 0.02) << trial;
  }
}

TEST(AdaptiveFanoutProperty, FanoutIsMonotoneInCapability) {
  Rng rng(0x5eed);
  for (int trial = 0; trial < 10; ++trial) {
    FakeEstimator est(rng.uniform(256e3, 4e6));
    AdaptiveFanoutConfig cfg;
    cfg.max_fanout = 64.0;  // clamping must preserve (weak) monotonicity
    std::vector<double> caps;
    for (int i = 0; i < 200; ++i) caps.push_back(rng.uniform(1e3, 1e8));
    std::sort(caps.begin(), caps.end());
    double prev = -1.0;
    for (double c : caps) {
      AdaptiveFanout p(BitRate::bps(static_cast<std::int64_t>(c)), &est, cfg);
      const double target = p.current_target();
      EXPECT_GE(target, prev);
      EXPECT_GE(target, 0.0);
      prev = target;
    }
  }
}

TEST(AdaptiveFanoutProperty, ProportionalToCapabilityWhenUnclamped) {
  Rng rng(0xcafe);
  FakeEstimator est(691e3);
  AdaptiveFanoutConfig cfg;
  cfg.max_fanout = 1e9;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(64e3, 4e6);
    const double b = rng.uniform(64e3, 4e6);
    AdaptiveFanout pa(BitRate::bps(static_cast<std::int64_t>(a)), &est, cfg);
    AdaptiveFanout pb(BitRate::bps(static_cast<std::int64_t>(b)), &est, cfg);
    // f_a / f_b == b_a / b_b (proportionality, independent of b̄).
    EXPECT_NEAR(pa.current_target() / pb.current_target(),
                static_cast<double>(static_cast<std::int64_t>(a)) /
                    static_cast<double>(static_cast<std::int64_t>(b)),
                1e-9);
  }
}

TEST(AdaptiveFanoutPropertyDeathTest, NanEstimateIsRejectedAtRoundTime) {
  // A NaN b̄ must abort loudly, not propagate NaN into a size_t cast (UB).
  FakeEstimator est(std::numeric_limits<double>::quiet_NaN());
  AdaptiveFanout p(BitRate::kbps(512), &est, AdaptiveFanoutConfig{});
  Rng rng(6);
  ASSERT_DEATH((void)p.fanout_for_round(rng), "NaN");
}

}  // namespace
}  // namespace hg::gossip
