// WindowRing / EventRing property tests: wraparound reuse after gc,
// clear-window idempotence, allocation-free window cancellation, and
// behavioural equivalence with the hash containers the rings replaced under
// a randomized propose/request/serve/cancel/gc driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "gossip/window_ring.hpp"
#include "net/buffer.hpp"

// Test-local hash support: src/ deliberately defines no std::hash for the id
// types (hash containers are banned there), but the equivalence model below
// is exactly a hash container.
template <>
struct std::hash<hg::EventId> {
  std::size_t operator()(hg::EventId id) const noexcept {
    return static_cast<std::size_t>(id.raw() * 0x9e3779b97f4a7c15ULL);  // Fibonacci hash
  }
};

namespace hg::gossip {
namespace {

TEST(WindowRing, InsertFindErase) {
  WindowRing<int> ring({/*windows=*/4, /*slots=*/16});
  const EventId id{1, 3};
  EXPECT_FALSE(ring.contains(id));
  EXPECT_EQ(ring.find(id), nullptr);

  auto [value, inserted] = ring.insert(id);
  EXPECT_TRUE(inserted);
  *value = 42;
  EXPECT_TRUE(ring.contains(id));
  EXPECT_EQ(*ring.find(id), 42);
  EXPECT_EQ(ring.size(), 1u);

  auto [again, fresh] = ring.insert(id);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(*again, 42);  // try_emplace semantics: no reset of live values
  EXPECT_EQ(ring.size(), 1u);

  EXPECT_TRUE(ring.erase(id));
  EXPECT_FALSE(ring.erase(id));
  EXPECT_FALSE(ring.contains(id));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(WindowRing, VoidRingIsABitmap) {
  WindowRing<void> ring({4, 16});
  EXPECT_TRUE(ring.insert(EventId{2, 5}));
  EXPECT_FALSE(ring.insert(EventId{2, 5}));
  EXPECT_TRUE(ring.contains(EventId{2, 5}));
  EXPECT_FALSE(ring.contains(EventId{2, 6}));
  EXPECT_FALSE(ring.contains(EventId{6, 5}));  // out of domain reports absence
}

TEST(WindowRing, OutOfDomainLookupsAreSafe) {
  WindowRing<int> ring({4, 16});
  ring.advance(10);
  EXPECT_FALSE(ring.contains(EventId{9, 0}));    // below base
  EXPECT_FALSE(ring.contains(EventId{14, 0}));   // beyond base + windows
  EXPECT_FALSE(ring.contains(EventId{10, 16}));  // slot out of range
  EXPECT_EQ(ring.find(EventId{9, 0}), nullptr);
  EXPECT_FALSE(ring.erase(EventId{9, 0}));
  ring.set_cancelled(9);  // ignored, window already gc'd
  EXPECT_FALSE(ring.cancelled(9));
}

TEST(WindowRing, WraparoundReusesSlotsCleanAfterGc) {
  WindowRing<int> ring({3, 8});
  for (std::uint16_t i = 0; i < 8; ++i) *ring.insert(EventId{0, i}).first = 100 + i;
  *ring.insert(EventId{2, 4}).first = 7;
  ring.set_cancelled(0);

  // Advance so window 3 maps onto window 0's old ring slot.
  ring.advance(3);
  EXPECT_EQ(ring.size(), 0u);
  for (std::uint16_t i = 0; i < 8; ++i) EXPECT_FALSE(ring.contains(EventId{0, i}));
  EXPECT_FALSE(ring.cancelled(3));  // the reused slot's flag was reset

  auto [value, inserted] = ring.insert(EventId{3, 2});
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*value, 0);  // fresh default, not window 0's leftover 102
  for (std::uint16_t i = 0; i < 8; ++i) {
    if (i != 2) {
      EXPECT_FALSE(ring.contains(EventId{3, i}));
    }
  }
}

TEST(WindowRing, AdvanceFarBeyondCapacityDropsEverything) {
  WindowRing<int> ring({4, 8});
  for (std::uint32_t w = 0; w < 4; ++w) ring.insert(EventId{w, 1});
  ring.advance(1000);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.base(), 1000u);
  for (std::uint32_t w = 1000; w < 1004; ++w) {
    EXPECT_FALSE(ring.contains(EventId{w, 1}));
    EXPECT_TRUE(ring.insert(EventId{w, 1}).second);
  }
}

TEST(WindowRing, AdvanceBackwardsIsANoOp) {
  WindowRing<int> ring({4, 8});
  ring.advance(10);
  ring.insert(EventId{11, 3});
  ring.advance(10);
  ring.advance(5);
  EXPECT_EQ(ring.base(), 10u);
  EXPECT_TRUE(ring.contains(EventId{11, 3}));
}

TEST(WindowRing, ClearWindowIsIdempotent) {
  WindowRing<int> ring({4, 8});
  ring.insert(EventId{1, 0});
  ring.insert(EventId{1, 7});
  ring.insert(EventId{2, 3});
  ring.clear_window(1);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_FALSE(ring.contains(EventId{1, 0}));
  EXPECT_TRUE(ring.contains(EventId{2, 3}));
  const std::size_t bytes = ring.state_bytes();
  ring.clear_window(1);  // idempotent: no state change, no double-count
  ring.clear_window(99);  // out of domain: ignored
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.state_bytes(), bytes);
  EXPECT_TRUE(ring.insert(EventId{1, 0}).second);
}

TEST(WindowRing, ClearWindowKeepsCancelledFlag) {
  WindowRing<void> ring({4, 8});
  ring.insert(EventId{1, 2});
  ring.set_cancelled(1);
  ring.clear_window(1);
  EXPECT_TRUE(ring.cancelled(1));  // flags outlive entries until gc
  ring.advance(2);
  EXPECT_FALSE(ring.cancelled(1));
}

TEST(WindowRing, CancellingManyWindowsDoesNotAllocate) {
  WindowRing<void> ring({64, 128});
  const std::size_t idle = ring.state_bytes();
  for (std::uint32_t w = 0; w < 64; ++w) ring.set_cancelled(w);
  EXPECT_EQ(ring.state_bytes(), idle);  // flags live in the fixed ring state
  for (std::uint32_t w = 0; w < 64; ++w) EXPECT_TRUE(ring.cancelled(w));
  // And across gc churn the footprint stays flat — the old unordered set
  // grew by one node per cancelled window between sweeps.
  for (std::uint32_t base = 1; base < 10000; base += 97) {
    ring.advance(base);
    for (std::uint32_t w = base; w < base + 64; w += 3) ring.set_cancelled(w);
    EXPECT_EQ(ring.state_bytes(), idle);
  }
}

TEST(WindowRing, SlabReleasedWhenWindowEmpties) {
  WindowRing<int> ring({8, 128});
  const std::size_t idle = ring.state_bytes();
  ring.insert(EventId{3, 10});
  ring.insert(EventId{3, 11});
  EXPECT_GT(ring.state_bytes(), idle);
  ring.erase(EventId{3, 10});
  EXPECT_GT(ring.state_bytes(), idle);
  ring.erase(EventId{3, 11});
  EXPECT_EQ(ring.state_bytes(), idle);  // release-on-empty
}

TEST(WindowRing, ForEachVisitsInIndexOrder) {
  WindowRing<int> ring({4, 200});
  for (std::uint16_t i : {150, 3, 64, 63, 7}) *ring.insert(EventId{1, i}).first = i;
  std::vector<std::uint32_t> order;
  ring.for_each_in_window(1, [&](std::uint32_t index, int& value) {
    EXPECT_EQ(value, static_cast<int>(index));
    order.push_back(index);
  });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{3, 7, 63, 64, 150}));
}

// The randomized equivalence drive: a WindowRing and the unordered
// containers it replaced, fed the same gc-disciplined op stream
// (insert/erase/cancel/clear/advance), must agree on every lookup.
TEST(WindowRing, FuzzEquivalentToHashContainers) {
  constexpr std::uint32_t kWindows = 8;
  constexpr std::uint32_t kSlots = 24;
  WindowRing<std::uint32_t> ring({kWindows, kSlots});
  std::unordered_map<EventId, std::uint32_t> map;
  std::unordered_set<std::uint32_t> cancelled;
  std::uint32_t base = 0;
  std::uint32_t stamp = 1;
  Rng rng(0x57a7e0f0516ull);

  for (int step = 0; step < 20000; ++step) {
    const auto window = base + static_cast<std::uint32_t>(rng.below(kWindows));
    const EventId id{window, static_cast<std::uint16_t>(rng.below(kSlots))};
    switch (rng.below(16)) {
      case 0: {  // gc
        const auto new_base = base + static_cast<std::uint32_t>(rng.below(3));
        ring.advance(new_base);
        if (new_base > base) {
          std::erase_if(map, [&](const auto& kv) { return kv.first.window() < new_base; });
          std::erase_if(cancelled, [&](std::uint32_t w) { return w < new_base; });
          base = new_base;
        }
        break;
      }
      case 1:
        ring.set_cancelled(window);
        cancelled.insert(window);
        break;
      case 2:
        std::erase_if(map, [&](const auto& kv) { return kv.first.window() == window; });
        ring.clear_window(window);
        break;
      case 3:
      case 4:
        EXPECT_EQ(ring.erase(id), map.erase(id) > 0);
        break;
      default: {
        if (rng.below(2) == 0) {
          auto [value, inserted] = ring.insert(id);
          auto [it, map_inserted] = map.try_emplace(id, 0u);
          ASSERT_EQ(inserted, map_inserted);
          if (inserted) {
            *value = it->second = stamp++;
          }
          ASSERT_EQ(*value, it->second);
        } else {
          const auto it = map.find(id);
          const std::uint32_t* value = ring.find(id);
          ASSERT_EQ(value != nullptr, it != map.end());
          if (value != nullptr) {
            ASSERT_EQ(*value, it->second);
          }
          ASSERT_EQ(ring.cancelled(window), cancelled.contains(window));
        }
        break;
      }
    }
    ASSERT_EQ(ring.size(), map.size());
  }
}

TEST(EventRing, StoresVirtualAndRealPayloads) {
  EventRing ring({4, 8});
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  Event real{EventId{0, 1}, net::BufferRef::copy_of(bytes), 0};
  Event virt{EventId{0, 2}, net::BufferRef{}, 1316};
  ring.insert(real);
  ring.insert(virt);
  EXPECT_EQ(ring.size(), 2u);

  const Event* r = ring.find(EventId{0, 1});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id, (EventId{0, 1}));
  ASSERT_TRUE(r->payload);
  EXPECT_EQ(r->payload.size(), 4u);
  EXPECT_FALSE(r->virtual_payload());

  const Event* v = ring.find(EventId{0, 2});
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->virtual_payload());
  EXPECT_EQ(v->payload_size(), 1316u);

  EXPECT_EQ(ring.find(EventId{1, 1}), nullptr);
  EXPECT_EQ(ring.find(EventId{0, 3}), nullptr);
}

TEST(EventRing, VirtualWindowsAllocateNoPayloadSlabs) {
  EventRing virt_ring({4, 110});
  EventRing real_ring({4, 110});
  const std::uint8_t bytes[] = {9};
  for (std::uint16_t i = 0; i < 110; ++i) {
    virt_ring.insert(Event{EventId{0, i}, net::BufferRef{}, 1316});
    real_ring.insert(Event{EventId{0, i}, net::BufferRef::copy_of(bytes), 0});
  }
  // Same occupancy, but the all-virtual window carries no BufferRef array.
  EXPECT_EQ(real_ring.state_bytes() - virt_ring.state_bytes(),
            110 * sizeof(net::BufferRef));
}

TEST(EventRing, AdvanceReleasesPayloadRefs) {
  EventRing ring({2, 8});
  const std::uint8_t bytes[] = {1, 2, 3};
  net::BufferRef payload = net::BufferRef::copy_of(bytes);
  ring.insert(Event{EventId{0, 0}, payload, 0});
  ring.insert(Event{EventId{1, 0}, net::BufferRef{}, 99});
  const std::size_t loaded = ring.state_bytes();
  ring.advance(2);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_LT(ring.state_bytes(), loaded);
  EXPECT_FALSE(ring.contains(EventId{0, 0}));
  EXPECT_FALSE(ring.contains(EventId{1, 0}));
  // Wraparound reuse: window 2 lands on window 0's slot, starts clean.
  ring.insert(Event{EventId{2, 5}, net::BufferRef{}, 7});
  const Event* e = ring.find(EventId{2, 5});
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->payload);
  EXPECT_EQ(e->virtual_size, 7u);
}

}  // namespace
}  // namespace hg::gossip
