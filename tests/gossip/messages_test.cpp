#include "gossip/messages.hpp"

#include <gtest/gtest.h>

namespace hg::gossip {
namespace {

TEST(EventId, PackUnpack) {
  const EventId id{12345, 109};
  EXPECT_EQ(id.window(), 12345u);
  EXPECT_EQ(id.index(), 109u);
  EXPECT_EQ(EventId::from_raw(id.raw()), id);
}

TEST(EventId, Ordering) {
  EXPECT_LT(EventId(1, 5), EventId(2, 0));
  EXPECT_LT(EventId(1, 5), EventId(1, 6));
}

TEST(Messages, ProposeRoundTrip) {
  ProposeMsg m{NodeId{42}, {EventId{1, 0}, EventId{1, 1}, EventId{2, 108}}};
  auto buf = encode(m);
  EXPECT_EQ(peek_tag(*buf), MsgTag::kPropose);
  auto out = decode_propose(*buf);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, NodeId{42});
  EXPECT_EQ(out->ids, m.ids);
}

TEST(Messages, ProposeSizeMatchesPaperArithmetic) {
  // 11 ids/propose (paper: 11.26 avg): 1 tag + 4 sender + 1 varint + 11*8.
  std::vector<EventId> ids;
  for (std::uint16_t i = 0; i < 11; ++i) ids.emplace_back(3, i);
  auto buf = encode(ProposeMsg{NodeId{1}, ids});
  EXPECT_EQ(buf->size(), 1u + 4u + 1u + 11u * 8u);
}

TEST(Messages, RequestRoundTrip) {
  RequestMsg m{NodeId{7}, {EventId{9, 3}}};
  auto out = decode_request(*encode(m));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, NodeId{7});
  EXPECT_EQ(out->ids, m.ids);
}

TEST(Messages, ServeRoundTripWithPayload) {
  auto payload = std::make_shared<const std::vector<std::uint8_t>>(1316, 0x5a);
  ServeMsg m{NodeId{3}, Event{EventId{4, 77}, payload}};
  auto buf = encode(m);
  EXPECT_GT(buf->size(), 1316u);
  auto out = decode_serve(*buf);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, NodeId{3});
  EXPECT_EQ(out->event.id, (EventId{4, 77}));
  ASSERT_TRUE(out->event.payload);
  EXPECT_EQ(*out->event.payload, *payload);
}

TEST(Messages, ServeRoundTripEmptyPayload) {
  ServeMsg m{NodeId{3}, Event{EventId{4, 77}, nullptr}};
  auto out = decode_serve(*encode(m));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->event.payload_size(), 0u);
}

TEST(Messages, AggregationRoundTrip) {
  AggregationMsg m{NodeId{9},
                   {{NodeId{1}, 512'000, sim::SimTime::ms(100)},
                    {NodeId{2}, 3'072'000, sim::SimTime::ms(250)}}};
  auto out = decode_aggregation(*encode(m));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->records.size(), 2u);
  EXPECT_EQ(out->records[0].origin, NodeId{1});
  EXPECT_EQ(out->records[0].capability_bps, 512'000);
  EXPECT_EQ(out->records[1].measured_at, sim::SimTime::ms(250));
}

TEST(Messages, AggregationCostMatchesPaperClaim) {
  // "gossips the 10 freshest local capabilities every 200 ms, costing
  // around 1 KB/s": 10 records * 20 B + header ~= 206 B, * 5/s ~= 1 KB/s.
  std::vector<CapabilityRecord> records(10, {NodeId{1}, 1'000'000, sim::SimTime::ms(1)});
  auto buf = encode(AggregationMsg{NodeId{0}, records});
  const double per_sec = (static_cast<double>(buf->size()) + 28.0) * 5.0;  // + UDP/IP
  EXPECT_LT(per_sec, 1300.0);
  EXPECT_GT(per_sec, 800.0);
}

TEST(Messages, DecodeRejectsWrongTag) {
  auto buf = encode(ProposeMsg{NodeId{1}, {EventId{1, 1}}});
  EXPECT_FALSE(decode_request(*buf).has_value());
  EXPECT_FALSE(decode_serve(*buf).has_value());
  EXPECT_FALSE(decode_aggregation(*buf).has_value());
}

TEST(Messages, DecodeRejectsTruncation) {
  auto buf = encode(ServeMsg{
      NodeId{3}, Event{EventId{4, 7},
                       std::make_shared<const std::vector<std::uint8_t>>(100, 1)}});
  for (std::size_t cut : {1UL, 5UL, 13UL, 50UL}) {
    std::vector<std::uint8_t> shorter(buf->begin(), buf->end() - static_cast<long>(cut));
    EXPECT_FALSE(decode_serve(shorter).has_value()) << "cut=" << cut;
  }
}

TEST(Messages, PeekTagRejectsGarbage) {
  std::vector<std::uint8_t> junk{0xee, 1, 2, 3};
  EXPECT_FALSE(peek_tag(junk).has_value());
  std::vector<std::uint8_t> empty;
  EXPECT_FALSE(peek_tag(empty).has_value());
}

}  // namespace
}  // namespace hg::gossip
