#include "gossip/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hg::gossip {
namespace {

net::BufferRef make_payload(std::size_t n, std::uint8_t fill) {
  return net::BufferRef::copy_of(std::vector<std::uint8_t>(n, fill));
}

TEST(EventId, PackUnpack) {
  const EventId id{12345, 109};
  EXPECT_EQ(id.window(), 12345u);
  EXPECT_EQ(id.index(), 109u);
  EXPECT_EQ(EventId::from_raw(id.raw()), id);
}

TEST(EventId, Ordering) {
  EXPECT_LT(EventId(1, 5), EventId(2, 0));
  EXPECT_LT(EventId(1, 5), EventId(1, 6));
}

TEST(Messages, ProposeRoundTrip) {
  ProposeMsg m{NodeId{42}, {EventId{1, 0}, EventId{1, 1}, EventId{2, 108}}};
  auto buf = encode(m);
  EXPECT_EQ(peek_tag(buf), MsgTag::kPropose);
  auto out = decode_propose(buf);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, NodeId{42});
  EXPECT_EQ(out->ids, m.ids);
}

TEST(Messages, ProposeSizeMatchesPaperArithmetic) {
  // 11 ids/propose (paper: 11.26 avg): 1 tag + 4 sender + 1 varint + 11*8.
  std::vector<EventId> ids;
  for (std::uint16_t i = 0; i < 11; ++i) ids.emplace_back(3, i);
  auto buf = encode(ProposeMsg{NodeId{1}, ids});
  EXPECT_EQ(buf.size(), 1u + 4u + 1u + 11u * 8u);
}

TEST(Messages, RequestRoundTrip) {
  RequestMsg m{NodeId{7}, {EventId{9, 3}}};
  auto out = decode_request(encode(m));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, NodeId{7});
  EXPECT_EQ(out->ids, m.ids);
}

TEST(Messages, ServeRoundTripWithPayload) {
  auto payload = make_payload(1316, 0x5a);
  ServeMsg m{NodeId{3}, Event{EventId{4, 77}, payload}};
  auto buf = encode(m);
  EXPECT_GT(buf.size(), 1316u);
  auto out = decode_serve(buf);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, NodeId{3});
  EXPECT_EQ(out->event.id, (EventId{4, 77}));
  ASSERT_TRUE(out->event.payload);
  EXPECT_EQ(out->event.payload.to_vector(), payload.to_vector());
}

TEST(Messages, DecodeServeFromBufferIsZeroCopy) {
  auto buf = encode(ServeMsg{NodeId{3}, Event{EventId{4, 77}, make_payload(256, 0x5a)}});
  auto out = decode_serve(buf);
  ASSERT_TRUE(out.has_value());
  // The payload points into the encoded buffer itself and pins it.
  EXPECT_GE(out->event.payload.data(), buf.data());
  EXPECT_LT(out->event.payload.data(), buf.data() + buf.size());
  EXPECT_EQ(buf.ref_count(), 2u);
}

TEST(Messages, ServeRoundTripEmptyPayload) {
  ServeMsg m{NodeId{3}, Event{EventId{4, 77}, net::BufferRef{}}};
  auto out = decode_serve(encode(m));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->event.payload_size(), 0u);
}

TEST(Messages, BatchedServeSlicesMatchIndividualEncodes) {
  // The serve batch path writes N standalone ServeMsg encodings into one
  // buffer; each slice must be bit-identical to a solo encode(ServeMsg).
  std::vector<Event> events;
  for (std::uint16_t k = 0; k < 5; ++k) {
    events.push_back(Event{EventId{7, k}, make_payload(100 + k * 40u, 0x21 + k)});
  }
  for (const Event& e : events) {
    EXPECT_EQ(encoded_serve_size(e), encode(ServeMsg{NodeId{9}, e}).size());
  }
  std::vector<ServeSpan> spans;
  const net::BufferRef batch = encode_serve_batch(NodeId{9}, events, spans);
  ASSERT_EQ(spans.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(spans[i].phantom_bytes, 0u);  // real payloads: nothing phantom
    const net::BufferRef slice = batch.slice(spans[i].offset, spans[i].length);
    EXPECT_EQ(slice.to_vector(), encode(ServeMsg{NodeId{9}, events[i]}).to_vector());
    auto out = decode_serve(slice);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->event.id, events[i].id);
    EXPECT_EQ(out->event.payload.to_vector(), events[i].payload.to_vector());
  }
}

TEST(Messages, VirtualServeRoundTripAndPhantomAccounting) {
  // A virtual-payload serve ships the header + declared length only; the
  // span carries the missing bytes as phantom, and header+phantom together
  // account exactly what the real-payload encoding would put on the wire.
  const Event real{EventId{7, 3}, make_payload(1316, 0x5a)};
  Event virt;
  virt.id = real.id;
  virt.virtual_size = 1316;
  ASSERT_TRUE(virt.virtual_payload());
  EXPECT_EQ(virt.payload_size(), real.payload_size());
  EXPECT_EQ(encoded_serve_size(virt), encoded_serve_size(real));

  std::vector<Event> events{virt};
  std::vector<ServeSpan> spans;
  const net::BufferRef batch = encode_serve_batch(NodeId{9}, events, spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].phantom_bytes, 1316u);
  EXPECT_EQ(spans[0].length + spans[0].phantom_bytes, encoded_serve_size(real));

  const net::BufferRef slice = batch.slice(spans[0].offset, spans[0].length);
  // Virtual framing decodes only in virtual mode...
  const auto out = decode_serve(slice, /*virtual_payloads=*/true);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, NodeId{9});
  EXPECT_EQ(out->event.id, virt.id);
  EXPECT_TRUE(out->event.virtual_payload());
  EXPECT_EQ(out->event.payload_size(), 1316u);
  // ...while a real-mode decode sees a truncated payload and rejects it.
  EXPECT_FALSE(decode_serve(slice).has_value());
  // And a real-payload serve is rejected by a virtual-mode decoder (framing
  // mismatch must be loud, not shrugged off as loss).
  EXPECT_FALSE(
      decode_serve(encode(ServeMsg{NodeId{9}, real}), /*virtual_payloads=*/true).has_value());
}

TEST(Messages, AggregationRoundTrip) {
  AggregationMsg m{NodeId{9},
                   {{NodeId{1}, 512'000, sim::SimTime::ms(100)},
                    {NodeId{2}, 3'072'000, sim::SimTime::ms(250)}}};
  auto out = decode_aggregation(encode(m));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->records.size(), 2u);
  EXPECT_EQ(out->records[0].origin, NodeId{1});
  EXPECT_EQ(out->records[0].capability_bps, 512'000);
  EXPECT_EQ(out->records[1].measured_at, sim::SimTime::ms(250));
}

TEST(Messages, AggregationCostMatchesPaperClaim) {
  // "gossips the 10 freshest local capabilities every 200 ms, costing
  // around 1 KB/s": 10 records * 20 B + header ~= 206 B, * 5/s ~= 1 KB/s.
  std::vector<CapabilityRecord> records(10, {NodeId{1}, 1'000'000, sim::SimTime::ms(1)});
  auto buf = encode(AggregationMsg{NodeId{0}, records});
  const double per_sec = (static_cast<double>(buf.size()) + 28.0) * 5.0;  // + UDP/IP
  EXPECT_LT(per_sec, 1300.0);
  EXPECT_GT(per_sec, 800.0);
}

TEST(Messages, DecodeRejectsWrongTag) {
  auto buf = encode(ProposeMsg{NodeId{1}, {EventId{1, 1}}});
  EXPECT_FALSE(decode_request(buf).has_value());
  EXPECT_FALSE(decode_serve(buf).has_value());
  EXPECT_FALSE(decode_aggregation(buf).has_value());
}

TEST(Messages, DecodeRejectsTruncation) {
  auto buf = encode(ServeMsg{NodeId{3}, Event{EventId{4, 7}, make_payload(100, 1)}});
  const auto whole = buf.to_vector();
  for (std::size_t cut : {1UL, 5UL, 13UL, 50UL}) {
    std::vector<std::uint8_t> shorter(whole.begin(), whole.end() - static_cast<long>(cut));
    EXPECT_FALSE(decode_serve(std::span<const std::uint8_t>(shorter)).has_value())
        << "cut=" << cut;
  }
}

TEST(Messages, PeekTagRejectsGarbage) {
  std::vector<std::uint8_t> junk{0xee, 1, 2, 3};
  EXPECT_FALSE(peek_tag(junk).has_value());
  std::vector<std::uint8_t> empty;
  EXPECT_FALSE(peek_tag(empty).has_value());
}

// --- randomized robustness: all four codecs -------------------------------
// Round-trip random messages bit-exactly, then corrupt every prefix length
// and random bytes; decode must return nullopt or a value, never read out
// of bounds (the ASan CI job turns any overread into a failure).

ProposeMsg random_propose(Rng& rng) {
  ProposeMsg m{NodeId{static_cast<std::uint32_t>(rng.below(1000))}, {}};
  const std::size_t n = rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    m.ids.emplace_back(static_cast<std::uint32_t>(rng.below(1 << 20)),
                       static_cast<std::uint16_t>(rng.below(110)));
  }
  return m;
}

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(256));
  return v;
}

TEST(MessagesFuzz, RandomizedRoundTripAllCodecs) {
  Rng rng(2026);
  for (int iter = 0; iter < 200; ++iter) {
    const ProposeMsg p = random_propose(rng);
    auto pd = decode_propose(encode(p));
    ASSERT_TRUE(pd.has_value());
    EXPECT_EQ(pd->sender, p.sender);
    EXPECT_EQ(pd->ids, p.ids);

    const RequestMsg q{p.sender, p.ids};
    auto qd = decode_request(encode(q));
    ASSERT_TRUE(qd.has_value());
    EXPECT_EQ(qd->ids, q.ids);

    const ServeMsg s{NodeId{static_cast<std::uint32_t>(rng.below(1000))},
                     Event{EventId{static_cast<std::uint32_t>(rng.below(1 << 16)),
                                   static_cast<std::uint16_t>(rng.below(110))},
                           net::BufferRef::copy_of(random_bytes(rng, rng.below(1400)))}};
    auto sd = decode_serve(encode(s));
    ASSERT_TRUE(sd.has_value());
    EXPECT_EQ(sd->event.id, s.event.id);
    EXPECT_EQ(sd->event.payload.to_vector(), s.event.payload.to_vector());

    AggregationMsg a{NodeId{1}, {}};
    const std::size_t recs = rng.below(15);
    for (std::size_t i = 0; i < recs; ++i) {
      a.records.push_back(CapabilityRecord{
          NodeId{static_cast<std::uint32_t>(rng.below(1000))},
          static_cast<std::int64_t>(rng.below(10'000'000)),
          sim::SimTime::us(static_cast<std::int64_t>(rng.below(1'000'000'000)))});
    }
    auto ad = decode_aggregation(encode(a));
    ASSERT_TRUE(ad.has_value());
    ASSERT_EQ(ad->records.size(), a.records.size());
    for (std::size_t i = 0; i < recs; ++i) {
      EXPECT_EQ(ad->records[i].origin, a.records[i].origin);
      EXPECT_EQ(ad->records[i].capability_bps, a.records[i].capability_bps);
    }
  }
}

void decode_all(std::span<const std::uint8_t> buf) {
  (void)peek_tag(buf);
  (void)decode_propose(buf);
  (void)decode_request(buf);
  (void)decode_serve(buf);
  (void)decode_aggregation(buf);
}

TEST(MessagesFuzz, EveryPrefixOfEveryCodecIsSafe) {
  Rng rng(7);
  std::vector<net::BufferRef> encoded{
      encode(random_propose(rng)),
      encode(RequestMsg{NodeId{3}, {EventId{1, 2}, EventId{1, 3}}}),
      encode(ServeMsg{NodeId{5},
                      Event{EventId{9, 9}, net::BufferRef::copy_of(random_bytes(rng, 300))}}),
      encode(AggregationMsg{NodeId{2},
                            {{NodeId{4}, 512'000, sim::SimTime::ms(9)},
                             {NodeId{5}, 128'000, sim::SimTime::ms(10)}}}),
  };
  for (const auto& buf : encoded) {
    const auto whole = buf.to_vector();
    // Every strict prefix: decoders must reject without overreading.
    for (std::size_t len = 0; len < whole.size(); ++len) {
      decode_all(std::span<const std::uint8_t>(whole.data(), len));
    }
  }
}

TEST(MessagesFuzz, CorruptedBytesNeverReadOutOfBounds) {
  Rng rng(13);
  for (int iter = 0; iter < 300; ++iter) {
    auto whole =
        encode(ServeMsg{NodeId{5}, Event{EventId{9, 9},
                                         net::BufferRef::copy_of(random_bytes(rng, 200))}})
            .to_vector();
    // Flip a few random bytes — length prefixes and varints included.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      whole[rng.below(whole.size())] = static_cast<std::uint8_t>(rng.below(256));
    }
    decode_all(whole);
    // Pure noise, too.
    decode_all(random_bytes(rng, rng.below(64)));
  }
}

TEST(MessagesFuzz, OversizedLengthClaimsAreRejected) {
  // A varint length prefix claiming more bytes than the buffer holds (or
  // than 64 bits can express) must fail cleanly, not wrap pos_ + n.
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgTag::kServe));
  w.u32(1);
  w.u64(EventId{1, 1}.raw());
  for (int i = 0; i < 9; ++i) w.u8(0xff);  // varint claiming ~2^63 payload bytes
  w.u8(0x7f);
  const auto buf = w.finish();
  EXPECT_FALSE(decode_serve(buf).has_value());

  net::ByteWriter w2;
  w2.u8(static_cast<std::uint8_t>(MsgTag::kPropose));
  w2.u32(1);
  for (int i = 0; i < 10; ++i) w2.u8(0xff);  // varint overflowing 64 bits
  EXPECT_FALSE(decode_propose(w2.finish()).has_value());
}

}  // namespace
}  // namespace hg::gossip
