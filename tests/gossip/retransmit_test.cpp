#include "gossip/retransmit.hpp"

#include <gtest/gtest.h>

namespace hg::gossip {
namespace {

struct Fired {
  EventId id;
  int retry;
};

TEST(Retransmit, FiresAfterPeriod) {
  sim::Simulator s(1);
  std::vector<Fired> fired;
  RetransmitTracker t(s, sim::SimTime::ms(500), 3,
                      [&](EventId id, int r) { fired.push_back({id, r}); });
  t.arm(EventId{1, 0}, 0);
  s.run_until(sim::SimTime::ms(499));
  EXPECT_TRUE(fired.empty());
  s.run_until(sim::SimTime::ms(501));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].id, (EventId{1, 0}));
  EXPECT_EQ(fired[0].retry, 1);
}

TEST(Retransmit, CancelStopsTimer) {
  sim::Simulator s(1);
  int count = 0;
  RetransmitTracker t(s, sim::SimTime::ms(500), 3, [&](EventId, int) { ++count; });
  t.arm(EventId{1, 0}, 0);
  t.cancel(EventId{1, 0});
  s.run_until(sim::SimTime::sec(10));
  EXPECT_EQ(count, 0);
  EXPECT_EQ(t.stats().cancelled_by_serve, 1u);
  EXPECT_FALSE(t.tracking(EventId{1, 0}));
}

TEST(Retransmit, ExponentialBackoff) {
  sim::Simulator s(1);
  std::vector<sim::SimTime> at;
  RetransmitTracker t(s, sim::SimTime::ms(100), 10, [&](EventId id, int r) {
    at.push_back(s.now());
    t.arm(id, r);  // owner re-arms like ThreePhaseGossip does
  });
  t.arm(EventId{1, 0}, 0);
  s.run_until(sim::SimTime::sec(5));
  // Timeouts: 100, then 200, 400, 800, 800 (capped at x8), ...
  ASSERT_GE(at.size(), 5u);
  EXPECT_EQ(at[0], sim::SimTime::ms(100));
  EXPECT_EQ(at[1], sim::SimTime::ms(300));
  EXPECT_EQ(at[2], sim::SimTime::ms(700));
  EXPECT_EQ(at[3], sim::SimTime::ms(1500));
  EXPECT_EQ(at[4], sim::SimTime::ms(2300));  // capped: +800
}

TEST(Retransmit, GivesUpAfterMaxRetries) {
  sim::Simulator s(1);
  int fires = 0;
  RetransmitTracker t(s, sim::SimTime::ms(10), 2, [&](EventId id, int r) {
    ++fires;
    t.arm(id, r);
  });
  t.arm(EventId{2, 0}, 0);
  s.run_until(sim::SimTime::sec(10));
  // retry 1, retry 2, then the retry-count check (>= 2) drops it.
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(t.stats().gave_up, 1u);
  EXPECT_FALSE(t.tracking(EventId{2, 0}));
}

TEST(Retransmit, CancelWindowDropsAllEntries) {
  sim::Simulator s(1);
  int fires = 0;
  RetransmitTracker t(s, sim::SimTime::ms(100), 5, [&](EventId, int) { ++fires; });
  for (std::uint16_t i = 0; i < 10; ++i) t.arm(EventId{7, i}, 0);
  t.arm(EventId{8, 0}, 0);
  EXPECT_EQ(t.pending_count(), 11u);
  t.cancel_window(7);
  EXPECT_EQ(t.pending_count(), 1u);
  s.run_until(sim::SimTime::sec(1));
  EXPECT_EQ(fires, 1);  // only the window-8 timer fired
}

TEST(Retransmit, GcSilentlyDropsTimersBelowCutoff) {
  sim::Simulator s(1);
  int fires = 0;
  RetransmitTracker t(s, sim::SimTime::ms(100), 5, [&](EventId, int) { ++fires; });
  for (std::uint32_t w = 0; w < 4; ++w) t.arm(EventId{w, 0}, 0);
  t.gc(2);  // windows 0 and 1 leave the domain
  EXPECT_EQ(t.pending_count(), 2u);
  EXPECT_FALSE(t.tracking(EventId{0, 0}));
  EXPECT_FALSE(t.tracking(EventId{1, 0}));
  EXPECT_TRUE(t.tracking(EventId{2, 0}));
  s.run_until(sim::SimTime::sec(1));
  EXPECT_EQ(fires, 2);  // the gc'd timers were cancelled, not fired
  // Silent: gc'd timers are neither serves nor give-ups.
  EXPECT_EQ(t.stats().cancelled_by_serve, 0u);
  EXPECT_EQ(t.stats().gave_up, 0u);
}

TEST(Retransmit, StateBytesShrinkWithCancellation) {
  sim::Simulator s(1);
  RetransmitTracker t(s, sim::SimTime::ms(100), 5, [](EventId, int) {});
  const std::size_t idle = t.state_bytes();
  for (std::uint16_t i = 0; i < 20; ++i) t.arm(EventId{3, i}, 0);
  EXPECT_GT(t.state_bytes(), idle);
  t.cancel_window(3);
  EXPECT_EQ(t.state_bytes(), idle);  // slab released with the last timer
}

TEST(Retransmit, RearmResetsTimer) {
  sim::Simulator s(1);
  std::vector<sim::SimTime> at;
  RetransmitTracker t(s, sim::SimTime::ms(100), 5,
                      [&](EventId, int) { at.push_back(s.now()); });
  t.arm(EventId{1, 1}, 0);
  s.run_until(sim::SimTime::ms(50));
  t.arm(EventId{1, 1}, 0);  // re-arm halfway: timer restarts
  s.run_until(sim::SimTime::sec(1));
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], sim::SimTime::ms(150));
}

}  // namespace
}  // namespace hg::gossip
