// Property sweep: gossip reliability as a function of fanout (the [15]
// threshold result HEAP leans on). Below ln(n) dissemination leaves gaps;
// at ln(n)+c it reaches everyone w.h.p. — regardless of whether the fanout
// is homogeneous (standard) or heterogeneous with the same average (HEAP's
// degrees of freedom).
#include <gtest/gtest.h>

#include "gossip/fanout_policy.hpp"
#include "gossip/three_phase.hpp"

namespace hg::gossip {
namespace {

struct SweepParam {
  std::size_t nodes;
  double fanout;
  bool expect_full;  // complete dissemination expected (w.h.p.)
};

class ReliabilitySweep : public ::testing::TestWithParam<SweepParam> {};

double run_delivery_fraction(std::size_t n, double fanout, std::uint64_t seed,
                             bool heterogeneous = false) {
  sim::Simulator sim(seed);
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
                            std::make_unique<net::NoLoss>());
  membership::Directory directory(sim, membership::DetectionConfig{});
  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<FixedFanout>> policies;
  std::vector<std::unique_ptr<ThreePhaseGossip>> nodes;
  std::vector<int> got(n, 0);

  Rng het_rng(seed ^ 0x1234);
  for (std::uint32_t i = 0; i < n; ++i) directory.add_node(NodeId{i});
  for (std::uint32_t i = 0; i < n; ++i) {
    views.push_back(directory.make_view(NodeId{i}));
    // Heterogeneous: fanouts drawn in [fanout/2, 3*fanout/2], mean = fanout —
    // the shape HEAP produces (same average, different spread).
    const double f = heterogeneous ? het_rng.uniform(fanout * 0.5, fanout * 1.5) : fanout;
    policies.push_back(std::make_unique<FixedFanout>(f));
    GossipConfig cfg;
    cfg.max_retransmits = 0;  // isolate pure epidemic reach
    nodes.push_back(std::make_unique<ThreePhaseGossip>(sim, fabric, *views.back(),
                                                       NodeId{i}, cfg, *policies.back()));
    nodes.back()->set_deliver([&got, i](const Event&) { got[i] = 1; });
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [g = nodes.back().get()](const net::Datagram& d) {
                           g->on_datagram(d);
                         });
  }
  for (auto& g : nodes) g->start();
  nodes[0]->publish(
      Event{EventId{0, 0}, net::BufferRef::copy_of(std::vector<std::uint8_t>(16, 1))});
  sim.run_until(sim::SimTime::sec(20));
  double total = 0;
  for (int v : got) total += v;
  return total / static_cast<double>(n);
}

TEST_P(ReliabilitySweep, DeliveryMatchesThreshold) {
  const auto [n, fanout, expect_full] = GetParam();
  // Average over several seeds: epidemics are probabilistic.
  double mean = 0;
  int full_runs = 0;
  constexpr int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    const double frac = run_delivery_fraction(n, fanout, 100 + s);
    mean += frac;
    full_runs += (frac == 1.0);
  }
  mean /= kSeeds;
  if (expect_full) {
    EXPECT_GE(full_runs, kSeeds - 1) << "fanout " << fanout << " n " << n;
    EXPECT_GT(mean, 0.995);
  } else {
    EXPECT_LT(full_runs, kSeeds) << "sub-threshold fanout should miss nodes sometimes";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutThreshold, ReliabilitySweep,
    ::testing::Values(SweepParam{100, 1.5, false},   // far below ln(100)=4.6
                      SweepParam{100, 3.0, false},   // below threshold
                      SweepParam{100, 7.0, true},    // ln(n)+c
                      SweepParam{100, 10.0, true},
                      SweepParam{270, 2.0, false},
                      SweepParam{270, 7.0, true},    // the paper's setting
                      SweepParam{270, 9.0, true}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.nodes) + "_f" +
             std::to_string(static_cast<int>(info.param.fanout * 10));
    });

TEST(ReliabilityHeterogeneous, SameAverageFanoutSameReach) {
  // [15]: reliability depends on the *average* fanout, not its distribution
  // — the theoretical license for HEAP's adaptation. Heterogeneous fanouts
  // with mean 7 must reach everyone just like homogeneous 7.
  int full = 0;
  constexpr int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    full += (run_delivery_fraction(150, 7.0, 500 + s, /*heterogeneous=*/true) == 1.0);
  }
  EXPECT_GE(full, kSeeds - 1);
}

}  // namespace
}  // namespace hg::gossip
