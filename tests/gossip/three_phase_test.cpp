#include "gossip/three_phase.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gossip/fanout_policy.hpp"

namespace hg::gossip {
namespace {

// A small swarm of raw dissemination engines over an ideal-ish network.
struct Swarm {
  sim::Simulator sim;
  net::NetworkFabric fabric;
  membership::Directory directory;
  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<FixedFanout>> policies;
  std::vector<std::unique_ptr<ThreePhaseGossip>> nodes;
  std::vector<std::vector<Event>> delivered;

  explicit Swarm(std::size_t n, GossipConfig cfg = {}, double fanout = 4.0,
                 double loss = 0.0, std::uint64_t seed = 11)
      : sim(seed),
        fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(15)),
               loss > 0 ? std::unique_ptr<net::LossModel>(std::make_unique<net::BernoulliLoss>(loss))
                        : std::unique_ptr<net::LossModel>(std::make_unique<net::NoLoss>())),
        directory(sim, membership::DetectionConfig{}) {
    delivered.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) directory.add_node(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeId id{i};
      views.push_back(directory.make_view(id));
      policies.push_back(std::make_unique<FixedFanout>(fanout));
      nodes.push_back(std::make_unique<ThreePhaseGossip>(sim, fabric, *views.back(), id, cfg,
                                                         *policies.back()));
      nodes.back()->set_deliver(
          [this, i](const Event& e) { delivered[i].push_back(e); });
      fabric.register_node(id, BitRate::unlimited(),
                           [g = nodes.back().get()](const net::Datagram& d) {
                             g->on_datagram(d);
                           });
    }
    for (auto& g : nodes) g->start();
  }

  Event make_event(std::uint32_t w, std::uint16_t i, std::size_t bytes = 64) {
    return Event{EventId{w, i},
                 net::BufferRef::copy_of(std::vector<std::uint8_t>(bytes, 0x11))};
  }
};

TEST(ThreePhase, SingleEventReachesEveryone) {
  Swarm s(30);
  s.nodes[0]->publish(s.make_event(0, 0));
  s.sim.run_until(sim::SimTime::sec(10));
  for (std::size_t i = 0; i < 30; ++i) {
    ASSERT_EQ(s.delivered[i].size(), 1u) << "node " << i;
    EXPECT_EQ(s.delivered[i][0].id, (EventId{0, 0}));
  }
}

TEST(ThreePhase, DeliversExactlyOncePerNode) {
  // fanout 7 > ln(25)+c: the dissemination reaches everyone w.h.p.
  Swarm s(25, GossipConfig{}, /*fanout=*/7.0);
  for (std::uint16_t k = 0; k < 20; ++k) s.nodes[0]->publish(s.make_event(0, k));
  s.sim.run_until(sim::SimTime::sec(15));
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(s.delivered[i].size(), 20u) << "node " << i;
    // No duplicates: the three-phase exchange guarantees single delivery.
    std::set<std::uint64_t> uniq;
    for (const auto& e : s.delivered[i]) uniq.insert(e.id.raw());
    EXPECT_EQ(uniq.size(), s.delivered[i].size());
  }
}

TEST(ThreePhase, PayloadsSurviveDissemination) {
  Swarm s(10);
  const std::vector<std::uint8_t> raw{1, 2, 3, 4, 5};
  s.nodes[0]->publish(Event{EventId{1, 1}, net::BufferRef::copy_of(raw)});
  s.sim.run_until(sim::SimTime::sec(5));
  for (std::size_t i = 1; i < 10; ++i) {
    ASSERT_EQ(s.delivered[i].size(), 1u);
    ASSERT_TRUE(s.delivered[i][0].payload);
    EXPECT_EQ(s.delivered[i][0].payload.to_vector(), raw);
  }
}

TEST(ThreePhase, InfectAndDieProposesEachIdOnce) {
  Swarm s(20);
  s.nodes[0]->publish(s.make_event(0, 0));
  s.sim.run_until(sim::SimTime::sec(10));
  // Each node proposed the id at most once per target, i.e. ids_proposed <=
  // fanout per node. Total proposals across nodes ~= n * f.
  std::uint64_t total_ids_proposed = 0;
  for (const auto& g : s.nodes) total_ids_proposed += g->stats().ids_proposed;
  EXPECT_LE(total_ids_proposed, 20u * 5u);  // fanout 4 (+rounding slack)
  EXPECT_GE(total_ids_proposed, 20u * 3u - 8u);
}

TEST(ThreePhase, RecoversFromLossViaRetransmission) {
  GossipConfig cfg;
  cfg.retransmit_period = sim::SimTime::ms(300);
  Swarm s(30, cfg, /*fanout=*/7.0, /*loss=*/0.10);
  for (std::uint16_t k = 0; k < 10; ++k) s.nodes[0]->publish(s.make_event(0, k));
  s.sim.run_until(sim::SimTime::sec(30));
  std::size_t fully = 0;
  for (std::size_t i = 0; i < 30; ++i) fully += (s.delivered[i].size() == 10);
  // With 10% loss and no retransmission many nodes would miss packets;
  // with it, (nearly) everyone converges.
  EXPECT_GE(fully, 28u);
}

TEST(ThreePhase, NoRetransmissionLeavesGaps) {
  GossipConfig cfg;
  cfg.max_retransmits = 0;
  Swarm s(30, cfg, /*fanout=*/4.0, /*loss=*/0.25, /*seed=*/13);
  for (std::uint16_t k = 0; k < 10; ++k) s.nodes[0]->publish(s.make_event(0, k));
  s.sim.run_until(sim::SimTime::sec(30));
  std::size_t missing = 0;
  for (std::size_t i = 0; i < 30; ++i) missing += (s.delivered[i].size() < 10);
  EXPECT_GT(missing, 0u);  // heavy loss + no retries must lose something
}

TEST(ThreePhase, ShouldRequestVetoSuppressesDelivery) {
  Swarm s(10);
  // Node 5 refuses everything from window 0.
  s.nodes[5]->set_should_request([](EventId id) { return id.window() != 0; });
  s.nodes[0]->publish(s.make_event(0, 0));
  s.nodes[0]->publish(s.make_event(1, 0));
  s.sim.run_until(sim::SimTime::sec(10));
  ASSERT_EQ(s.delivered[5].size(), 1u);
  EXPECT_EQ(s.delivered[5][0].id.window(), 1u);
  EXPECT_GT(s.nodes[5]->stats().declined_requests, 0u);
}

TEST(ThreePhase, CancelWindowStopsFutureRequests) {
  Swarm s(10);
  s.nodes[3]->cancel_window_requests(0);
  s.nodes[0]->publish(s.make_event(0, 0));
  s.sim.run_until(sim::SimTime::sec(10));
  EXPECT_TRUE(s.delivered[3].empty());
  for (std::size_t i = 1; i < 10; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(s.delivered[i].size(), 1u) << "node " << i;
  }
}

TEST(ThreePhase, SourceImmediatePublishSkipsBatching) {
  GossipConfig cfg;
  cfg.immediate_publish = true;
  Swarm s(10, cfg);
  s.nodes[0]->publish(s.make_event(0, 0));
  // Proposes must be out before the first periodic round (<= 200 ms).
  s.sim.run_until(sim::SimTime::ms(1));
  EXPECT_GT(s.nodes[0]->stats().proposes_sent, 0u);
}

TEST(ThreePhase, BatchedPublishWaitsForRound) {
  GossipConfig cfg;
  cfg.immediate_publish = false;
  Swarm s(10, cfg);
  s.nodes[0]->publish(s.make_event(0, 0));
  s.sim.run_until(sim::SimTime::ms(1));
  EXPECT_EQ(s.nodes[0]->stats().proposes_sent, 0u);
  s.sim.run_until(sim::SimTime::ms(250));
  EXPECT_GT(s.nodes[0]->stats().proposes_sent, 0u);
}

TEST(ThreePhase, GarbageCollectionBoundsState) {
  GossipConfig cfg;
  cfg.gc_window_horizon = 3;
  Swarm s(5, cfg);
  for (std::uint32_t w = 0; w < 10; ++w) {
    s.nodes[0]->publish(s.make_event(w, 0));
    s.sim.run_until(sim::SimTime::sec(1 + w));
  }
  s.sim.run_until(sim::SimTime::sec(30));
  // Horizon 3 behind newest window 9: windows < 6 are collected.
  EXPECT_FALSE(s.nodes[0]->has_delivered(EventId{0, 0}));
  EXPECT_FALSE(s.nodes[0]->has_delivered(EventId{5, 0}));
  EXPECT_TRUE(s.nodes[0]->has_delivered(EventId{6, 0}));
  EXPECT_TRUE(s.nodes[0]->has_delivered(EventId{9, 0}));
}

TEST(ThreePhase, RetransmitRetriesAlternateProposerUntilCancelled) {
  GossipConfig cfg;
  cfg.retransmit_period = sim::SimTime::ms(100);
  Swarm s(4, cfg);
  // Nodes 1 and 2 both propose (0,0) to node 3; nobody ever serves it.
  const auto inject_propose = [&](std::uint32_t from) {
    s.nodes[3]->on_datagram(net::Datagram{NodeId{from}, NodeId{3}, net::MsgClass::kPropose,
                                          encode(ProposeMsg{NodeId{from}, {EventId{0, 0}}})});
  };
  inject_propose(1);
  inject_propose(2);
  EXPECT_EQ(s.nodes[3]->stats().requests_sent, 1u);  // requested from the first proposer
  // First timeout: the retry must go to the *other* proposer.
  s.sim.run_until(sim::SimTime::ms(150));
  EXPECT_EQ(s.nodes[3]->stats().requests_sent, 2u);
  EXPECT_GE(s.nodes[3]->retransmit_stats().retries_fired, 1u);
  // cancel_window_requests stops all further retries for the window.
  s.nodes[3]->cancel_window_requests(0);
  const auto requests_before = s.nodes[3]->stats().requests_sent;
  const auto retries_before = s.nodes[3]->retransmit_stats().retries_fired;
  s.sim.run_until(sim::SimTime::sec(20));
  EXPECT_EQ(s.nodes[3]->stats().requests_sent, requests_before);
  EXPECT_EQ(s.nodes[3]->retransmit_stats().retries_fired, retries_before);
  EXPECT_FALSE(s.nodes[3]->has_delivered(EventId{0, 0}));
  // A late re-propose of the cancelled window must not re-request either.
  inject_propose(1);
  EXPECT_EQ(s.nodes[3]->stats().requests_sent, requests_before);
}

TEST(ThreePhase, DuplicateServesDeliverOnceAndProposeOnce) {
  // "Infect and die" under retransmission: a duplicate serve (e.g. a retried
  // request answered twice) must neither re-deliver nor re-propose the id.
  Swarm s(4);
  const auto inject_propose = [&](std::uint32_t from) {
    s.nodes[3]->on_datagram(net::Datagram{NodeId{from}, NodeId{3}, net::MsgClass::kPropose,
                                          encode(ProposeMsg{NodeId{from}, {EventId{0, 0}}})});
  };
  const auto inject_serve = [&](std::uint32_t from) {
    const Event ev{EventId{0, 0},
                   net::BufferRef::copy_of(std::vector<std::uint8_t>(64, 0x11))};
    s.nodes[3]->on_datagram(net::Datagram{NodeId{from}, NodeId{3}, net::MsgClass::kServe,
                                          encode(ServeMsg{NodeId{from}, ev})});
  };
  inject_propose(1);
  inject_propose(2);
  inject_serve(1);
  EXPECT_EQ(s.nodes[3]->retransmit_stats().cancelled_by_serve, 1u);
  inject_serve(2);  // the duplicate
  EXPECT_EQ(s.nodes[3]->stats().events_delivered, 1u);
  EXPECT_EQ(s.nodes[3]->stats().duplicate_serves, 1u);
  // The id is proposed in exactly one round (to <= 3 peers at fanout 4).
  s.sim.run_until(sim::SimTime::sec(2));
  const auto proposed = s.nodes[3]->stats().ids_proposed;
  EXPECT_GE(proposed, 1u);
  EXPECT_LE(proposed, 3u);
  s.sim.run_until(sim::SimTime::sec(10));
  EXPECT_EQ(s.nodes[3]->stats().ids_proposed, proposed);  // never re-proposed
}

TEST(ThreePhase, BatchedServeAnswersMultiIdRequestInOneBuffer) {
  Swarm s(2);
  // Node 0 holds three events of one window, published in one round.
  for (std::uint16_t k = 0; k < 3; ++k) s.nodes[0]->publish(s.make_event(5, k));
  // Node 1 requests all three in a single Request datagram.
  s.nodes[0]->on_datagram(net::Datagram{
      NodeId{1}, NodeId{0}, net::MsgClass::kRequest,
      encode(RequestMsg{NodeId{1}, {EventId{5, 0}, EventId{5, 1}, EventId{5, 2}}})});
  EXPECT_EQ(s.nodes[0]->stats().serves_sent, 3u);   // one datagram per event...
  EXPECT_EQ(s.nodes[0]->stats().serve_batches, 1u); // ...sharing one pooled buffer
  s.sim.run_until(sim::SimTime::sec(5));
  EXPECT_EQ(s.delivered[1].size(), 3u);
}

TEST(ThreePhase, ProposeWithOutOfRangePacketIndexIsMalformed) {
  Swarm s(4);
  // Index 110 == packets-per-window: one past the last valid slot. Mixed
  // with a valid id: only the valid one is requested, the bad one counts
  // as malformed instead of materializing ring state.
  const std::uint16_t ppw =
      static_cast<std::uint16_t>(s.nodes[3]->config().packets_per_window);
  s.nodes[3]->on_datagram(net::Datagram{
      NodeId{1}, NodeId{3}, net::MsgClass::kPropose,
      encode(ProposeMsg{NodeId{1}, {EventId{0, ppw}, EventId{0, 0}, EventId{0, 9999}}})});
  EXPECT_EQ(s.nodes[3]->stats().malformed, 2u);
  EXPECT_EQ(s.nodes[3]->stats().requests_sent, 1u);
  s.sim.run_until(sim::SimTime::sec(20));
  EXPECT_FALSE(s.nodes[3]->has_delivered(EventId{0, ppw}));
  // The malformed id never armed a retransmit timer either.
  EXPECT_EQ(s.nodes[3]->retransmit_stats().timers_started, 1u);
}

TEST(ThreePhase, ServeWithOutOfRangePacketIndexIsMalformed) {
  Swarm s(2);
  const std::uint16_t ppw =
      static_cast<std::uint16_t>(s.nodes[1]->config().packets_per_window);
  const Event ev{EventId{0, ppw},
                 net::BufferRef::copy_of(std::vector<std::uint8_t>(64, 0x22))};
  s.nodes[1]->on_datagram(net::Datagram{NodeId{0}, NodeId{1}, net::MsgClass::kServe,
                                        encode(ServeMsg{NodeId{0}, ev})});
  EXPECT_EQ(s.nodes[1]->stats().malformed, 1u);
  EXPECT_EQ(s.nodes[1]->stats().events_delivered, 0u);
  EXPECT_FALSE(s.nodes[1]->has_delivered(EventId{0, ppw}));
}

TEST(ThreePhase, ProposeBelowGcCutoffIsMalformed) {
  GossipConfig cfg;
  cfg.gc_window_horizon = 3;
  Swarm s(2, cfg);
  for (std::uint32_t w = 0; w < 10; ++w) {
    s.nodes[0]->publish(s.make_event(w, 0));
    s.sim.run_until(sim::SimTime::sec(1 + w));
  }
  // Newest window 9, horizon 3: windows < 6 are gc'd on node 0.
  ASSERT_FALSE(s.nodes[0]->has_delivered(EventId{0, 0}));
  const auto requests_before = s.nodes[0]->stats().requests_sent;
  s.nodes[0]->on_datagram(net::Datagram{NodeId{1}, NodeId{0}, net::MsgClass::kPropose,
                                        encode(ProposeMsg{NodeId{1}, {EventId{0, 1}}})});
  EXPECT_EQ(s.nodes[0]->stats().malformed, 1u);
  EXPECT_EQ(s.nodes[0]->stats().requests_sent, requests_before);
}

TEST(ThreePhase, StaleServeDoesNotResurrectGcdEvent) {
  GossipConfig cfg;
  cfg.gc_window_horizon = 3;
  Swarm s(2, cfg);
  for (std::uint32_t w = 0; w < 10; ++w) {
    s.nodes[0]->publish(s.make_event(w, 0));
    s.sim.run_until(sim::SimTime::sec(1 + w));
  }
  s.sim.run_until(sim::SimTime::sec(30));
  ASSERT_FALSE(s.nodes[0]->has_delivered(EventId{0, 0}));
  const auto delivered_before = s.nodes[0]->stats().events_delivered;
  const auto proposed_before = s.nodes[0]->stats().ids_proposed;
  // A straggler re-serves the long-collected event. Re-inserting it would
  // resurrect gc'd state — and re-propose an id everyone forgot about.
  const Event stale{EventId{0, 0},
                    net::BufferRef::copy_of(std::vector<std::uint8_t>(64, 0x33))};
  s.nodes[0]->on_datagram(net::Datagram{NodeId{1}, NodeId{0}, net::MsgClass::kServe,
                                        encode(ServeMsg{NodeId{1}, stale})});
  EXPECT_EQ(s.nodes[0]->stats().malformed, 1u);
  EXPECT_EQ(s.nodes[0]->stats().events_delivered, delivered_before);
  EXPECT_FALSE(s.nodes[0]->has_delivered(EventId{0, 0}));
  s.sim.run_until(sim::SimTime::sec(40));
  EXPECT_EQ(s.nodes[0]->stats().ids_proposed, proposed_before);  // not re-proposed
}

TEST(ThreePhase, CancellingManyWindowsDoesNotAllocate) {
  Swarm s(2);
  const std::size_t idle = s.nodes[1]->state_bytes();
  // Cancel every window the request ring can address (and a stale/far one,
  // which is ignored): the flags live in the fixed ring state, so the old
  // unbounded cancelled-window set's growth is structurally impossible.
  for (std::uint32_t w = 0; w < s.nodes[1]->config().request_ring_windows(); ++w) {
    s.nodes[1]->cancel_window_requests(w);
  }
  s.nodes[1]->cancel_window_requests(1u << 20);
  EXPECT_EQ(s.nodes[1]->state_bytes(), idle);
  // And the flags actually suppress requests.
  s.nodes[1]->on_datagram(net::Datagram{NodeId{0}, NodeId{1}, net::MsgClass::kPropose,
                                        encode(ProposeMsg{NodeId{0}, {EventId{3, 0}}})});
  EXPECT_EQ(s.nodes[1]->stats().requests_sent, 0u);
}

TEST(ThreePhase, ParkedRoundsQuiesceWhenIdle) {
  // park_idle_rounds: no pending proposals -> no round timer at all. This is
  // what lets a partition's event queue drain to empty so the sharded
  // engine's epoch widening can fast-forward it.
  GossipConfig parked;
  parked.park_idle_rounds = true;
  Swarm s(10, parked);
  EXPECT_EQ(s.sim.run_until(sim::SimTime::sec(30)), 0u);
  EXPECT_FALSE(s.sim.next_event_time().has_value());
  // A late publish re-arms rounds on the original phase grid and still
  // disseminates to everyone.
  s.nodes[0]->publish(s.make_event(0, 0));
  s.sim.run_until(sim::SimTime::sec(40));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.delivered[i].size(), 1u) << "node " << i;
  }
  EXPECT_FALSE(s.sim.next_event_time().has_value());  // ...and re-parks after
}

TEST(ThreePhase, ParkedRoundsMatchPeriodicTimerMessageForMessage) {
  // The parked schedule is an optimization, not a behaviour change: with the
  // same seed, every propose/request/serve and every delivery must be
  // identical to the periodic-timer schedule.
  GossipConfig periodic;
  GossipConfig parked;
  parked.park_idle_rounds = true;
  Swarm a(20, periodic, /*fanout=*/7.0);
  Swarm b(20, parked, /*fanout=*/7.0);
  for (std::uint16_t k = 0; k < 5; ++k) {
    a.nodes[0]->publish(a.make_event(0, k));
    b.nodes[0]->publish(b.make_event(0, k));
  }
  // Publish a second batch later so rounds park and re-arm in between.
  a.sim.run_until(sim::SimTime::sec(15));
  b.sim.run_until(sim::SimTime::sec(15));
  a.nodes[7]->publish(a.make_event(1, 0));
  b.nodes[7]->publish(b.make_event(1, 0));
  a.sim.run_until(sim::SimTime::sec(30));
  b.sim.run_until(sim::SimTime::sec(30));
  EXPECT_EQ(a.fabric.datagrams_delivered(), b.fabric.datagrams_delivered());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.nodes[i]->stats().proposes_sent, b.nodes[i]->stats().proposes_sent) << i;
    EXPECT_EQ(a.nodes[i]->stats().requests_sent, b.nodes[i]->stats().requests_sent) << i;
    EXPECT_EQ(a.nodes[i]->stats().serves_sent, b.nodes[i]->stats().serves_sent) << i;
    ASSERT_EQ(a.delivered[i].size(), b.delivered[i].size()) << i;
    for (std::size_t k = 0; k < a.delivered[i].size(); ++k) {
      EXPECT_EQ(a.delivered[i][k].id, b.delivered[i][k].id) << i;
    }
  }
}

TEST(ThreePhase, StatsAreConsistent) {
  Swarm s(20, GossipConfig{}, /*fanout=*/7.0);
  for (std::uint16_t k = 0; k < 5; ++k) s.nodes[0]->publish(s.make_event(0, k));
  s.sim.run_until(sim::SimTime::sec(10));
  std::uint64_t serves = 0, delivered_total = 0;
  for (const auto& g : s.nodes) {
    serves += g->stats().serves_sent;
    delivered_total += g->stats().events_delivered;
  }
  // Every delivery except the publisher's own was served exactly once
  // (lossless network, no duplicate deliveries possible).
  EXPECT_EQ(delivered_total, 20u * 5u);
  EXPECT_EQ(serves, 20u * 5u - 5u);
}

}  // namespace
}  // namespace hg::gossip
