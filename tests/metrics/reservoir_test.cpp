// Streaming reservoir vs exact order statistics: the sketch must track the
// exact metrics within its rank-error bound on randomized inputs, agree
// bit-for-bit on the moments it computes exactly, and survive the empty /
// single-sample / duplicate-heavy corners.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "metrics/percentile.hpp"
#include "metrics/reservoir.hpp"

namespace hg::metrics {
namespace {

// Rank error of `got` against the exact sorted sample set: the distance (as
// a fraction of n) between the claimed and actual position of `got`.
double rank_error(std::vector<double> sorted, double q, double got) {
  const auto n = static_cast<double>(sorted.size());
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), got) - sorted.begin();
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), got) - sorted.begin();
  const double target = q / 100.0 * (n - 1);
  const double lo_err = target < static_cast<double>(lo)
                            ? (static_cast<double>(lo) - target) / n
                            : 0.0;
  const double hi_err = target > static_cast<double>(hi)
                            ? (target - static_cast<double>(hi)) / n
                            : 0.0;
  return std::max(lo_err, hi_err);
}

TEST(QuantileReservoir, MatchesExactWithinRankBoundOnRandomInputs) {
  Rng rng(2026);
  for (int trial = 0; trial < 4; ++trial) {
    QuantileReservoir sketch(512);
    std::vector<double> exact;
    const std::size_t n = 200'000;
    exact.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Heavy-tailed, like lag distributions.
      const double v = trial % 2 == 0 ? rng.uniform(0.0, 100.0)
                                      : std::exp(rng.normal(1.0, 1.5));
      sketch.add(v);
      exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
      EXPECT_LE(rank_error(exact, q, sketch.percentile(q)), 0.02)
          << "trial " << trial << " q=" << q;
    }
    // Memory is fixed: far fewer elements retained than streamed.
    EXPECT_LT(sketch.retained(), 512 * 16);
  }
}

TEST(QuantileReservoir, ExactMomentsAndExtremes) {
  Rng rng(7);
  QuantileReservoir sketch(128);
  Samples exact;
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.uniform(-5.0, 5.0);
    sketch.add(v);
    exact.add(v);
  }
  EXPECT_EQ(sketch.count(), 50'000u);
  EXPECT_NEAR(sketch.mean(), exact.mean(), 1e-9);
  EXPECT_NEAR(sketch.stddev(), exact.stddev(), 1e-9);
  EXPECT_EQ(sketch.min(), exact.min());  // extremes are tracked exactly
  EXPECT_EQ(sketch.max(), exact.max());
}

TEST(QuantileReservoir, FractionAtMostTracksExactCdf) {
  Rng rng(11);
  QuantileReservoir sketch(512);
  Samples exact;
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.uniform(0.0, 40.0);
    sketch.add(v);
    exact.add(v);
  }
  for (double x : {0.0, 3.7, 10.0, 20.0, 39.9, 40.0, 50.0}) {
    EXPECT_NEAR(sketch.fraction_at_most(x), exact.fraction_at_most(x), 0.02) << x;
  }
}

TEST(QuantileReservoir, DeterministicForIdenticalInput) {
  // No RNG inside: two reservoirs fed the same sequence answer identically
  // (this is what makes multi-thread sweeps bit-reproducible).
  QuantileReservoir a(64);
  QuantileReservoir b(64);
  Rng rng(3);
  std::vector<double> input;
  for (int i = 0; i < 10'000; ++i) input.push_back(rng.uniform(0, 1000));
  for (double v : input) a.add(v);
  for (double v : input) b.add(v);
  for (double q : {0.0, 12.5, 50.0, 87.5, 100.0}) {
    EXPECT_EQ(a.percentile(q), b.percentile(q));
  }
  EXPECT_EQ(a.retained(), b.retained());
}

TEST(QuantileReservoir, SmallInputsAreExact) {
  // Everything fits in the level-0 buffer: answers equal the exact ones.
  QuantileReservoir sketch(256);
  Samples exact;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0, 10);
    sketch.add(v);
    exact.add(v);
  }
  for (double q : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    // Exact Samples interpolates between ranks, the sketch answers a real
    // sample; agreement must be within one inter-sample gap.
    const double lo = exact.percentile(std::max(0.0, q - 1.0));
    const double hi = exact.percentile(std::min(100.0, q + 1.0));
    EXPECT_GE(sketch.percentile(q), lo - 1e-12);
    EXPECT_LE(sketch.percentile(q), hi + 1e-12);
  }
  EXPECT_EQ(sketch.fraction_at_most(5.0), exact.fraction_at_most(5.0));
}

TEST(QuantileReservoir, EmptyAndSingleSample) {
  QuantileReservoir sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.fraction_at_most(1.0), 0.0);

  sketch.add(42.0);
  EXPECT_FALSE(sketch.empty());
  for (double q : {0.0, 50.0, 100.0}) EXPECT_EQ(sketch.percentile(q), 42.0);
  EXPECT_EQ(sketch.min(), 42.0);
  EXPECT_EQ(sketch.max(), 42.0);
  EXPECT_EQ(sketch.mean(), 42.0);
  EXPECT_EQ(sketch.stddev(), 0.0);
  EXPECT_EQ(sketch.fraction_at_most(41.0), 0.0);
  EXPECT_EQ(sketch.fraction_at_most(42.0), 1.0);
}

TEST(QuantileReservoir, DuplicateHeavyInput) {
  // 90% of the mass is one value; quantiles inside that plateau must return
  // it exactly, however the buffers collapse.
  QuantileReservoir sketch(64);
  for (int i = 0; i < 90'000; ++i) sketch.add(7.0);
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) sketch.add(rng.uniform(100.0, 200.0));
  for (double q : {5.0, 25.0, 50.0, 85.0}) EXPECT_EQ(sketch.percentile(q), 7.0) << q;
  EXPECT_NEAR(sketch.fraction_at_most(7.0), 0.9, 0.02);
  EXPECT_EQ(sketch.fraction_at_most(6.9), 0.0);
  EXPECT_EQ(sketch.fraction_at_most(200.0), 1.0);
}

TEST(StreamingSamples, RoutesThroughSketchBehindTheSamplesApi) {
  Samples s = Samples::streaming(256);
  EXPECT_TRUE(s.is_streaming());
  EXPECT_TRUE(s.empty());
  Rng rng(13);
  Samples exact;
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.uniform(0.0, 60.0);
    s.add(v);
    exact.add(v);
  }
  EXPECT_EQ(s.count(), 50'000u);
  EXPECT_NEAR(s.mean(), exact.mean(), 1e-9);
  EXPECT_EQ(s.min(), exact.min());
  EXPECT_EQ(s.max(), exact.max());
  EXPECT_NEAR(s.percentile(90.0), exact.percentile(90.0), 60.0 * 0.03);
  EXPECT_NEAR(s.fraction_at_most(30.0), exact.fraction_at_most(30.0), 0.02);
}

TEST(StreamingSamplesDeathTest, ValuesUnavailableInStreamingMode) {
  Samples s = Samples::streaming();
  s.add(1.0);
  ASSERT_DEATH((void)s.values(), "streaming Samples do not retain raw values");
}

TEST(QuantileReservoir, MergeCombinesMomentsExactly) {
  Rng rng(7);
  QuantileReservoir all(256);
  QuantileReservoir a(256);
  QuantileReservoir b(256);
  QuantileReservoir ref(256);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    all.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  // Rank queries stay within the sketch's error bound after merging.
  for (double q : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_NEAR(a.percentile(q), all.percentile(q), 1.0) << q;
  }
}

TEST(QuantileReservoir, MergeIsDeterministic) {
  // Per-partition reservoirs merged in partition order must give one result,
  // bit for bit, regardless of how often the merge is repeated.
  auto build = [] {
    std::vector<QuantileReservoir> parts;
    Rng rng(99);
    for (int p = 0; p < 4; ++p) {
      parts.emplace_back(64);
      for (int i = 0; i < 1000; ++i) parts[static_cast<std::size_t>(p)].add(rng.uniform01());
    }
    QuantileReservoir merged(64);
    for (const auto& part : parts) merged.merge_from(part);
    return merged;
  };
  const QuantileReservoir x = build();
  const QuantileReservoir y = build();
  EXPECT_EQ(x.count(), y.count());
  EXPECT_EQ(x.retained(), y.retained());
  for (double q = 0.0; q <= 100.0; q += 2.5) {
    EXPECT_EQ(x.percentile(q), y.percentile(q)) << q;
  }
}

TEST(QuantileReservoir, MergeWithEmptySidesIsIdentity) {
  QuantileReservoir a(64);
  QuantileReservoir empty(64);
  for (int i = 0; i < 100; ++i) a.add(i);
  const double p50 = a.percentile(50);
  a.merge_from(empty);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.percentile(50), p50);
  QuantileReservoir into(64);
  into.merge_from(a);
  EXPECT_EQ(into.count(), 100u);
  EXPECT_EQ(into.min(), 0.0);
  EXPECT_EQ(into.max(), 99.0);
  EXPECT_EQ(into.percentile(50), p50);
}

TEST(QuantileReservoirDeathTest, MergeRequiresSameCapacity) {
  QuantileReservoir a(64);
  QuantileReservoir b(128);
  b.add(1.0);
  ASSERT_DEATH(a.merge_from(b), "same buffer_elems");
}

TEST(StreamingSamples, MergeRoutesThroughSketch) {
  Samples a = Samples::streaming(256);
  Samples b = Samples::streaming(256);
  for (int i = 0; i < 500; ++i) a.add(i);
  for (int i = 500; i < 1000; ++i) b.add(i);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 999.0);
  EXPECT_NEAR(a.percentile(50), 500.0, 25.0);
}

TEST(ExactSamples, MergeAppendsValues) {
  Samples a;
  Samples b;
  for (double v : {3.0, 1.0}) a.add(v);
  for (double v : {2.0, 4.0}) b.add(v);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.percentile(50.0), 2.5);
  EXPECT_EQ(a.values().size(), 4u);
}

TEST(SamplesDeathTest, MergeAcrossModesIsFatal) {
  Samples exact;
  exact.add(1.0);
  Samples streaming = Samples::streaming();
  streaming.add(2.0);
  ASSERT_DEATH(exact.merge_from(streaming), "cannot merge exact");
}

TEST(ExactSamples, DefaultModeIsUnchanged) {
  // The exact path must behave as before: values() available, interpolated
  // percentiles, byte-stable results feeding the figure benches.
  Samples s;
  EXPECT_FALSE(s.is_streaming());
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_EQ(s.values().size(), 3u);
  EXPECT_EQ(s.percentile(50.0), 2.0);
  EXPECT_EQ(s.percentile(75.0), 2.5);  // interpolation between ranks
  EXPECT_EQ(s.fraction_at_most(2.0), 2.0 / 3.0);
}

}  // namespace
}  // namespace hg::metrics
