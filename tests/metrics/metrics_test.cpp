#include <gtest/gtest.h>

#include <cmath>

#include "metrics/cdf.hpp"
#include "metrics/percentile.hpp"
#include "metrics/table.hpp"

namespace hg::metrics {
namespace {

TEST(Samples, BasicStats) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-9);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(Samples, PercentileSingleValue) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(Samples, FractionAtMost) {
  Samples s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(100.0), 1.0);
}

TEST(Samples, AddAfterSortKeepsCorrectness) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);  // forces a sort
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);  // must re-sort
}

TEST(Cdf, EvaluateAgainstPopulation) {
  Samples s;
  for (int i = 1; i <= 50; ++i) s.add(i);  // 50 nodes reached the target
  // population 100: half the nodes never reached it.
  auto series = Cdf::evaluate(s, {0.0, 25.0, 50.0, 100.0}, 100);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0].percent, 0.0);
  EXPECT_DOUBLE_EQ(series[1].percent, 25.0);
  EXPECT_DOUBLE_EQ(series[2].percent, 50.0);
  EXPECT_DOUBLE_EQ(series[3].percent, 50.0);  // saturates below 100%
}

TEST(Cdf, UniformGrid) {
  auto g = Cdf::uniform_grid(60.0, 7);
  ASSERT_EQ(g.size(), 7u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 60.0);
  EXPECT_DOUBLE_EQ(g[1], 10.0);
}

TEST(Cdf, RenderTableContainsSeries) {
  Samples s;
  s.add(1.0);
  auto series = Cdf::evaluate(s, {0.0, 2.0}, 1);
  const std::string out = render_cdf_table("lag", {"heap"}, {series});
  EXPECT_NE(out.find("lag"), std::string::npos);
  EXPECT_NE(out.find("heap"), std::string::npos);
  EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::pct(0.714, 1), "71.4%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace hg::metrics
