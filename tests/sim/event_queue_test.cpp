#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace hg::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  SimTime now = SimTime::zero();
  q.schedule_fire_and_forget(SimTime::ms(30), [&] { order.push_back(3); });
  q.schedule_fire_and_forget(SimTime::ms(10), [&] { order.push_back(1); });
  q.schedule_fire_and_forget(SimTime::ms(20), [&] { order.push_back(2); });
  while (q.run_next(now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, SimTime::ms(30));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  SimTime now = SimTime::zero();
  for (int i = 0; i < 100; ++i) {
    q.schedule_fire_and_forget(SimTime::ms(5), [&order, i] { order.push_back(i); });
  }
  while (q.run_next(now)) {
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  SimTime now = SimTime::zero();
  EventHandle h = q.schedule(SimTime::ms(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (q.run_next(now)) {
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  SimTime now = SimTime::zero();
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  while (q.run_next(now)) {
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  SimTime now = SimTime::zero();
  int count = 0;
  q.schedule_fire_and_forget(SimTime::ms(1), [&] {
    ++count;
    q.schedule_fire_and_forget(SimTime::ms(2), [&] { ++count; });
  });
  while (q.run_next(now)) {
  }
  EXPECT_EQ(count, 2);
  EXPECT_EQ(now, SimTime::ms(2));
}

TEST(EventQueue, PruneAndEmptySkipsTombstones) {
  EventQueue q;
  EventHandle h1 = q.schedule(SimTime::ms(1), [] {});
  EventHandle h2 = q.schedule(SimTime::ms(2), [] {});
  h1.cancel();
  h2.cancel();
  EXPECT_TRUE(q.prune_and_empty());
}

TEST(EventQueue, NextTimeReflectsLiveHead) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  q.schedule_fire_and_forget(SimTime::ms(5), [] {});
  h.cancel();
  ASSERT_FALSE(q.prune_and_empty());
  EXPECT_EQ(q.next_time(), SimTime::ms(5));
}

TEST(EventQueue, ExecutedCountsOnlyRunEvents) {
  EventQueue q;
  SimTime now = SimTime::zero();
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  q.schedule_fire_and_forget(SimTime::ms(2), [] {});
  h.cancel();
  while (q.run_next(now)) {
  }
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueue, StaleHandleCannotCancelReusedSlot) {
  // Generation check: after a slot is freed and reused by a new event, a
  // handle to the old event must be inert against the new occupant.
  EventQueue q;
  SimTime now = SimTime::zero();
  EventHandle a = q.schedule(SimTime::ms(1), [] {});
  EventHandle stale = a;  // copies share (slot, generation)
  a.cancel();             // frees the slot
  bool fired = false;
  EventHandle b = q.schedule(SimTime::ms(2), [&] { fired = true; });  // reuses it
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(b.pending());
  stale.cancel();  // must not touch b's slot (generation mismatch)
  EXPECT_TRUE(b.pending());
  while (q.run_next(now)) {
  }
  EXPECT_TRUE(fired);
}

TEST(EventQueue, HandleInvalidatedAfterFireEvenWhenSlotReused) {
  EventQueue q;
  SimTime now = SimTime::zero();
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  ASSERT_TRUE(q.run_next(now));  // fires; slot freed, generation bumped
  EXPECT_FALSE(h.pending());
  bool fired = false;
  EventHandle fresh = q.schedule(SimTime::ms(2), [&] { fired = true; });
  EXPECT_FALSE(h.pending());  // stale handle must not see the reused slot
  h.cancel();                 // and must not cancel the new event
  EXPECT_TRUE(fresh.pending());
  while (q.run_next(now)) {
  }
  EXPECT_TRUE(fired);
}

TEST(EventQueue, SlotPoolIsReused) {
  EventQueue q;
  SimTime now = SimTime::zero();
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 16; ++i) {
      q.schedule_fire_and_forget(SimTime::ms(round * 100 + i + 1), [] {});
    }
    while (q.run_next(now)) {
    }
  }
  EXPECT_EQ(q.live_events(), 0u);
  // The free list recycles slots: the pool never grows past one round's peak.
  EXPECT_LE(q.pool_slots(), 16u);
  EXPECT_EQ(q.executed(), 160u);
}

TEST(EventQueue, CancelledSlotReclaimedImmediately) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  EXPECT_EQ(q.live_events(), 1u);
  h.cancel();
  EXPECT_EQ(q.live_events(), 0u);
  // The tombstone stays in the heap until popped...
  EXPECT_EQ(q.size(), 1u);
  // ...but the slot is free for the next event.
  q.schedule_fire_and_forget(SimTime::ms(2), [] {});
  EXPECT_EQ(q.pool_slots(), 1u);
}

TEST(SmallFnTest, InlineAndHeapStorage) {
  int hit = 0;
  SmallFn small([&hit] { ++hit; });  // one pointer capture: inline
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(hit, 1);

  struct Big {
    char payload[SmallFn::kInlineBytes + 8] = {};
    int* counter;
  };
  Big big;
  big.counter = &hit;
  SmallFn large([big] { ++*big.counter; });  // exceeds the buffer: heap
  EXPECT_FALSE(large.is_inline());
  large();
  EXPECT_EQ(hit, 2);

  // Move transfers the callable and empties the source.
  SmallFn moved = std::move(small);
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hit, 3);
}

TEST(SmallFnTest, DatagramSizedCaptureStaysInline) {
  // The hot path captures a fabric pointer + a ~32-byte datagram; that must
  // fit the inline buffer or the refactor's zero-allocation claim is void.
  struct DatagramShaped {
    std::uint32_t src, dst;
    std::uint32_t msg_class;
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  };
  void* fabric = nullptr;
  DatagramShaped d{1, 2, 3, nullptr};
  SmallFn fn([fabric, d] { (void)fabric; });
  EXPECT_TRUE(fn.is_inline());
}

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ(SimTime::ms(1), SimTime::us(1000));
  EXPECT_EQ(SimTime::sec(1.5), SimTime::ms(1500));
  EXPECT_EQ(SimTime::ms(3) + SimTime::ms(4), SimTime::ms(7));
  EXPECT_EQ(SimTime::ms(10) - SimTime::ms(4), SimTime::ms(6));
  EXPECT_DOUBLE_EQ(SimTime::ms(1500).as_sec(), 1.5);
  EXPECT_LT(SimTime::zero(), SimTime::us(1));
}

}  // namespace
}  // namespace hg::sim
