#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hg::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  SimTime now = SimTime::zero();
  q.schedule_fire_and_forget(SimTime::ms(30), [&] { order.push_back(3); });
  q.schedule_fire_and_forget(SimTime::ms(10), [&] { order.push_back(1); });
  q.schedule_fire_and_forget(SimTime::ms(20), [&] { order.push_back(2); });
  while (q.run_next(now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(now, SimTime::ms(30));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  SimTime now = SimTime::zero();
  for (int i = 0; i < 100; ++i) {
    q.schedule_fire_and_forget(SimTime::ms(5), [&order, i] { order.push_back(i); });
  }
  while (q.run_next(now)) {
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  SimTime now = SimTime::zero();
  EventHandle h = q.schedule(SimTime::ms(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (q.run_next(now)) {
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  SimTime now = SimTime::zero();
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  while (q.run_next(now)) {
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  SimTime now = SimTime::zero();
  int count = 0;
  q.schedule_fire_and_forget(SimTime::ms(1), [&] {
    ++count;
    q.schedule_fire_and_forget(SimTime::ms(2), [&] { ++count; });
  });
  while (q.run_next(now)) {
  }
  EXPECT_EQ(count, 2);
  EXPECT_EQ(now, SimTime::ms(2));
}

TEST(EventQueue, PruneAndEmptySkipsTombstones) {
  EventQueue q;
  EventHandle h1 = q.schedule(SimTime::ms(1), [] {});
  EventHandle h2 = q.schedule(SimTime::ms(2), [] {});
  h1.cancel();
  h2.cancel();
  EXPECT_TRUE(q.prune_and_empty());
}

TEST(EventQueue, NextTimeReflectsLiveHead) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  q.schedule_fire_and_forget(SimTime::ms(5), [] {});
  h.cancel();
  ASSERT_FALSE(q.prune_and_empty());
  EXPECT_EQ(q.next_time(), SimTime::ms(5));
}

TEST(EventQueue, ExecutedCountsOnlyRunEvents) {
  EventQueue q;
  SimTime now = SimTime::zero();
  EventHandle h = q.schedule(SimTime::ms(1), [] {});
  q.schedule_fire_and_forget(SimTime::ms(2), [] {});
  h.cancel();
  while (q.run_next(now)) {
  }
  EXPECT_EQ(q.executed(), 1u);
}

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ(SimTime::ms(1), SimTime::us(1000));
  EXPECT_EQ(SimTime::sec(1.5), SimTime::ms(1500));
  EXPECT_EQ(SimTime::ms(3) + SimTime::ms(4), SimTime::ms(7));
  EXPECT_EQ(SimTime::ms(10) - SimTime::ms(4), SimTime::ms(6));
  EXPECT_DOUBLE_EQ(SimTime::ms(1500).as_sec(), 1.5);
  EXPECT_LT(SimTime::zero(), SimTime::us(1));
}

}  // namespace
}  // namespace hg::sim
