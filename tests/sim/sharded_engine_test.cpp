#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

namespace hg::sim {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t workers : {1u, 2u, 4u}) {
    WorkerPool pool(workers);
    std::vector<int> hits(23, 0);
    // Static assignment: index i only ever runs on worker i % workers, so
    // concurrent increments never touch the same slot.
    pool.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    pool.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (int h : hits) EXPECT_EQ(h, 2);
  }
}

TEST(Simulator, RunBeforeIsExclusive) {
  Simulator s(1);
  int ran = 0;
  s.at(SimTime::ms(10), [&] { ran = 1; });
  EXPECT_EQ(s.run_before(SimTime::ms(10)), 0u);
  EXPECT_EQ(ran, 0);
  // The clock still advances to the bound, like run_until.
  EXPECT_EQ(s.now(), SimTime::ms(10));
  EXPECT_EQ(s.run_until(SimTime::ms(10)), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(ShardedEngine, PartitionMapIsContiguousAndBalanced) {
  ShardedEngine e(7, /*node_count=*/103, {/*partitions=*/4, /*workers=*/1, SimTime::ms(1)});
  std::vector<std::size_t> sizes(4, 0);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < 103; ++i) {
    const std::uint32_t p = e.partition_of(i);
    ASSERT_LT(p, 4u);
    ASSERT_GE(p, prev);  // contiguous blocks
    prev = p;
    sizes[p]++;
  }
  for (std::size_t n : sizes) EXPECT_TRUE(n == 25 || n == 26);
}

TEST(ShardedEngine, PartitionsClampToNodeCount) {
  ShardedEngine e(7, /*node_count=*/3, {/*partitions=*/16, /*workers=*/2, SimTime::ms(1)});
  EXPECT_EQ(e.partitions(), 3u);
}

TEST(ShardedEngine, MakeRngMatchesSequentialSimulator) {
  ShardedEngine e(2009, 10, {2, 1, SimTime::ms(1)});
  Simulator s(2009);
  for (std::uint64_t tag : {7ull, 0x41535347ull, 0x4348524eull}) {
    Rng a = e.make_rng(tag);
    Rng b = s.make_rng(tag);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a.next(), b.next());
  }
}

TEST(ShardedEngine, ControlTasksRunBeforeLocalEventsAtSameTime) {
  ShardedEngine e(1, 8, {2, 1, SimTime::ms(1)});
  std::vector<std::string> order;
  e.sim_of(0).at(SimTime::ms(5), [&] { order.push_back("event"); });
  e.schedule_control(SimTime::ms(5), [&] { order.push_back("control"); });
  e.run_until(SimTime::ms(6));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "control");
  EXPECT_EQ(order[1], "event");
}

TEST(ShardedEngine, ControlTasksAtEqualTimesKeepSchedulingOrder) {
  ShardedEngine e(1, 4, {2, 1, SimTime::ms(1)});
  std::vector<int> order;
  e.schedule_control(SimTime::ms(3), [&] { order.push_back(1); });
  e.schedule_control(SimTime::ms(3), [&] {
    order.push_back(2);
    // A control task may chain another at the same timestamp.
    e.schedule_control(SimTime::ms(3), [&] { order.push_back(3); });
  });
  e.run_until(SimTime::ms(4));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedEngine, CountsEventsAcrossPartitions) {
  ShardedEngine e(1, 6, {3, 1, SimTime::ms(1)});
  for (std::uint32_t p = 0; p < 3; ++p) {
    e.sim_of(p).at(SimTime::ms(1 + p), [] {});
  }
  const std::uint64_t ran = e.run_until(SimTime::ms(10));
  EXPECT_EQ(ran, 3u);
  EXPECT_EQ(e.events_executed(), 3u);
}

// The acceptance-critical property: cross-partition messages with *colliding
// arrival timestamps* are imported in an order that depends only on the seed
// and partition count — never on how many workers drive the run.
std::vector<std::uint32_t> arrival_order(std::size_t workers) {
  constexpr std::size_t kNodes = 12;
  ShardedEngine engine(99, kNodes, {/*partitions=*/4, workers, SimTime::ms(10)});
  net::NetworkFabric fabric(engine, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
                            std::make_unique<net::NoLoss>());
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [&order, i](const net::Datagram&) { order.push_back(i); });
  }
  // Every node sends to node 0 at t=0 with constant latency: all arrivals
  // collide at exactly t=10ms, from three different source partitions.
  for (std::uint32_t i = 3; i < kNodes; ++i) {
    fabric.send(NodeId{i}, NodeId{0}, net::MsgClass::kPropose,
                net::BufferRef::copy_of(std::vector<std::uint8_t>(8, 0x42)));
  }
  engine.run_until(SimTime::ms(20));
  return order;
}

TEST(ShardedEngine, CrossPartitionCollidingArrivalsOrderIndependentOfWorkers) {
  const auto base = arrival_order(1);
  EXPECT_EQ(base.size(), 9u);
  for (std::size_t workers : {2u, 3u, 8u}) {
    EXPECT_EQ(arrival_order(workers), base) << "workers=" << workers;
  }
}

TEST(ShardedEngineDeathTest, MultiPartitionRequiresPositiveEpoch) {
  EXPECT_DEATH(ShardedEngine(1, 8, {2, 1, SimTime::zero()}), "epoch");
}

}  // namespace
}  // namespace hg::sim
