#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

namespace hg::sim {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t workers : {1u, 2u, 4u}) {
    WorkerPool pool(workers);
    std::vector<int> hits(23, 0);
    // Static assignment: index i only ever runs on worker i % workers, so
    // concurrent increments never touch the same slot.
    pool.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    pool.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (int h : hits) EXPECT_EQ(h, 2);
  }
}

TEST(Simulator, RunBeforeIsExclusive) {
  Simulator s(1);
  int ran = 0;
  s.at(SimTime::ms(10), [&] { ran = 1; });
  EXPECT_EQ(s.run_before(SimTime::ms(10)), 0u);
  EXPECT_EQ(ran, 0);
  // The clock still advances to the bound, like run_until.
  EXPECT_EQ(s.now(), SimTime::ms(10));
  EXPECT_EQ(s.run_until(SimTime::ms(10)), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(ShardedEngine, PartitionMapIsContiguousAndBalanced) {
  ShardedEngine e(7, /*node_count=*/103, {/*partitions=*/4, /*workers=*/1, SimTime::ms(1)});
  std::vector<std::size_t> sizes(4, 0);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < 103; ++i) {
    const std::uint32_t p = e.partition_of(i);
    ASSERT_LT(p, 4u);
    ASSERT_GE(p, prev);  // contiguous blocks
    prev = p;
    sizes[p]++;
  }
  for (std::size_t n : sizes) EXPECT_TRUE(n == 25 || n == 26);
}

TEST(ShardedEngine, DegeneratePartitioningClampsToSinglePartition) {
  // More partitions than nodes is a degenerate layout: rather than running
  // empty shards, the engine collapses to one partition, which delegates to
  // the plain sequential loop (and is therefore byte-identical to it — see
  // ParallelDeterminism.DegeneratePartitioningMatchesSequentialEngine).
  ShardedEngine e(7, /*node_count=*/3, {/*partitions=*/16, /*workers=*/2, SimTime::ms(1)});
  EXPECT_EQ(e.partitions(), 1u);
}

TEST(ShardedEngine, SingleNodePartitionsAreAllowed) {
  // partitions == node_count is legal (every message crosses a boundary).
  ShardedEngine e(7, /*node_count=*/5, {/*partitions=*/5, /*workers=*/2, SimTime::ms(1)});
  EXPECT_EQ(e.partitions(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(e.partition_of(i), i);
}

TEST(ShardedEngine, MakeRngMatchesSequentialSimulator) {
  ShardedEngine e(2009, 10, {2, 1, SimTime::ms(1)});
  Simulator s(2009);
  for (std::uint64_t tag : {7ull, 0x41535347ull, 0x4348524eull}) {
    Rng a = e.make_rng(tag);
    Rng b = s.make_rng(tag);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a.next(), b.next());
  }
}

TEST(ShardedEngine, ControlTasksRunBeforeLocalEventsAtSameTime) {
  ShardedEngine e(1, 8, {2, 1, SimTime::ms(1)});
  std::vector<std::string> order;
  e.sim_of(0).at(SimTime::ms(5), [&] { order.push_back("event"); });
  e.schedule_control(SimTime::ms(5), [&] { order.push_back("control"); });
  e.run_until(SimTime::ms(6));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "control");
  EXPECT_EQ(order[1], "event");
}

TEST(ShardedEngine, ControlTasksAtEqualTimesKeepSchedulingOrder) {
  ShardedEngine e(1, 4, {2, 1, SimTime::ms(1)});
  std::vector<int> order;
  e.schedule_control(SimTime::ms(3), [&] { order.push_back(1); });
  e.schedule_control(SimTime::ms(3), [&] {
    order.push_back(2);
    // A control task may chain another at the same timestamp.
    e.schedule_control(SimTime::ms(3), [&] { order.push_back(3); });
  });
  e.run_until(SimTime::ms(4));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedEngine, CountsEventsAcrossPartitions) {
  ShardedEngine e(1, 6, {3, 1, SimTime::ms(1)});
  for (std::uint32_t p = 0; p < 3; ++p) {
    e.sim_of(p).at(SimTime::ms(1 + p), [] {});
  }
  const std::uint64_t ran = e.run_until(SimTime::ms(10));
  EXPECT_EQ(ran, 3u);
  EXPECT_EQ(e.events_executed(), 3u);
}

// The acceptance-critical property: cross-partition messages with *colliding
// arrival timestamps* are imported in an order that depends only on the seed
// and partition count — never on how many workers drive the run.
std::vector<std::uint32_t> arrival_order(std::size_t workers) {
  constexpr std::size_t kNodes = 12;
  ShardedEngine engine(99, kNodes, {/*partitions=*/4, workers, SimTime::ms(10)});
  net::NetworkFabric fabric(engine, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
                            std::make_unique<net::NoLoss>());
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [&order, i](const net::Datagram&) { order.push_back(i); });
  }
  // Every node sends to node 0 at t=0 with constant latency: all arrivals
  // collide at exactly t=10ms, from three different source partitions.
  for (std::uint32_t i = 3; i < kNodes; ++i) {
    fabric.send(NodeId{i}, NodeId{0}, net::MsgClass::kPropose,
                net::BufferRef::copy_of(std::vector<std::uint8_t>(8, 0x42)));
  }
  engine.run_until(SimTime::ms(20));
  return order;
}

TEST(ShardedEngine, CrossPartitionCollidingArrivalsOrderIndependentOfWorkers) {
  const auto base = arrival_order(1);
  EXPECT_EQ(base.size(), 9u);
  for (std::size_t workers : {2u, 3u, 8u}) {
    EXPECT_EQ(arrival_order(workers), base) << "workers=" << workers;
  }
}

TEST(ShardedEngineDeathTest, MultiPartitionRequiresPositiveEpoch) {
  EXPECT_DEATH(ShardedEngine(1, 8, {2, 1, SimTime::zero()}), "epoch");
}

// --- adaptive epoch widening ------------------------------------------------

TEST(ShardedEngine, EpochWideningSkipsQuiescentGaps) {
  // Two events 100 ms and 150 ms out, 1 ms epochs: a literal barrier loop
  // would grind ~200 empty epochs; widening fast-forwards to each event.
  // The barrier schedule is a function of the layout alone, so the counters
  // must not move with the worker count.
  std::uint64_t base_run = 0, base_skipped = 0;
  for (std::size_t workers : {1u, 2u, 4u}) {
    ShardedEngine e(7, 8, {/*partitions=*/2, workers, SimTime::ms(1)});
    std::vector<SimTime> fired;
    e.sim_of(0).at(SimTime::ms(100), [&] { fired.push_back(e.sim_of(0).now()); });
    e.sim_of(1).at(SimTime::ms(150), [&] { fired.push_back(e.sim_of(1).now()); });
    e.run_until(SimTime::ms(200));
    ASSERT_EQ(fired.size(), 2u) << "workers=" << workers;
    EXPECT_EQ(fired[0], SimTime::ms(100));
    EXPECT_EQ(fired[1], SimTime::ms(150));
    EXPECT_GT(e.epochs_skipped(), 0u);
    EXPECT_LT(e.epochs_run(), 10u);  // vs ~200 without widening
    if (workers == 1) {
      base_run = e.epochs_run();
      base_skipped = e.epochs_skipped();
    } else {
      EXPECT_EQ(e.epochs_run(), base_run) << "workers=" << workers;
      EXPECT_EQ(e.epochs_skipped(), base_skipped) << "workers=" << workers;
    }
  }
}

TEST(ShardedEngine, EpochWideningOffGrindsEveryEpoch) {
  ShardedEngine::Config cfg{/*partitions=*/2, /*workers=*/1, SimTime::ms(1)};
  cfg.epoch_widening = false;
  ShardedEngine e(7, 8, std::move(cfg));
  int fired = 0;
  e.sim_of(0).at(SimTime::ms(100), [&] { ++fired; });
  e.run_until(SimTime::ms(200));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.epochs_skipped(), 0u);
  EXPECT_GE(e.epochs_run(), 200u);
}

TEST(ShardedEngine, WideningNeverJumpsScheduledControlTasks) {
  // An otherwise-empty engine: widening wants to jump straight to `until`,
  // but a control task at 50 ms caps the jump — it must run at exactly its
  // scheduled barrier, and an event scheduled *by* it must still run too.
  ShardedEngine e(7, 8, {/*partitions=*/2, /*workers=*/1, SimTime::ms(1)});
  std::vector<SimTime> control_at;
  std::vector<SimTime> event_at;
  e.schedule_control(SimTime::ms(50), [&] {
    control_at.push_back(e.now());
    e.sim_of(1).at(SimTime::ms(120), [&] { event_at.push_back(e.sim_of(1).now()); });
  });
  e.run_until(SimTime::ms(200));
  ASSERT_EQ(control_at.size(), 1u);
  EXPECT_EQ(control_at[0], SimTime::ms(50));
  ASSERT_EQ(event_at.size(), 1u);
  EXPECT_EQ(event_at[0], SimTime::ms(120));
  EXPECT_GT(e.epochs_skipped(), 0u);
}

TEST(ShardedEngineDeathTest, WideningPastAControlTaskIsFatal) {
  // The guard behind the widening rule: jumping a barrier past a scheduled
  // control task (retransmit snapshots, churn crashes...) would silently
  // reorder the run. The engine's own widen targets always respect the cap;
  // this pins the assertion that would catch a future regression.
  ShardedEngine e(1, 8, {2, 1, SimTime::ms(1)});
  e.schedule_control(SimTime::ms(5), [] {});
  EXPECT_DEATH(e.assert_widen_safe(SimTime::ms(6)), "control");
}

// --- exchange modes ----------------------------------------------------------

// Digest of every delivery: receiver, payload length, and payload contents
// (first/last bytes). Distinct per-sender payload sizes make any packing
// offset bug (wrong slice, wrong segment) visible, not just ordering bugs.
std::string exchange_digest(net::FabricConfig::ExchangeMode mode, std::size_t workers) {
  constexpr std::size_t kNodes = 24;
  ShardedEngine engine(123, kNodes, {/*partitions=*/4, workers, SimTime::ms(5)});
  net::FabricConfig cfg;
  cfg.exchange = mode;
  net::NetworkFabric fabric(engine, std::make_unique<net::ConstantLatency>(SimTime::ms(10)),
                            std::make_unique<net::NoLoss>(), cfg);
  // Per-receiver logs: a node's deliveries run on its partition's worker, so
  // each slot is written by one thread only; concatenating in id order at
  // the end gives a layout- and worker-independent digest.
  std::vector<std::string> per_node(kNodes);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    fabric.register_node(NodeId{i}, BitRate::unlimited(),
                         [&per_node, i](const net::Datagram& d) {
                           per_node[i] += std::to_string(d.src.value()) + ":" +
                                          std::to_string(d.bytes.size()) + ":" +
                                          std::to_string(d.bytes.data()[0]) + ":" +
                                          std::to_string(d.bytes.data()[d.bytes.size() - 1]) +
                                          "\n";
                         });
  }
  // Two bursts so sender-side segment recycling across epochs is exercised;
  // sizes vary per sender so records land at distinct offsets.
  for (int burst = 0; burst < 2; ++burst) {
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      std::vector<std::uint8_t> payload(64 + 97 * i % 1500 + 1,
                                        static_cast<std::uint8_t>(i + burst));
      payload.back() = static_cast<std::uint8_t>(0xF0 + burst);
      fabric.send(NodeId{i}, NodeId{(i * 7 + 1 + static_cast<std::uint32_t>(burst)) % kNodes},
                  net::MsgClass::kServe, net::BufferRef::copy_of(payload));
    }
    engine.run_until(engine.now() + SimTime::ms(25));
  }
  std::string digest;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    digest += std::to_string(i) + "[" + per_node[i] + "]";
  }
  return digest;
}

TEST(ShardedEngine, BatchedAndDeepCopyExchangeAreByteIdentical) {
  const std::string base = exchange_digest(net::FabricConfig::ExchangeMode::kBatched, 1);
  EXPECT_NE(base.find(":"), std::string::npos);
  for (std::size_t workers : {1u, 4u}) {
    EXPECT_EQ(exchange_digest(net::FabricConfig::ExchangeMode::kBatched, workers), base);
    EXPECT_EQ(exchange_digest(net::FabricConfig::ExchangeMode::kDeepCopy, workers), base);
  }
}

TEST(ShardedEngine, OversizedPayloadSurvivesBatchedExchange) {
  // A payload larger than the 256 KiB pack segment gets a dedicated
  // exact-size segment; contents must arrive intact.
  constexpr std::size_t kBig = 300 * 1024;
  ShardedEngine engine(5, 4, {/*partitions=*/2, /*workers=*/1, SimTime::ms(1)});
  net::NetworkFabric fabric(engine, std::make_unique<net::ConstantLatency>(SimTime::ms(2)),
                            std::make_unique<net::NoLoss>());
  std::vector<std::uint8_t> got;
  for (std::uint32_t i = 0; i < 4; ++i) {
    fabric.register_node(NodeId{i}, BitRate::unlimited(), [&got](const net::Datagram& d) {
      got = d.bytes.to_vector();
    });
  }
  std::vector<std::uint8_t> payload(kBig);
  for (std::size_t i = 0; i < kBig; ++i) payload[i] = static_cast<std::uint8_t>(i * 31 >> 3);
  fabric.send(NodeId{0}, NodeId{3}, net::MsgClass::kServe, net::BufferRef::copy_of(payload));
  engine.run_until(SimTime::ms(10));
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace hg::sim
