#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hg::sim {
namespace {

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator s(1);
  std::vector<int> fired;
  s.after(SimTime::ms(10), [&] { fired.push_back(1); });
  s.after(SimTime::ms(20), [&] { fired.push_back(2); });
  s.after(SimTime::ms(30), [&] { fired.push_back(3); });

  s.run_until(SimTime::ms(20));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), SimTime::ms(20));

  s.run_until(SimTime::ms(100));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s(1);
  s.run_until(SimTime::sec(5));
  EXPECT_EQ(s.now(), SimTime::sec(5));
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s(1);
  SimTime observed = SimTime::zero();
  s.after(SimTime::ms(10), [&] {
    s.after(SimTime::ms(5), [&] { observed = s.now(); });
  });
  s.run_until(SimTime::sec(1));
  EXPECT_EQ(observed, SimTime::ms(15));
}

TEST(Simulator, PeriodicTimerFiresRepeatedly) {
  Simulator s(1);
  int count = 0;
  s.every(SimTime::ms(100), SimTime::ms(100), [&] { ++count; });
  s.run_until(SimTime::sec(1));
  EXPECT_EQ(count, 10);
}

TEST(Simulator, PeriodicTimerInitialDelayIndependent) {
  Simulator s(1);
  std::vector<SimTime> times;
  s.every(SimTime::ms(50), SimTime::ms(200), [&] { times.push_back(s.now()); });
  s.run_until(SimTime::ms(650));
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], SimTime::ms(50));
  EXPECT_EQ(times[1], SimTime::ms(250));
  EXPECT_EQ(times[2], SimTime::ms(450));
  EXPECT_EQ(times[3], SimTime::ms(650));
}

TEST(Simulator, PeriodicTimerCancel) {
  Simulator s(1);
  int count = 0;
  auto h = s.every(SimTime::ms(100), SimTime::ms(100), [&] { ++count; });
  s.run_until(SimTime::ms(350));
  EXPECT_EQ(count, 3);
  h.cancel();
  s.run_until(SimTime::sec(2));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicTimerSelfCancelFromCallback) {
  Simulator s(1);
  int count = 0;
  Simulator::PeriodicHandle h;
  h = s.every(SimTime::ms(10), SimTime::ms(10), [&] {
    if (++count == 5) h.cancel();
  });
  s.run_until(SimTime::sec(1));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicSelfCancelLeavesQueueClean) {
  // A periodic timer cancelled from inside its own callback must stop
  // rescheduling; nothing of it may linger in the pool once the run drains.
  Simulator s(1);
  int count = 0;
  Simulator::PeriodicHandle h;
  h = s.every(SimTime::ms(10), SimTime::ms(10), [&] {
    if (++count == 3) h.cancel();
  });
  s.run_until(SimTime::sec(1));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(h.active());
  EXPECT_EQ(s.queue().live_events(), 0u);
}

TEST(Simulator, PeriodicSelfCancelThenNewTimerReusesSlots) {
  // Slot-pool reuse across timer lifetimes: a second periodic timer created
  // after the first self-cancels runs on recycled slots without cross-talk.
  Simulator s(1);
  int first = 0, second = 0;
  Simulator::PeriodicHandle h1;
  h1 = s.every(SimTime::ms(10), SimTime::ms(10), [&] {
    if (++first == 5) h1.cancel();
  });
  s.run_until(SimTime::ms(200));
  EXPECT_EQ(first, 5);

  Simulator::PeriodicHandle h2;
  h2 = s.every(SimTime::ms(10), SimTime::ms(10), [&] {
    if (++second == 4) h2.cancel();
  });
  s.run_until(SimTime::sec(1));
  EXPECT_EQ(first, 5);   // the dead timer must not resurrect on reused slots
  EXPECT_EQ(second, 4);
  EXPECT_EQ(s.queue().live_events(), 0u);
}

TEST(Simulator, StaleEventHandleAfterSlotReuse) {
  // Simulator-level version of the generation check: a handle whose event
  // fired stays inert even after its pooled slot hosts a new event.
  Simulator s(1);
  bool second_fired = false;
  EventHandle first = s.after(SimTime::ms(1), [] {});
  s.run_until(SimTime::ms(5));
  EXPECT_FALSE(first.pending());
  EventHandle second = s.after(SimTime::ms(1), [&] { second_fired = true; });
  first.cancel();  // stale; must not cancel `second` in the reused slot
  EXPECT_TRUE(second.pending());
  s.run_until(SimTime::ms(10));
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, MakeRngDeterministicByTag) {
  Simulator a(77), b(77);
  Rng ra = a.make_rng(5), rb = b.make_rng(5);
  EXPECT_EQ(ra.next(), rb.next());
  Rng rc = a.make_rng(6);
  Rng rd = a.make_rng(5);
  (void)rc;
  EXPECT_EQ(rd.next(), b.make_rng(5).next());
}

TEST(Simulator, EventCountReflectsExecution) {
  Simulator s(1);
  for (int i = 0; i < 42; ++i) s.after(SimTime::ms(i), [] {});
  s.run_until(SimTime::sec(1));
  EXPECT_EQ(s.events_executed(), 42u);
}

}  // namespace
}  // namespace hg::sim
