// Fixture: an allow-comment without a justification is itself a finding
// (`bad-allow`), and the underlying rule still fires.
#include <cstdint>
#include <unordered_map>

// hg-lint: allow(unordered-container)
std::unordered_map<std::uint32_t, int> table;
