// Fixture: a justified allow-comment must silence the rule it names — on the
// same line and from the preceding line.
#include <cstdint>
#include <unordered_map>  // hg-lint: allow(unordered-container) header for the allowed decls below

struct DebugIndex {
  // hg-lint: allow(unordered-container) debug-only index, never iterated
  std::unordered_map<std::uint32_t, int> by_id;
  std::unordered_map<std::uint32_t, int> by_tag;  // hg-lint: allow(unordered-container) lookup only, never iterated
};
