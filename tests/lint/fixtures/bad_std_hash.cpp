// Fixture: deriving values from std::hash must trip `std-hash`.
#include <cstddef>
#include <string>

std::size_t bucket_of(const std::string& key, std::size_t buckets) {
  return std::hash<std::string>{}(key) % buckets;  // finding expected here
}
