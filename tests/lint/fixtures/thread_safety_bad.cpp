// Fixture: under clang -Wthread-safety -Werror this file MUST NOT compile.
// It touches HG_GUARDED_BY state without holding the guarding mutex — the
// exact bug class the annotations in src/sim/parallel.hpp exist to catch.
// Not part of any build target; compiled by thread_safety_compile_test.py.
#include <cstdint>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

class Counter {
 public:
  void bump_locked() {
    hg::sync::MutexLock lock(mu_);
    ++value_;
  }

  // BUG: reads value_ without mu_ — clang must reject this translation unit.
  std::uint64_t read_unlocked() const { return value_; }

 private:
  mutable hg::sync::Mutex mu_;
  std::uint64_t value_ HG_GUARDED_BY(mu_) = 0;
};

std::uint64_t poke(Counter& c) {
  c.bump_locked();
  return c.read_unlocked();
}
