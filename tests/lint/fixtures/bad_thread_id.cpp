// Fixture: thread-identity-dependent logic must trip `thread-id`.
#include <cstddef>
#include <thread>

bool is_main_thread(std::thread::id main_id) {
  return std::this_thread::get_id() == main_id;  // finding expected here
}
