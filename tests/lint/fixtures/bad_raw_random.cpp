// Fixture: randomness outside common/rng.hpp must trip `raw-random`.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;                       // finding expected here
  std::mt19937 gen(rd());                      // finding expected here
  return static_cast<int>(gen() % 6) + 1;
}

int roll_libc() {
  return rand() % 6 + 1;  // finding expected here
}
