// Fixture: declaring a hash container must trip `unordered-container`.
#include <cstdint>
#include <unordered_map>

struct PeerTable {
  std::unordered_map<std::uint32_t, int> peers;  // finding expected here
};
