// Fixture: the disciplined twin of thread_safety_bad.cpp — every access to
// guarded state holds the mutex (scoped lock or HG_REQUIRES), so it MUST
// compile cleanly under clang -Wthread-safety -Werror. Proves the wrappers in
// common/sync.hpp and the macros in common/thread_annotations.hpp analyze as
// intended (a broken macro set would pass the bad fixture, not fail it).
// Not part of any build target; compiled by thread_safety_compile_test.py.
#include <cstdint>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

class Counter {
 public:
  void bump_locked() {
    hg::sync::MutexLock lock(mu_);
    bump_unlocked();
  }

  std::uint64_t read_locked() const {
    hg::sync::MutexLock lock(mu_);
    return value_;
  }

 private:
  void bump_unlocked() HG_REQUIRES(mu_) { ++value_; }

  mutable hg::sync::Mutex mu_;
  std::uint64_t value_ HG_GUARDED_BY(mu_) = 0;
};

std::uint64_t poke(Counter& c) {
  c.bump_locked();
  return c.read_locked();
}
