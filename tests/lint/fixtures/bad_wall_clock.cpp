// Fixture: wall-clock reads must trip `wall-clock`.
#include <chrono>
#include <ctime>

long stamp_ms() {
  const auto t = std::chrono::steady_clock::now();  // finding expected here
  return std::chrono::duration_cast<std::chrono::milliseconds>(t.time_since_epoch()).count();
}

long stamp_s() {
  return static_cast<long>(std::time(nullptr));  // finding expected here
}
