// Fixture: ordering by address must trip `pointer-order`.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Node {
  int id;
};

std::set<Node*, std::less<Node*>> by_address;  // finding expected here

bool before(const Node* a, const Node* b) {
  return reinterpret_cast<std::uintptr_t>(a) < reinterpret_cast<std::uintptr_t>(b);  // finding
}
