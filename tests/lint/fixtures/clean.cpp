// Fixture: deterministic code passes with zero findings. Mentions of banned
// constructs in comments ("unordered_map", rand(), steady_clock) and string
// literals must not trip anything, and deterministic look-alikes
// (next_time(), sorted containers, sim time) are fine.
#include <cstdint>
#include <map>
#include <vector>

const char* kHelp = "do not use rand() or steady_clock here";

struct Queue {
  std::map<std::uint64_t, int> by_key;  // ordered: iteration is deterministic
  std::vector<std::uint64_t> times;

  std::uint64_t next_time() const { return times.empty() ? 0 : times.front(); }
};

std::uint64_t probe(Queue& q) { return q.next_time(); }
