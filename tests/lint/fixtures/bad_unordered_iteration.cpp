// Fixture: iterating a hash container must trip `unordered-iteration`
// (alongside the declaration findings), pointing at the loop itself.
#include <cstdint>
#include <unordered_set>  // hg-lint: allow(unordered-container) fixture isolates the iteration rule

// hg-lint: allow(unordered-container) fixture isolates the iteration rule
std::unordered_set<std::uint32_t> live_ids;

int count_even() {
  int n = 0;
  for (std::uint32_t id : live_ids) {  // finding expected here
    if (id % 2 == 0) ++n;
  }
  return n;
}
