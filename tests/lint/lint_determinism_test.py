#!/usr/bin/env python3
"""Fixture tests for scripts/lint_determinism.py.

Every linter rule has a known-bad fixture that must trip it (with the right
file:line), an allow-comment fixture that must pass, and a clean fixture that
must produce zero findings — so a regression in the linter itself (a rule
silently stops matching, the comment stripper eats code, the escape hatch
stops working) fails here before it lets nondeterminism back into src/.

Runs under plain `unittest` (no third-party deps) and under pytest unchanged:

    python3 tests/lint/lint_determinism_test.py   # or: pytest tests/lint/
"""

import subprocess
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
LINTER = REPO / "scripts" / "lint_determinism.py"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_linter(*paths):
    return subprocess.run(
        [sys.executable, str(LINTER), *[str(p) for p in paths]],
        capture_output=True,
        text=True,
        check=False,
    )


class RuleFixtures(unittest.TestCase):
    """Each bad fixture trips exactly the expected rules at expected lines."""

    # fixture -> list of (rule, line) that MUST appear in the output.
    EXPECTED = {
        "bad_unordered_container.cpp": [("unordered-container", 3),
                                        ("unordered-container", 6)],
        "bad_unordered_iteration.cpp": [("unordered-iteration", 11)],
        "bad_std_hash.cpp": [("std-hash", 6)],
        "bad_pointer_order.cpp": [("pointer-order", 11), ("pointer-order", 14)],
        "bad_wall_clock.cpp": [("wall-clock", 6), ("wall-clock", 11)],
        "bad_raw_random.cpp": [("raw-random", 6), ("raw-random", 7), ("raw-random", 12)],
        "bad_thread_id.cpp": [("thread-id", 6)],
        "bad_allow_without_reason.cpp": [("bad-allow", 6),
                                         ("unordered-container", 4),
                                         ("unordered-container", 7)],
    }

    def test_every_rule_has_a_fixture(self):
        listed = run_linter("--list-rules").stdout.split()
        covered = {rule for findings in self.EXPECTED.values() for rule, _ in findings}
        self.assertEqual(sorted(set(listed) - covered), [],
                         "linter rule without a bad fixture — add one here")

    def test_bad_fixtures_trip(self):
        for fixture, findings in self.EXPECTED.items():
            with self.subTest(fixture=fixture):
                result = run_linter(FIXTURES / fixture)
                self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
                for rule, line in findings:
                    needle = f"{fixture}:{line}: [{rule}]"
                    self.assertIn(needle, result.stdout,
                                  f"expected '{needle}' in:\n{result.stdout}")

    def test_bad_fixtures_report_nothing_unexpected(self):
        for fixture, findings in self.EXPECTED.items():
            with self.subTest(fixture=fixture):
                result = run_linter(FIXTURES / fixture)
                reported = [l for l in result.stdout.splitlines() if ": [" in l]
                self.assertEqual(len(reported), len(findings),
                                 f"extra/missing findings:\n{result.stdout}")


class EscapeHatch(unittest.TestCase):
    def test_allow_comment_silences_rule(self):
        result = run_linter(FIXTURES / "allowed_unordered.cpp")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_allow_without_reason_is_a_finding(self):
        result = run_linter(FIXTURES / "bad_allow_without_reason.cpp")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[bad-allow]", result.stdout)

    def test_unknown_rule_in_allow_is_a_finding(self):
        bad = FIXTURES / "clean.cpp"
        text = bad.read_text() + "// hg-lint: allow(no-such-rule) bogus\nint x;\n"
        tmp = FIXTURES / "tmp_unknown_allow.cpp"
        tmp.write_text(text)
        try:
            result = run_linter(tmp)
            self.assertEqual(result.returncode, 1)
            self.assertIn("unknown rule", result.stdout)
        finally:
            tmp.unlink()


class CleanPaths(unittest.TestCase):
    def test_clean_fixture_passes(self):
        result = run_linter(FIXTURES / "clean.cpp")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_src_tree_is_clean(self):
        """The real contract: the production tree has zero findings and zero
        allow-comments (see ISSUE/README — allows need a documented reason)."""
        result = run_linter(REPO / "src")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_src_tree_has_no_allow_comments(self):
        allows = [
            f"{f}: {line.strip()}"
            for f in sorted((REPO / "src").rglob("*"))
            if f.suffix in {".hpp", ".cpp"}
            for line in f.read_text().splitlines()
            if "hg-lint: allow" in line
        ]
        self.assertEqual(allows, [],
                         "src/ is expected to need no escape hatches; justify any "
                         "new one in README 'Correctness tooling' as well")

    def test_missing_path_is_usage_error(self):
        result = run_linter(REPO / "no" / "such" / "dir")
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()
