#!/usr/bin/env python3
"""Death-style compile check for the clang thread-safety annotation layer.

Two fixtures bracket the analysis: thread_safety_bad.cpp accesses
HG_GUARDED_BY state without its mutex and MUST fail to compile under
`clang -Wthread-safety -Werror`; thread_safety_good.cpp does the same work
with proper locking and MUST compile cleanly. Together they prove the macros
in src/common/thread_annotations.hpp and the wrappers in src/common/sync.hpp
are live — a silently broken macro (e.g. the no-op fallback leaking into
clang builds) would let the bad fixture compile and fail here.

Needs a clang++ on PATH; skips (cleanly, with a message) when there is none,
e.g. on the gcc-only dev container. CI's clang job always runs it for real.

    python3 tests/lint/thread_safety_compile_test.py   # or: pytest tests/lint/
"""

import shutil
import subprocess
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

CLANG_CANDIDATES = ["clang++", "clang++-18", "clang++-17", "clang++-16",
                    "clang++-15", "clang++-14"]


def find_clang():
    for name in CLANG_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_fixture(clang, fixture):
    return subprocess.run(
        [clang, "-fsyntax-only", "-std=c++17", "-Wthread-safety", "-Werror",
         "-I", str(REPO / "src"), str(fixture)],
        capture_output=True,
        text=True,
        check=False,
    )


@unittest.skipIf(find_clang() is None,
                 "no clang++ on PATH; thread-safety analysis is clang-only "
                 "(CI's clang job runs this for real)")
class ThreadSafetyCompile(unittest.TestCase):
    def setUp(self):
        self.clang = find_clang()

    def test_bad_fixture_fails_to_compile(self):
        result = compile_fixture(self.clang, FIXTURES / "thread_safety_bad.cpp")
        self.assertNotEqual(
            result.returncode, 0,
            "unlocked access to HG_GUARDED_BY state compiled — the "
            "annotation macros are not reaching clang")
        self.assertIn("-Wthread-safety", result.stderr,
                      f"failed for an unrelated reason:\n{result.stderr}")

    def test_good_fixture_compiles_clean(self):
        result = compile_fixture(self.clang, FIXTURES / "thread_safety_good.cpp")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_annotated_headers_compile_clean(self):
        """The real annotated headers must themselves be -Wthread-safety clean."""
        for header in ["sim/parallel.hpp", "common/sync.hpp"]:
            with self.subTest(header=header):
                result = subprocess.run(
                    [self.clang, "-fsyntax-only", "-x", "c++", "-std=c++17",
                     "-Wthread-safety", "-Werror", "-I", str(REPO / "src"),
                     str(REPO / "src" / header)],
                    capture_output=True, text=True, check=False)
                self.assertEqual(result.returncode, 0, result.stderr)


if __name__ == "__main__":
    unittest.main()
