// FecModule: online decode-on-k-of-n over the node's delivery signal.
#include "stream/fec_module.hpp"

#include <gtest/gtest.h>

#include "stream/packet.hpp"

namespace hg::stream {
namespace {

StreamConfig small_stream() {
  StreamConfig cfg;
  cfg.data_per_window = 5;
  cfg.parity_per_window = 3;
  cfg.packet_bytes = 64;
  cfg.real_payloads = true;
  return cfg;
}

struct Rig {
  sim::Simulator sim{7};
  net::NetworkFabric fabric;
  membership::Directory directory;
  std::unique_ptr<core::NodeRuntime> node;
  FecModule* fec = nullptr;

  explicit Rig(StreamConfig cfg, std::uint32_t windows)
      : fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(1)),
               std::make_unique<net::NoLoss>()),
        directory(sim, membership::DetectionConfig{}) {
    directory.add_node(NodeId{0});
    node = core::NodeRuntime::make(sim, fabric, directory, NodeId{0}, core::NodeConfig{});
    fec = &node->emplace_module<FecModule>(cfg, windows);
  }

  void deliver(std::uint32_t w, std::uint16_t i, const std::vector<std::uint8_t>& bytes) {
    node->deliveries().emit(
        gossip::Event{gossip::EventId{w, i}, net::BufferRef::copy_of(bytes)});
  }
};

// One window's packets: data synthesized per id, parity RS-encoded — the
// exact bytes StreamSource publishes in real-payload mode.
struct CodedWindow {
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<std::vector<std::uint8_t>> parity;

  CodedWindow(const StreamConfig& cfg, std::uint32_t w) {
    for (std::uint16_t i = 0; i < cfg.data_per_window; ++i) {
      data.push_back(synth_payload_bytes(w, i, cfg.packet_bytes));
    }
    fec::WindowCodec codec(fec::WindowCodecConfig{.data_per_window = cfg.data_per_window,
                                                  .parity_per_window = cfg.parity_per_window,
                                                  .packet_bytes = cfg.packet_bytes});
    parity = codec.encode_window(data);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& packet(const StreamConfig& cfg,
                                                        std::uint16_t i) const {
    return i < cfg.data_per_window ? data[i] : parity[i - cfg.data_per_window];
  }
};

TEST(FecModule, DecodesAtTheKthArrivalAndRepairsErasures) {
  const auto cfg = small_stream();
  Rig rig(cfg, 2);
  CodedWindow win(cfg, 0);

  std::uint32_t sink_calls = 0;
  rig.fec->set_window_sink(
      [&](std::uint32_t w, std::span<const std::vector<std::uint8_t>> decoded) {
        ++sink_calls;
        EXPECT_EQ(w, 0u);
        ASSERT_EQ(decoded.size(), cfg.data_per_window);
        for (std::uint16_t i = 0; i < cfg.data_per_window; ++i) {
          EXPECT_EQ(decoded[i], win.data[i]) << "packet " << i;
        }
      });

  // Data packets 1 and 3 are lost; parity 0 and 2 stand in. Exactly k = 5
  // packets arrive, decode must fire on the last one and not before.
  const std::uint16_t arrivals[] = {0, 2, 5, 4, 7};
  for (std::size_t a = 0; a < std::size(arrivals); ++a) {
    EXPECT_FALSE(rig.fec->window_decoded(0));
    rig.deliver(0, arrivals[a], win.packet(cfg, arrivals[a]));
  }
  EXPECT_TRUE(rig.fec->window_decoded(0));
  EXPECT_EQ(sink_calls, 1u);
  EXPECT_EQ(rig.fec->stats().windows_decoded, 1u);
  EXPECT_EQ(rig.fec->stats().erasures_repaired, 2u);  // data packets 1 and 3
  EXPECT_EQ(rig.fec->stats().windows_complete, 0u);
  EXPECT_EQ(rig.fec->stats().decode_failures, 0u);

  // Late arrivals to a decoded window are no-ops.
  rig.deliver(0, 1, win.packet(cfg, 1));
  EXPECT_EQ(sink_calls, 1u);
  EXPECT_EQ(rig.fec->stats().windows_decoded, 1u);
}

TEST(FecModule, AllDataWindowNeedsNoRepair) {
  const auto cfg = small_stream();
  Rig rig(cfg, 1);
  CodedWindow win(cfg, 0);
  for (std::uint16_t i = 0; i < cfg.data_per_window; ++i) {
    rig.deliver(0, i, win.data[i]);
  }
  EXPECT_TRUE(rig.fec->window_decoded(0));
  EXPECT_EQ(rig.fec->stats().windows_decoded, 1u);
  EXPECT_EQ(rig.fec->stats().windows_complete, 1u);
  EXPECT_EQ(rig.fec->stats().erasures_repaired, 0u);
}

TEST(FecModule, IgnoresDuplicatesMalformedAndOutOfRange) {
  const auto cfg = small_stream();
  Rig rig(cfg, 1);
  CodedWindow win(cfg, 0);

  rig.deliver(0, 0, win.data[0]);
  rig.deliver(0, 0, win.data[0]);  // duplicate: not counted twice
  rig.deliver(0, 1, std::vector<std::uint8_t>(cfg.packet_bytes - 1, 9));  // short
  rig.deliver(7, 0, win.data[0]);  // window beyond the stream: ignored
  EXPECT_EQ(rig.fec->stats().malformed_packets, 1u);
  EXPECT_FALSE(rig.fec->window_decoded(0));

  // The short packet was dropped, so index 1 is still repairable: complete
  // the window with the real remaining packets plus one parity.
  for (std::uint16_t i = 2; i < cfg.data_per_window; ++i) rig.deliver(0, i, win.data[i]);
  rig.deliver(0, 5, win.packet(cfg, 5));
  EXPECT_TRUE(rig.fec->window_decoded(0));
  EXPECT_EQ(rig.fec->stats().erasures_repaired, 1u);
  EXPECT_EQ(rig.fec->stats().decode_failures, 0u);
}

}  // namespace
}  // namespace hg::stream
