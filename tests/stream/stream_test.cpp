#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stream/lag_analyzer.hpp"
#include "stream/packet.hpp"
#include "stream/player.hpp"
#include "stream/source.hpp"

namespace hg::stream {
namespace {

StreamConfig tiny_stream() {
  StreamConfig cfg;
  cfg.packet_bytes = 100;
  cfg.data_per_window = 8;
  cfg.parity_per_window = 2;
  cfg.payload_rate_kbps = 64.0;  // window duration = 8*100*8/64000 = 0.1 s
  return cfg;
}

TEST(StreamConfig, PaperRates) {
  StreamConfig cfg;  // paper defaults
  EXPECT_NEAR(cfg.window_duration_sec(), 101.0 * 1316.0 * 8.0 / 551'000.0, 1e-9);
  EXPECT_NEAR(cfg.effective_rate_kbps(), 551.0 * 110.0 / 101.0, 1e-6);  // ~600 kbps
  EXPECT_NEAR(cfg.effective_rate_kbps(), 600.0, 1.0);
  // ~11.26 ids per 200 ms propose (paper §3.1).
  const double packets_per_200ms = 0.2 / cfg.packet_interval_sec();
  EXPECT_NEAR(packets_per_200ms, 11.26, 0.2);
}

TEST(StreamSource, EmitsAllPacketsOnSchedule) {
  sim::Simulator sim(1);
  std::vector<std::pair<gossip::EventId, sim::SimTime>> published;
  StreamSource source(sim, tiny_stream(),
                      [&](gossip::Event e) { published.emplace_back(e.id, sim.now()); });
  source.start(sim::SimTime::sec(1), 3);
  sim.run_until(sim::SimTime::sec(10));

  ASSERT_EQ(published.size(), 3u * 10u);
  EXPECT_EQ(published.front().first, (gossip::EventId{0, 0}));
  EXPECT_EQ(published.front().second, sim::SimTime::sec(1));
  EXPECT_EQ(published.back().first, (gossip::EventId{2, 9}));
  // The announced schedule matches actual emission times.
  for (const auto& [id, at] : published) {
    EXPECT_EQ(source.publish_time(id), at);
  }
}

TEST(StreamSource, EmissionRateMatchesEffectiveRate) {
  sim::Simulator sim(2);
  std::size_t count = 0;
  StreamSource source(sim, tiny_stream(), [&](gossip::Event) { ++count; });
  source.start(sim::SimTime::zero(), 10);
  sim.run_until(sim::SimTime::sec(0.5));
  // 0.1 s per window of 10 packets -> 100 packets per second.
  EXPECT_NEAR(static_cast<double>(count), 50.0, 2.0);
}

TEST(StreamSource, SizedModeSharesOnePayloadBuffer) {
  sim::Simulator sim(3);
  std::vector<gossip::Event> events;
  StreamSource source(sim, tiny_stream(), [&](gossip::Event e) { events.push_back(e); });
  source.start(sim::SimTime::zero(), 2);
  sim.run_until(sim::SimTime::sec(1));
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].payload.data(), events[1].payload.data());
  EXPECT_EQ(events[0].payload_size(), 100u);
}

TEST(StreamSource, RealModeParityDecodes) {
  auto cfg = tiny_stream();
  cfg.real_payloads = true;
  sim::Simulator sim(4);
  std::vector<gossip::Event> events;
  StreamSource source(sim, cfg, [&](gossip::Event e) { events.push_back(e); });
  source.start(sim::SimTime::zero(), 1);
  sim.run_until(sim::SimTime::sec(1));
  ASSERT_EQ(events.size(), 10u);

  // Drop two data packets; decode from the rest via the window codec.
  fec::WindowCodec codec(fec::WindowCodecConfig{.data_per_window = cfg.data_per_window,
                                                .parity_per_window = cfg.parity_per_window,
                                                .packet_bytes = cfg.packet_bytes});
  std::vector<std::optional<std::vector<std::uint8_t>>> received(10);
  for (const auto& e : events) {
    if (e.id.index() == 1 || e.id.index() == 4) continue;
    received[e.id.index()] = e.payload.to_vector();
  }
  auto decoded = codec.decode_window(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ((*decoded)[1], synth_payload(0, 1, cfg.packet_bytes).to_vector());
  EXPECT_EQ((*decoded)[4], synth_payload(0, 4, cfg.packet_bytes).to_vector());
}

struct PlayerHarness {
  sim::Simulator sim{7};
  StreamConfig cfg = tiny_stream();
  Player player{sim, cfg, /*windows_total=*/4};

  void deliver(std::uint32_t w, std::uint16_t i, double at_sec) {
    sim.run_until(sim::SimTime::sec(at_sec));
    player.on_deliver(gossip::Event{packet_id(w, i), net::BufferRef{}});
  }
};

TEST(Player, CountsDistinctArrivals) {
  PlayerHarness h;
  h.deliver(0, 0, 1.0);
  h.deliver(0, 1, 1.1);
  h.deliver(0, 1, 1.2);  // duplicate
  EXPECT_EQ(h.player.window(0).received, 2u);
  EXPECT_EQ(h.player.duplicates(), 1u);
  EXPECT_EQ(h.player.window(0).data_received, 2u);
}

TEST(Player, DecodeTimeIsKthArrival) {
  PlayerHarness h;
  // k = 8: deliver 7 packets, then the 8th at t=2.0.
  for (std::uint16_t i = 0; i < 7; ++i) h.deliver(0, i, 1.0 + 0.01 * i);
  EXPECT_EQ(h.player.window(0).decode_time, sim::SimTime::max());
  h.deliver(0, 9, 2.0);  // a parity packet counts toward decodability
  EXPECT_EQ(h.player.window(0).decode_time, sim::SimTime::sec(2.0));
}

TEST(Player, SmartModeCancelsDecodedWindow) {
  PlayerHarness h;
  std::vector<std::uint32_t> cancelled;
  h.player.set_cancel_window([&](std::uint32_t w) { cancelled.push_back(w); });
  for (std::uint16_t i = 0; i < 8; ++i) h.deliver(0, i, 1.0);
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0], 0u);
  // Further packets of window 0 are not wanted anymore.
  EXPECT_FALSE(h.player.should_request(packet_id(0, 8)));
  EXPECT_TRUE(h.player.should_request(packet_id(1, 0)));
}

TEST(Player, DumbModeKeepsRequesting) {
  PlayerHarness h;
  h.player.set_smart(false);
  for (std::uint16_t i = 0; i < 8; ++i) h.deliver(0, i, 1.0);
  EXPECT_TRUE(h.player.should_request(packet_id(0, 8)));
}

TEST(Player, DataArrivedByDeadline) {
  PlayerHarness h;
  h.deliver(0, 0, 1.0);
  h.deliver(0, 1, 2.0);
  h.deliver(0, 9, 2.5);  // parity: not a data packet
  EXPECT_EQ(h.player.data_arrived_by(0, sim::SimTime::sec(1.5)), 1u);
  EXPECT_EQ(h.player.data_arrived_by(0, sim::SimTime::sec(3.0)), 2u);
}

// --- LagAnalyzer over a scripted source+player pair ----------------------

struct AnalyzerHarness {
  sim::Simulator sim{8};
  StreamConfig cfg = tiny_stream();
  std::unique_ptr<StreamSource> source;
  std::unique_ptr<Player> player;
  std::unique_ptr<LagAnalyzer> analyzer;

  // Window timing: w0 completes at 0.1 s, w1 at 0.2 s, w2 at 0.3 s.
  AnalyzerHarness() {
    source = std::make_unique<StreamSource>(sim, cfg, [](gossip::Event) {});
    source->start(sim::SimTime::zero(), 3);
    player = std::make_unique<Player>(sim, cfg, 3);
    analyzer = std::make_unique<LagAnalyzer>(*source);
    sim.run_until(sim::SimTime::sec(1));  // let the source finish
  }

  void arrive(std::uint32_t w, std::uint16_t i, double at_sec) {
    // Directly inject an arrival at a scripted time (time moves forward).
    sim.run_until(sim::SimTime::sec(at_sec));
    player->on_deliver(gossip::Event{packet_id(w, i), net::BufferRef{}});
  }
};

TEST(LagAnalyzer, WindowDecodeLags) {
  AnalyzerHarness h;
  // Window 0 (completes 0.1 s): 8 packets by 1.6 s -> lag 1.5 s.
  for (std::uint16_t i = 0; i < 8; ++i) h.arrive(0, i, 1.6);
  // Window 1: never decodable (7 < 8 packets).
  for (std::uint16_t i = 0; i < 7; ++i) h.arrive(1, i, 1.7);
  // Window 2 (completes ~0.3 s): decodable at 2.3 -> lag 2.0 s.
  for (std::uint16_t i = 0; i < 8; ++i) h.arrive(2, i, 2.3);

  const auto lags = h.analyzer->window_decode_lags(*h.player);
  ASSERT_EQ(lags.size(), 3u);
  EXPECT_NEAR(lags[0], 1.5, 0.02);
  EXPECT_TRUE(std::isinf(lags[1]));
  EXPECT_NEAR(lags[2], 2.0, 0.02);

  EXPECT_NEAR(h.analyzer->jitter_fraction(*h.player, 1.8), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(h.analyzer->jitter_fraction(*h.player, 2.1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(h.analyzer->jitter_fraction_offline(*h.player), 1.0 / 3.0, 1e-9);
  // A fully jitter-free stream is unreachable (window 1 lost).
  EXPECT_FALSE(h.analyzer->lag_to_jitter_at_most(*h.player, 0.0).has_value());
  // Allowing 1/3 jitter: need the 2nd smallest lag.
  const auto lag13 = h.analyzer->lag_to_jitter_at_most(*h.player, 0.34);
  ASSERT_TRUE(lag13.has_value());
  EXPECT_NEAR(*lag13, 2.0, 0.02);
}

TEST(LagAnalyzer, DeliveryInJitteredWindows) {
  AnalyzerHarness h;
  // All three windows jittered at lag 0.05 (nothing arrives that fast).
  // Window 0: 4 of 8 data packets by deadline+lag... use lag 10 s with
  // window 1 having 7 data packets (jittered but 7/8 delivered).
  for (std::uint16_t i = 0; i < 8; ++i) h.arrive(0, i, 1.0);   // decodable
  for (std::uint16_t i = 0; i < 7; ++i) h.arrive(1, i, 1.0);   // jittered, 7/8
  for (std::uint16_t i = 0; i < 2; ++i) h.arrive(2, i, 1.0);   // jittered, 2/8
  const auto ratio = h.analyzer->mean_delivery_in_jittered(*h.player, 10.0);
  ASSERT_TRUE(ratio.has_value());
  EXPECT_NEAR(*ratio, (7.0 / 8.0 + 2.0 / 8.0) / 2.0, 1e-9);
}

TEST(LagAnalyzer, PacketLagsUseDecodeRecovery) {
  AnalyzerHarness h;
  // Window 0: packets 0..6 arrive at 1.0; packet 7 never arrives directly,
  // but parity 8 arrives at 2.0 making the window decodable then.
  for (std::uint16_t i = 0; i < 7; ++i) h.arrive(0, i, 1.0);
  h.arrive(0, 8, 2.0);
  const auto lags = h.analyzer->packet_delivery_lags(*h.player);
  // 3 windows x 8 data packets.
  ASSERT_EQ(lags.size(), 24u);
  // Packet (0,7) became viewable via decode at t=2.0.
  const double publish_7 =
      h.analyzer->packet_publish_time(packet_id(0, 7)).as_sec();
  EXPECT_NEAR(lags[7], 2.0 - publish_7, 0.02);
  // Window 1 and 2 packets: never viewable.
  EXPECT_TRUE(std::isinf(lags[8]));

  const auto lag99 = h.analyzer->lag_to_stream_fraction(*h.player, 0.33);
  ASSERT_TRUE(lag99.has_value());
  EXPECT_FALSE(h.analyzer->lag_to_stream_fraction(*h.player, 0.99).has_value());
}

TEST(LagAnalyzer, PerWindowDecodePercent) {
  AnalyzerHarness h;
  for (std::uint16_t i = 0; i < 8; ++i) h.arrive(0, i, 1.0);
  const Player* players[] = {h.player.get()};
  const auto pct = h.analyzer->per_window_decode_percent(players, 100.0, 1);
  ASSERT_EQ(pct.size(), 3u);
  EXPECT_DOUBLE_EQ(pct[0], 100.0);
  EXPECT_DOUBLE_EQ(pct[1], 0.0);
  // Against a population of 2, the same window counts 50%.
  const auto pct2 = h.analyzer->per_window_decode_percent(players, 100.0, 2);
  EXPECT_DOUBLE_EQ(pct2[0], 50.0);
}

}  // namespace
}  // namespace hg::stream
