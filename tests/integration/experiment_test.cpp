// End-to-end experiments at reduced scale: these assert the *shapes* the
// paper reports, using the same Experiment machinery the bench binaries use.
#include <gtest/gtest.h>

#include "core/heap.hpp"

namespace hg::scenario {
namespace {

ExperimentConfig small_cfg(core::Mode mode, BandwidthDistribution dist,
                           std::size_t nodes = 120, std::uint32_t windows = 8) {
  ExperimentConfig cfg;
  cfg.node_count = nodes;
  cfg.stream_windows = windows;
  cfg.mode = mode;
  cfg.distribution = std::move(dist);
  cfg.tail = sim::SimTime::sec(40.0);
  cfg.seed = 99;
  return cfg;
}

TEST(Experiment, UnconstrainedGossipDeliversFastToAll) {
  // Fig. 1's shape: without bandwidth caps, fanout-7 gossip delivers ~99%
  // of the stream to everyone within seconds.
  auto cfg = small_cfg(core::Mode::kStandard, BandwidthDistribution::unconstrained());
  Experiment exp(cfg);
  exp.run();

  const auto lags = stream_fraction_lags(exp, 0.99);
  ASSERT_EQ(lags.count(), exp.receivers());  // everyone got there
  EXPECT_LT(lags.percentile(50), 3.0);
  EXPECT_LT(lags.percentile(90), 8.0);
}

TEST(Experiment, HeapBeatsStandardOnSkewedDistribution) {
  // The paper's headline (Figs. 3/5/6a): on ms-691 HEAP delivers a stream
  // standard gossip cannot.
  // Congestion at poor nodes compounds over time; give it a 16-window
  // (~31 s) stream to build, as in the paper's multi-minute runs.
  auto std_cfg = small_cfg(core::Mode::kStandard, BandwidthDistribution::ms691(),
                           /*nodes=*/150, /*windows=*/16);
  Experiment std_exp(std_cfg);
  std_exp.run();

  auto heap_cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ms691(),
                            /*nodes=*/150, /*windows=*/16);
  Experiment heap_exp(heap_cfg);
  heap_exp.run();

  const auto std_jitter = jitter_percent_at_lag(std_exp, 10.0);
  const auto heap_jitter = jitter_percent_at_lag(heap_exp, 10.0);
  // HEAP: nearly jitter-free at 10 s; standard gossip: substantially worse.
  EXPECT_LT(heap_jitter.mean(), 10.0);
  EXPECT_GT(std_jitter.mean(), 20.0);
  EXPECT_LT(heap_jitter.mean(), std_jitter.mean() / 2.0);
}

TEST(Experiment, HeapEqualizesUploadUsage) {
  // Fig. 4b's shape: standard gossip under-uses rich nodes and saturates
  // poor ones; HEAP pulls all classes to a similar usage level.
  auto std_cfg = small_cfg(core::Mode::kStandard, BandwidthDistribution::ms691(),
                           /*nodes=*/150, /*windows=*/16);
  Experiment std_exp(std_cfg);
  std_exp.run();
  auto heap_cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ms691(),
                            /*nodes=*/150, /*windows=*/16);
  Experiment heap_exp(heap_cfg);
  heap_exp.run();

  const auto std_usage = usage_by_class(std_exp);    // [3Mbps, 1Mbps, 512kbps]
  const auto heap_usage = usage_by_class(heap_exp);
  // Standard: poor class saturated, rich class far below.
  EXPECT_GT(std_usage[2].value, 0.75);
  EXPECT_LT(std_usage[0].value, 0.60);
  // HEAP: rich usage rises markedly; spread across classes shrinks.
  EXPECT_GT(heap_usage[0].value, std_usage[0].value + 0.15);
  const double std_spread = std_usage[2].value - std_usage[0].value;
  const double heap_spread =
      std::abs(heap_usage[2].value - heap_usage[0].value);
  EXPECT_LT(heap_spread, std_spread / 2.0);
}

TEST(Experiment, HeapFanoutsMatchEquationOne) {
  // After the estimate warms up, per-class fanout targets follow Eq. 1.
  auto cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ms691(),
                       /*nodes=*/100, /*windows=*/6);
  Experiment exp(cfg);
  exp.run();
  double avg_target = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) {
    const double target =
        exp.node(i).module<gossip::GossipModule>().policy().current_target();
    const double expected = 7.0 * exp.info(i).capability.kbits_per_sec() / 691.0;
    EXPECT_NEAR(target, expected, expected * 0.15) << "node " << i;
    avg_target += target;
    ++n;
  }
  // Population average fanout stays ~f (the reliability requirement).
  EXPECT_NEAR(avg_target / static_cast<double>(n), 7.0, 0.5);
}

TEST(Experiment, CatastrophicFailureRecovery) {
  // Fig. 10a's shape: after 20% of nodes crash, HEAP keeps delivering to
  // the survivors; only windows published right around the failure dip.
  auto cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ref691(),
                       /*nodes=*/120, /*windows=*/14);
  cfg.churn = {{cfg.stream_start + sim::SimTime::sec(9.0), 0.20}};
  cfg.detection.mean = sim::SimTime::sec(5.0);
  Experiment exp(cfg);
  exp.run();

  std::size_t crashed = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) crashed += exp.info(i).crashed;
  EXPECT_EQ(crashed, static_cast<std::size_t>(0.20 * 120));

  const auto series = per_window_decode_percent(exp, 12.0);
  ASSERT_EQ(series.size(), 14u);
  // Early windows: ~everyone. Late windows: ~the surviving 80%.
  EXPECT_GT(series[1], 90.0);
  EXPECT_GT(series.back(), 72.0);
  EXPECT_LT(series.back(), 82.0);
  // Survivors keep a jitter-free-ish stream at a moderate lag.
  const auto jit = jitter_percent_at_lag(exp, 12.0);
  EXPECT_LT(jit.percentile(50), 15.0);
}

TEST(Experiment, SmartReceiversReduceTraffic) {
  auto smart_cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ref691(),
                             /*nodes=*/80, /*windows=*/6);
  Experiment smart(smart_cfg);
  smart.run();
  auto dumb_cfg = smart_cfg;
  dumb_cfg.smart_receivers = false;
  Experiment dumb(dumb_cfg);
  dumb.run();

  auto total_serve_bytes = [](const Experiment& e) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < e.receivers(); ++i) {
      sum += e.meter(i).sent(net::MsgClass::kServe).bytes;
    }
    return sum;
  };
  // A smart receiver requests ~k+slack of the 110 coded packets per window
  // instead of all of them (~5-8% of serve traffic saved).
  EXPECT_LT(total_serve_bytes(smart), total_serve_bytes(dumb) * 0.97);
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ms691(),
                       /*nodes=*/60, /*windows=*/4);
  Experiment a(cfg);
  a.run();
  Experiment b(cfg);
  b.run();
  ASSERT_EQ(a.receivers(), b.receivers());
  for (std::size_t i = 0; i < a.receivers(); ++i) {
    EXPECT_EQ(a.player(i).packets_received(), b.player(i).packets_received()) << i;
    EXPECT_EQ(a.meter(i).total_sent_bytes(), b.meter(i).total_sent_bytes()) << i;
  }
  EXPECT_EQ(a.simulator().events_executed(), b.simulator().events_executed());
}

TEST(Experiment, SeedChangesRealization) {
  auto cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ms691(),
                       /*nodes=*/60, /*windows=*/4);
  Experiment a(cfg);
  a.run();
  cfg.seed = 1234;
  Experiment b(cfg);
  b.run();
  EXPECT_NE(a.simulator().events_executed(), b.simulator().events_executed());
}

TEST(Experiment, VirtualPayloadRunIsClockIdenticalToSizedRun) {
  // The whole point of virtual payloads: phantom wire bytes make every
  // timing- and accounting-relevant quantity *bit-identical* to a run that
  // ships (zero-filled) payload bytes of the same size — only the storage
  // disappears. Lean players must be equally invisible to the clock.
  auto base = small_cfg(core::Mode::kHeap, BandwidthDistribution::ref691(),
                        /*nodes=*/60, /*windows=*/4);
  Experiment sized(base);
  sized.run();

  auto virt_cfg = base;
  virt_cfg.virtual_payloads = true;
  virt_cfg.lean_players = true;
  Experiment virt(virt_cfg);
  virt.run();

  ASSERT_EQ(sized.receivers(), virt.receivers());
  EXPECT_EQ(sized.simulator().events_executed(), virt.simulator().events_executed());
  EXPECT_EQ(sized.fabric().datagrams_delivered(), virt.fabric().datagrams_delivered());
  EXPECT_EQ(sized.fabric().datagrams_lost(), virt.fabric().datagrams_lost());
  for (std::size_t i = 0; i < sized.receivers(); ++i) {
    EXPECT_EQ(sized.meter(i).total_sent_bytes(), virt.meter(i).total_sent_bytes()) << i;
    EXPECT_EQ(sized.meter(i).total_received_bytes(), virt.meter(i).total_received_bytes())
        << i;
    EXPECT_EQ(sized.player(i).packets_received(), virt.player(i).packets_received()) << i;
    for (std::uint32_t w = 0; w < 4; ++w) {
      EXPECT_EQ(sized.player(i).window(w).decode_time, virt.player(i).window(w).decode_time)
          << i << " w" << w;
    }
  }
  // And no payload byte is stored anywhere in the virtual run.
  for (std::size_t i = 0; i < virt.receivers(); ++i) {
    const auto& g = virt.node(i).module<gossip::GossipModule>().engine();
    if (const auto* e = g.delivered_event(gossip::EventId{3, 0})) {
      EXPECT_TRUE(e->virtual_payload());
      EXPECT_EQ(e->payload_size(), base.stream.packet_bytes);
    }
  }
}

TEST(Experiment, VirtualRunsStayClockIdenticalAcrossParityLevels) {
  // The FEC ablation sweeps parity_per_window; virtual-payload accounting
  // identity (same wire bytes, meters, RNG draws) must hold at every parity
  // level — including the parity-free retransmission-only arm — or the
  // 10k/100k ablation rungs measure an artifact.
  for (const std::size_t parity : {std::size_t{0}, std::size_t{5}}) {
    auto base = small_cfg(core::Mode::kHeap, BandwidthDistribution::ref691(),
                          /*nodes=*/50, /*windows=*/3);
    base.stream.parity_per_window = parity;
    if (parity == 0) base.max_retransmits = 8;  // the rtx-only arm
    Experiment sized(base);
    sized.run();

    auto virt_cfg = base;
    virt_cfg.virtual_payloads = true;
    virt_cfg.lean_players = true;
    Experiment virt(virt_cfg);
    virt.run();

    ASSERT_EQ(sized.receivers(), virt.receivers());
    EXPECT_EQ(sized.simulator().events_executed(), virt.simulator().events_executed())
        << "parity " << parity;
    EXPECT_EQ(sized.fabric().datagrams_delivered(), virt.fabric().datagrams_delivered())
        << "parity " << parity;
    for (std::size_t i = 0; i < sized.receivers(); ++i) {
      EXPECT_EQ(sized.meter(i).total_sent_bytes(), virt.meter(i).total_sent_bytes())
          << "parity " << parity << " node " << i;
      EXPECT_EQ(sized.player(i).packets_received(), virt.player(i).packets_received())
          << "parity " << parity << " node " << i;
      for (std::uint32_t w = 0; w < 3; ++w) {
        EXPECT_EQ(sized.player(i).window(w).decode_time,
                  virt.player(i).window(w).decode_time)
            << "parity " << parity << " node " << i << " w" << w;
      }
    }
  }
}

TEST(Experiment, FecModuleDecodesOnlineInRealPayloadDeployments) {
  // The deployment mounts FecModule on every receiver in real-payload mode;
  // its online decode must agree window-for-window with the player's
  // counting rule, repair actual erasures under loss, and never see a
  // malformed shard set from our own wire path.
  auto cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ref691(),
                       /*nodes=*/40, /*windows=*/3);
  cfg.stream.real_payloads = true;
  cfg.loss_rate = 0.02;  // enough loss that parity repair actually happens
  Experiment exp(cfg);
  exp.run();

  std::uint64_t decoded = 0, repaired = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) {
    const auto* fec = exp.node(i).find_module<stream::FecModule>();
    ASSERT_NE(fec, nullptr) << "receiver " << i << " is missing the FEC module";
    const auto& st = fec->stats();
    EXPECT_EQ(st.decode_failures, 0u) << i;
    EXPECT_EQ(st.malformed_packets, 0u) << i;
    decoded += st.windows_decoded;
    repaired += st.erasures_repaired;
    for (std::uint32_t w = 0; w < 3; ++w) {
      EXPECT_EQ(fec->window_decoded(w),
                exp.player(i).window(w).decode_time != sim::SimTime::max())
          << "receiver " << i << " window " << w;
    }
  }
  // Nearly every (receiver, window) pair decodes, and at least some decodes
  // had to reconstruct data packets from parity.
  EXPECT_GT(decoded, static_cast<std::uint64_t>(exp.receivers()) * 3u * 9u / 10u);
  EXPECT_GT(repaired, 0u);
}

TEST(Experiment, SmartReceiverCancellationReachesTheGossipEngine) {
  // Decode-on-k cancellation observability: smart receivers cancel each
  // window once it is decodable, and the gossip stats record both the
  // honored cancel commands and any retransmit timers they killed.
  auto cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ref691(),
                       /*nodes=*/40, /*windows=*/3);
  Experiment exp(cfg);
  exp.run();

  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) {
    const auto& st = exp.node(i).module<gossip::GossipModule>().engine().stats();
    cancelled += st.windows_cancelled;
    EXPECT_LE(st.windows_cancelled, 3u) << i;  // once per window, idempotent
  }
  // Nearly every receiver decodes (and therefore cancels) every window.
  EXPECT_GT(cancelled, static_cast<std::uint64_t>(exp.receivers()) * 3u * 9u / 10u);

  auto dumb_cfg = cfg;
  dumb_cfg.smart_receivers = false;
  Experiment dumb(dumb_cfg);
  dumb.run();
  std::uint64_t dumb_cancelled = 0;
  for (std::size_t i = 0; i < dumb.receivers(); ++i) {
    dumb_cancelled +=
        dumb.node(i).module<gossip::GossipModule>().engine().stats().windows_cancelled;
  }
  EXPECT_EQ(dumb_cancelled, 0u);  // nothing cancels without smart receivers
}

TEST(Experiment, RealPayloadsDecodeByteExact) {
  // Full fidelity mode: actual Reed-Solomon windows flow through the whole
  // stack; verify a receiver can reconstruct the exact source bytes.
  auto cfg = small_cfg(core::Mode::kHeap, BandwidthDistribution::ref691(),
                       /*nodes=*/40, /*windows=*/2);
  cfg.stream.real_payloads = true;
  Experiment exp(cfg);
  exp.run();

  // End-to-end byte fidelity: reconstruct window 0 from a receiver's gossip
  // store and compare against the deterministic source payloads.
  fec::WindowCodec codec(
      fec::WindowCodecConfig{.data_per_window = cfg.stream.data_per_window,
                             .parity_per_window = cfg.stream.parity_per_window,
                             .packet_bytes = cfg.stream.packet_bytes});
  std::size_t verified_nodes = 0;
  for (std::size_t i = 0; i < exp.receivers() && verified_nodes < 5; ++i) {
    const auto& g = exp.node(i).module<gossip::GossipModule>().engine();
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(
        cfg.stream.window_packets());
    for (std::uint16_t k = 0; k < cfg.stream.window_packets(); ++k) {
      if (const auto* e = g.delivered_event(gossip::EventId{0, k})) {
        shards[k] = e->payload.to_vector();
      }
    }
    auto decoded = codec.decode_window(shards);
    if (!decoded.has_value()) continue;
    for (std::uint16_t k = 0; k < cfg.stream.data_per_window; ++k) {
      ASSERT_EQ((*decoded)[k],
                stream::synth_payload(0, k, cfg.stream.packet_bytes).to_vector())
          << "node " << i << " packet " << k;
    }
    ++verified_nodes;
  }
  EXPECT_GE(verified_nodes, 5u);
}

}  // namespace
}  // namespace hg::scenario
