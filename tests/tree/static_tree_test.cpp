#include "tree/static_tree.hpp"

#include <gtest/gtest.h>

namespace hg::tree {
namespace {

struct TreeHarness {
  sim::Simulator sim{3};
  net::NetworkFabric fabric;
  std::vector<std::vector<gossip::EventId>> delivered;
  std::unique_ptr<StaticTree> tree;

  explicit TreeHarness(std::size_t n, std::size_t arity, double loss = 0.0)
      : fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
               loss > 0 ? std::unique_ptr<net::LossModel>(
                              std::make_unique<net::BernoulliLoss>(loss))
                        : std::unique_ptr<net::LossModel>(std::make_unique<net::NoLoss>())) {
    delivered.resize(n);
    tree = std::make_unique<StaticTree>(
        sim, fabric, n, arity,
        [this](NodeId node, const gossip::Event& e) {
          delivered[node.value()].push_back(e.id);
        });
    for (std::uint32_t i = 0; i < n; ++i) {
      fabric.register_node(NodeId{i}, BitRate::unlimited(),
                           [this, i](const net::Datagram& d) {
                             tree->on_datagram(NodeId{i}, d);
                           });
    }
  }
};

TEST(StaticTree, ChildrenLayout) {
  TreeHarness h(10, 3);
  const auto c0 = h.tree->children_of(NodeId{0});
  ASSERT_EQ(c0.size(), 3u);
  EXPECT_EQ(c0[0], NodeId{1});
  EXPECT_EQ(c0[2], NodeId{3});
  const auto c2 = h.tree->children_of(NodeId{2});
  ASSERT_EQ(c2.size(), 3u);
  EXPECT_EQ(c2[0], NodeId{7});
  const auto c3 = h.tree->children_of(NodeId{3});
  EXPECT_TRUE(c3.empty());  // 10..12 beyond n
}

TEST(StaticTree, DepthComputation) {
  TreeHarness h(10, 3);
  EXPECT_EQ(h.tree->depth(), 2u);  // 1 + 3 + 9 covers 10
  TreeHarness h2(270, 7);
  EXPECT_EQ(h2.tree->depth(), 3u);  // 1+7+49+343
}

TEST(StaticTree, LosslessDeliversToAll) {
  TreeHarness h(30, 3);
  auto payload = net::BufferRef::copy_of(std::vector<std::uint8_t>(100, 1));
  h.tree->publish(gossip::Event{gossip::EventId{0, 0}, payload});
  h.sim.run_until(sim::SimTime::sec(1));
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(h.delivered[i].size(), 1u) << "node " << i;
  }
}

TEST(StaticTree, LossPrunesSubtrees) {
  // The intro's observation: a static tree with no repair loses whole
  // subtrees per dropped datagram. With 30 nodes, arity 3 and 10% loss,
  // average delivery is well below what gossip+retransmit achieves.
  TreeHarness h(30, 3, /*loss=*/0.10);
  const int kPackets = 200;
  for (int k = 0; k < kPackets; ++k) {
    h.tree->publish(
        gossip::Event{gossip::EventId{0, static_cast<std::uint16_t>(k)}, net::BufferRef{}});
  }
  h.sim.run_until(sim::SimTime::sec(20));
  double total = 0;
  for (std::size_t i = 1; i < 30; ++i) {
    total += static_cast<double>(h.delivered[i].size()) / kPackets;
  }
  const double mean_delivery = total / 29.0;
  // Each node at depth d receives with prob 0.9^d; depths 1..3 dominate.
  EXPECT_LT(mean_delivery, 0.95);
  EXPECT_GT(mean_delivery, 0.60);
  // Leaves do strictly worse than the root's direct children.
  const double shallow = static_cast<double>(h.delivered[1].size()) / kPackets;
  const double deep = static_cast<double>(h.delivered[29].size()) / kPackets;
  EXPECT_GT(shallow, deep);
}

}  // namespace
}  // namespace hg::tree
