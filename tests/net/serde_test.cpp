#include "net/serde.hpp"

#include <gtest/gtest.h>

namespace hg::net {
namespace {

TEST(Serde, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);

  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, VarintBoundaries) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                          0xffffffffULL, ~0ULL}) {
    ByteWriter w;
    w.varint(v);
    auto buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.varint(), v) << v;
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Serde, VarintCompactness) {
  ByteWriter w;
  w.varint(100);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Serde, BytesRoundTrip) {
  std::vector<std::uint8_t> payload(1316);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i);
  ByteWriter w;
  w.bytes(payload);
  auto buf = w.take();
  ByteReader r(buf);
  auto out = r.bytes();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(std::equal(out->begin(), out->end(), payload.begin(), payload.end()));
}

TEST(Serde, StringRoundTrip) {
  ByteWriter w;
  w.str("heterogeneous gossip");
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.str(), "heterogeneous gossip");
}

TEST(Serde, TruncatedReadsReturnNullopt) {
  ByteWriter w;
  w.u32(7);
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_TRUE(r.u32().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.u8().has_value());
}

TEST(Serde, TruncatedBytesReturnNullopt) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes follow but none do
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_FALSE(r.bytes().has_value());
}

TEST(Serde, MalformedVarintReturnsNullopt) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never terminates
  ByteReader r(bad);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(Serde, TenByteVarintAtMaxDecodes) {
  ByteWriter w;
  w.varint(~0ULL);
  const auto buf = w.take();
  EXPECT_EQ(buf.size(), 10u);
  ByteReader r(buf);
  EXPECT_EQ(r.varint(), ~0ULL);
}

TEST(Serde, OverlongVarintIsRejected) {
  // 10 bytes whose final byte carries more than the one bit that fits in a
  // 64-bit value: accepting it would silently truncate.
  std::vector<std::uint8_t> overflow(9, 0xff);
  overflow.push_back(0x02);
  ByteReader r(overflow);
  EXPECT_FALSE(r.varint().has_value());

  // 11-byte encoding: too long regardless of content.
  std::vector<std::uint8_t> toolong(10, 0x80);
  toolong.push_back(0x01);
  ByteReader r2(toolong);
  EXPECT_FALSE(r2.varint().has_value());
}

TEST(Serde, OversizedBytesClaimIsRejected) {
  // A length prefix near 2^64 must fail the bounds check instead of
  // overflowing pos + n and passing it.
  ByteWriter w;
  w.varint(~0ULL - 7);
  w.u32(0xdeadbeef);  // a few real bytes after the huge claim
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_FALSE(r.bytes().has_value());
}

TEST(Serde, EmptyBuffer) {
  std::vector<std::uint8_t> empty;
  ByteReader r(empty);
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.varint().has_value());
}

}  // namespace
}  // namespace hg::net
