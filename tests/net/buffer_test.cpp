#include "net/buffer.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "gossip/fanout_policy.hpp"
#include "gossip/three_phase.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "net/serde.hpp"
#include "sim/simulator.hpp"

namespace hg::net {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return v;
}

TEST(BufferRef, CopyOfRoundTrips) {
  const auto src = pattern(1316);
  BufferRef ref = BufferRef::copy_of(src);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.size(), src.size());
  EXPECT_EQ(ref.to_vector(), src);
}

TEST(BufferRef, DefaultIsNullAndEmpty) {
  BufferRef ref;
  EXPECT_FALSE(ref);
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(ref.size(), 0u);
  EXPECT_EQ(ref.data(), nullptr);
}

TEST(BufferRef, CopiesShareTheChunk) {
  BufferRef a = BufferRef::copy_of(pattern(100));
  EXPECT_EQ(a.ref_count(), 1u);
  BufferRef b = a;
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_EQ(a.data(), b.data());
  b.reset();
  EXPECT_EQ(a.ref_count(), 1u);
}

TEST(BufferRef, SlicePinsTheBackingChunk) {
  BufferRef whole = BufferRef::copy_of(pattern(256));
  BufferRef mid = whole.slice(16, 64);
  EXPECT_EQ(whole.ref_count(), 2u);
  EXPECT_EQ(mid.size(), 64u);
  EXPECT_EQ(mid.data(), whole.data() + 16);
  // Slice of a slice composes offsets on the same chunk.
  BufferRef inner = mid.slice(8, 8);
  EXPECT_EQ(inner.data(), whole.data() + 24);
  EXPECT_EQ(whole.ref_count(), 3u);
  const auto expected = pattern(256);
  EXPECT_EQ(inner.to_vector(),
            std::vector<std::uint8_t>(expected.begin() + 24, expected.begin() + 32));
}

TEST(BufferPool, ReleasedChunksAreRecycled) {
  BufferPool& pool = BufferPool::local();
  { BufferRef warm = BufferRef::copy_of(pattern(1000)); }  // prime the 1 KiB class
  const auto allocs_before = pool.stats().chunk_allocs;
  const auto hits_before = pool.stats().pool_hits;
  for (int i = 0; i < 100; ++i) {
    BufferRef ref = BufferRef::copy_of(pattern(1000));
    ASSERT_TRUE(ref);
  }
  EXPECT_EQ(pool.stats().chunk_allocs, allocs_before);
  EXPECT_EQ(pool.stats().pool_hits, hits_before + 100);
}

TEST(BufferPool, OversizedRequestsBypassTheFreeLists) {
  BufferPool& pool = BufferPool::local();
  const auto oversized_before = pool.stats().oversized;
  const std::vector<std::uint8_t> big(BufferPool::kMaxClassBytes + 1, 0x42);
  { BufferRef ref = BufferRef::copy_of(big); }
  { BufferRef ref = BufferRef::copy_of(big); }
  EXPECT_EQ(pool.stats().oversized, oversized_before + 2);
}

TEST(BufferPool, ForeignThreadReleaseIsSafe) {
  // A buffer allocated here, released on another thread: freed directly,
  // never pushed onto a foreign free list.
  BufferRef ref = BufferRef::copy_of(pattern(128));
  std::thread t([moved = std::move(ref)]() mutable { moved.reset(); });
  t.join();
}

TEST(ByteWriter, GrowsAcrossSizeClasses) {
  ByteWriter w(16);
  const auto src = pattern(100000);  // forces several class upgrades
  w.bytes(src);
  BufferRef out = w.finish();
  ByteReader r(out);
  const auto back = r.bytes();
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::equal(back->begin(), back->end(), src.begin(), src.end()));
}

TEST(ByteWriter, FinishTransfersOwnershipWithoutCopy) {
  ByteWriter w(64);
  w.u64(0xdeadbeefcafef00dULL);
  const std::span<const std::uint8_t> before = w.view();
  BufferRef out = w.finish();
  EXPECT_EQ(out.data(), before.data());  // same chunk, no copy
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(out.ref_count(), 1u);
}

// --- the tentpole acceptance checks --------------------------------------
// Steady-state send→deliver traffic must be allocation-free: once the pool
// free lists are warm, every encode (propose/request/serve), every datagram
// hop, and every delivered payload reuses recycled chunks. The event queue
// side is covered by event_queue_test; these cover the wire-buffer side.

// Deterministic three-phase exchange over the real fabric + upload link:
// propose → request → batched serve → zero-copy delivery, with stored
// payloads evicted ring-buffer style. Sizes repeat exactly, so after warm-up
// the pool must serve every chunk from its free lists — zero new allocs.
TEST(BufferPool, SteadyStateWirePathIsAllocationFree) {
  sim::Simulator sim(7);
  NetworkFabric fabric(sim, std::make_unique<ConstantLatency>(sim::SimTime::ms(2)),
                       std::make_unique<NoLoss>());
  constexpr std::size_t kBatch = 8;
  constexpr std::size_t kPayloadBytes = 1316;

  // Node 1 stores delivered payloads (zero-copy slices of arrival buffers)
  // with a bounded horizon, like the gossip engine's gc.
  std::deque<BufferRef> stored;
  std::uint64_t served_total = 0;
  std::vector<gossip::Event> events;
  std::vector<gossip::ServeSpan> spans;
  fabric.register_node(NodeId{0}, BitRate::unlimited(), [&](const Datagram& d) {
    // Node 0: answer a request with the production batched-serve path —
    // one pooled buffer, one zero-copy slice per event.
    const auto req = gossip::decode_request(d.bytes);
    ASSERT_TRUE(req.has_value());
    events.clear();
    for (gossip::EventId id : req->ids) {
      events.push_back(gossip::Event{id, BufferRef::copy_of(pattern(kPayloadBytes))});
    }
    const BufferRef batch = gossip::encode_serve_batch(NodeId{0}, events, spans);
    for (const auto& span : spans) {
      fabric.send(NodeId{0}, NodeId{1}, MsgClass::kServe,
                  batch.slice(span.offset, span.length));
    }
  });
  fabric.register_node(NodeId{1}, BitRate::mbps(100), [&](const Datagram& d) {
    const auto tag = gossip::peek_tag(d.bytes);
    ASSERT_TRUE(tag.has_value());
    if (*tag == gossip::MsgTag::kPropose) {
      const auto prop = gossip::decode_propose(d.bytes);
      ASSERT_TRUE(prop.has_value());
      fabric.send(NodeId{1}, NodeId{0}, MsgClass::kRequest,
                  gossip::encode(gossip::RequestMsg{NodeId{1}, prop->ids}));
    } else {
      const auto serve = gossip::decode_serve(d.bytes);
      ASSERT_TRUE(serve.has_value());
      stored.push_back(serve->event.payload);  // pins the batch buffer
      while (stored.size() > 5 * kBatch) stored.pop_front();
      ++served_total;
    }
  });

  std::uint32_t round = 0;
  const auto run_round = [&]() {
    std::vector<gossip::EventId> ids;
    for (std::uint16_t k = 0; k < kBatch; ++k) ids.emplace_back(round, k);
    fabric.send(NodeId{0}, NodeId{1}, MsgClass::kPropose,
                gossip::encode(gossip::ProposeMsg{NodeId{0}, ids}));
    ++round;
    sim.run_until(sim::SimTime::ms(20) * round);
  };

  for (int i = 0; i < 50; ++i) run_round();  // warm the free lists

  BufferPool& pool = BufferPool::local();
  const auto allocs_before = pool.stats().chunk_allocs;
  const auto hits_before = pool.stats().pool_hits;
  const auto served_before = served_total;
  for (int i = 0; i < 500; ++i) run_round();
  EXPECT_EQ(pool.stats().chunk_allocs, allocs_before)
      << "steady-state send→deliver must draw every buffer from the pool";
  EXPECT_GT(pool.stats().pool_hits, hits_before);
  EXPECT_EQ(served_total - served_before, 500u * kBatch);
}

// The full gossip swarm is stochastic (round batching varies), so demand for
// new free-list depth decays rather than stopping at an exact round; assert
// the allocation *rate* collapses: recycled chunks outnumber new allocations
// by >= 100x once warm.
TEST(BufferPool, GossipSwarmSteadyStateRecyclesChunks) {
  sim::Simulator sim(99);
  NetworkFabric fabric(sim, std::make_unique<ConstantLatency>(sim::SimTime::ms(5)),
                       std::make_unique<NoLoss>());
  membership::Directory directory(sim, membership::DetectionConfig{});
  constexpr std::uint32_t kNodes = 8;
  for (std::uint32_t i = 0; i < kNodes; ++i) directory.add_node(NodeId{i});

  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<gossip::FixedFanout>> policies;
  std::vector<std::unique_ptr<gossip::ThreePhaseGossip>> nodes;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const NodeId id{i};
    views.push_back(directory.make_view(id));
    policies.push_back(std::make_unique<gossip::FixedFanout>(3.0));
    nodes.push_back(std::make_unique<gossip::ThreePhaseGossip>(
        sim, fabric, *views.back(), id, gossip::GossipConfig{}, *policies.back()));
    fabric.register_node(id, BitRate::unlimited(),
                         [g = nodes.back().get()](const Datagram& d) { g->on_datagram(d); });
  }
  for (auto& g : nodes) g->start();

  const auto publish_window = [&](std::uint32_t w) {
    for (std::uint16_t k = 0; k < 4; ++k) {
      nodes[0]->publish(
          gossip::Event{gossip::EventId{w, k}, BufferRef::copy_of(pattern(1316))});
    }
  };

  // Warm-up: grow the pool free lists, the scratch vectors, and the hash
  // maps to their typical sizes (gc bounds stored state at 40 windows).
  std::uint32_t window = 0;
  for (; window < 100; ++window) {
    publish_window(window);
    sim.run_until(sim::SimTime::ms(200) * (window + 1));
  }

  BufferPool& pool = BufferPool::local();
  const auto allocs_before = pool.stats().chunk_allocs;
  const auto hits_before = pool.stats().pool_hits;
  for (; window < 200; ++window) {
    publish_window(window);
    sim.run_until(sim::SimTime::ms(200) * (window + 1));
  }
  const auto new_allocs = pool.stats().chunk_allocs - allocs_before;
  const auto new_hits = pool.stats().pool_hits - hits_before;
  EXPECT_GT(new_hits, 1000u);  // the wire path really is pool-backed
  EXPECT_LT(new_allocs * 100, new_hits)
      << "steady-state wire traffic must overwhelmingly recycle pooled chunks";
  std::uint64_t delivered = 0;
  for (const auto& g : nodes) delivered += g->stats().events_delivered;
  EXPECT_GE(delivered, 200u * 4u);  // the traffic actually flowed
}

}  // namespace
}  // namespace hg::net
