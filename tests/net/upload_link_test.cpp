#include "net/upload_link.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace hg::net {
namespace {

BufferRef make_bytes(std::size_t n) {
  return BufferRef::copy_of(std::vector<std::uint8_t>(n, 0xaa));
}

Datagram make_datagram(std::size_t body, MsgClass cls = MsgClass::kServe) {
  return Datagram{NodeId{0}, NodeId{1}, cls, make_bytes(body)};
}

TEST(UploadLink, TransmissionTakesWireTime) {
  sim::Simulator s(1);
  std::vector<sim::SimTime> sent_at;
  // 1000 bits/sec; body 97 B + 28 B overhead = 125 B = 1000 bits -> 1 s each.
  UploadLink link(s, BitRate::bps(1000), QueueDiscipline::kFifo,
                  [&](Datagram&&) { sent_at.push_back(s.now()); });
  link.enqueue(make_datagram(97));
  link.enqueue(make_datagram(97));
  s.run_until(sim::SimTime::sec(10));
  ASSERT_EQ(sent_at.size(), 2u);
  EXPECT_EQ(sent_at[0], sim::SimTime::sec(1));
  EXPECT_EQ(sent_at[1], sim::SimTime::sec(2));
}

TEST(UploadLink, QueueDrainsInFifoOrder) {
  sim::Simulator s(1);
  std::vector<MsgClass> order;
  UploadLink link(s, BitRate::kbps(1000), QueueDiscipline::kFifo,
                  [&](Datagram&& d) { order.push_back(d.cls); });
  link.enqueue(make_datagram(500, MsgClass::kServe));
  link.enqueue(make_datagram(50, MsgClass::kPropose));
  link.enqueue(make_datagram(500, MsgClass::kServe));
  link.enqueue(make_datagram(50, MsgClass::kRequest));
  s.run_until(sim::SimTime::sec(10));
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], MsgClass::kServe);
  EXPECT_EQ(order[1], MsgClass::kPropose);
  EXPECT_EQ(order[2], MsgClass::kServe);
  EXPECT_EQ(order[3], MsgClass::kRequest);
}

TEST(UploadLink, ControlPriorityJumpsPayload) {
  sim::Simulator s(1);
  std::vector<MsgClass> order;
  UploadLink link(s, BitRate::kbps(1000), QueueDiscipline::kControlPriority,
                  [&](Datagram&& d) { order.push_back(d.cls); });
  // First serve starts transmitting immediately; the rest queue.
  link.enqueue(make_datagram(500, MsgClass::kServe));
  link.enqueue(make_datagram(500, MsgClass::kServe));
  link.enqueue(make_datagram(50, MsgClass::kPropose));
  s.run_until(sim::SimTime::sec(10));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], MsgClass::kServe);    // already in service
  EXPECT_EQ(order[1], MsgClass::kPropose);  // jumped the queued serve
  EXPECT_EQ(order[2], MsgClass::kServe);
}

TEST(UploadLink, ThroughputMatchesCapacity) {
  sim::Simulator s(1);
  std::int64_t wire_bytes = 0;
  UploadLink link(s, BitRate::kbps(512), QueueDiscipline::kFifo,
                  [&](Datagram&& d) { wire_bytes += d.wire_bytes(); });
  // Offer 2x the capacity for 10 s.
  for (int i = 0; i < 100; ++i) link.enqueue(make_datagram(1316 - 28));
  s.run_until(sim::SimTime::sec(10));
  // 512 kbps * 10 s = 640000 bytes capacity; offered 131600 bytes, which
  // takes ~2.05 s — all of it must get through.
  EXPECT_EQ(wire_bytes, 100 * 1316);

  // Now saturate: enqueue far more than 10 s worth and check the drain rate.
  const std::int64_t before = wire_bytes;
  for (int i = 0; i < 10000; ++i) link.enqueue(make_datagram(1316 - 28));
  s.run_until(sim::SimTime::sec(20));
  const std::int64_t sent = wire_bytes - before;
  const double rate_bps = static_cast<double>(sent) * 8.0 / 10.0;
  EXPECT_NEAR(rate_bps, 512'000.0, 512000.0 * 0.01);
}

TEST(UploadLink, NeverExceedsCapacity) {
  sim::Simulator s(1);
  std::int64_t bytes = 0;
  UploadLink link(s, BitRate::kbps(256), QueueDiscipline::kFifo,
                  [&](Datagram&& d) { bytes += d.wire_bytes(); });
  for (int i = 0; i < 1000; ++i) link.enqueue(make_datagram(1288));
  s.run_until(sim::SimTime::sec(5));
  // "nodes do never exceed their given upload capability" (paper §3.1)
  EXPECT_LE(static_cast<double>(bytes) * 8.0, 256'000.0 * 5.0 * 1.001);
}

TEST(UploadLink, QueueDelayTracked) {
  sim::Simulator s(1);
  UploadLink link(s, BitRate::bps(1000), QueueDiscipline::kFifo, [](Datagram&&) {});
  link.enqueue(make_datagram(97));  // 1 s wire time
  link.enqueue(make_datagram(97));  // waits 1 s
  s.run_until(sim::SimTime::sec(5));
  EXPECT_EQ(link.max_queue_delay(), sim::SimTime::sec(1));
}

TEST(UploadLink, ShutdownDiscardsQueue) {
  sim::Simulator s(1);
  int delivered = 0;
  UploadLink link(s, BitRate::bps(1000), QueueDiscipline::kFifo,
                  [&](Datagram&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.enqueue(make_datagram(97));
  s.run_until(sim::SimTime::ms(1500));  // first datagram got out
  link.shutdown();
  s.run_until(sim::SimTime::sec(60));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(link.queue_len(), 0u);
}

TEST(UploadLink, UnlimitedCapacityIsImmediate) {
  sim::Simulator s(1);
  std::vector<sim::SimTime> at;
  UploadLink link(s, BitRate::unlimited(), QueueDiscipline::kFifo,
                  [&](Datagram&&) { at.push_back(s.now()); });
  for (int i = 0; i < 5; ++i) link.enqueue(make_datagram(100000));
  s.run_until(sim::SimTime::ms(1));
  ASSERT_EQ(at.size(), 5u);
  for (const auto& t : at) EXPECT_EQ(t, sim::SimTime::zero());
}

TEST(UploadLink, CapacityChangeAffectsSubsequentTransmissions) {
  sim::Simulator s(1);
  std::vector<sim::SimTime> at;
  UploadLink link(s, BitRate::bps(1000), QueueDiscipline::kFifo,
                  [&](Datagram&&) { at.push_back(s.now()); });
  link.enqueue(make_datagram(97));  // 1 s at 1000 bps
  s.run_until(sim::SimTime::sec(1));
  link.set_capacity(BitRate::bps(2000));
  link.enqueue(make_datagram(222));  // 250 B = 2000 bits -> 1 s at 2000 bps
  s.run_until(sim::SimTime::sec(10));
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], sim::SimTime::sec(1));
  EXPECT_EQ(at[1], sim::SimTime::sec(2));
}

}  // namespace
}  // namespace hg::net
