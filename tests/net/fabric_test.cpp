#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace hg::net {
namespace {

BufferRef make_bytes(std::size_t n) {
  return BufferRef::copy_of(std::vector<std::uint8_t>(n, 0x55));
}

struct Harness {
  sim::Simulator sim{42};
  NetworkFabric fabric;
  std::vector<std::vector<Datagram>> received;

  explicit Harness(std::size_t nodes, double loss = 0.0,
                   sim::SimTime latency = sim::SimTime::ms(10))
      : fabric(sim, std::make_unique<ConstantLatency>(latency),
               loss > 0 ? std::unique_ptr<LossModel>(std::make_unique<BernoulliLoss>(loss))
                        : std::unique_ptr<LossModel>(std::make_unique<NoLoss>())) {
    received.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      fabric.register_node(id, BitRate::unlimited(),
                           [this, i](const Datagram& d) { received[i].push_back(d); });
    }
  }
};

TEST(Fabric, DeliversWithLatency) {
  Harness h(2);
  h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kPropose, make_bytes(100));
  h.sim.run_until(sim::SimTime::ms(9));
  EXPECT_TRUE(h.received[1].empty());
  h.sim.run_until(sim::SimTime::ms(11));
  ASSERT_EQ(h.received[1].size(), 1u);
  EXPECT_EQ(h.received[1][0].src, NodeId{0});
  EXPECT_EQ(h.received[1][0].cls, MsgClass::kPropose);
}

TEST(Fabric, MetersSentAndReceived) {
  Harness h(2);
  h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kServe, make_bytes(1316));
  h.sim.run_until(sim::SimTime::sec(1));
  EXPECT_EQ(h.fabric.meter(NodeId{0}).sent(MsgClass::kServe).bytes,
            1316 + kUdpIpOverheadBytes);
  EXPECT_EQ(h.fabric.meter(NodeId{0}).sent(MsgClass::kServe).msgs, 1u);
  EXPECT_EQ(h.fabric.meter(NodeId{1}).received(MsgClass::kServe).bytes,
            1316 + kUdpIpOverheadBytes);
}

TEST(Fabric, LossDropsDatagrams) {
  Harness h(2, /*loss=*/1.0);
  h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kPropose, make_bytes(100));
  h.sim.run_until(sim::SimTime::sec(1));
  EXPECT_TRUE(h.received[1].empty());
  EXPECT_EQ(h.fabric.datagrams_lost(), 1u);
}

TEST(Fabric, PartialLossRate) {
  Harness h(2, /*loss=*/0.2);
  for (int i = 0; i < 5000; ++i) {
    h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kPropose, make_bytes(10));
  }
  h.sim.run_until(sim::SimTime::sec(10));
  const double delivered = static_cast<double>(h.received[1].size());
  EXPECT_NEAR(delivered / 5000.0, 0.8, 0.03);
}

TEST(Fabric, DeadSenderSendsNothing) {
  Harness h(2);
  h.fabric.kill(NodeId{0});
  h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kPropose, make_bytes(10));
  h.sim.run_until(sim::SimTime::sec(1));
  EXPECT_TRUE(h.received[1].empty());
}

TEST(Fabric, DeadReceiverDropsInFlight) {
  Harness h(2);
  h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kPropose, make_bytes(10));
  // Kill node 1 while the datagram is still in flight (latency 10 ms).
  h.sim.run_until(sim::SimTime::ms(5));
  h.fabric.kill(NodeId{1});
  h.sim.run_until(sim::SimTime::sec(1));
  EXPECT_TRUE(h.received[1].empty());
}

TEST(Fabric, UploadCapacitySerializesTraffic) {
  sim::Simulator s(7);
  NetworkFabric fabric(s, std::make_unique<ConstantLatency>(sim::SimTime::zero()),
                       std::make_unique<NoLoss>());
  std::vector<sim::SimTime> arrival;
  // 1000 bps sender: each 125-byte wire datagram takes 1 s to push out.
  fabric.register_node(NodeId{0}, BitRate::bps(1000), nullptr);
  fabric.register_node(NodeId{1}, BitRate::unlimited(),
                       [&](const Datagram&) { arrival.push_back(s.now()); });
  fabric.send(NodeId{0}, NodeId{1}, MsgClass::kServe, make_bytes(97));
  fabric.send(NodeId{0}, NodeId{1}, MsgClass::kServe, make_bytes(97));
  s.run_until(sim::SimTime::sec(10));
  ASSERT_EQ(arrival.size(), 2u);
  EXPECT_EQ(arrival[0], sim::SimTime::sec(1));
  EXPECT_EQ(arrival[1], sim::SimTime::sec(2));
}

TEST(Fabric, SlicedBatchMetersLikeIndividualDatagrams) {
  // The batched-serve path sends zero-copy slices of one pooled buffer;
  // each slice must meter as its own datagram (msgs, bytes, UDP overhead).
  Harness h(2);
  const BufferRef batch = BufferRef::copy_of(std::vector<std::uint8_t>(150, 0x77));
  h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kServe, batch.slice(0, 100));
  h.fabric.send(NodeId{0}, NodeId{1}, MsgClass::kServe, batch.slice(100, 50));
  h.sim.run_until(sim::SimTime::sec(1));
  EXPECT_EQ(h.fabric.meter(NodeId{0}).sent(MsgClass::kServe).msgs, 2u);
  EXPECT_EQ(h.fabric.meter(NodeId{0}).sent(MsgClass::kServe).bytes,
            100 + 50 + 2 * kUdpIpOverheadBytes);
  ASSERT_EQ(h.received[1].size(), 2u);
  EXPECT_EQ(h.received[1][0].bytes.size(), 100u);
  EXPECT_EQ(h.received[1][1].bytes.size(), 50u);
}

TEST(FabricDeathTest, RegisterNodeEnforcesConsecutiveIds) {
  sim::Simulator s(1);
  NetworkFabric fabric(s, std::make_unique<ConstantLatency>(sim::SimTime::ms(1)),
                       std::make_unique<NoLoss>());
  fabric.register_node(NodeId{0}, BitRate::unlimited(), nullptr);
  // Skipping an id breaks entry()'s index-by-id contract: must abort loudly,
  // not corrupt the entry table.
  EXPECT_DEATH(fabric.register_node(NodeId{2}, BitRate::unlimited(), nullptr),
               "consecutive ids");
  // Re-registering an existing id is equally fatal.
  EXPECT_DEATH(fabric.register_node(NodeId{0}, BitRate::unlimited(), nullptr),
               "consecutive ids");
}

TEST(Fabric, PlanetLabLatencyIsStablePerPair) {
  sim::Simulator s(3);
  auto rng = s.make_rng(1);
  PlanetLabLatency lat({}, s.make_rng(2));
  Rng packet_rng = s.make_rng(9);
  const auto a1 = lat.sample(NodeId{1}, NodeId{2}, packet_rng);
  const auto a2 = lat.sample(NodeId{1}, NodeId{2}, packet_rng);
  const auto b = lat.sample(NodeId{2}, NodeId{1}, packet_rng);
  (void)rng;
  // Same pair: within jitter (5 ms) of each other; symmetric base.
  EXPECT_LT((a1 - a2).as_us() < 0 ? (a2 - a1).as_us() : (a1 - a2).as_us(), 5000);
  EXPECT_LT((a1 - b).as_us() < 0 ? (b - a1).as_us() : (a1 - b).as_us(), 5000);
}

}  // namespace
}  // namespace hg::net
