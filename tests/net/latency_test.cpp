#include "net/latency.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hg::net {
namespace {

TEST(Latency, ConstantAlwaysSame) {
  ConstantLatency lat(sim::SimTime::ms(25));
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lat.sample(NodeId{0}, NodeId{1}, rng), sim::SimTime::ms(25));
  }
}

TEST(Latency, UniformWithinBounds) {
  UniformLatency lat(sim::SimTime::ms(10), sim::SimTime::ms(50));
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto v = lat.sample(NodeId{0}, NodeId{1}, rng);
    EXPECT_GE(v, sim::SimTime::ms(10));
    EXPECT_LE(v, sim::SimTime::ms(50));
  }
}

TEST(Latency, PlanetLabWithinConfiguredClamp) {
  PlanetLabLatencyConfig cfg;
  PlanetLabLatency lat(cfg, Rng(3));
  Rng rng(4);
  for (std::uint32_t i = 0; i < 50; ++i) {
    for (std::uint32_t j = 0; j < 50; ++j) {
      if (i == j) continue;
      const auto v = lat.sample(NodeId{i}, NodeId{j}, rng);
      EXPECT_GE(v.as_ms(), cfg.min_ms);
      EXPECT_LE(v.as_ms(), cfg.max_ms + cfg.jitter_max_ms);
    }
  }
}

TEST(Latency, PlanetLabBaseIndependentOfQueryOrder) {
  PlanetLabLatencyConfig cfg;
  cfg.jitter_max_ms = 0.0;
  PlanetLabLatency lat_a(cfg, Rng(5));
  PlanetLabLatency lat_b(cfg, Rng(5));
  Rng rng(6);
  // lat_a queries (3,4) first; lat_b queries other pairs first.
  const auto a = lat_a.sample(NodeId{3}, NodeId{4}, rng);
  (void)lat_b.sample(NodeId{1}, NodeId{2}, rng);
  (void)lat_b.sample(NodeId{7}, NodeId{9}, rng);
  const auto b = lat_b.sample(NodeId{3}, NodeId{4}, rng);
  EXPECT_EQ(a, b);
}

TEST(Latency, PlanetLabSpreadIsHeterogeneous) {
  PlanetLabLatencyConfig cfg;
  cfg.jitter_max_ms = 0.0;
  PlanetLabLatency lat(cfg, Rng(7));
  Rng rng(8);
  sim::SimTime lo = sim::SimTime::max(), hi = sim::SimTime::zero();
  for (std::uint32_t i = 1; i < 80; ++i) {
    const auto v = lat.sample(NodeId{0}, NodeId{i}, rng);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Log-normal spread: the slowest pair should be several times the fastest.
  EXPECT_GT(hi.as_us(), 3 * lo.as_us());
}

}  // namespace
}  // namespace hg::net
