#include "core/heap_node.hpp"

#include <gtest/gtest.h>

namespace hg::core {
namespace {

struct NodePair {
  sim::Simulator sim{17};
  net::NetworkFabric fabric;
  membership::Directory directory;
  std::vector<std::unique_ptr<HeapNode>> nodes;

  explicit NodePair(std::size_t n, Mode mode, BitRate cap = BitRate::kbps(1000))
      : fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
               std::make_unique<net::NoLoss>()),
        directory(sim, membership::DetectionConfig{}) {
    for (std::uint32_t i = 0; i < n; ++i) directory.add_node(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      NodeConfig cfg;
      cfg.mode = mode;
      cfg.capability = cap;
      nodes.push_back(std::make_unique<HeapNode>(sim, fabric, directory, NodeId{i}, cfg));
      fabric.register_node(NodeId{i}, BitRate::unlimited(),
                           [n = nodes.back().get()](const net::Datagram& d) {
                             n->on_datagram(d);
                           });
    }
    for (auto& n_ : nodes) n_->start();
  }
};

TEST(HeapNode, StandardModeHasNoAggregator) {
  NodePair p(3, Mode::kStandard);
  EXPECT_EQ(p.nodes[0]->aggregator(), nullptr);
  EXPECT_DOUBLE_EQ(p.nodes[0]->fanout_policy().current_target(), 7.0);
}

TEST(HeapNode, HeapModeRunsAggregation) {
  NodePair p(10, Mode::kHeap);
  ASSERT_NE(p.nodes[0]->aggregator(), nullptr);
  p.sim.run_until(sim::SimTime::sec(10));
  // Homogeneous capabilities: estimate equals own capability, fanout stays 7.
  EXPECT_GT(p.nodes[0]->aggregator()->known_origins(), 5u);
  EXPECT_NEAR(p.nodes[0]->aggregator()->average_capability_bps(), 1'000'000.0, 1.0);
  EXPECT_NEAR(p.nodes[0]->fanout_policy().current_target(), 7.0, 0.01);
}

TEST(HeapNode, DispatchRoutesGossipAndAggregation) {
  NodePair p(5, Mode::kHeap);
  p.nodes[0]->publish(gossip::Event{
      gossip::EventId{0, 0},
      net::BufferRef::copy_of(std::vector<std::uint8_t>(64, 1))});
  p.sim.run_until(sim::SimTime::sec(5));
  // Gossip events delivered everywhere AND aggregation records exchanged,
  // all over the single per-node datagram callback.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_TRUE(p.nodes[i]->gossip().has_delivered(gossip::EventId{0, 0})) << i;
    EXPECT_GT(p.nodes[i]->aggregator()->known_origins(), 0u) << i;
  }
}

TEST(HeapNode, MalformedDatagramIsIgnored) {
  NodePair p(2, Mode::kHeap);
  auto junk = net::BufferRef::copy_of(std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef});
  p.fabric.send(NodeId{0}, NodeId{1}, net::MsgClass::kOther, junk);
  p.sim.run_until(sim::SimTime::sec(1));  // must not crash
  EXPECT_EQ(p.nodes[1]->gossip().stats().events_delivered, 0u);
}

TEST(HeapNode, FreeriderAdvertisingLowCapabilityContributesLess) {
  // §5 "nodes would pretend to be poor in order not to contribute": a node
  // that *declares* a fraction of its true capability gets a matching
  // fanout reduction — the attack HEAP's incentive discussion worries about.
  sim::Simulator sim(23);
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
                            std::make_unique<net::NoLoss>());
  membership::Directory directory(sim, membership::DetectionConfig{});
  constexpr std::size_t kN = 20;
  std::vector<std::unique_ptr<HeapNode>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) directory.add_node(NodeId{i});
  for (std::uint32_t i = 0; i < kN; ++i) {
    NodeConfig cfg;
    cfg.mode = Mode::kHeap;
    // Node 5 is a freerider: true capacity 1 Mbps, declares 128 kbps.
    cfg.capability = (i == 5) ? BitRate::kbps(128) : BitRate::kbps(1000);
    nodes.push_back(std::make_unique<HeapNode>(sim, fabric, directory, NodeId{i}, cfg));
    fabric.register_node(NodeId{i}, BitRate::kbps(1000),
                         [n = nodes.back().get()](const net::Datagram& d) {
                           n->on_datagram(d);
                         });
  }
  for (auto& n : nodes) n->start();
  sim.run_until(sim::SimTime::sec(15));

  const double honest_target = nodes[1]->fanout_policy().current_target();
  const double freerider_target = nodes[5]->fanout_policy().current_target();
  EXPECT_NEAR(freerider_target / honest_target, 128.0 / 1000.0, 0.03);
}

TEST(HeapNode, StopHaltsActivity) {
  NodePair p(5, Mode::kHeap);
  p.sim.run_until(sim::SimTime::sec(2));
  p.nodes[0]->stop();
  const auto sent_before = p.fabric.meter(NodeId{0}).total_offered_bytes();
  p.sim.run_until(sim::SimTime::sec(10));
  const auto sent_after = p.fabric.meter(NodeId{0}).total_offered_bytes();
  EXPECT_EQ(sent_before, sent_after);
}

}  // namespace
}  // namespace hg::core
