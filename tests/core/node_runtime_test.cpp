#include "core/node_runtime.hpp"

#include <gtest/gtest.h>

#include "aggregation/aggregation_module.hpp"
#include "core/signal.hpp"
#include "gossip/gossip_module.hpp"
#include "membership/cyclon_module.hpp"
#include "tree/tree_module.hpp"

namespace hg::core {
namespace {

struct Swarm {
  sim::Simulator sim{17};
  net::NetworkFabric fabric;
  membership::Directory directory;
  std::vector<std::unique_ptr<NodeRuntime>> nodes;

  explicit Swarm(std::size_t n, Mode mode, BitRate cap = BitRate::kbps(1000))
      : fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
               std::make_unique<net::NoLoss>()),
        directory(sim, membership::DetectionConfig{}) {
    for (std::uint32_t i = 0; i < n; ++i) directory.add_node(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      NodeConfig cfg;
      cfg.mode = mode;
      cfg.capability = cap;
      nodes.push_back(NodeRuntime::make(sim, fabric, directory, NodeId{i}, cfg));
      nodes.back()->attach(BitRate::unlimited());
    }
    for (auto& node : nodes) node->start();
  }

  [[nodiscard]] gossip::ThreePhaseGossip& gossip(std::size_t i) {
    return nodes[i]->module<gossip::GossipModule>().engine();
  }
};

gossip::Event make_event(std::uint32_t window, std::uint16_t index) {
  return gossip::Event{gossip::EventId{window, index},
                       net::BufferRef::copy_of(std::vector<std::uint8_t>(64, 1))};
}

TEST(NodeRuntime, StandardPresetMountsOnlyGossip) {
  Swarm s(3, Mode::kStandard);
  EXPECT_EQ(s.nodes[0]->find_module<aggregation::AggregationModule>(), nullptr);
  EXPECT_DOUBLE_EQ(s.nodes[0]->module<gossip::GossipModule>().policy().current_target(), 7.0);
  const auto names = s.nodes[0]->module_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_STREQ(names[0], "gossip");
}

TEST(NodeRuntime, HeapPresetRunsAggregation) {
  Swarm s(10, Mode::kHeap);
  const auto names = s.nodes[0]->module_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_STREQ(names[0], "gossip");
  EXPECT_STREQ(names[1], "aggregation");
  s.sim.run_until(sim::SimTime::sec(10));
  // Homogeneous capabilities: estimate equals own capability, fanout stays 7.
  const auto& agg = s.nodes[0]->module<aggregation::AggregationModule>().aggregator();
  EXPECT_GT(agg.known_origins(), 5u);
  EXPECT_NEAR(agg.average_capability_bps(), 1'000'000.0, 1.0);
  EXPECT_NEAR(s.nodes[0]->module<gossip::GossipModule>().policy().current_target(), 7.0, 0.01);
}

TEST(NodeRuntime, DispatchRoutesGossipAndAggregationByTag) {
  Swarm s(5, Mode::kHeap);
  s.nodes[0]->publish(make_event(0, 0));
  s.sim.run_until(sim::SimTime::sec(5));
  // Gossip events delivered everywhere AND aggregation records exchanged,
  // all through the single per-node tag table.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_TRUE(s.gossip(i).has_delivered(gossip::EventId{0, 0})) << i;
    EXPECT_GT(s.nodes[i]->module<aggregation::AggregationModule>().aggregator().known_origins(),
              0u)
        << i;
    EXPECT_GT(s.nodes[i]->stats().datagrams_dispatched, 0u) << i;
  }
}

TEST(NodeRuntime, UnknownTagIsCountedAndDropped) {
  Swarm s(2, Mode::kHeap);
  auto junk = net::BufferRef::copy_of(std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef});
  s.fabric.send(NodeId{0}, NodeId{1}, net::MsgClass::kOther, junk);
  s.sim.run_until(sim::SimTime::sec(1));  // must not crash
  EXPECT_EQ(s.nodes[1]->stats().unknown_tag_datagrams, 1u);
  EXPECT_EQ(s.gossip(1).stats().events_delivered, 0u);
}

TEST(NodeRuntimeDeathTest, StrictModeAbortsOnUnknownTag) {
  ASSERT_DEATH(
      {
        Swarm s(2, Mode::kHeap);
        s.nodes[1]->set_strict_unknown_tags(true);
        auto junk = net::BufferRef::copy_of(std::vector<std::uint8_t>{0xde, 0xad});
        s.fabric.send(NodeId{0}, NodeId{1}, net::MsgClass::kOther, junk);
        s.sim.run_until(sim::SimTime::sec(1));
      },
      "unknown-tag datagram");
}

TEST(NodeRuntimeDeathTest, DuplicateTagRegistrationAborts) {
  ASSERT_DEATH(
      {
        sim::Simulator sim{1};
        net::NetworkFabric fabric(sim,
                                  std::make_unique<net::ConstantLatency>(sim::SimTime::ms(1)),
                                  std::make_unique<net::NoLoss>());
        membership::Directory directory(sim, membership::DetectionConfig{});
        directory.add_node(NodeId{0});
        NodeRuntime rt(sim, fabric, directory, NodeId{0}, NodeConfig{});
        auto handler = [](void*, const net::Datagram&) {};
        auto a = rt.register_handler(gossip::MsgTag::kPropose, nullptr, handler);
        auto b = rt.register_handler(gossip::MsgTag::kPropose, nullptr, handler);
      },
      "duplicate tag registration");
}

TEST(NodeRuntime, TagRegistrationDeregistersOnDestruction) {
  sim::Simulator sim{1};
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(1)),
                            std::make_unique<net::NoLoss>());
  membership::Directory directory(sim, membership::DetectionConfig{});
  directory.add_node(NodeId{0});
  NodeRuntime rt(sim, fabric, directory, NodeId{0}, NodeConfig{});

  int hits = 0;
  const net::Datagram d{NodeId{0}, NodeId{0}, net::MsgClass::kTree,
                        net::BufferRef::copy_of(std::vector<std::uint8_t>{
                            static_cast<std::uint8_t>(gossip::MsgTag::kTreePush)})};
  {
    TagRegistration reg = rt.register_handler(
        gossip::MsgTag::kTreePush, &hits,
        [](void* ctx, const net::Datagram&) { ++*static_cast<int*>(ctx); });
    EXPECT_TRUE(reg.active());
    rt.on_datagram(d);
    EXPECT_EQ(hits, 1);
  }
  // RAII handle gone: the tag routes nowhere and counts as unknown.
  rt.on_datagram(d);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(rt.stats().unknown_tag_datagrams, 1u);
  // The slot is reusable after deregistration.
  TagRegistration again = rt.register_handler(
      gossip::MsgTag::kTreePush, &hits,
      [](void* ctx, const net::Datagram&) { *static_cast<int*>(ctx) += 10; });
  rt.on_datagram(d);
  EXPECT_EQ(hits, 11);
}

TEST(NodeRuntime, IgnoredTagIsCountedSeparatelyAndSurvivesStrictMode) {
  Swarm s(2, Mode::kStandard);
  s.nodes[1]->set_strict_unknown_tags(true);
  s.nodes[1]->ignore_tag(gossip::MsgTag::kAggregation);
  auto record = net::BufferRef::copy_of(
      std::vector<std::uint8_t>{static_cast<std::uint8_t>(gossip::MsgTag::kAggregation), 0});
  s.fabric.send(NodeId{0}, NodeId{1}, net::MsgClass::kAggregation, record);
  s.sim.run_until(sim::SimTime::sec(1));  // strict mode must not trip
  EXPECT_EQ(s.nodes[1]->stats().ignored_datagrams, 1u);
  EXPECT_EQ(s.nodes[1]->stats().unknown_tag_datagrams, 0u);
}

TEST(NodeRuntime, StartStopAreIdempotent) {
  Swarm s(2, Mode::kHeap);
  // Swarm already started every node; a second start must not double-arm
  // the gossip timer (which would double the round rate).
  s.nodes[0]->start();
  EXPECT_TRUE(s.nodes[0]->running());
  s.sim.run_until(sim::SimTime::sec(2.05));
  const auto rounds = s.gossip(0).stats().rounds;
  EXPECT_GE(rounds, 9u);   // one 200 ms timer: ~10 rounds in 2 s
  EXPECT_LE(rounds, 11u);  // two timers would give ~20

  s.nodes[0]->stop();
  s.nodes[0]->stop();  // idempotent
  EXPECT_FALSE(s.nodes[0]->running());
  s.sim.run_until(sim::SimTime::sec(4.0));
  EXPECT_EQ(s.gossip(0).stats().rounds, rounds);  // timers actually cancelled

  s.nodes[0]->start();  // restart re-arms
  s.sim.run_until(sim::SimTime::sec(6.0));
  EXPECT_GT(s.gossip(0).stats().rounds, rounds);
}

TEST(NodeRuntime, DeliverySignalFansOutToSubscribersInOrder) {
  Swarm s(2, Mode::kStandard);
  std::vector<int> order;
  Subscription first = s.nodes[1]->deliveries().subscribe(
      [&order](const gossip::Event&) { order.push_back(1); });
  Subscription second = s.nodes[1]->deliveries().subscribe(
      [&order](const gossip::Event&) { order.push_back(2); });
  // The player glue is absent here, so these are the only subscribers.
  s.nodes[0]->publish(make_event(0, 0));
  s.sim.run_until(sim::SimTime::sec(3));
  ASSERT_TRUE(s.gossip(1).has_delivered(gossip::EventId{0, 0}));
  ASSERT_EQ(order.size(), 2u);  // one delivery, both observers, in order
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);

  first.reset();
  s.nodes[0]->publish(make_event(0, 1));
  s.sim.run_until(sim::SimTime::sec(6));
  ASSERT_EQ(order.size(), 3u);  // only the surviving observer fired
  EXPECT_EQ(order[2], 2);
}

TEST(NodeRuntime, RequestGateIsAndOverSubscribers) {
  Swarm s(2, Mode::kStandard);
  // Empty gate: everything is requested (delivery works end to end).
  Subscription allow = s.nodes[1]->request_gate().subscribe(
      [](gossip::EventId) { return true; });
  Subscription veto_window0 = s.nodes[1]->request_gate().subscribe(
      [](gossip::EventId id) { return id.window() != 0; });
  s.nodes[0]->publish(make_event(0, 0));
  s.nodes[0]->publish(make_event(1, 0));
  s.sim.run_until(sim::SimTime::sec(5));
  EXPECT_FALSE(s.gossip(1).has_delivered(gossip::EventId{0, 0}));  // vetoed
  EXPECT_TRUE(s.gossip(1).has_delivered(gossip::EventId{1, 0}));
  EXPECT_GT(s.gossip(1).stats().declined_requests, 0u);
}

TEST(NodeRuntime, CustomStackMultiplexesGossipCyclonAndTreeOnOnePort) {
  // The payoff of tag routing: three protocols share each node's port, each
  // claiming its own tags, with zero coordination between the modules.
  constexpr std::size_t kN = 6;
  sim::Simulator sim{31};
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
                            std::make_unique<net::NoLoss>());
  membership::Directory directory(sim, membership::DetectionConfig{});
  for (std::uint32_t i = 0; i < kN; ++i) directory.add_node(NodeId{i});

  std::vector<int> tree_got(kN, 0);
  tree::StaticTree tree(sim, fabric, kN, 2,
                        [&tree_got](NodeId node, const gossip::Event&) {
                          ++tree_got[node.value()];
                        });
  std::vector<NodeId> everyone;
  for (std::uint32_t i = 0; i < kN; ++i) everyone.push_back(NodeId{i});

  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) {
    NodeConfig cfg;
    cfg.mode = Mode::kStandard;
    auto rt = NodeRuntime::standard(sim, fabric, directory, NodeId{i}, cfg);
    rt->emplace_module<membership::CyclonModule>(membership::CyclonConfig{}).bootstrap(everyone);
    rt->emplace_module<tree::TreeModule>(tree);
    rt->attach(BitRate::unlimited());
    nodes.push_back(std::move(rt));
  }
  for (auto& n : nodes) n->start();

  nodes[0]->publish(make_event(0, 0));  // gossip leg
  tree.publish(make_event(9, 9));       // tree leg (root = node 0)
  sim.run_until(sim::SimTime::sec(6));

  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(nodes[i]->module<gossip::GossipModule>().engine().has_delivered(
        gossip::EventId{0, 0}))
        << i;
    EXPECT_EQ(tree_got[i], 1) << i;
    EXPECT_GE(nodes[i]->module<membership::CyclonModule>().sampler().view_size(), 1u) << i;
    EXPECT_EQ(nodes[i]->stats().unknown_tag_datagrams, 0u) << i;
  }
}

TEST(NodeRuntime, FreeriderAdvertisingLowCapabilityContributesLess) {
  // §5 "nodes would pretend to be poor in order not to contribute": a node
  // that *declares* a fraction of its true capability gets a matching
  // fanout reduction — the attack HEAP's incentive discussion worries about.
  sim::Simulator sim(23);
  net::NetworkFabric fabric(sim, std::make_unique<net::ConstantLatency>(sim::SimTime::ms(10)),
                            std::make_unique<net::NoLoss>());
  membership::Directory directory(sim, membership::DetectionConfig{});
  constexpr std::size_t kN = 20;
  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) directory.add_node(NodeId{i});
  for (std::uint32_t i = 0; i < kN; ++i) {
    NodeConfig cfg;
    cfg.mode = Mode::kHeap;
    // Node 5 is a freerider: true capacity 1 Mbps, declares 128 kbps.
    cfg.capability = (i == 5) ? BitRate::kbps(128) : BitRate::kbps(1000);
    nodes.push_back(NodeRuntime::heap(sim, fabric, directory, NodeId{i}, cfg));
    nodes.back()->attach(BitRate::kbps(1000));
  }
  for (auto& n : nodes) n->start();
  sim.run_until(sim::SimTime::sec(15));

  auto target = [&](std::size_t i) {
    return nodes[i]->module<gossip::GossipModule>().policy().current_target();
  };
  EXPECT_NEAR(target(5) / target(1), 128.0 / 1000.0, 0.03);
}

TEST(NodeRuntime, StopHaltsActivity) {
  Swarm s(5, Mode::kHeap);
  s.sim.run_until(sim::SimTime::sec(2));
  s.nodes[0]->stop();
  const auto sent_before = s.fabric.meter(NodeId{0}).total_offered_bytes();
  s.sim.run_until(sim::SimTime::sec(10));
  const auto sent_after = s.fabric.meter(NodeId{0}).total_offered_bytes();
  EXPECT_EQ(sent_before, sent_after);
}

// --- signal primitives ------------------------------------------------------

TEST(Signal, SubscribersRunInSubscriptionOrderAndDetachOnReset) {
  Signal<int> sig;
  std::vector<int> seen;
  Subscription a = sig.subscribe([&seen](int v) { seen.push_back(v * 10); });
  Subscription b = sig.subscribe([&seen](int v) { seen.push_back(v * 10 + 1); });
  sig.emit(1);
  ASSERT_EQ(seen, (std::vector<int>{10, 11}));
  a.reset();
  EXPECT_FALSE(a.active());
  sig.emit(2);
  ASSERT_EQ(seen, (std::vector<int>{10, 11, 21}));
  EXPECT_EQ(sig.subscriber_count(), 1u);
}

TEST(Signal, SubscriptionIsMoveOnlyAndDetachesOnceAtDestruction) {
  Signal<> sig;
  int hits = 0;
  {
    Subscription outer;
    {
      Subscription inner = sig.subscribe([&hits]() { ++hits; });
      outer = std::move(inner);
      EXPECT_FALSE(inner.active());  // NOLINT(bugprone-use-after-move): asserting moved-from
    }
    sig.emit();  // moved-to handle keeps the subscription alive
    EXPECT_EQ(hits, 1);
  }
  sig.emit();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sig.subscriber_count(), 0u);
}

TEST(Signal, NestedEmissionKeepsMutationGuardArmed) {
  // Re-emitting a signal from inside its own emission is allowed; the
  // mutation guard must stay armed for the rest of the outer emission.
  Signal<int> sig;
  int calls = 0;
  Subscription reentrant = sig.subscribe([&](int depth) {
    ++calls;
    if (depth == 0) sig.emit(1);
  });
  sig.emit(0);
  EXPECT_EQ(calls, 2);
  // After everything unwound, mutation is legal again.
  Subscription late = sig.subscribe([](int) {});
  EXPECT_EQ(sig.subscriber_count(), 2u);
}

TEST(Gate, EmptyApprovesAndAnyVetoWins) {
  Gate<int> gate;
  EXPECT_TRUE(gate.ask(7));
  Subscription even_only = gate.subscribe([](int v) { return v % 2 == 0; });
  Subscription small_only = gate.subscribe([](int v) { return v < 10; });
  EXPECT_TRUE(gate.ask(4));
  EXPECT_FALSE(gate.ask(3));   // first subscriber vetoes
  EXPECT_FALSE(gate.ask(12));  // second subscriber vetoes
  even_only.reset();
  EXPECT_TRUE(gate.ask(3));
}

}  // namespace
}  // namespace hg::core
