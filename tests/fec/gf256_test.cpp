#include "fec/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hg::fec {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(GF256::add(0xff, 0xff), 0);
}

TEST(GF256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, MulKnownVector) {
  // 0x57 * 0x83 = 0xc1 under the AES polynomial 0x11b.
  EXPECT_EQ(GF256::mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(GF256::mul(0x02, 0x80), 0x1b);  // overflow reduction case
}

TEST(GF256, MulCommutative) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                GF256::mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(GF256, MulAssociative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 23) {
      for (int c = 1; c < 256; c += 31) {
        const auto ab_c = GF256::mul(GF256::mul(static_cast<std::uint8_t>(a),
                                                static_cast<std::uint8_t>(b)),
                                     static_cast<std::uint8_t>(c));
        const auto a_bc = GF256::mul(static_cast<std::uint8_t>(a),
                                     GF256::mul(static_cast<std::uint8_t>(b),
                                                static_cast<std::uint8_t>(c)));
        EXPECT_EQ(ab_c, a_bc);
      }
    }
  }
}

TEST(GF256, DistributiveOverAdd) {
  for (int a = 0; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 19) {
      for (int c = 0; c < 256; c += 29) {
        const auto lhs = GF256::mul(static_cast<std::uint8_t>(a),
                                    GF256::add(static_cast<std::uint8_t>(b),
                                               static_cast<std::uint8_t>(c)));
        const auto rhs = GF256::add(
            GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
            GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(c)));
        EXPECT_EQ(lhs, rhs);
      }
    }
  }
}

TEST(GF256, EveryNonZeroHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 7) {
      const auto prod = GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
      EXPECT_EQ(GF256::div(prod, static_cast<std::uint8_t>(b)), a);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 37) {
    std::uint8_t acc = 1;
    for (unsigned p = 0; p < 20; ++p) {
      EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), p), acc);
      acc = GF256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(GF256, GeneratorHasFullOrder) {
  // exp() cycles through all 255 non-zero elements.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const auto v = GF256::exp(i);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "generator order < 255";
    seen[v] = true;
  }
}

TEST(GF256, MulAddSliceMatchesScalar) {
  std::vector<std::uint8_t> dst(257), src(257), expect(257);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(i * 31);
    src[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const std::uint8_t coeff = 0x8e;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    expect[i] = GF256::add(dst[i], GF256::mul(coeff, src[i]));
  }
  GF256::mul_add_slice(dst.data(), src.data(), dst.size(), coeff);
  EXPECT_EQ(dst, expect);
}

TEST(GF256, MulAddSliceCoeffZeroIsNoop) {
  std::vector<std::uint8_t> dst{1, 2, 3}, src{9, 9, 9};
  auto orig = dst;
  GF256::mul_add_slice(dst.data(), src.data(), dst.size(), 0);
  EXPECT_EQ(dst, orig);
}

TEST(GF256, ScaleSliceMatchesScalar) {
  std::vector<std::uint8_t> dst(100);
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = static_cast<std::uint8_t>(i + 1);
  auto expect = dst;
  const std::uint8_t coeff = 0x1d;
  for (auto& v : expect) v = GF256::mul(v, coeff);
  GF256::scale_slice(dst.data(), dst.size(), coeff);
  EXPECT_EQ(dst, expect);
}

}  // namespace
}  // namespace hg::fec
