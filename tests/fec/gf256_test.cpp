#include "fec/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace hg::fec {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(GF256::add(0xff, 0xff), 0);
}

TEST(GF256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, MulKnownVector) {
  // 0x57 * 0x83 = 0xc1 under the AES polynomial 0x11b.
  EXPECT_EQ(GF256::mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(GF256::mul(0x02, 0x80), 0x1b);  // overflow reduction case
}

TEST(GF256, MulCommutative) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                GF256::mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(GF256, AlgebraOverAllPairs) {
  // Commutativity, distributivity, and division/inverse consistency over the
  // full 256 x 256 square (the strided tests above keep their historical
  // role as quick pinpointed failures; this is the exhaustive sweep).
  for (int ai = 0; ai < 256; ++ai) {
    const auto a = static_cast<std::uint8_t>(ai);
    for (int bi = 0; bi < 256; ++bi) {
      const auto b = static_cast<std::uint8_t>(bi);
      const std::uint8_t ab = GF256::mul(a, b);
      ASSERT_EQ(ab, GF256::mul(b, a));
      // Distributivity a*(b+c) == a*b + a*c for a fixed c-set (a full cube
      // would be 16M iterations for no extra coverage of the table logic).
      for (const std::uint8_t c : {std::uint8_t{1}, std::uint8_t{0x53}, std::uint8_t{0xff}}) {
        ASSERT_EQ(GF256::mul(a, GF256::add(b, c)), GF256::add(ab, GF256::mul(a, c)));
        ASSERT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
      }
      if (b != 0) {
        ASSERT_EQ(GF256::div(ab, b), a);
        ASSERT_EQ(GF256::mul(b, GF256::inv(b)), 1);
      }
    }
  }
}

TEST(GF256, MulAssociative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 23) {
      for (int c = 1; c < 256; c += 31) {
        const auto ab_c = GF256::mul(GF256::mul(static_cast<std::uint8_t>(a),
                                                static_cast<std::uint8_t>(b)),
                                     static_cast<std::uint8_t>(c));
        const auto a_bc = GF256::mul(static_cast<std::uint8_t>(a),
                                     GF256::mul(static_cast<std::uint8_t>(b),
                                                static_cast<std::uint8_t>(c)));
        EXPECT_EQ(ab_c, a_bc);
      }
    }
  }
}

TEST(GF256, DistributiveOverAdd) {
  for (int a = 0; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 19) {
      for (int c = 0; c < 256; c += 29) {
        const auto lhs = GF256::mul(static_cast<std::uint8_t>(a),
                                    GF256::add(static_cast<std::uint8_t>(b),
                                               static_cast<std::uint8_t>(c)));
        const auto rhs = GF256::add(
            GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
            GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(c)));
        EXPECT_EQ(lhs, rhs);
      }
    }
  }
}

TEST(GF256, EveryNonZeroHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 7) {
      const auto prod = GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
      EXPECT_EQ(GF256::div(prod, static_cast<std::uint8_t>(b)), a);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 37) {
    std::uint8_t acc = 1;
    for (unsigned p = 0; p < 20; ++p) {
      EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), p), acc);
      acc = GF256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(GF256, PowExhaustiveExponents) {
  // Every base against every exponent in one full group period, checked
  // against repeated multiplication.
  for (int ai = 0; ai < 256; ++ai) {
    const auto a = static_cast<std::uint8_t>(ai);
    std::uint8_t acc = 1;
    for (unsigned p = 0; p < 255; ++p) {
      ASSERT_EQ(GF256::pow(a, p), a == 0 && p > 0 ? 0 : acc) << "a=" << ai << " p=" << p;
      acc = GF256::mul(acc, a);
    }
  }
}

TEST(GF256, PowHugeExponentRegression) {
  // Regression for the 32-bit wraparound: log[a] * power used to be computed
  // in unsigned before the mod-255 reduction, so any power past ~16.9M could
  // wrap mod 2^32 and land on the wrong field element. a^power must depend
  // on power only through power mod 255 (the multiplicative group order).
  const unsigned huge_exponents[] = {
      16'900'000u,   // first territory where log[a]=254 overflows
      0x0fff'ffffu,  //
      0xffff'ff00u,  // near the top of the 32-bit range
      0xffff'ffffu,  //
  };
  for (int ai = 1; ai < 256; ++ai) {
    const auto a = static_cast<std::uint8_t>(ai);
    for (const unsigned big : huge_exponents) {
      ASSERT_EQ(GF256::pow(a, big), GF256::pow(a, big % 255u)) << "a=" << ai << " p=" << big;
    }
  }
  // Zero stays the exception: 0^p == 0 for every positive p, however huge
  // (0^(255k) must NOT collapse to 0^0 == 1).
  for (const unsigned big : huge_exponents) EXPECT_EQ(GF256::pow(0, big), 0);
}

TEST(GF256, GeneratorHasFullOrder) {
  // exp() cycles through all 255 non-zero elements.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const auto v = GF256::exp(i);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "generator order < 255";
    seen[v] = true;
  }
}

TEST(GF256, MulAddSliceMatchesScalar) {
  std::vector<std::uint8_t> dst(257), src(257), expect(257);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(i * 31);
    src[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const std::uint8_t coeff = 0x8e;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    expect[i] = GF256::add(dst[i], GF256::mul(coeff, src[i]));
  }
  GF256::mul_add_slice(dst.data(), src.data(), dst.size(), coeff);
  EXPECT_EQ(dst, expect);
}

TEST(GF256, MulAddSliceCoeffZeroIsNoop) {
  std::vector<std::uint8_t> dst{1, 2, 3}, src{9, 9, 9};
  auto orig = dst;
  GF256::mul_add_slice(dst.data(), src.data(), dst.size(), 0);
  EXPECT_EQ(dst, orig);
}

TEST(GF256, ScaleSliceMatchesScalar) {
  std::vector<std::uint8_t> dst(100);
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = static_cast<std::uint8_t>(i + 1);
  auto expect = dst;
  const std::uint8_t coeff = 0x1d;
  for (auto& v : expect) v = GF256::mul(v, coeff);
  GF256::scale_slice(dst.data(), dst.size(), coeff);
  EXPECT_EQ(dst, expect);
}

TEST(GF256, SimdLevelIsNamed) {
  // Whatever the dispatcher picked must have a printable name; on machines
  // without SSSE3/NEON the equivalence tests below degenerate to
  // scalar-vs-scalar, which is fine — they must still pass.
  EXPECT_STRNE(GF256::simd_level_name(), "");
  if (GF256::simd_level() == GF256::SimdLevel::kScalar) {
    EXPECT_STREQ(GF256::simd_level_name(), "scalar");
  }
}

TEST(GF256, MulAddSliceSimdMatchesScalarEveryCoeff) {
  // Randomized slices at awkward lengths (vector body + scalar tail, and
  // sub-vector-width slices), every coefficient, dispatched-vs-scalar
  // byte equality. Misaligned views of the same buffers are exercised via
  // the +1 offset.
  Rng rng(0xf3c5);
  for (const std::size_t len : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                                std::size_t{17}, std::size_t{100}, std::size_t{1316}}) {
    std::vector<std::uint8_t> src(len + 1), base(len + 1);
    for (auto& b : src) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : base) b = static_cast<std::uint8_t>(rng.below(256));
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<std::uint8_t>(c);
      std::vector<std::uint8_t> dispatched = base;
      std::vector<std::uint8_t> scalar = base;
      GF256::mul_add_slice(dispatched.data() + 1, src.data() + 1, len, coeff);
      GF256::mul_add_slice_scalar(scalar.data() + 1, src.data() + 1, len, coeff);
      ASSERT_EQ(dispatched, scalar) << "len=" << len << " coeff=" << c;
    }
  }
}

TEST(GF256, ScaleSliceSimdMatchesScalarEveryCoeff) {
  Rng rng(0xa117);
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{16}, std::size_t{33}, std::size_t{1316}}) {
    std::vector<std::uint8_t> base(len + 1);
    for (auto& b : base) b = static_cast<std::uint8_t>(rng.below(256));
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<std::uint8_t>(c);
      std::vector<std::uint8_t> dispatched = base;
      std::vector<std::uint8_t> scalar = base;
      GF256::scale_slice(dispatched.data() + 1, len, coeff);
      GF256::scale_slice_scalar(scalar.data() + 1, len, coeff);
      ASSERT_EQ(dispatched, scalar) << "len=" << len << " coeff=" << c;
    }
  }
}

}  // namespace
}  // namespace hg::fec
