#include "fec/matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fec/gf256.hpp"

namespace hg::fec {
namespace {

Matrix random_invertible(std::size_t n, Rng& rng) {
  // Random matrices over GF(256) are invertible with probability ~0.996;
  // retry until one is (verified by inverting).
  for (;;) {
    Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m.set(r, c, static_cast<std::uint8_t>(rng.below(256)));
      }
    }
    // Cheap invertibility probe: try to invert; inverted() asserts on
    // singular, so do a manual rank check first.
    Matrix work = m;
    bool singular = false;
    for (std::size_t col = 0; col < n && !singular; ++col) {
      std::size_t pivot = col;
      while (pivot < n && work.at(pivot, col) == 0) ++pivot;
      if (pivot == n) {
        singular = true;
        break;
      }
      if (pivot != col) {
        for (std::size_t c = 0; c < n; ++c) std::swap(work.row(col)[c], work.row(pivot)[c]);
      }
      const std::uint8_t inv = GF256::inv(work.at(col, col));
      GF256::scale_slice(work.row(col), n, inv);
      for (std::size_t r = col + 1; r < n; ++r) {
        GF256::mul_add_slice(work.row(r), work.row(col), n, work.at(r, col));
      }
    }
    if (!singular) return m;
  }
}

TEST(Matrix, IdentityTimesAnything) {
  Rng rng(5);
  Matrix m = random_invertible(8, rng);
  EXPECT_EQ(Matrix::identity(8).multiply(m), m);
  EXPECT_EQ(m.multiply(Matrix::identity(8)), m);
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  Rng rng(6);
  for (std::size_t n : {1UL, 2UL, 3UL, 8UL, 16UL, 32UL}) {
    Matrix m = random_invertible(n, rng);
    EXPECT_EQ(m.multiply(m.inverted()), Matrix::identity(n)) << "n=" << n;
    EXPECT_EQ(m.inverted().multiply(m), Matrix::identity(n)) << "n=" << n;
  }
}

TEST(Matrix, VandermondeStructure) {
  Matrix v = Matrix::vandermonde(5, 3);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(v.at(r, 0), 1);
    const auto point = static_cast<std::uint8_t>(r + 1);
    EXPECT_EQ(v.at(r, 1), point);
    EXPECT_EQ(v.at(r, 2), GF256::mul(point, point));
  }
}

TEST(Matrix, VandermondeAnySquareRowSubsetInvertible) {
  // The property the erasure code depends on: any k rows form an invertible
  // matrix. Spot-check many random subsets.
  const std::size_t k = 6, n = 12;
  Matrix v = Matrix::vandermonde(n, k);
  Rng rng(7);
  std::vector<std::uint32_t> pick;
  for (int trial = 0; trial < 50; ++trial) {
    rng.sample_indices(n, k, pick);
    std::vector<std::size_t> rows(pick.begin(), pick.end());
    const Matrix sub = v.select_rows(rows);
    EXPECT_EQ(sub.multiply(sub.inverted()), Matrix::identity(k));
  }
}

TEST(Matrix, SelectRowsPreservesOrder) {
  Matrix m(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    m.set(r, 0, static_cast<std::uint8_t>(r));
    m.set(r, 1, static_cast<std::uint8_t>(r * 10));
  }
  const Matrix s = m.select_rows({3, 1});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.at(0, 0), 3);
  EXPECT_EQ(s.at(1, 0), 1);
  EXPECT_EQ(s.at(1, 1), 10);
}

TEST(Matrix, MultiplyDimensions) {
  Matrix a(2, 3), b(3, 4);
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a(2, 2), b(2, 2);
  a.set(0, 0, 1);
  a.set(0, 1, 2);
  a.set(1, 0, 3);
  a.set(1, 1, 4);
  b.set(0, 0, 5);
  b.set(0, 1, 6);
  b.set(1, 0, 7);
  b.set(1, 1, 8);
  const Matrix c = a.multiply(b);
  // GF arithmetic: c[0][0] = 1*5 ^ 2*7, etc.
  EXPECT_EQ(c.at(0, 0), GF256::add(GF256::mul(1, 5), GF256::mul(2, 7)));
  EXPECT_EQ(c.at(0, 1), GF256::add(GF256::mul(1, 6), GF256::mul(2, 8)));
  EXPECT_EQ(c.at(1, 0), GF256::add(GF256::mul(3, 5), GF256::mul(4, 7)));
  EXPECT_EQ(c.at(1, 1), GF256::add(GF256::mul(3, 6), GF256::mul(4, 8)));
}

}  // namespace
}  // namespace hg::fec
