#include "fec/window_codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hg::fec {
namespace {

WindowCodecConfig small_config() {
  return WindowCodecConfig{.data_per_window = 7, .parity_per_window = 3, .packet_bytes = 100};
}

std::vector<std::vector<std::uint8_t>> random_window(const WindowCodecConfig& cfg, Rng& rng) {
  std::vector<std::vector<std::uint8_t>> pkts(cfg.data_per_window,
                                              std::vector<std::uint8_t>(cfg.packet_bytes));
  for (auto& p : pkts) {
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.below(256));
  }
  return pkts;
}

TEST(WindowCodec, PaperDefaults) {
  WindowCodec codec(WindowCodecConfig{});
  EXPECT_EQ(codec.config().data_per_window, 101u);
  EXPECT_EQ(codec.config().parity_per_window, 9u);
  EXPECT_EQ(codec.config().packet_bytes, 1316u);
  EXPECT_EQ(codec.window_packets(), 110u);
}

TEST(WindowCodec, DecodableIsCountingRule) {
  WindowCodec codec(small_config());
  EXPECT_FALSE(codec.decodable(0));
  EXPECT_FALSE(codec.decodable(6));
  EXPECT_TRUE(codec.decodable(7));
  EXPECT_TRUE(codec.decodable(10));
}

TEST(WindowCodec, RoundTripWithErasures) {
  Rng rng(1);
  const auto cfg = small_config();
  WindowCodec codec(cfg);
  auto data = random_window(cfg, rng);
  auto parity = codec.encode_window(data);
  ASSERT_EQ(parity.size(), cfg.parity_per_window);

  std::vector<std::optional<std::vector<std::uint8_t>>> received(codec.window_packets());
  for (std::size_t i = 0; i < cfg.data_per_window; ++i) received[i] = data[i];
  for (std::size_t i = 0; i < cfg.parity_per_window; ++i) {
    received[cfg.data_per_window + i] = parity[i];
  }
  // Drop 3 (== parity count).
  received[0].reset();
  received[3].reset();
  received[8].reset();

  auto out = codec.decode_window(received);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(WindowCodec, UndecodableBelowThreshold) {
  Rng rng(2);
  const auto cfg = small_config();
  WindowCodec codec(cfg);
  auto data = random_window(cfg, rng);
  auto parity = codec.encode_window(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> received(codec.window_packets());
  // Only 6 of 7 required packets arrive.
  for (std::size_t i = 0; i < 4; ++i) received[i] = data[i];
  received[7] = parity[0];
  received[8] = parity[1];
  EXPECT_FALSE(codec.decode_window(received).has_value());
}

TEST(WindowCodecDeathTest, RejectsInvalidConfigsUpFront) {
  // Validation happens in the codec's own ctor, before ReedSolomon is
  // built, with messages naming the codec contract.
  EXPECT_DEATH(WindowCodec(WindowCodecConfig{.data_per_window = 200,
                                             .parity_per_window = 56,
                                             .packet_bytes = 100}),
               "at most 255 packets");
  EXPECT_DEATH(WindowCodec(WindowCodecConfig{.data_per_window = 7,
                                             .parity_per_window = 3,
                                             .packet_bytes = 0}),
               "packet_bytes");
  EXPECT_DEATH(WindowCodec(WindowCodecConfig{.data_per_window = 0,
                                             .parity_per_window = 3,
                                             .packet_bytes = 100}),
               "at least one data packet");
}

TEST(WindowCodec, ParityFreeCodecNeedsEveryPacket) {
  // parity == 0 is the retransmission-only ablation arm: nothing is
  // repairable, so the window decodes iff every (data) packet arrived, and
  // decodable() stays clamped to the window size.
  Rng rng(4);
  const WindowCodecConfig cfg{.data_per_window = 5, .parity_per_window = 0, .packet_bytes = 64};
  WindowCodec codec(cfg);
  EXPECT_EQ(codec.window_packets(), 5u);
  EXPECT_FALSE(codec.decodable(4));
  EXPECT_TRUE(codec.decodable(5));
  EXPECT_TRUE(codec.decodable(6));  // overcount clamps to the window size

  auto data = random_window(cfg, rng);
  EXPECT_TRUE(codec.encode_window(data).empty());

  std::vector<std::optional<std::vector<std::uint8_t>>> received(codec.window_packets());
  for (std::size_t i = 0; i < cfg.data_per_window; ++i) received[i] = data[i];
  auto out = codec.decode_window(received);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);

  received[2].reset();  // one missing packet is unrecoverable without parity
  EXPECT_FALSE(codec.decode_window(received).has_value());
}

TEST(WindowCodec, DecodeRejectsMixedLengthShards) {
  // Shards come off the wire: a wrong-length shard must make the decode
  // fail cleanly (nullopt), never abort or produce a malformed window.
  Rng rng(5);
  const auto cfg = small_config();
  WindowCodec codec(cfg);
  auto data = random_window(cfg, rng);
  auto parity = codec.encode_window(data);

  std::vector<std::optional<std::vector<std::uint8_t>>> received(codec.window_packets());
  for (std::size_t i = 0; i < cfg.data_per_window; ++i) received[i] = data[i];
  received[2]->pop_back();  // all-data fast path sees a short shard
  EXPECT_FALSE(codec.decode_window(received).has_value());

  received[2] = data[2];  // restore, then break the reconstruction path
  received[0].reset();
  received[cfg.data_per_window] = parity[0];
  received[cfg.data_per_window]->push_back(0);
  EXPECT_FALSE(codec.decode_window(received).has_value());
}

TEST(WindowCodec, SystematicPacketsPassThrough) {
  // Even an undecodable window yields whatever raw data packets arrived —
  // the property behind the paper's "delivery ratio in jittered windows".
  Rng rng(3);
  const auto cfg = small_config();
  WindowCodec codec(cfg);
  auto data = random_window(cfg, rng);
  auto parity = codec.encode_window(data);
  // The data packets ARE the first k coded packets, unmodified.
  std::vector<std::optional<std::vector<std::uint8_t>>> received(codec.window_packets());
  for (std::size_t i = 0; i < cfg.data_per_window; ++i) received[i] = data[i];
  for (std::size_t i = 0; i < cfg.parity_per_window; ++i) {
    received[cfg.data_per_window + i] = parity[i];
  }
  auto out = codec.decode_window(received);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

}  // namespace
}  // namespace hg::fec
