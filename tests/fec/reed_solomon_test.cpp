#include "fec/reed_solomon.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hg::fec {
namespace {

std::vector<std::vector<std::uint8_t>> random_shards(std::size_t k, std::size_t len,
                                                     Rng& rng) {
  std::vector<std::vector<std::uint8_t>> shards(k, std::vector<std::uint8_t>(len));
  for (auto& s : shards) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.below(256));
  }
  return shards;
}

TEST(ReedSolomon, SystematicEncodingMatrixShape) {
  ReedSolomon rs(4, 2);
  const Matrix& e = rs.encoding_matrix();
  EXPECT_EQ(e.rows(), 6u);
  EXPECT_EQ(e.cols(), 4u);
}

TEST(ReedSolomon, AllDataPresentDecodesTrivially) {
  Rng rng(1);
  ReedSolomon rs(4, 2);
  auto data = random_shards(4, 64, rng);
  std::vector<std::optional<std::vector<std::uint8_t>>> shards(6);
  for (std::size_t i = 0; i < 4; ++i) shards[i] = data[i];
  auto out = rs.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(ReedSolomon, RecoversFromParityOnly) {
  Rng rng(2);
  ReedSolomon rs(3, 3);
  auto data = random_shards(3, 32, rng);
  auto parity = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> shards(6);
  for (std::size_t i = 0; i < 3; ++i) shards[3 + i] = parity[i];
  auto out = rs.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(ReedSolomon, TooFewShardsFails) {
  Rng rng(3);
  ReedSolomon rs(4, 2);
  auto data = random_shards(4, 16, rng);
  auto parity = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> shards(6);
  shards[0] = data[0];
  shards[4] = parity[0];
  shards[5] = parity[1];  // only 3 of 4 required
  EXPECT_FALSE(rs.decode(shards).has_value());
}

TEST(ReedSolomon, PaperGeometry101of110) {
  // The paper's window: 101 data + 9 parity. Losing any 9 packets is fine.
  Rng rng(4);
  ReedSolomon rs(101, 9);
  auto data = random_shards(101, 48, rng);
  auto parity = rs.encode(data);
  ASSERT_EQ(parity.size(), 9u);

  std::vector<std::optional<std::vector<std::uint8_t>>> shards(110);
  for (std::size_t i = 0; i < 101; ++i) shards[i] = data[i];
  for (std::size_t i = 0; i < 9; ++i) shards[101 + i] = parity[i];
  // Drop 9 random shards.
  std::vector<std::uint32_t> drop;
  rng.sample_indices(110, 9, drop);
  for (auto d : drop) shards[d].reset();

  auto out = rs.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);

  // Drop one more: decode must fail (MDS bound is tight).
  for (std::size_t i = 0; i < 110; ++i) {
    if (shards[i].has_value()) {
      shards[i].reset();
      break;
    }
  }
  EXPECT_FALSE(rs.decode(shards).has_value());
}

struct RsParam {
  std::size_t k, m, drop;
};

class ReedSolomonSweep : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonSweep, AnyKOfNReconstructs) {
  const auto [k, m, drop] = GetParam();
  Rng rng(1000 + k * 31 + m * 7 + drop);
  ReedSolomon rs(k, m);
  auto data = random_shards(k, 24, rng);
  auto parity = rs.encode(data);

  std::vector<std::optional<std::vector<std::uint8_t>>> shards(k + m);
  for (std::size_t i = 0; i < k; ++i) shards[i] = data[i];
  for (std::size_t i = 0; i < m; ++i) shards[k + i] = parity[i];

  std::vector<std::uint32_t> to_drop;
  rng.sample_indices(k + m, drop, to_drop);
  for (auto d : to_drop) shards[d].reset();

  auto out = rs.decode(shards);
  if (drop <= m) {
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
  } else {
    EXPECT_FALSE(out.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReedSolomonSweep,
    ::testing::Values(RsParam{1, 1, 0}, RsParam{1, 1, 1}, RsParam{1, 1, 2},
                      RsParam{2, 2, 2}, RsParam{4, 2, 1}, RsParam{4, 2, 2},
                      RsParam{4, 2, 3}, RsParam{8, 4, 4}, RsParam{10, 3, 3},
                      RsParam{16, 8, 8}, RsParam{32, 8, 8}, RsParam{50, 10, 10},
                      RsParam{101, 9, 0}, RsParam{101, 9, 5}, RsParam{101, 9, 9},
                      RsParam{101, 9, 10}, RsParam{100, 155, 150}),
    [](const ::testing::TestParamInfo<RsParam>& info) {
      return "k" + std::to_string(info.param.k) + "m" + std::to_string(info.param.m) +
             "drop" + std::to_string(info.param.drop);
    });

TEST(ReedSolomon, ManyRandomErasurePatterns) {
  Rng rng(9);
  ReedSolomon rs(10, 4);
  auto data = random_shards(10, 16, rng);
  auto parity = rs.encode(data);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(14);
    for (std::size_t i = 0; i < 10; ++i) shards[i] = data[i];
    for (std::size_t i = 0; i < 4; ++i) shards[10 + i] = parity[i];
    const std::size_t drop = rng.below(5);  // 0..4 <= m, always decodable
    std::vector<std::uint32_t> to_drop;
    rng.sample_indices(14, drop, to_drop);
    for (auto d : to_drop) shards[d].reset();
    auto out = rs.decode(shards);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
  }
}

TEST(ReedSolomon, DecodeRejectsMixedLengthsOnBothPaths) {
  // Wire input is untrusted: a wrong-length shard yields nullopt — on the
  // all-data fast path, on the elimination path, and even when the bad shard
  // is a carried-along extra that decoding would not otherwise touch.
  Rng rng(11);
  ReedSolomon rs(4, 2);
  auto data = random_shards(4, 16, rng);
  auto parity = rs.encode(data);

  // Fast path: all data present, one shard short.
  std::vector<std::optional<std::vector<std::uint8_t>>> shards(6);
  for (std::size_t i = 0; i < 4; ++i) shards[i] = data[i];
  shards[1]->pop_back();
  EXPECT_FALSE(rs.decode(shards).has_value());

  // Elimination path: a parity shard feeding reconstruction is long.
  shards[1] = data[1];
  shards[0].reset();
  shards[4] = parity[0];
  shards[4]->push_back(7);
  EXPECT_FALSE(rs.decode(shards).has_value());

  // A present-but-unused shard (beyond the first k) still fails the window:
  // equal length is a property of the whole shard set.
  shards[4] = parity[0];
  shards[5] = parity[1];
  shards[5]->pop_back();
  EXPECT_FALSE(rs.decode(shards).has_value());

  // Sanity: with lengths restored the same pattern decodes.
  shards[5] = parity[1];
  auto out = rs.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(ReedSolomon, ZeroParityIsTheDegenerateIdentityCode) {
  Rng rng(12);
  ReedSolomon rs(5, 0);
  auto data = random_shards(5, 8, rng);
  EXPECT_TRUE(rs.encode(data).empty());

  std::vector<std::optional<std::vector<std::uint8_t>>> shards(5);
  for (std::size_t i = 0; i < 5; ++i) shards[i] = data[i];
  auto out = rs.decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);

  shards[3].reset();  // nothing to repair from
  EXPECT_FALSE(rs.decode(shards).has_value());
}

TEST(ReedSolomon, ErasureFuzzRandomSubsets) {
  // Fuzz the paper geometry: random k-of-n subsets always roundtrip, any
  // (k-1)-subset always fails, and whichever data shards survive pass
  // through unmodified (systematic passthrough) on every decode.
  Rng rng(13);
  const std::size_t k = 21, m = 6, n = k + m;
  ReedSolomon rs(k, m);
  auto data = random_shards(k, 12, rng);
  auto parity = rs.encode(data);
  auto full = [&](std::size_t i) -> const std::vector<std::uint8_t>& {
    return i < k ? data[i] : parity[i - k];
  };

  for (int trial = 0; trial < 300; ++trial) {
    const bool should_decode = trial % 2 == 0;
    const std::size_t keep = should_decode ? k + rng.below(m + 1) : k - 1;
    std::vector<std::uint32_t> kept;
    rng.sample_indices(n, keep, kept);
    std::vector<std::optional<std::vector<std::uint8_t>>> shards(n);
    for (auto i : kept) shards[i] = full(i);

    auto out = rs.decode(shards);
    if (should_decode) {
      ASSERT_TRUE(out.has_value()) << "trial " << trial << " keep=" << keep;
      EXPECT_EQ(*out, data);
    } else {
      EXPECT_FALSE(out.has_value()) << "trial " << trial;
      // Systematic passthrough: the raw data shards that arrived are usable
      // as-is even though the window cannot be decoded.
      for (auto i : kept) {
        if (i < k) EXPECT_EQ(*shards[i], data[i]);
      }
    }
  }
}

TEST(ReedSolomon, EncodeIsLinear) {
  // parity(a XOR b) == parity(a) XOR parity(b) — linearity of the code.
  Rng rng(10);
  ReedSolomon rs(4, 2);
  auto a = random_shards(4, 8, rng);
  auto b = random_shards(4, 8, rng);
  auto pa = rs.encode(a);
  auto pb = rs.encode(b);
  std::vector<std::vector<std::uint8_t>> ab(4, std::vector<std::uint8_t>(8));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 8; ++j) ab[i][j] = a[i][j] ^ b[i][j];
  }
  auto pab = rs.encode(ab);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(pab[i][j], pa[i][j] ^ pb[i][j]);
    }
  }
}

}  // namespace
}  // namespace hg::fec
