// Aggregation substrate demo: the two estimators HEAP can run —
// the paper's freshness gossip (Algorithm 2) and classic push-sum [13] —
// converging on the average upload capability of a heterogeneous swarm,
// and the fanout each class would get from Equation 1.
//
//   $ ./examples/capability_aggregation
#include <cmath>
#include <cstdio>

#include "core/heap.hpp"

int main() {
  using namespace hg;

  constexpr std::size_t kNodes = 200;
  sim::Simulator sim(7);
  net::NetworkFabric fabric(sim,
                            std::make_unique<net::PlanetLabLatency>(
                                net::PlanetLabLatencyConfig{}, sim.make_rng(1)),
                            std::make_unique<net::BernoulliLoss>(0.01));
  membership::Directory directory(sim, membership::DetectionConfig{});

  Rng assign_rng = sim.make_rng(2);
  const auto dist = scenario::BandwidthDistribution::ms691();
  const auto assignment = dist.assign(kNodes, assign_rng);

  std::vector<std::unique_ptr<membership::LocalView>> views;
  std::vector<std::unique_ptr<aggregation::FreshnessAggregator>> fresh;
  std::vector<std::unique_ptr<aggregation::PushSumNode>> pushsum;

  for (std::uint32_t i = 0; i < kNodes; ++i) directory.add_node(NodeId{i});
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const NodeId id{i};
    views.push_back(directory.make_view(id));
    fresh.push_back(std::make_unique<aggregation::FreshnessAggregator>(
        sim, fabric, *views.back(), id, assignment[i].capability,
        aggregation::AggregationConfig{}));
    pushsum.push_back(std::make_unique<aggregation::PushSumNode>(
        sim, fabric, *views.back(), id,
        static_cast<double>(assignment[i].capability.bits_per_sec()), 1.0,
        aggregation::PushSumConfig{}));
    fabric.register_node(id, BitRate::unlimited(),
                         [f = fresh.back().get(), p = pushsum.back().get()](
                             const net::Datagram& d) {
                           // Both protocols share the node's port; dispatch by
                           // first byte (push-sum uses its private 0xf5 tag).
                           if (!d.bytes.empty() && d.bytes.data()[0] == 0xf5) {
                             p->on_datagram(d);
                           } else {
                             f->on_datagram(d);
                           }
                         });
  }
  for (auto& f : fresh) f->start();
  for (auto& p : pushsum) p->start();

  const double truth = dist.average_kbps() * 1000.0;
  std::printf("true average capability: %.0f kbps (ms-691, %zu nodes)\n\n",
              truth / 1000.0, kNodes);
  std::printf("%8s | %22s | %22s\n", "t (s)", "freshness mean err", "push-sum mean err");

  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    sim.run_until(sim::SimTime::sec(t));
    double err_f = 0, err_p = 0;
    for (std::size_t i = 0; i < kNodes; ++i) {
      err_f += std::abs(fresh[i]->average_capability_bps() - truth) / truth;
      const double e = pushsum[i]->estimate();
      err_p += std::isnan(e) ? 1.0 : std::abs(e - truth) / truth;
    }
    std::printf("%8.1f | %21.2f%% | %21.2f%%\n", t, 100.0 * err_f / kNodes,
                100.0 * err_p / kNodes);
  }

  std::printf("\nEquation 1 fanouts (f = 7) after convergence:\n");
  for (const auto& cls : dist.classes()) {
    const double fanout = 7.0 * cls.capability.kbits_per_sec() / dist.average_kbps();
    std::printf("  %-8s -> fanout %.2f\n", cls.name.c_str(), fanout);
  }
  std::printf("  population average stays 7 — the ln(n)+c reliability threshold.\n");
  return 0;
}
