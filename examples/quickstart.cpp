// Quickstart: stream video over HEAP to a heterogeneous swarm and print
// what the viewers experienced.
//
//   $ ./examples/quickstart [nodes] [windows]
#include <cstdio>
#include <cstdlib>

#include "core/heap.hpp"

int main(int argc, char** argv) {
  using namespace hg;

  scenario::ExperimentConfig cfg;
  cfg.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  cfg.stream_windows = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  cfg.mode = core::Mode::kHeap;
  cfg.fanout = 7.0;
  cfg.distribution = scenario::BandwidthDistribution::ms691();
  cfg.tail = sim::SimTime::sec(30.0);
  cfg.seed = 42;

  std::printf("heapgossip quickstart\n");
  std::printf("  nodes        : %zu (+1 source)\n", cfg.node_count);
  std::printf("  distribution : %s (avg %.0f kbps, CSR %.2f)\n",
              cfg.distribution.name().c_str(), cfg.distribution.average_kbps(),
              cfg.distribution.csr(cfg.stream.effective_rate_kbps()));
  std::printf("  stream       : %.0f kbps effective, %u windows (%.1f s)\n",
              cfg.stream.effective_rate_kbps(), cfg.stream_windows,
              cfg.stream.window_duration_sec() * cfg.stream_windows);

  scenario::Experiment exp(cfg);
  exp.run();

  std::printf("\nsimulated %.1f s of wall-clock, %llu events\n\n",
              exp.config().run_end().as_sec(),
              static_cast<unsigned long long>(exp.simulator().events_executed()));

  // Stream quality at a 10 s playback lag, per capability class.
  auto quality = scenario::jitter_free_pct_by_class(exp, 10.0);
  std::printf("jitter-free windows at 10 s lag, by class:\n");
  for (const auto& c : quality) {
    std::printf("  %-10s (%3zu nodes): %5.1f%%\n", c.class_name.c_str(), c.nodes,
                c.value * 100.0);
  }

  auto lags = scenario::jitter_free_lags(exp, /*max_jitter=*/0.0);
  if (!lags.empty()) {
    std::printf("\nlag to a fully jitter-free stream (%zu/%zu nodes reached it):\n",
                lags.count(), exp.receivers());
    std::printf("  median %.1f s | p75 %.1f s | p90 %.1f s\n", lags.percentile(50),
                lags.percentile(75), lags.percentile(90));
  }

  // What did HEAP's aggregation think the average capability was? Each node
  // is a protocol stack; the aggregation module is looked up by type.
  double est_sum = 0;
  std::size_t est_n = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) {
    if (const auto* agg = exp.node(i).find_module<aggregation::AggregationModule>()) {
      est_sum += agg->aggregator().average_capability_bps() / 1000.0;
      ++est_n;
    }
  }
  if (est_n > 0) {
    std::printf("\naggregation estimate of avg capability: %.0f kbps (true: %.0f kbps)\n",
                est_sum / static_cast<double>(est_n), cfg.distribution.average_kbps());
  }
  return 0;
}
