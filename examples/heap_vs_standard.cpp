// Head-to-head: standard homogeneous gossip vs HEAP on the paper's most
// skewed distribution (ms-691: 85% of nodes below the stream rate), same
// average fanout, same network. Reproduces the core claim of the paper in
// one screen of output.
//
// Nodes are protocol stacks: the node factory hands every peer an explicit
// NodeRuntime preset (standard = fixed-fanout gossip module only; heap =
// gossip + capability aggregation driving the Eq. 1 adaptive fanout), and
// the table below is the only behavioural difference between the two runs.
//
//   $ ./examples/heap_vs_standard [nodes] [windows]
#include <cstdio>
#include <cstdlib>

#include "core/heap.hpp"

namespace {

void run_one(hg::core::Mode mode, const char* label, std::size_t nodes,
             std::uint32_t windows) {
  using namespace hg;
  scenario::ExperimentConfig cfg;
  cfg.node_count = nodes;
  cfg.stream_windows = windows;
  cfg.mode = mode;
  cfg.distribution = scenario::BandwidthDistribution::ms691();
  cfg.seed = 7;

  // Hand out the stacks explicitly (NodeRuntime::make would pick the same
  // presets from cfg.mode; spelled out here to show the composition API).
  // The broadcaster (node 0) arrives with mode forced to kStandard.
  cfg.node_factory = [](sim::Simulator& s, net::NetworkFabric& f,
                        membership::Directory& dir, NodeId id,
                        const core::NodeConfig& node_cfg) {
    return node_cfg.mode == core::Mode::kHeap
               ? core::NodeRuntime::heap(s, f, dir, id, node_cfg)
               : core::NodeRuntime::standard(s, f, dir, id, node_cfg);
  };

  scenario::Experiment exp(cfg);
  exp.run();

  std::printf("--- %s (stack:", label);
  for (const char* m : exp.node(0).module_names()) std::printf(" %s", m);
  std::printf(") ---\n");
  std::printf("  %-10s %7s %12s %14s %16s\n", "class", "nodes", "upload-use",
              "jitter@10s", "delivery-ratio");
  const auto usage = scenario::usage_by_class(exp);
  const auto quality = scenario::jitter_free_pct_by_class(exp, 10.0);
  const auto delivery = scenario::delivery_in_jittered_by_class(exp, 10.0);
  for (std::size_t c = 0; c < usage.size(); ++c) {
    std::printf("  %-10s %7zu %11.1f%% %13.1f%% %15.1f%%\n", usage[c].class_name.c_str(),
                usage[c].nodes, usage[c].value * 100.0,
                (1.0 - quality[c].value) * 100.0, delivery[c].value * 100.0);
  }
  const auto lags = scenario::jitter_free_lags(exp, 0.0);
  if (lags.empty()) {
    std::printf("  no node ever reached a jitter-free stream\n");
  } else {
    std::printf("  jitter-free stream: %zu/%zu nodes, median lag %.1f s, p90 %.1f s\n",
                lags.count(), exp.receivers(), lags.percentile(50), lags.percentile(90));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 270;
  const std::uint32_t windows =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 16;

  std::printf("ms-691 (85%% of nodes below stream rate), %zu nodes, avg fanout 7\n\n",
              nodes);
  run_one(hg::core::Mode::kStandard, "standard gossip", nodes, windows);
  run_one(hg::core::Mode::kHeap, "HEAP", nodes, windows);
  return 0;
}
