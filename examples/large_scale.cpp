// Large-scale run: the 100k-node machinery on one population.
//
//   ./large_scale [receivers]        (default 10000)
//
// Uses scenario::ScalePreset — virtual payloads, lean players, capped
// aggregation, ln(N)+c fanout — and reports class-stratified stream quality
// through fixed-memory streaming metrics. A 10k-node run finishes in about
// a minute; 100k in minutes, not hours, with RSS far below what exact
// sample-hoarding plus per-node snapshots used to cost.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/env.hpp"
#include "metrics/percentile.hpp"
#include "scenario/scale_preset.hpp"
#include "stream/lag_analyzer.hpp"

int main(int argc, char** argv) {
  using namespace hg;

  const std::size_t receivers =
      argc > 1 ? static_cast<std::size_t>(parse_env_int("receivers", argv[1], 1, 10'000'000))
               : 10'000;

  scenario::ExperimentConfig cfg = scenario::ScalePreset::config(receivers);
  std::printf("large_scale: %zu receivers, HEAP, fanout %.1f, %u windows, virtual payloads\n",
              receivers, cfg.fanout, cfg.stream_windows);

  const auto t0 = std::chrono::steady_clock::now();
  scenario::Experiment e(std::move(cfg));
  e.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto& classes = e.config().distribution.classes();
  std::vector<metrics::Samples> jitter;
  std::vector<std::size_t> nodes(classes.size(), 0);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    jitter.push_back(metrics::Samples::streaming());
  }
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    const auto c = static_cast<std::size_t>(e.info(i).class_index);
    ++nodes[c];
    jitter[c].add(100.0 * e.analyzer().jitter_fraction(e.player(i), 10.0));
  }

  std::printf("\njitter%% of windows at 10 s lag, by capability class:\n");
  for (std::size_t c = 0; c < classes.size(); ++c) {
    if (jitter[c].empty()) continue;
    std::printf("  %-12s %6zu nodes   p50 %6.2f   p90 %6.2f   p99 %6.2f\n",
                classes[c].name.c_str(), nodes[c], jitter[c].percentile(50),
                jitter[c].percentile(90), jitter[c].percentile(99));
  }

  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  std::printf("\n%.1f s wall | %.0f events/s | peak RSS %.0f MB\n", wall,
              static_cast<double>(e.simulator().events_executed()) / wall,
              static_cast<double>(ru.ru_maxrss) / 1024.0);
  return 0;
}
