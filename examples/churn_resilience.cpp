// Churn resilience demo (paper §3.6): half the swarm crashes mid-stream;
// watch per-window delivery dip and recover while the failure detectors
// catch up. Also shows the aggregation estimate re-converging after the
// population changes.
//
//   $ ./examples/churn_resilience [kill_fraction]
#include <cstdio>
#include <cstdlib>

#include "core/heap.hpp"

int main(int argc, char** argv) {
  using namespace hg;

  const double kill_fraction = argc > 1 ? std::strtod(argv[1], nullptr) : 0.5;

  scenario::ExperimentConfig cfg;
  cfg.node_count = 150;
  cfg.stream_windows = 16;  // ~31 s stream
  cfg.mode = core::Mode::kHeap;
  cfg.distribution = scenario::BandwidthDistribution::ref691();
  cfg.churn = {{sim::SimTime::sec(12.0), kill_fraction}};
  cfg.detection.mean = sim::SimTime::sec(10.0);
  cfg.seed = 2024;

  std::printf("churn resilience: %zu nodes, %.0f%% crash at t=12 s, detection ~10 s\n\n",
              cfg.node_count, kill_fraction * 100.0);

  scenario::Experiment exp(cfg);
  exp.run();

  std::size_t crashed = 0;
  for (std::size_t i = 0; i < exp.receivers(); ++i) crashed += exp.info(i).crashed;
  std::printf("crashed: %zu of %zu receivers\n\n", crashed, exp.receivers());

  const auto series = scenario::per_window_decode_percent(exp, 12.0);
  std::printf("%% of initial population decoding each window (12 s lag):\n");
  for (std::size_t w = 0; w < series.size(); ++w) {
    const double t = exp.analyzer().window_complete_time(static_cast<std::uint32_t>(w)).as_sec();
    std::printf("  window %2zu (t=%5.1f s): %5.1f%%  |", w, t, series[w]);
    const int bars = static_cast<int>(series[w] / 2.0);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }

  const auto jit = scenario::jitter_percent_at_lag(exp, 12.0);
  std::printf("\nsurvivors' jitter at 12 s lag: mean %.1f%%, p90 %.1f%%\n", jit.mean(),
              jit.percentile(90));
  std::printf("(windows published right at the crash lose packets that died in\n"
              "upload queues; every later window recovers to the survivor count)\n");
  return 0;
}
