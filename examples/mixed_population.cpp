// Mixed population: a minority of receivers runs the fixed-fanout standard
// stack inside a HEAP deployment — impossible with a monolithic node class,
// a five-line node factory with pluggable stacks. The run also demonstrates
// the typed signal bus: a delivery observer subscribes to one runtime *next
// to* its player, something the old set_deliver single-slot setter could
// not express.
//
// The question the scenario answers: does a non-adapting minority free-ride
// on (or drag down) the adapting majority? Compare the two sub-populations'
// stream quality and upload usage below.
//
//   $ ./examples/mixed_population [nodes] [windows] [standard_fraction]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/heap.hpp"

int main(int argc, char** argv) {
  using namespace hg;

  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const std::uint32_t windows =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 12;
  const double raw_fraction = argc > 3 ? std::strtod(argv[3], nullptr) : 0.25;
  const double standard_fraction = std::clamp(raw_fraction, 0.0, 1.0);
  // Receivers get ids 1..nodes; the first `standard_count` run the
  // fixed-fanout stack, the rest adapt (HEAP). Ids are assigned
  // independently of capability class, so both groups sample the same
  // bandwidth distribution.
  const auto standard_count =
      static_cast<std::uint32_t>(standard_fraction * static_cast<double>(nodes));

  scenario::PopulationPlan population;
  population.node_count = nodes;
  population.distribution = scenario::BandwidthDistribution::ms691();
  population.node.mode = core::Mode::kHeap;

  scenario::StreamPlan stream_plan;
  stream_plan.windows = windows;

  auto deployment =
      scenario::Deployment::Builder{}
          .seed(7)
          .population(population)
          .stream(stream_plan)
          .node_factory([standard_count](sim::Simulator& s, net::NetworkFabric& f,
                                         membership::Directory& dir, NodeId id,
                                         const core::NodeConfig& cfg) {
            const bool standard_minority =
                id.value() >= 1 && id.value() <= standard_count;
            if (!standard_minority) return core::NodeRuntime::make(s, f, dir, id, cfg);
            auto rt = core::NodeRuntime::standard(s, f, dir, id, cfg);
            // HEAP peers will still gossip capability records at us —
            // expected traffic, not junk.
            rt->ignore_tag(gossip::MsgTag::kAggregation);
            return rt;
          })
          .build();

  // Signal bus: count node 1's deliveries alongside its player.
  std::uint64_t observed = 0;
  core::Subscription observer = deployment->node(0).deliveries().subscribe(
      [&observed](const gossip::Event&) { ++observed; });

  deployment->start();
  const sim::SimTime run_end =
      stream_plan.start +
      sim::SimTime::sec(stream_plan.stream.window_duration_sec() * windows + 40.0);
  deployment->sim().run_until(run_end);

  std::printf("mixed population on ms-691: %zu receivers, %u standard + %zu HEAP\n\n",
              nodes, standard_count, nodes - standard_count);

  const stream::LagAnalyzer analyzer(deployment->source());
  struct Group {
    std::size_t n = 0;
    double jitter_free = 0;  // sum of per-node jitter-free window share at 10 s
    std::size_t fully_jitter_free = 0;
  };
  Group groups[2];  // [0] standard minority, [1] HEAP majority
  for (std::size_t i = 0; i < deployment->receivers(); ++i) {
    const bool is_standard =
        deployment->node(i).config().mode == core::Mode::kStandard;
    Group& g = groups[is_standard ? 0 : 1];
    ++g.n;
    const double jitter = analyzer.jitter_fraction(deployment->player(i), 10.0);
    g.jitter_free += 1.0 - jitter;
    if (jitter == 0.0) ++g.fully_jitter_free;
  }

  std::printf("  %-18s %7s %22s %22s\n", "sub-population", "nodes", "jitter-free@10s",
              "fully jitter-free");
  const char* names[2] = {"standard minority", "HEAP majority"};
  for (int g = 0; g < 2; ++g) {
    if (groups[g].n == 0) continue;
    std::printf("  %-18s %7zu %21.1f%% %15zu/%zu\n", names[g], groups[g].n,
                100.0 * groups[g].jitter_free / static_cast<double>(groups[g].n),
                groups[g].fully_jitter_free, groups[g].n);
  }

  std::printf("\nnode 1 stack:");
  for (const char* m : deployment->node(0).module_names()) std::printf(" %s", m);
  std::printf("  |  deliveries seen by player AND observer: %llu\n",
              static_cast<unsigned long long>(observed));
  std::printf(
      "runtime stats (node 1): %llu datagrams dispatched, %llu aggregation ignored, "
      "%llu unknown-tag\n",
      static_cast<unsigned long long>(deployment->node(0).stats().datagrams_dispatched),
      static_cast<unsigned long long>(deployment->node(0).stats().ignored_datagrams),
      static_cast<unsigned long long>(deployment->node(0).stats().unknown_tag_datagrams));
  return 0;
}
