// Global membership directory and per-node membership views.
//
// The paper assumes uniform random peer selection over the full membership
// ("for simplicity, we consider here that the initial fanout is computed
// knowing the system size in advance"). Directory is that ground truth.
// Each node owns a LocalView which lags reality: after a crash, a view keeps
// returning the dead node until the configured failure-detection delay has
// elapsed (§3.6 configures this to 10 s on average).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace hg::membership {

class LocalView;

// Root stream tag of the directory's detection-delay RNG. The sequential
// constructor forks it from its Simulator; engine-agnostic wiring should pass
// engine.make_rng(kDirectoryStream) so both modes draw the same stream.
inline constexpr std::uint64_t kDirectoryStream = 0x4d454d42;  // "MEMB"

struct DetectionConfig {
  // Detection latency is uniform in [mean*(1-spread), mean*(1+spread)].
  sim::SimTime mean = sim::SimTime::sec(10.0);
  double spread = 0.5;
  // Per-observer detections are rounded *up* to the next wheel tick and
  // drained from a shared bucket: one scheduled event per non-empty bucket
  // instead of one per (death, observer) — a mass crash at 100k views would
  // otherwise flood the queue with 100k events per death.
  sim::SimTime wheel_tick = sim::SimTime::ms(250);
};

class Directory {
 public:
  // Schedules `fn` at the absolute time given (used for wheel drains).
  using ScheduleAtFn = std::function<void(sim::SimTime, std::function<void()>)>;
  using NowFn = std::function<sim::SimTime()>;

  Directory(sim::Simulator& simulator, DetectionConfig detection);

  // Engine-agnostic wiring (sharded runs schedule drains as barrier control
  // tasks): `schedule_at` must execute callbacks single-threaded while the
  // membership state is quiescent.
  Directory(DetectionConfig detection, Rng rng, ScheduleAtFn schedule_at, NowFn now);

  // Adds a node; all ids must be consecutive from 0.
  void add_node(NodeId id);

  // Crash-stop at the current simulation time. Every registered LocalView
  // learns about it after its own sampled detection delay.
  void kill(NodeId id);

  [[nodiscard]] bool alive(NodeId id) const { return alive_[id.value()]; }
  [[nodiscard]] std::size_t size() const { return alive_.size(); }
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  // Creates the membership view owned by `owner`. Must be called after all
  // add_node calls (views snapshot the full population).
  [[nodiscard]] std::unique_ptr<LocalView> make_view(NodeId owner);

 private:
  friend class LocalView;
  struct Detection {
    NodeId observer;
    NodeId dead;
  };

  void register_view(LocalView* view);
  void unregister_view(LocalView* view);
  [[nodiscard]] LocalView* view_of(NodeId owner) const;
  void drain(std::int64_t bucket);

  DetectionConfig detection_;
  ScheduleAtFn schedule_at_;
  NowFn now_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  // Registration order (kill() draws per-observer detection delays in this
  // order — part of the deterministic contract) plus a dense owner-id index
  // so a detection event resolves its view in O(1), not O(views).
  std::vector<LocalView*> views_;
  std::vector<LocalView*> view_by_owner_;
  Rng rng_;
  // The shared detection wheel: bucket index (fire time / wheel_tick,
  // rounded up) -> pending detections. Ordered map: drains erase their own
  // bucket, later kills may re-create it.
  std::map<std::int64_t, std::vector<Detection>> wheel_;
};

// A node's (possibly stale) view of the membership.
//
// Storage is copy-on-write against the shared directory. A freshly built
// view over an all-alive population is the identity mapping "index i -> i-th
// node id, skipping the owner" and stores nothing — the 100k-node case
// (100k views x 100k peers) would otherwise cost O(N^2) memory just for
// snapshots. Only when a view first *detects* a death does it materialize a
// private peer array and fall back to the classic swap-remove bookkeeping;
// selection order and RNG consumption are identical in both representations.
class LocalView {
 public:
  ~LocalView();
  LocalView(const LocalView&) = delete;
  LocalView& operator=(const LocalView&) = delete;

  // k distinct peers chosen uniformly at random from the nodes this view
  // believes alive, excluding the owner. Returns fewer than k if the believed
  // population is too small.
  void select_nodes(std::size_t k, std::vector<NodeId>& out, Rng& rng);

  // Number of peers the view believes alive (excluding owner).
  [[nodiscard]] std::size_t believed_peers() const { return believed_; }

  [[nodiscard]] NodeId owner() const { return owner_; }

  // Immediate removal (invoked by the directory after the detection delay;
  // also usable directly by tests).
  void mark_dead(NodeId id);

  // True once this view holds a private peer array (introspection/tests).
  [[nodiscard]] bool materialized() const { return materialized_; }

 private:
  friend class Directory;
  LocalView(Directory* dir, NodeId owner);

  // The implicit all-alive-except-owner mapping of the lazy representation.
  [[nodiscard]] NodeId implicit_member(std::size_t index) const {
    const auto i = static_cast<std::uint32_t>(index);
    return NodeId{i < owner_.value() ? i : i + 1};
  }
  void materialize();

  Directory* dir_;
  NodeId owner_;
  std::size_t snapshot_size_;            // directory size when the view was built
  std::size_t believed_;                 // peers this view believes alive
  bool materialized_ = false;
  std::vector<NodeId> members_;          // believed-alive peers, order arbitrary
  std::vector<std::uint32_t> positions_; // node id -> index in members_, or npos
  std::vector<std::uint32_t> scratch_;   // avoids per-call allocation
  static constexpr std::uint32_t kNpos = 0xffffffffu;
};

}  // namespace hg::membership
