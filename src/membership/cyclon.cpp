#include "membership/cyclon.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "gossip/messages.hpp"
#include "net/serde.hpp"

namespace hg::membership {

namespace {
// Wire tags come from the shared MsgTag space so a tag-routed node can
// multiplex Cyclon with gossip and aggregation on one port.
constexpr std::uint8_t kShuffleRequest = static_cast<std::uint8_t>(gossip::MsgTag::kCyclonRequest);
constexpr std::uint8_t kShuffleReply = static_cast<std::uint8_t>(gossip::MsgTag::kCyclonReply);
}  // namespace

CyclonNode::CyclonNode(sim::Simulator& simulator, net::NetworkFabric& fabric, NodeId self,
                       CyclonConfig config)
    : sim_(simulator),
      fabric_(fabric),
      self_(self),
      config_(config),
      rng_(simulator.make_rng(0x4359434cULL ^ (std::uint64_t{self.value()} << 20))) {}

void CyclonNode::bootstrap(const std::vector<NodeId>& initial) {
  view_.clear();
  for (NodeId id : initial) {
    if (id == self_) continue;
    if (view_.size() >= config_.view_size) break;
    view_.push_back(Entry{id, 0});
  }
}

void CyclonNode::start() {
  // Random phase so all nodes do not shuffle in lockstep.
  const auto phase = sim::SimTime::us(static_cast<std::int64_t>(
      rng_.below(static_cast<std::uint64_t>(config_.period.as_us()))));
  timer_ = sim_.every(phase, config_.period, [this]() { shuffle_round(); });
}

void CyclonNode::stop() { timer_.cancel(); }

net::BufferRef CyclonNode::encode(bool is_reply, const std::vector<Entry>& entries) const {
  net::ByteWriter w(8 + entries.size() * 6);
  w.u8(is_reply ? kShuffleReply : kShuffleRequest);
  w.u32(self_.value());
  w.varint(entries.size());
  for (const Entry& e : entries) {
    w.u32(e.id.value());
    w.u16(e.age);
  }
  return w.finish();
}

void CyclonNode::shuffle_round() {
  if (view_.empty()) return;
  for (Entry& e : view_) ++e.age;

  // Pick the oldest neighbour as the shuffle target (Cyclon's churn lever:
  // stale entries get exercised and evicted first).
  auto oldest = std::max_element(view_.begin(), view_.end(),
                                 [](const Entry& a, const Entry& b) { return a.age < b.age; });
  const NodeId target = oldest->id;
  // Remove the target from the view; it is replaced by the reply.
  view_.erase(oldest);

  // Offer: self with age 0 + up to shuffle_len-1 random entries.
  std::vector<Entry> offer;
  offer.push_back(Entry{self_, 0});
  std::vector<std::uint32_t> idx;
  rng_.sample_indices(view_.size(), std::min(config_.shuffle_len - 1, view_.size()), idx);
  last_sent_.clear();
  for (auto i : idx) {
    offer.push_back(view_[i]);
    last_sent_.push_back(view_[i].id);
  }
  fabric_.send(self_, target, net::MsgClass::kMembership, encode(false, offer));
}

void CyclonNode::on_datagram(const net::Datagram& d) {
  net::ByteReader r(d.bytes);
  const auto tag = r.u8();
  const auto from_raw = r.u32();
  if (!tag || !from_raw) return;  // malformed: drop
  const NodeId from{*from_raw};
  const auto count = r.varint();
  if (!count) return;
  std::vector<Entry> incoming;
  incoming.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto id = r.u32();
    const auto age = r.u16();
    if (!id || !age.has_value()) return;
    incoming.push_back(Entry{NodeId{*id}, *age});
  }

  if (*tag == kShuffleRequest) {
    // Reply with a random subset of our view (not including self).
    std::vector<Entry> reply_entries;
    std::vector<std::uint32_t> idx;
    rng_.sample_indices(view_.size(), std::min(config_.shuffle_len, view_.size()), idx);
    std::vector<NodeId> sent;
    for (auto i : idx) {
      reply_entries.push_back(view_[i]);
      sent.push_back(view_[i].id);
    }
    fabric_.send(self_, from, net::MsgClass::kMembership, encode(true, reply_entries));
    merge(incoming, sent);
  } else {
    merge(incoming, last_sent_);
    last_sent_.clear();
  }
}

void CyclonNode::merge(const std::vector<Entry>& incoming, const std::vector<NodeId>& sent) {
  for (const Entry& in : incoming) {
    if (in.id == self_) continue;
    auto existing = std::find_if(view_.begin(), view_.end(),
                                 [&](const Entry& e) { return e.id == in.id; });
    if (existing != view_.end()) {
      existing->age = std::min(existing->age, in.age);
      continue;
    }
    if (view_.size() < config_.view_size) {
      view_.push_back(in);
      continue;
    }
    // View full: first replace an entry we just shipped out, else the oldest.
    auto victim = view_.end();
    for (NodeId s : sent) {
      victim = std::find_if(view_.begin(), view_.end(),
                            [&](const Entry& e) { return e.id == s; });
      if (victim != view_.end()) break;
    }
    if (victim == view_.end()) {
      victim = std::max_element(view_.begin(), view_.end(),
                                [](const Entry& a, const Entry& b) { return a.age < b.age; });
    }
    *victim = in;
  }
}

void CyclonNode::select_nodes(std::size_t k, std::vector<NodeId>& out, Rng& rng) {
  out.clear();
  const std::size_t take = std::min(k, view_.size());
  std::vector<std::uint32_t> idx;
  rng.sample_indices(view_.size(), take, idx);
  for (auto i : idx) out.push_back(view_[i].id);
}

const std::vector<NodeId> CyclonNode::view_snapshot() const {
  std::vector<NodeId> ids;
  ids.reserve(view_.size());
  for (const Entry& e : view_) ids.push_back(e.id);
  return ids;
}

}  // namespace hg::membership
