// Cyclon-style peer-sampling service (extension).
//
// The paper assumes full membership knowledge; real gossip deployments run a
// peer-sampling protocol underneath. This is a faithful Cyclon: periodic
// age-based shuffles of half the partial view with the oldest neighbour,
// giving each node a continuously refreshed, near-uniform random sample.
// The dissemination layer can select peers from this instead of a full view
// (tests verify near-uniform selection and self-healing after churn).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace hg::membership {

struct CyclonConfig {
  std::size_t view_size = 20;
  std::size_t shuffle_len = 8;   // entries exchanged per shuffle
  sim::SimTime period = sim::SimTime::ms(1000);
};

class CyclonNode {
 public:
  CyclonNode(sim::Simulator& simulator, net::NetworkFabric& fabric, NodeId self,
             CyclonConfig config);

  // Seeds the initial view (e.g., from a bootstrap list).
  void bootstrap(const std::vector<NodeId>& initial);

  // Starts the periodic shuffle.
  void start();
  void stop();

  // Handles an incoming kCyclonRequest / kCyclonReply datagram addressed to
  // this node.
  void on_datagram(const net::Datagram& d);

  // Uniform-ish selection of up to k distinct peers from the current view.
  void select_nodes(std::size_t k, std::vector<NodeId>& out, Rng& rng);

  [[nodiscard]] const std::vector<NodeId> view_snapshot() const;
  [[nodiscard]] std::size_t view_size() const { return view_.size(); }

 private:
  struct Entry {
    NodeId id;
    std::uint16_t age = 0;
  };

  void shuffle_round();
  void merge(const std::vector<Entry>& incoming, const std::vector<NodeId>& sent);
  [[nodiscard]] net::BufferRef encode(bool is_reply,
                                      const std::vector<Entry>& entries) const;

  sim::Simulator& sim_;
  net::NetworkFabric& fabric_;
  NodeId self_;
  CyclonConfig config_;
  std::vector<Entry> view_;
  std::vector<NodeId> last_sent_;  // entries offered in the in-flight shuffle
  sim::Simulator::PeriodicHandle timer_;
  Rng rng_;
};

}  // namespace hg::membership
