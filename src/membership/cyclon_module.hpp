// Mounts Cyclon peer sampling on a NodeRuntime, claiming the
// kCyclonRequest / kCyclonReply tags (CyclonNode's wire format leads with
// exactly those bytes, so the runtime's tag router multiplexes it next to
// gossip and aggregation on one port).
#pragma once

#include "core/node_runtime.hpp"
#include "membership/cyclon.hpp"

namespace hg::membership {

class CyclonModule final : public core::Protocol {
 public:
  CyclonModule(core::NodeRuntime& runtime, CyclonConfig config)
      : node_(runtime.sim(), runtime.fabric(), runtime.self(), config),
        request_tag_(runtime.register_tag(gossip::MsgTag::kCyclonRequest, this)),
        reply_tag_(runtime.register_tag(gossip::MsgTag::kCyclonReply, this)) {}

  void start() override { node_.start(); }
  void stop() override { node_.stop(); }
  [[nodiscard]] const char* name() const override { return "cyclon"; }

  void on_datagram(const net::Datagram& d) { node_.on_datagram(d); }

  void bootstrap(const std::vector<NodeId>& initial) { node_.bootstrap(initial); }
  [[nodiscard]] CyclonNode& sampler() { return node_; }
  [[nodiscard]] const CyclonNode& sampler() const { return node_; }

 private:
  CyclonNode node_;
  core::TagRegistration request_tag_;
  core::TagRegistration reply_tag_;
};

}  // namespace hg::membership
