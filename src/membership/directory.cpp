#include "membership/directory.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hg::membership {

Directory::Directory(sim::Simulator& simulator, DetectionConfig detection)
    : sim_(simulator),
      detection_(detection),
      rng_(simulator.make_rng(/*stream_tag=*/0x4d454d42)) {}  // "MEMB"

void Directory::add_node(NodeId id) {
  HG_ASSERT_MSG(id.value() == alive_.size(), "add nodes with consecutive ids from 0");
  alive_.push_back(true);
  ++alive_count_;
}

void Directory::kill(NodeId id) {
  HG_ASSERT(id.value() < alive_.size());
  if (!alive_[id.value()]) return;
  alive_[id.value()] = false;
  --alive_count_;
  for (LocalView* view : views_) {
    if (view->owner() == id) continue;
    const NodeId observer = view->owner();
    const double factor = rng_.uniform(1.0 - detection_.spread, 1.0 + detection_.spread);
    const auto delay = sim::SimTime::us(
        static_cast<std::int64_t>(static_cast<double>(detection_.mean.as_us()) * factor));
    // Look the view up again at fire time: it may have been destroyed (its
    // owner torn down) while the detection event was pending.
    sim_.after_fire_and_forget(delay, [this, observer, id]() {
      for (LocalView* v : views_) {
        if (v->owner() == observer) {
          v->mark_dead(id);
          return;
        }
      }
    });
  }
}

std::unique_ptr<LocalView> Directory::make_view(NodeId owner) {
  return std::unique_ptr<LocalView>(new LocalView(this, owner));
}

void Directory::register_view(LocalView* view) { views_.push_back(view); }

void Directory::unregister_view(LocalView* view) {
  views_.erase(std::remove(views_.begin(), views_.end(), view), views_.end());
}

LocalView::LocalView(Directory* dir, NodeId owner) : dir_(dir), owner_(owner) {
  positions_.assign(dir_->size(), kNpos);
  members_.reserve(dir_->size());
  for (std::uint32_t i = 0; i < dir_->size(); ++i) {
    const NodeId id{i};
    if (id == owner_ || !dir_->alive(id)) continue;
    positions_[i] = static_cast<std::uint32_t>(members_.size());
    members_.push_back(id);
  }
  dir_->register_view(this);
}

LocalView::~LocalView() { dir_->unregister_view(this); }

void LocalView::mark_dead(NodeId id) {
  const std::uint32_t pos = positions_[id.value()];
  if (pos == kNpos) return;
  // Swap-remove keeps select_nodes O(k).
  const NodeId last = members_.back();
  members_[pos] = last;
  positions_[last.value()] = pos;
  members_.pop_back();
  positions_[id.value()] = kNpos;
}

void LocalView::select_nodes(std::size_t k, std::vector<NodeId>& out, Rng& rng) {
  out.clear();
  const std::size_t avail = members_.size();
  const std::size_t take = std::min(k, avail);
  if (take == 0) return;
  scratch_.clear();
  rng.sample_indices(avail, take, scratch_);
  out.reserve(take);
  for (auto idx : scratch_) out.push_back(members_[idx]);
}

}  // namespace hg::membership
