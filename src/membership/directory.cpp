#include "membership/directory.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hg::membership {

Directory::Directory(sim::Simulator& simulator, DetectionConfig detection)
    : detection_(detection),
      schedule_at_([sim = &simulator](sim::SimTime at, std::function<void()> fn) {
        sim->after_fire_and_forget(at - sim->now(), std::move(fn));
      }),
      now_([sim = &simulator]() { return sim->now(); }),
      rng_(simulator.make_rng(kDirectoryStream)) {}

Directory::Directory(DetectionConfig detection, Rng rng, ScheduleAtFn schedule_at, NowFn now)
    : detection_(detection),
      schedule_at_(std::move(schedule_at)),
      now_(std::move(now)),
      rng_(std::move(rng)) {
  HG_ASSERT(schedule_at_ != nullptr);
  HG_ASSERT(now_ != nullptr);
}

void Directory::add_node(NodeId id) {
  HG_ASSERT_MSG(id.value() == alive_.size(), "add nodes with consecutive ids from 0");
  alive_.push_back(true);
  ++alive_count_;
}

void Directory::kill(NodeId id) {
  HG_ASSERT(id.value() < alive_.size());
  if (!alive_[id.value()]) return;
  alive_[id.value()] = false;
  --alive_count_;
  const sim::SimTime now = now_();
  const std::int64_t tick = detection_.wheel_tick.as_us();
  HG_ASSERT_MSG(tick > 0, "DetectionConfig::wheel_tick must be positive");
  for (LocalView* view : views_) {
    if (view->owner() == id) continue;
    const NodeId observer = view->owner();
    const double factor = rng_.uniform(1.0 - detection_.spread, 1.0 + detection_.spread);
    const auto delay = sim::SimTime::us(
        static_cast<std::int64_t>(static_cast<double>(detection_.mean.as_us()) * factor));
    // Shared detection wheel: the fire time rounds up to the next tick and
    // joins that bucket; only a fresh bucket schedules an event. A death
    // costs O(views) bucket pushes but only O(spread / tick) scheduled
    // events, shared with every other death hitting the same ticks.
    const std::int64_t bucket = ((now + delay).as_us() + tick - 1) / tick;
    const auto [it, inserted] = wheel_.try_emplace(bucket);
    it->second.push_back(Detection{observer, id});
    if (inserted) {
      schedule_at_(sim::SimTime::us(bucket * tick), [this, bucket]() { drain(bucket); });
    }
  }
}

void Directory::drain(std::int64_t bucket) {
  const auto it = wheel_.find(bucket);
  if (it == wheel_.end()) return;
  std::vector<Detection> due = std::move(it->second);
  wheel_.erase(it);
  for (const Detection& d : due) {
    // Look the view up at fire time: it may have been destroyed (its owner
    // torn down) while the detection was pending.
    if (LocalView* v = view_of(d.observer)) v->mark_dead(d.dead);
  }
}

std::unique_ptr<LocalView> Directory::make_view(NodeId owner) {
  return std::unique_ptr<LocalView>(new LocalView(this, owner));
}

void Directory::register_view(LocalView* view) {
  views_.push_back(view);
  const std::size_t owner = view->owner().value();
  if (view_by_owner_.size() <= owner) view_by_owner_.resize(owner + 1, nullptr);
  view_by_owner_[owner] = view;
}

void Directory::unregister_view(LocalView* view) {
  views_.erase(std::remove(views_.begin(), views_.end(), view), views_.end());
  const std::size_t owner = view->owner().value();
  if (owner < view_by_owner_.size() && view_by_owner_[owner] == view) {
    view_by_owner_[owner] = nullptr;
  }
}

LocalView* Directory::view_of(NodeId owner) const {
  return owner.value() < view_by_owner_.size() ? view_by_owner_[owner.value()] : nullptr;
}

LocalView::LocalView(Directory* dir, NodeId owner)
    : dir_(dir), owner_(owner), snapshot_size_(dir->size()) {
  const bool owner_counted = owner_.value() < snapshot_size_ && dir_->alive(owner_);
  believed_ = dir_->alive_count() - (owner_counted ? 1 : 0);
  if (believed_ + 1 < snapshot_size_ || !owner_counted) {
    // Someone is already dead (or the owner is not a directory member): the
    // implicit identity mapping does not hold, so snapshot eagerly.
    materialize();
  }
  dir_->register_view(this);
}

LocalView::~LocalView() { dir_->unregister_view(this); }

void LocalView::materialize() {
  materialized_ = true;
  positions_.assign(snapshot_size_, kNpos);
  members_.clear();
  members_.reserve(believed_);
  for (std::uint32_t i = 0; i < snapshot_size_; ++i) {
    const NodeId id{i};
    if (id == owner_ || !dir_->alive(id)) continue;
    positions_[i] = static_cast<std::uint32_t>(members_.size());
    members_.push_back(id);
  }
  believed_ = members_.size();
}

void LocalView::mark_dead(NodeId id) {
  if (id == owner_ || id.value() >= snapshot_size_) return;
  if (!materialized_) {
    // First detected death: switch from the implicit mapping to a private
    // array. Everything this view believes alive is, by construction of the
    // lazy representation, exactly "all snapshot ids except the owner" — the
    // directory's current alive set must not leak in here (other deaths may
    // still be undetected by this view), so fill from the id range directly.
    materialized_ = true;
    positions_.resize(snapshot_size_);
    members_.resize(snapshot_size_ - 1);
    for (std::size_t i = 0; i + 1 < snapshot_size_; ++i) {
      members_[i] = implicit_member(i);
      positions_[members_[i].value()] = static_cast<std::uint32_t>(i);
    }
    positions_[owner_.value()] = kNpos;
  }
  const std::uint32_t pos = positions_[id.value()];
  if (pos == kNpos) return;
  // Swap-remove keeps select_nodes O(k).
  const NodeId last = members_.back();
  members_[pos] = last;
  positions_[last.value()] = pos;
  members_.pop_back();
  positions_[id.value()] = kNpos;
  believed_ = members_.size();
}

void LocalView::select_nodes(std::size_t k, std::vector<NodeId>& out, Rng& rng) {
  out.clear();
  const std::size_t avail = believed_;
  const std::size_t take = std::min(k, avail);
  if (take == 0) return;
  scratch_.clear();
  rng.sample_indices(avail, take, scratch_);
  out.reserve(take);
  if (materialized_) {
    for (auto idx : scratch_) out.push_back(members_[idx]);
  } else {
    // Index order in the lazy mapping equals the id order the eager snapshot
    // used to build members_, so the same sampled indices yield the same
    // peers — representations are interchangeable mid-run.
    for (auto idx : scratch_) out.push_back(implicit_member(idx));
  }
}

}  // namespace hg::membership
