// Stream packet identity and payload synthesis.
//
// A stream is a sequence of FEC windows; window w consists of packets
// (w, 0..k-1) = data and (w, k..n-1) = parity, mapped 1:1 onto gossip
// EventIds. Payloads are either real bytes (data deterministic per id,
// parity Reed-Solomon-encoded; integration tests verify decode fidelity) or
// a shared zero buffer whose *size* is still carried on the wire
// (large-scale benches, where only arrival times matter).
#pragma once

#include <cstdint>

#include "gossip/messages.hpp"
#include "net/buffer.hpp"

namespace hg::stream {

struct StreamConfig {
  std::size_t packet_bytes = 1316;     // paper §3.1
  std::size_t data_per_window = 101;   // buffered stream packets per window
  std::size_t parity_per_window = 9;   // FEC packets per window
  double payload_rate_kbps = 551.0;    // pre-FEC stream rate
  bool real_payloads = false;          // true: actual RS coding end to end
  // Large-scale runs: publish events that declare packet_bytes but store no
  // payload at all (see gossip::Event). Every node's GossipConfig must set
  // the matching virtual_payloads flag. Mutually exclusive with
  // real_payloads.
  bool virtual_payloads = false;

  [[nodiscard]] std::size_t window_packets() const {
    return data_per_window + parity_per_window;
  }
  // Time to produce one window of payload at the stream rate.
  [[nodiscard]] double window_duration_sec() const {
    return static_cast<double>(data_per_window * packet_bytes * 8) /
           (payload_rate_kbps * 1000.0);
  }
  // Packet emission interval on the coded stream (data+parity evenly spaced,
  // 600 kbps effective for the paper's parameters).
  [[nodiscard]] double packet_interval_sec() const {
    return window_duration_sec() / static_cast<double>(window_packets());
  }
  [[nodiscard]] double effective_rate_kbps() const {
    return payload_rate_kbps * static_cast<double>(window_packets()) /
           static_cast<double>(data_per_window);
  }
};

[[nodiscard]] inline gossip::EventId packet_id(std::uint32_t window, std::uint16_t index) {
  return gossip::EventId{window, index};
}

[[nodiscard]] inline bool is_parity(gossip::EventId id, const StreamConfig& cfg) {
  return id.index() >= cfg.data_per_window;
}

// Deterministic pseudo-random data payload for (window, index): the decoder
// side can verify reconstructed windows byte-for-byte without shipping a
// reference stream around. The vector form feeds the FEC codec; the
// BufferRef form is the same bytes as a pooled wire buffer.
[[nodiscard]] std::vector<std::uint8_t> synth_payload_bytes(std::uint32_t window,
                                                            std::uint16_t index,
                                                            std::size_t bytes);
[[nodiscard]] net::BufferRef synth_payload(std::uint32_t window, std::uint16_t index,
                                           std::size_t bytes);

}  // namespace hg::stream
