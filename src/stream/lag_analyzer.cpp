#include "stream/lag_analyzer.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hg::stream {

LagAnalyzer::LagAnalyzer(const StreamSource& source)
    : config_(source.config()),
      windows_(source.windows_total()),
      t0_(source.publish_time(packet_id(0, 0))),
      interval_us_(static_cast<std::int64_t>(config_.packet_interval_sec() * 1e6)) {
  complete_time_.reserve(windows_);
  for (std::uint32_t w = 0; w < windows_; ++w) {
    complete_time_.push_back(source.window_complete_time(w));
  }
}

sim::SimTime LagAnalyzer::packet_publish_time(gossip::EventId id) const {
  const std::int64_t seq =
      static_cast<std::int64_t>(id.window()) *
          static_cast<std::int64_t>(config_.window_packets()) +
      id.index();
  return t0_ + sim::SimTime::us(seq * interval_us_);
}

std::vector<double> LagAnalyzer::window_decode_lags(const Player& p) const {
  HG_ASSERT(p.windows_total() == windows_);
  std::vector<double> lags;
  lags.reserve(windows_);
  for (std::uint32_t w = 0; w < windows_; ++w) {
    const sim::SimTime dt = p.window(w).decode_time;
    if (dt == sim::SimTime::max()) {
      lags.push_back(kNever);
    } else {
      lags.push_back(std::max(0.0, (dt - complete_time_[w]).as_sec()));
    }
  }
  return lags;
}

double LagAnalyzer::jitter_fraction(const Player& p, double lag_sec) const {
  const auto lags = window_decode_lags(p);
  const auto jittered = static_cast<double>(
      std::count_if(lags.begin(), lags.end(), [&](double l) { return l > lag_sec; }));
  return jittered / static_cast<double>(lags.size());
}

double LagAnalyzer::jitter_fraction_offline(const Player& p) const {
  const auto lags = window_decode_lags(p);
  const auto jittered = static_cast<double>(
      std::count_if(lags.begin(), lags.end(), [](double l) { return l == kNever; }));
  return jittered / static_cast<double>(lags.size());
}

std::optional<double> LagAnalyzer::lag_to_jitter_at_most(const Player& p,
                                                         double max_jitter) const {
  auto lags = window_decode_lags(p);
  std::sort(lags.begin(), lags.end());
  // Allow floor(max_jitter * W) jittered windows: the answer is the
  // (W - allowed)-th smallest decode lag.
  const auto allowed = static_cast<std::size_t>(max_jitter * static_cast<double>(lags.size()));
  const std::size_t need = lags.size() - allowed;
  HG_ASSERT(need >= 1);
  const double lag = lags[need - 1];
  if (std::isinf(lag)) return std::nullopt;
  return lag;
}

std::optional<double> LagAnalyzer::mean_delivery_in_jittered(const Player& p,
                                                             double lag_sec) const {
  double sum = 0.0;
  std::size_t jittered = 0;
  for (std::uint32_t w = 0; w < windows_; ++w) {
    const sim::SimTime deadline =
        complete_time_[w] + sim::SimTime::us(static_cast<std::int64_t>(lag_sec * 1e6));
    if (p.decodable_by(w, deadline)) continue;
    ++jittered;
    sum += static_cast<double>(p.data_arrived_by(w, deadline)) /
           static_cast<double>(config_.data_per_window);
  }
  if (jittered == 0) return std::nullopt;
  return sum / static_cast<double>(jittered);
}

std::vector<double> LagAnalyzer::packet_delivery_lags(const Player& p) const {
  HG_ASSERT_MSG(p.full_recording(), "per-packet metrics need Player::Recording::kFull");
  std::vector<double> lags;
  lags.reserve(static_cast<std::size_t>(windows_) * config_.data_per_window);
  for (std::uint32_t w = 0; w < windows_; ++w) {
    const Player::WindowRecord& rec = p.window(w);
    const sim::SimTime decode = rec.decode_time;
    for (std::uint16_t i = 0; i < config_.data_per_window; ++i) {
      const sim::SimTime arrival = rec.arrival[i];
      const sim::SimTime viewable = std::min(arrival, decode);
      if (viewable == sim::SimTime::max()) {
        lags.push_back(kNever);
      } else {
        const sim::SimTime published = packet_publish_time(packet_id(w, i));
        lags.push_back(std::max(0.0, (viewable - published).as_sec()));
      }
    }
  }
  return lags;
}

std::optional<double> LagAnalyzer::lag_to_stream_fraction(const Player& p,
                                                          double fraction) const {
  auto lags = packet_delivery_lags(p);
  std::sort(lags.begin(), lags.end());
  const auto need = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(lags.size())));
  HG_ASSERT(need >= 1 && need <= lags.size());
  const double lag = lags[need - 1];
  if (std::isinf(lag)) return std::nullopt;
  return lag;
}

std::vector<double> LagAnalyzer::per_window_decode_percent(
    std::span<const Player* const> players, double lag_sec, std::size_t population) const {
  HG_ASSERT(population > 0);
  std::vector<double> pct(windows_, 0.0);
  for (std::uint32_t w = 0; w < windows_; ++w) {
    const sim::SimTime deadline =
        complete_time_[w] + sim::SimTime::us(static_cast<std::int64_t>(lag_sec * 1e6));
    std::size_t ok = 0;
    for (const Player* p : players) {
      if (p->decodable_by(w, deadline)) ++ok;
    }
    pct[w] = 100.0 * static_cast<double>(ok) / static_cast<double>(population);
  }
  return pct;
}

}  // namespace hg::stream
