// Post-run analysis: turns per-packet arrival timestamps into the paper's
// metrics. One simulation yields every lag curve simultaneously, because a
// window's decodability at lag L is a pure function of recorded times.
//
// Definitions (paper §3.2):
//   stream lag       — difference between publication and viewing time
//   jittered window  — not decodable (>= k packets) by its play deadline
//   stream quality   — fraction of windows that are jitter-free
//   delivery ratio   — data packets received / k inside a window (systematic
//                      coding keeps raw data viewable even without decode)
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "metrics/percentile.hpp"
#include "stream/player.hpp"
#include "stream/source.hpp"

namespace hg::stream {

class LagAnalyzer {
 public:
  // Timing is taken from the source's fixed emission schedule.
  explicit LagAnalyzer(const StreamSource& source);

  [[nodiscard]] std::uint32_t windows_total() const { return windows_; }

  // Lag (seconds) each window needs to be decodable: decode_time minus the
  // window's publish-complete time; +inf if never decoded. Clamped >= 0.
  [[nodiscard]] std::vector<double> window_decode_lags(const Player& p) const;

  // Fraction of windows NOT decodable at lag L (the paper's "% jittered").
  [[nodiscard]] double jitter_fraction(const Player& p, double lag_sec) const;
  // Offline viewing: every window that was ever decodable counts.
  [[nodiscard]] double jitter_fraction_offline(const Player& p) const;

  // Smallest lag with jitter fraction <= max_jitter (e.g. 0 for "no jitter",
  // 0.01 for "max 1% jitter"); nullopt if even offline viewing has more.
  [[nodiscard]] std::optional<double> lag_to_jitter_at_most(const Player& p,
                                                            double max_jitter) const;

  // Mean delivery ratio across the windows that are jittered at lag L
  // (Table 2); nullopt when no window is jittered.
  [[nodiscard]] std::optional<double> mean_delivery_in_jittered(const Player& p,
                                                                double lag_sec) const;

  // Per-data-packet lag to become viewable: a packet is viewable when it
  // arrives, or when its window decodes, whichever is first. Lag is measured
  // against the packet's own publication time; +inf if never. This feeds the
  // Fig. 1/2/3 curves: the lag for "at least 99% of the stream" is the 99th
  // percentile of these values.
  [[nodiscard]] std::vector<double> packet_delivery_lags(const Player& p) const;
  [[nodiscard]] std::optional<double> lag_to_stream_fraction(const Player& p,
                                                             double fraction) const;

  // Fig. 10 series: for each window, the percentage of `population` nodes
  // whose player decoded it within lag L of its publish-complete time.
  [[nodiscard]] std::vector<double> per_window_decode_percent(
      std::span<const Player* const> players, double lag_sec, std::size_t population) const;

  [[nodiscard]] sim::SimTime window_complete_time(std::uint32_t w) const {
    return complete_time_[w];
  }
  [[nodiscard]] sim::SimTime packet_publish_time(gossip::EventId id) const;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

 private:
  StreamConfig config_;
  std::uint32_t windows_;
  sim::SimTime t0_;
  std::int64_t interval_us_;
  std::vector<sim::SimTime> complete_time_;
};

}  // namespace hg::stream
