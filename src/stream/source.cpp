#include "stream/source.hpp"

#include "common/assert.hpp"

namespace hg::stream {

StreamSource::StreamSource(sim::Simulator& simulator, StreamConfig config, PublishFn publish)
    : sim_(simulator), config_(config), publish_(std::move(publish)) {
  HG_ASSERT(publish_ != nullptr);
  HG_ASSERT_MSG(!(config_.real_payloads && config_.virtual_payloads),
                "real_payloads and virtual_payloads are mutually exclusive");
  if (config_.virtual_payloads) {
    // No payload bytes exist anywhere in a virtual run.
  } else if (config_.real_payloads) {
    codec_ = std::make_unique<fec::WindowCodec>(
        fec::WindowCodecConfig{.data_per_window = config_.data_per_window,
                               .parity_per_window = config_.parity_per_window,
                               .packet_bytes = config_.packet_bytes});
  } else {
    const std::vector<std::uint8_t> zeros(config_.packet_bytes, 0);
    zero_payload_ = net::BufferRef::copy_of(zeros);
  }
}

void StreamSource::start(sim::SimTime initial_delay, std::uint32_t windows) {
  HG_ASSERT(windows > 0);
  windows_total_ = windows;
  t0_ = sim_.now() + initial_delay;
  sim_.after_fire_and_forget(initial_delay, [this]() { emit_next(); });
}

void StreamSource::stop() { stopped_ = true; }

sim::SimTime StreamSource::publish_time(gossip::EventId id) const {
  const auto interval_us =
      static_cast<std::int64_t>(config_.packet_interval_sec() * 1e6);
  const std::int64_t seq =
      static_cast<std::int64_t>(id.window()) *
          static_cast<std::int64_t>(config_.window_packets()) +
      id.index();
  return t0_ + sim::SimTime::us(seq * interval_us);
}

sim::SimTime StreamSource::window_complete_time(std::uint32_t window) const {
  return publish_time(
      packet_id(window, static_cast<std::uint16_t>(config_.window_packets() - 1)));
}

void StreamSource::emit_next() {
  if (stopped_ || next_window_ >= windows_total_) return;

  const std::uint32_t w = next_window_;
  const std::uint16_t i = next_index_;
  const gossip::EventId id = packet_id(w, i);

  net::BufferRef payload;
  if (config_.virtual_payloads) {
    publish_(gossip::Event{id, {}, static_cast<std::uint32_t>(config_.packet_bytes)});
    ++packets_published_;
    advance_cursor();
    return;
  }
  if (!config_.real_payloads) {
    payload = zero_payload_;
  } else if (i < config_.data_per_window) {
    // Synthesize once into the codec's working copy, then copy once into
    // the pooled wire buffer (pooled chunks co-locate their header with the
    // bytes, so a foreign vector cannot be adopted without a copy).
    window_data_.push_back(synth_payload_bytes(w, i, config_.packet_bytes));
    payload = net::BufferRef::copy_of(window_data_.back());
    if (window_data_.size() == config_.data_per_window) {
      auto parity = codec_->encode_window(window_data_);
      window_parity_.clear();
      for (auto& p : parity) {
        window_parity_.push_back(net::BufferRef::copy_of(p));
      }
      window_data_.clear();
    }
  } else {
    HG_ASSERT(window_parity_.size() == config_.parity_per_window);
    payload = window_parity_[i - config_.data_per_window];
  }

  publish_(gossip::Event{id, std::move(payload)});
  ++packets_published_;
  advance_cursor();
}

void StreamSource::advance_cursor() {
  if (next_index_ + 1u < config_.window_packets()) {
    ++next_index_;
  } else {
    next_index_ = 0;
    ++next_window_;
    if (next_window_ >= windows_total_) return;
  }
  const gossip::EventId next = packet_id(next_window_, next_index_);
  const sim::SimTime at = publish_time(next);
  sim_.at(at, [this]() { emit_next(); });
}

}  // namespace hg::stream
