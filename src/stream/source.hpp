// The stream source (broadcaster).
//
// Emits packets at the effective (FEC-coded) stream rate: window w's data
// packets first, then its parity packets, all evenly spaced — 600 kbps for
// the paper's 551 kbps + 9/101 FEC overhead. Each packet is published into
// the node's gossip engine (Algorithm 1 `publish`).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fec/window_codec.hpp"
#include "sim/simulator.hpp"
#include "stream/packet.hpp"

namespace hg::stream {

class StreamSource {
 public:
  using PublishFn = std::function<void(gossip::Event)>;

  StreamSource(sim::Simulator& simulator, StreamConfig config, PublishFn publish);

  // Streams `windows` complete FEC windows, starting `initial_delay` from
  // now.
  void start(sim::SimTime initial_delay, std::uint32_t windows);
  void stop();

  // Publication time of a packet (known a priori: the schedule is fixed).
  [[nodiscard]] sim::SimTime publish_time(gossip::EventId id) const;
  // When the last packet of `window` is published — the reference point for
  // stream-lag measurement of that window.
  [[nodiscard]] sim::SimTime window_complete_time(std::uint32_t window) const;

  [[nodiscard]] std::uint32_t windows_total() const { return windows_total_; }
  [[nodiscard]] std::uint64_t packets_published() const { return packets_published_; }
  [[nodiscard]] const StreamConfig& config() const { return config_; }

 private:
  void emit_next();
  // Advances the (window, index) cursor and self-schedules the next emit.
  void advance_cursor();

  sim::Simulator& sim_;
  StreamConfig config_;
  PublishFn publish_;
  std::unique_ptr<fec::WindowCodec> codec_;  // only in real-payload mode
  net::BufferRef zero_payload_;              // sized mode: one buffer, shared by refcount

  sim::SimTime t0_;  // publication time of packet (0,0)
  std::uint32_t windows_total_ = 0;
  std::uint32_t next_window_ = 0;
  std::uint16_t next_index_ = 0;
  std::uint64_t packets_published_ = 0;
  bool stopped_ = false;
  // Real mode: data packets of the in-progress window, for parity encoding.
  std::vector<std::vector<std::uint8_t>> window_data_;
  std::vector<net::BufferRef> window_parity_;
};

}  // namespace hg::stream
