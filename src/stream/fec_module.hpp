// Online FEC decoding as a protocol-stack member.
//
// PlayerModule records *when* packets arrive; FecModule reconstructs *what*
// arrived. It buffers the payload bytes of each window's delivered packets
// and, the moment any k of the n coded packets are present (the MDS counting
// rule), runs the Reed-Solomon decode: missing data packets are repaired
// from parity, the reconstructed window is handed to an optional sink, and
// the shard buffers are released. Riding the same deliveries() signal as the
// player means decode happens at exactly the arrival the player stamps as
// decode_time — and on which, in smart mode, it cancels the window's
// outstanding requests/retransmit timers via window_cancelled().
//
// Only meaningful in real-payload deployments (there are no bytes to decode
// in sized or virtual runs — decodability there is pure counting, which the
// player already does); Deployment mounts it on receivers iff
// StreamConfig::real_payloads is set.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/node_runtime.hpp"
#include "fec/window_codec.hpp"
#include "stream/packet.hpp"

namespace hg::stream {

class FecModule final : public core::Protocol {
 public:
  // Receives each window's k reconstructed data packets, in index order,
  // immediately after its decode succeeds.
  using WindowSink =
      std::function<void(std::uint32_t window, std::span<const std::vector<std::uint8_t>> data)>;

  struct Stats {
    std::uint64_t windows_decoded = 0;    // windows fully reconstructed
    std::uint64_t windows_complete = 0;   // of those, needed no repair (all data arrived)
    std::uint64_t erasures_repaired = 0;  // data packets rebuilt from parity
    std::uint64_t decode_failures = 0;    // RS rejected the shard set (untrusted wire)
    std::uint64_t malformed_packets = 0;  // payload size != packet_bytes, dropped
  };

  FecModule(core::NodeRuntime& runtime, StreamConfig config, std::uint32_t windows_total);

  [[nodiscard]] const char* name() const override { return "fec"; }

  void set_window_sink(WindowSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] bool window_decoded(std::uint32_t w) const {
    return w < windows_.size() && windows_[w].decoded;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const fec::WindowCodec& codec() const { return codec_; }

 private:
  struct WindowState {
    // Lazily sized to window_packets on the window's first arrival, released
    // after a successful decode — steady state holds only in-flight windows.
    std::vector<std::optional<std::vector<std::uint8_t>>> shards;
    std::uint32_t present = 0;
    bool decoded = false;
  };

  void on_deliver(const gossip::Event& event);
  void try_decode(std::uint32_t w);

  StreamConfig config_;
  fec::WindowCodec codec_;
  std::vector<WindowState> windows_;
  Stats stats_;
  WindowSink sink_;
  core::Subscription deliver_sub_;
};

}  // namespace hg::stream
