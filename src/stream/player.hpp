// The receiving side of the streaming application.
//
// Records the arrival time of every distinct stream packet. All of the
// paper's metrics are *post-hoc* functions of these timestamps (one run
// yields the jitter/lag curves at every lag simultaneously):
//   - a window is decodable at lag L iff >= k of its packets arrived by
//     (window publish-complete time + L)   [MDS counting rule]
//   - stream quality at lag L = fraction of windows decodable at L
//   - delivery ratio inside a jittered window = data packets arrived by the
//     deadline / k (systematic code: raw data packets remain viewable)
//
// In "smart receiver" mode (default, matching a real player), the player
// (a) tells the gossip engine to stop requesting packets of a window that
// is already decodable — those serves would be pure waste — and (b) keeps a
// per-window request budget: it grants requests only while
// received + outstanding < k + slack, because any k of the n coded packets
// decode the window. Grants expire after a TTL so a permanently lost serve
// cannot wedge the budget.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gossip/messages.hpp"
#include "gossip/window_ring.hpp"
#include "sim/simulator.hpp"
#include "stream/packet.hpp"

namespace hg::stream {

class Player {
 public:
  using CancelWindowFn = std::function<void(std::uint32_t window)>;

  // What the player records per packet:
  //   kFull — every packet's arrival timestamp (all post-hoc metrics work).
  //   kLean — a seen-bitmap plus per-window counters and decode times. The
  //           per-packet timestamp array (~windows * 110 * 8 B per node —
  //           the dominant per-node cost of a 100k-node run) is never
  //           allocated; jitter/decode-lag metrics remain exact, while
  //           per-packet queries (data_arrived_by, packet_delivery_lags)
  //           are unavailable and assert.
  enum class Recording { kFull, kLean };

  Player(sim::Simulator& simulator, StreamConfig config, std::uint32_t windows_total,
         Recording recording = Recording::kFull);

  // Wire into the gossip engine: deliver callback + request gate. A `true`
  // from should_request is a grant — the engine will request the id — so
  // the call mutates the budget accounting.
  void on_deliver(const gossip::Event& event);
  [[nodiscard]] bool should_request(gossip::EventId id);

  // Smart-receiver hook: invoked once per window when it becomes decodable.
  void set_cancel_window(CancelWindowFn fn) { cancel_window_ = std::move(fn); }
  void set_smart(bool smart) { smart_ = smart; }
  // Extra requests granted beyond the k needed for decode (default 3).
  void set_request_slack(std::uint32_t slack) { request_slack_ = slack; }
  // Grants not answered within this TTL stop counting as outstanding.
  void set_grant_ttl(sim::SimTime ttl) { grant_ttl_ = ttl; }

  // --- post-run queries -------------------------------------------------
  struct WindowRecord {
    std::vector<sim::SimTime> arrival;  // per packet index; SimTime::max() = never
    std::uint32_t received = 0;         // distinct packets
    std::uint32_t data_received = 0;    // distinct data packets
    sim::SimTime decode_time = sim::SimTime::max();  // when k-th packet arrived
    std::vector<sim::SimTime> grant_times;           // outstanding request grants
  };

  [[nodiscard]] const WindowRecord& window(std::uint32_t w) const { return windows_[w]; }
  [[nodiscard]] std::uint32_t windows_total() const {
    return static_cast<std::uint32_t>(windows_.size());
  }

  // Is window w decodable by `deadline`?
  [[nodiscard]] bool decodable_by(std::uint32_t w, sim::SimTime deadline) const {
    return windows_[w].decode_time <= deadline;
  }
  // Data packets of window w that arrived by `deadline` (<= k).
  [[nodiscard]] std::uint32_t data_arrived_by(std::uint32_t w, sim::SimTime deadline) const;

  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] const StreamConfig& config() const { return config_; }
  [[nodiscard]] bool full_recording() const { return recording_ == Recording::kFull; }

 private:
  [[nodiscard]] bool seen(std::uint32_t window, std::uint16_t index) const {
    return seen_.contains(gossip::EventId{window, index});
  }
  void mark_seen(std::uint32_t window, std::uint16_t index) {
    seen_.insert(gossip::EventId{window, index});
  }

  sim::Simulator& sim_;
  StreamConfig config_;
  Recording recording_;
  std::vector<WindowRecord> windows_;
  // Lean mode: per-window packet dedup bitmaps, addressed by the same
  // (window, index) scheme the gossip rings use. The player measures the
  // whole stream, so the ring spans every window and its base never
  // advances. Empty (zero windows) in full-recording mode.
  gossip::WindowRing<void> seen_;
  bool smart_ = true;
  std::uint32_t request_slack_ = 3;
  sim::SimTime grant_ttl_ = sim::SimTime::sec(10.0);
  CancelWindowFn cancel_window_;
  std::uint64_t packets_received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t requests_deferred_ = 0;

 public:
  [[nodiscard]] std::uint64_t requests_deferred() const { return requests_deferred_; }
};

}  // namespace hg::stream
