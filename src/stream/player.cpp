#include "stream/player.hpp"

#include "common/assert.hpp"

namespace hg::stream {

Player::Player(sim::Simulator& simulator, StreamConfig config, std::uint32_t windows_total,
               Recording recording)
    : sim_(simulator),
      config_(config),
      recording_(recording),
      seen_(gossip::RingGeometry{recording == Recording::kLean ? windows_total : 0,
                                 static_cast<std::uint32_t>(config.window_packets())}) {
  windows_.resize(windows_total);
  if (recording_ == Recording::kFull) {
    for (auto& w : windows_) {
      w.arrival.assign(config_.window_packets(), sim::SimTime::max());
    }
  }
}

void Player::on_deliver(const gossip::Event& event) {
  const gossip::EventId id = event.id;
  if (id.window() >= windows_.size()) return;  // outside the measured stream
  WindowRecord& rec = windows_[id.window()];
  HG_ASSERT(id.index() < config_.window_packets());
  if (recording_ == Recording::kFull) {
    if (rec.arrival[id.index()] != sim::SimTime::max()) {
      ++duplicates_;
      return;
    }
    rec.arrival[id.index()] = sim_.now();
  } else {
    if (seen(id.window(), id.index())) {
      ++duplicates_;
      return;
    }
    mark_seen(id.window(), id.index());
  }
  ++rec.received;
  ++packets_received_;
  if (id.index() < config_.data_per_window) ++rec.data_received;
  // An arrival answers the oldest outstanding grant.
  if (!rec.grant_times.empty()) rec.grant_times.erase(rec.grant_times.begin());

  if (rec.received == config_.data_per_window) {
    rec.decode_time = sim_.now();
    if (smart_ && cancel_window_) cancel_window_(id.window());
  }
}

bool Player::should_request(gossip::EventId id) {
  if (!smart_) return true;
  if (id.window() >= windows_.size()) return true;
  WindowRecord& rec = windows_[id.window()];
  // Decline further packets of an already-decodable window.
  if (rec.decode_time != sim::SimTime::max()) return false;
  // Budget: any k of n packets decode; asking for many more than k only
  // buys duplicate serve traffic. Expired grants free their slot (the
  // serve was lost or is hopelessly late; retransmission handles it).
  const sim::SimTime cutoff = sim_.now() - grant_ttl_;
  std::erase_if(rec.grant_times, [&](sim::SimTime t) { return t < cutoff; });
  const std::uint32_t outstanding = static_cast<std::uint32_t>(rec.grant_times.size());
  if (rec.received + outstanding >= config_.data_per_window + request_slack_) {
    ++requests_deferred_;
    return false;
  }
  rec.grant_times.push_back(sim_.now());
  return true;
}

std::uint32_t Player::data_arrived_by(std::uint32_t w, sim::SimTime deadline) const {
  HG_ASSERT_MSG(full_recording(), "per-packet queries need Recording::kFull");
  const WindowRecord& rec = windows_[w];
  std::uint32_t count = 0;
  for (std::size_t i = 0; i < config_.data_per_window; ++i) {
    if (rec.arrival[i] <= deadline) ++count;
  }
  return count;
}

}  // namespace hg::stream
