#include "stream/fec_module.hpp"

#include "common/assert.hpp"

namespace hg::stream {

FecModule::FecModule(core::NodeRuntime& runtime, StreamConfig config, std::uint32_t windows_total)
    : config_(config),
      codec_(fec::WindowCodecConfig{.data_per_window = config.data_per_window,
                                    .parity_per_window = config.parity_per_window,
                                    .packet_bytes = config.packet_bytes}),
      windows_(windows_total) {
  HG_ASSERT_MSG(config.real_payloads, "FecModule needs payload bytes; mount it only in "
                                      "real-payload deployments");
  deliver_sub_ =
      runtime.deliveries().subscribe([this](const gossip::Event& e) { on_deliver(e); });
}

void FecModule::on_deliver(const gossip::Event& event) {
  const gossip::EventId id = event.id;
  if (id.window() >= windows_.size()) return;
  if (id.index() >= codec_.window_packets()) return;
  WindowState& ws = windows_[id.window()];
  if (ws.decoded) return;
  // The payload came off the wire: wrong-sized bytes cannot be a shard of
  // this window, so drop them here rather than poisoning the shard set.
  if (event.payload.size() != config_.packet_bytes) {
    ++stats_.malformed_packets;
    return;
  }
  if (ws.shards.empty()) ws.shards.resize(codec_.window_packets());
  auto& slot = ws.shards[id.index()];
  if (slot.has_value()) return;  // duplicate delivery
  const auto bytes = event.payload.bytes();
  slot.emplace(bytes.begin(), bytes.end());
  ++ws.present;
  if (codec_.decodable(ws.present)) try_decode(id.window());
}

void FecModule::try_decode(std::uint32_t w) {
  WindowState& ws = windows_[w];
  std::size_t missing_data = 0;
  for (std::size_t i = 0; i < config_.data_per_window; ++i) {
    if (!ws.shards[i].has_value()) ++missing_data;
  }
  auto decoded = codec_.decode_window(ws.shards);
  if (!decoded.has_value()) {
    // Leave the window open: a later arrival changes the shard set and may
    // decode where this one failed.
    ++stats_.decode_failures;
    return;
  }
  ws.decoded = true;
  ++stats_.windows_decoded;
  if (missing_data == 0) {
    ++stats_.windows_complete;
  } else {
    stats_.erasures_repaired += missing_data;
  }
  if (sink_) sink_(w, *decoded);
  ws.shards.clear();
  ws.shards.shrink_to_fit();
}

}  // namespace hg::stream
