#include "stream/packet.hpp"

#include "common/rng.hpp"

namespace hg::stream {

std::vector<std::uint8_t> synth_payload_bytes(std::uint32_t window, std::uint16_t index,
                                              std::size_t bytes) {
  std::vector<std::uint8_t> buf(bytes);
  std::uint64_t state = (static_cast<std::uint64_t>(window) << 16) | index;
  std::size_t i = 0;
  while (i < bytes) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8 && i < bytes; ++b, ++i) {
      buf[i] = static_cast<std::uint8_t>(word >> (b * 8));
    }
  }
  return buf;
}

net::BufferRef synth_payload(std::uint32_t window, std::uint16_t index, std::size_t bytes) {
  return net::BufferRef::copy_of(synth_payload_bytes(window, index, bytes));
}

}  // namespace hg::stream
