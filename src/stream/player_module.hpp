// Signal-bus glue between a stream::Player and the node's protocol stack.
//
// Owns no tags: it subscribes the player to the runtime's delivery signal,
// wires the smart-receiver request budget into the request gate, and routes
// the player's "window decodable, stop requesting it" callback onto the
// window_cancelled signal (which the gossip module listens to). What used
// to be three this-bound setters threaded through a factory is now three
// RAII subscriptions that die with the module.
#pragma once

#include "core/node_runtime.hpp"
#include "stream/player.hpp"

namespace hg::stream {

class PlayerModule final : public core::Protocol {
 public:
  PlayerModule(core::NodeRuntime& runtime, Player& player);

  [[nodiscard]] const char* name() const override { return "player"; }

  [[nodiscard]] Player& player() { return player_; }

 private:
  Player& player_;
  core::Subscription deliver_sub_;
  core::Subscription request_sub_;
};

}  // namespace hg::stream
