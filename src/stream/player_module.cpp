#include "stream/player_module.hpp"

namespace hg::stream {

PlayerModule::PlayerModule(core::NodeRuntime& runtime, Player& player) : player_(player) {
  Player* p = &player_;
  deliver_sub_ =
      runtime.deliveries().subscribe([p](const gossip::Event& e) { p->on_deliver(e); });
  request_sub_ =
      runtime.request_gate().subscribe([p](gossip::EventId id) { return p->should_request(id); });
  core::NodeRuntime* rt = &runtime;
  player_.set_cancel_window([rt](std::uint32_t window) { rt->window_cancelled().emit(window); });
}

}  // namespace hg::stream
