#include "net/buffer.hpp"

namespace hg::net {

BufferPool& BufferPool::local() {
  static thread_local BufferPool pool;
  return pool;
}

BufferPool::~BufferPool() {
  for (detail::BufferCtl* head : free_lists_) {
    while (head != nullptr) {
      detail::BufferCtl* next = head->next_free;
      ::operator delete(head);
      head = next;
    }
  }
}

std::uint8_t BufferPool::class_for(std::size_t n) {
  if (n > kMaxClassBytes) return kUnpooledClass;
  std::uint8_t cls = 0;
  std::size_t cap = kMinClassBytes;
  while (cap < n) {
    cap <<= 1;
    ++cls;
  }
  return cls;
}

detail::BufferCtl* BufferPool::acquire(std::size_t n) {
  const std::uint8_t cls = class_for(n);
  if (cls == kUnpooledClass) {
    ++stats_.oversized;
    ++stats_.chunk_allocs;
    void* mem = ::operator new(sizeof(detail::BufferCtl) + n);
    return ::new (mem) detail::BufferCtl{this, nullptr, 1, static_cast<std::uint32_t>(n),
                                         0, kUnpooledClass};
  }
  detail::BufferCtl*& head = free_lists_[cls];
  if (head != nullptr) {
    detail::BufferCtl* ctl = head;
    head = ctl->next_free;
    ctl->next_free = nullptr;
    ctl->refs = 1;
    ctl->size = 0;
    ++stats_.pool_hits;
    return ctl;
  }
  ++stats_.chunk_allocs;
  void* mem = ::operator new(sizeof(detail::BufferCtl) + class_bytes(cls));
  return ::new (mem) detail::BufferCtl{
      this, nullptr, 1, static_cast<std::uint32_t>(class_bytes(cls)), 0, cls};
}

void BufferPool::recycle(detail::BufferCtl* ctl) {
  BufferPool& mine = local();
  // Only ever push onto the *releasing* thread's free list: the stored owner
  // pointer may name a pool on a thread that has already exited, so it is
  // compared, never dereferenced. Unpooled and foreign chunks go back to the
  // heap.
  if (ctl->size_class != kUnpooledClass && ctl->owner == &mine) {
    ctl->next_free = mine.free_lists_[ctl->size_class];
    mine.free_lists_[ctl->size_class] = ctl;
    ++mine.stats_.pool_returns;
    return;
  }
  if (ctl->size_class != kUnpooledClass) ++mine.stats_.foreign_frees;
  ::operator delete(ctl);
}

BufferRef BufferRef::copy_of(std::span<const std::uint8_t> src) {
  detail::BufferCtl* ctl = BufferPool::local().acquire(src.size());
  if (!src.empty()) std::memcpy(ctl->data(), src.data(), src.size());
  ctl->size = static_cast<std::uint32_t>(src.size());
  return BufferRef(ctl, 0, ctl->size);
}

}  // namespace hg::net
