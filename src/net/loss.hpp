// Datagram loss models.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hg::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  // True if the datagram src -> dst is dropped in flight.
  [[nodiscard]] virtual bool lost(NodeId src, NodeId dst, Rng& rng) = 0;
  // Pre-sizes any per-node state for `node_count` nodes. The sharded engine
  // evaluates loss concurrently across sender partitions; models with lazily
  // grown per-sender state must allocate it up front here.
  virtual void prepare(std::size_t node_count) { (void)node_count; }
};

class NoLoss final : public LossModel {
 public:
  bool lost(NodeId, NodeId, Rng&) override { return false; }
};

// Independent per-datagram loss.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_(p) {}
  bool lost(NodeId, NodeId, Rng& rng) override { return rng.chance(p_); }

 private:
  double p_;
};

// Two-state Gilbert-Elliott bursty loss (per sender): a sender is in a GOOD
// state with low loss or a BAD state with high loss; transitions are sampled
// per datagram. Models the correlated loss episodes PlanetLab exhibits under
// CPU starvation.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Config {
    double p_good_to_bad = 0.0005;
    double p_bad_to_good = 0.02;
    double loss_good = 0.003;
    double loss_bad = 0.30;
  };
  explicit GilbertElliottLoss(Config cfg) : cfg_(cfg) {}

  bool lost(NodeId src, NodeId dst, Rng& rng) override;
  void prepare(std::size_t node_count) override {
    if (bad_.size() < node_count) bad_.resize(node_count, 0);
  }

 private:
  Config cfg_;
  std::vector<std::uint8_t> bad_;  // indexed by src node id; 1 = BAD state
};

}  // namespace hg::net
