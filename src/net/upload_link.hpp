// Upload-rate limiter with an application-level queue.
//
// This is the component the paper describes verbatim: "we implemented, at
// the application level, an upload rate limiter that queues packets which
// are about to cross the bandwidth limit. In practice, nodes do never exceed
// their given upload capability."
//
// Model: the link serializes datagrams at `capacity` bits/sec. A datagram
// enqueued while the link is busy waits in FIFO order (optionally, control
// messages may jump payload — the paper's implied discipline is FIFO, the
// priority mode exists for the ablation study). The queue is unbounded by
// default: the paper's observed failure mode for standard gossip is
// *unbounded queue growth at poor nodes* ("congested queues ... increases
// the transmission delays"), which an artificial cap would mask.
//
// Queued datagrams carry pooled BufferRef slices, so a deep queue of
// batched serves holds refcounts into a handful of shared chunks rather
// than one heap vector per datagram.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/units.hpp"
#include "net/datagram.hpp"
#include "sim/simulator.hpp"

namespace hg::net {

enum class QueueDiscipline : std::uint8_t {
  kFifo = 0,          // all classes share one FIFO (default, paper behaviour)
  kControlPriority,   // propose/request/aggregation bypass queued serves
};

class UploadLink {
 public:
  // `on_wire` fires when the last bit of a datagram has left the node; the
  // fabric then applies loss + propagation delay.
  using OnWireFn = std::function<void(Datagram&&)>;

  UploadLink(sim::Simulator& simulator, BitRate capacity, QueueDiscipline discipline,
             OnWireFn on_wire);

  void enqueue(Datagram d);

  // Live capacity changes (PlanetLab background-load noise model).
  void set_capacity(BitRate capacity) { capacity_ = capacity; }
  [[nodiscard]] BitRate capacity() const { return capacity_; }

  // Halts the link (node crash): queued datagrams are discarded.
  void shutdown();

  // Introspection / statistics.
  [[nodiscard]] std::size_t queue_len() const { return queue_.size(); }
  [[nodiscard]] std::int64_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] sim::SimTime max_queue_delay() const { return max_queue_delay_; }
  [[nodiscard]] sim::SimTime total_queue_delay() const { return total_queue_delay_; }
  [[nodiscard]] std::uint64_t sent_count() const { return sent_count_; }
  [[nodiscard]] std::size_t max_queue_len() const { return max_queue_len_; }

 private:
  struct Pending {
    Datagram datagram;
    sim::SimTime enqueued_at;
  };

  void transmit_next();
  [[nodiscard]] bool is_control(MsgClass cls) const {
    return cls != MsgClass::kServe && cls != MsgClass::kTree;
  }

  sim::Simulator& sim_;
  BitRate capacity_;
  QueueDiscipline discipline_;
  OnWireFn on_wire_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  bool down_ = false;
  std::int64_t queued_bytes_ = 0;
  sim::SimTime max_queue_delay_ = sim::SimTime::zero();
  sim::SimTime total_queue_delay_ = sim::SimTime::zero();
  std::uint64_t sent_count_ = 0;
  std::size_t max_queue_len_ = 0;
};

}  // namespace hg::net
