// Per-node traffic accounting.
//
// Everything Fig. 4 reports ("average bandwidth usage by class") derives
// from these counters: wire bytes (payload + UDP/IP overhead) that actually
// left the node's upload link, broken down by traffic class.
#pragma once

#include <array>
#include <cstdint>

#include "net/datagram.hpp"
#include "sim/time.hpp"

namespace hg::net {

class TrafficMeter {
 public:
  // Accepted into the upload queue (offered load, may exceed capacity).
  void on_offered(MsgClass cls, std::int64_t wire_bytes) {
    auto& c = offered_[static_cast<std::size_t>(cls)];
    c.msgs += 1;
    c.bytes += wire_bytes;
  }
  // Fully transmitted onto the wire (can never exceed capacity * time).
  void on_sent(MsgClass cls, std::int64_t wire_bytes) {
    auto& c = sent_[static_cast<std::size_t>(cls)];
    c.msgs += 1;
    c.bytes += wire_bytes;
  }
  void on_received(MsgClass cls, std::int64_t wire_bytes) {
    auto& c = recv_[static_cast<std::size_t>(cls)];
    c.msgs += 1;
    c.bytes += wire_bytes;
  }
  void on_dropped_in_flight(std::int64_t wire_bytes) {
    dropped_msgs_ += 1;
    dropped_bytes_ += wire_bytes;
  }

  struct Counter {
    std::uint64_t msgs = 0;
    std::int64_t bytes = 0;
  };

  [[nodiscard]] Counter sent(MsgClass cls) const {
    return sent_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] Counter offered(MsgClass cls) const {
    return offered_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::int64_t total_offered_bytes() const {
    std::int64_t total = 0;
    for (const auto& c : offered_) total += c.bytes;
    return total;
  }
  [[nodiscard]] Counter received(MsgClass cls) const {
    return recv_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::int64_t total_sent_bytes() const {
    std::int64_t total = 0;
    for (const auto& c : sent_) total += c.bytes;
    return total;
  }
  [[nodiscard]] std::int64_t total_received_bytes() const {
    std::int64_t total = 0;
    for (const auto& c : recv_) total += c.bytes;
    return total;
  }
  [[nodiscard]] std::uint64_t dropped_msgs() const { return dropped_msgs_; }

  // Mean upload rate over [0, duration] as a fraction of `capacity_bps`.
  [[nodiscard]] double usage_fraction(sim::SimTime duration, std::int64_t capacity_bps) const;

 private:
  static constexpr std::size_t kClasses = static_cast<std::size_t>(MsgClass::kCount_);
  std::array<Counter, kClasses> offered_{};
  std::array<Counter, kClasses> sent_{};
  std::array<Counter, kClasses> recv_{};
  std::uint64_t dropped_msgs_ = 0;
  std::int64_t dropped_bytes_ = 0;
};

}  // namespace hg::net
