// The simulated datagram network connecting all nodes.
//
// send() pushes a datagram through the sender's upload link (rate limiter),
// then applies the loss model and the latency model, and finally delivers to
// the destination's receive callback — unless either endpoint has crashed.
// Downlinks are unconstrained, matching the paper ("download capabilities
// are much higher than upload ones"; only upload is capped).
//
// Storage is sharded struct-of-arrays: nodes live in fixed-capacity shards
// of parallel vectors (alive flags, meters, upload links, receive hooks)
// rather than one heap Entry per node. Registering node 100000 never moves
// node 0 (UploadLink schedules events against its own address, so element
// addresses must be stable), there is no per-node unique_ptr hop on the
// delivery hot path, and each per-field array stays dense — the alive check
// and meter bump of a delivery touch two small arrays instead of a scattered
// 100-byte Entry.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/datagram.hpp"
#include "net/latency.hpp"
#include "net/loss.hpp"
#include "net/traffic_meter.hpp"
#include "net/upload_link.hpp"
#include "sim/simulator.hpp"

namespace hg::net {

using ReceiveFn = std::function<void(const Datagram&)>;

struct FabricConfig {
  QueueDiscipline discipline = QueueDiscipline::kFifo;
};

class NetworkFabric {
 public:
  NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                std::unique_ptr<LossModel> loss, FabricConfig config = {});

  // Nodes must be registered with consecutive ids starting at 0. The
  // contract is enforced: registering out of order aborts.
  void register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive);

  // Sends `bytes` (already-encoded message) from src to dst. `phantom_bytes`
  // adds wire bytes the buffer does not store (virtual payloads).
  void send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes,
            std::int64_t phantom_bytes = 0);

  // Crash-stop: the node neither sends nor receives from now on.
  void kill(NodeId id);
  [[nodiscard]] bool alive(NodeId id) const {
    return shard(id).alive[index_in_shard(id)] != 0;
  }

  void set_capacity(NodeId id, BitRate capacity);
  [[nodiscard]] BitRate capacity(NodeId id) const { return link(id).capacity(); }

  [[nodiscard]] const TrafficMeter& meter(NodeId id) const {
    return shard(id).meters[index_in_shard(id)];
  }
  [[nodiscard]] const UploadLink& link(NodeId id) const {
    return shard(id).links[index_in_shard(id)];
  }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  [[nodiscard]] std::uint64_t datagrams_lost() const { return lost_; }
  [[nodiscard]] std::uint64_t datagrams_delivered() const { return delivered_; }

  // Nodes per shard. Shards are address-stable: every per-node vector inside
  // a shard is reserved to this capacity up front and never reallocates.
  static constexpr std::size_t kShardSize = 4096;

 private:
  struct Shard {
    Shard();
    std::vector<UploadLink> links;       // by value: no per-node heap object
    std::vector<ReceiveFn> receive;
    std::vector<TrafficMeter> meters;
    std::vector<std::uint8_t> alive;     // hot: checked on every delivery
  };

  [[nodiscard]] Shard& shard(NodeId id) {
    HG_ASSERT(id.value() < node_count_);
    return *shards_[id.value() / kShardSize];
  }
  [[nodiscard]] const Shard& shard(NodeId id) const {
    HG_ASSERT(id.value() < node_count_);
    return *shards_[id.value() / kShardSize];
  }
  [[nodiscard]] static std::size_t index_in_shard(NodeId id) {
    return id.value() % kShardSize;
  }
  [[nodiscard]] UploadLink& link_mut(NodeId id) { return shard(id).links[index_in_shard(id)]; }

  void on_wire(Datagram&& d);

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<LossModel> loss_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t node_count_ = 0;
  Rng rng_;
  std::uint64_t lost_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace hg::net
