// The simulated datagram network connecting all nodes.
//
// send() pushes a datagram through the sender's upload link (rate limiter),
// then applies the loss model and the latency model, and finally delivers to
// the destination's receive callback — unless either endpoint has crashed.
// Downlinks are unconstrained, matching the paper ("download capabilities
// are much higher than upload ones"; only upload is capped).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/datagram.hpp"
#include "net/latency.hpp"
#include "net/loss.hpp"
#include "net/traffic_meter.hpp"
#include "net/upload_link.hpp"
#include "sim/simulator.hpp"

namespace hg::net {

using ReceiveFn = std::function<void(const Datagram&)>;

struct FabricConfig {
  QueueDiscipline discipline = QueueDiscipline::kFifo;
};

class NetworkFabric {
 public:
  NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                std::unique_ptr<LossModel> loss, FabricConfig config = {});

  // Nodes must be registered with consecutive ids starting at 0. The
  // contract is enforced: registering out of order aborts.
  void register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive);

  // Sends `bytes` (already-encoded message) from src to dst.
  void send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes);

  // Crash-stop: the node neither sends nor receives from now on.
  void kill(NodeId id);
  [[nodiscard]] bool alive(NodeId id) const { return entry(id).alive; }

  void set_capacity(NodeId id, BitRate capacity);
  [[nodiscard]] BitRate capacity(NodeId id) const { return entry(id).link->capacity(); }

  [[nodiscard]] const TrafficMeter& meter(NodeId id) const { return entry(id).meter; }
  [[nodiscard]] const UploadLink& link(NodeId id) const { return *entry(id).link; }
  [[nodiscard]] std::size_t node_count() const { return entries_.size(); }

  [[nodiscard]] std::uint64_t datagrams_lost() const { return lost_; }
  [[nodiscard]] std::uint64_t datagrams_delivered() const { return delivered_; }

 private:
  struct Entry {
    std::unique_ptr<UploadLink> link;
    ReceiveFn receive;
    TrafficMeter meter;
    bool alive = true;
  };

  [[nodiscard]] Entry& entry(NodeId id) {
    HG_ASSERT(id.value() < entries_.size());
    return entries_[id.value()];
  }
  [[nodiscard]] const Entry& entry(NodeId id) const {
    HG_ASSERT(id.value() < entries_.size());
    return entries_[id.value()];
  }

  void on_wire(Datagram&& d);

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<LossModel> loss_;
  FabricConfig config_;
  std::vector<Entry> entries_;
  Rng rng_;
  std::uint64_t lost_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace hg::net
