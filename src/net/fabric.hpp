// The simulated datagram network connecting all nodes.
//
// send() pushes a datagram through the sender's upload link (rate limiter),
// then applies the loss model and the latency model, and finally delivers to
// the destination's receive callback — unless either endpoint has crashed.
// Downlinks are unconstrained, matching the paper ("download capabilities
// are much higher than upload ones"; only upload is capped).
//
// Storage is sharded struct-of-arrays: nodes live in fixed-capacity shards
// of parallel vectors (alive flags, meters, upload links, receive hooks)
// rather than one heap Entry per node. Registering node 100000 never moves
// node 0 (UploadLink schedules events against its own address, so element
// addresses must be stable), there is no per-node unique_ptr hop on the
// delivery hot path, and each per-field array stays dense — the alive check
// and meter bump of a delivery touch two small arrays instead of a scattered
// 100-byte Entry.
//
// Two execution modes share this class:
//  * sequential — one Simulator drives everything (the classic engine). A
//    single-partition ShardedEngine uses this path too: one partition means
//    every send is local, so the shared-stream sequential semantics apply
//    unchanged and results are bit-identical to the sequential engine.
//  * sharded (P >= 2) — a sim::ShardedEngine drives per-partition
//    Simulators. Loss and latency then draw from *per-sender-node* streams
//    (seeded from the run seed and the node id alone), send-order tiebreaks
//    count per sender, and same-time deliveries are keyed by the tiebreak:
//    every random draw and every event ordering becomes a function of the
//    run seed and node ids — never of the partition layout — so any
//    partition count or placement produces bit-identical results.
//
//    Intra-partition sends go straight to the local event queue;
//    cross-partition sends are packed into per-(source, destination)
//    partition pair blocks: the payload is memcpy'd into a pooled segment
//    (the original buffer recycles immediately instead of pinning until the
//    barrier) and a fixed-size record carries (arrival, tiebreak, src, dst,
//    segment offset, length, phantom bytes, class). As the engine's
//    PartitionBridge the fabric exchanges blocks at every epoch barrier:
//    the importer copies each segment wholesale into its own thread-local
//    pool (one memcpy per <=256 KiB block instead of one allocation per
//    message), sorts records by (arrival, tiebreak, source partition, send
//    order), and schedules zero-copy slices of its segment copies.
//    FabricConfig::ExchangeMode::kDeepCopy retains the per-message deep-copy
//    import (same determinism machinery, same results) as a benchmark
//    baseline.
//
//    Sends to already-crashed destinations are filtered at the sender —
//    *after* the loss/latency draws, so stream consumption never depends on
//    destination liveness (alive flags only change at barriers, making the
//    concurrent reads safe). Crash-stop means a dead destination can never
//    deliver, so filtering is invisible to every counter and meter.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/datagram.hpp"
#include "net/latency.hpp"
#include "net/loss.hpp"
#include "net/traffic_meter.hpp"
#include "net/upload_link.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"

namespace hg::net {

using ReceiveFn = std::function<void(const Datagram&)>;

struct FabricConfig {
  // Cross-partition import strategy (sharded mode only; results identical):
  // kBatched packs pooled segment blocks per partition pair, kDeepCopy
  // copies every message individually (the pre-pooling baseline, kept for
  // benchmark comparison).
  enum class ExchangeMode : std::uint8_t { kBatched, kDeepCopy };

  QueueDiscipline discipline = QueueDiscipline::kFifo;
  ExchangeMode exchange = ExchangeMode::kBatched;
};

class NetworkFabric final : public sim::PartitionBridge {
 public:
  NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                std::unique_ptr<LossModel> loss, FabricConfig config = {});

  // Sharded mode: registers itself as `engine`'s PartitionBridge and routes
  // each node's traffic through its partition's Simulator. The latency
  // model's min_delay() must be >= the engine's epoch width.
  NetworkFabric(sim::ShardedEngine& engine, std::unique_ptr<LatencyModel> latency,
                std::unique_ptr<LossModel> loss, FabricConfig config = {});

  // Nodes must be registered with consecutive ids starting at 0. The
  // contract is enforced: registering out of order aborts.
  void register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive);

  // Sends `bytes` (already-encoded message) from src to dst. `phantom_bytes`
  // adds wire bytes the buffer does not store (virtual payloads).
  void send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes,
            std::int64_t phantom_bytes = 0);

  // Crash-stop: the node neither sends nor receives from now on. In sharded
  // mode this must run from a barrier control task (workers quiescent) —
  // alive flags are read lock-free across partitions during epochs, so a
  // mid-epoch kill would be a data race. Enforced: killing while a parallel
  // phase runs aborts (ShardedEngine::quiescent).
  void kill(NodeId id);
  [[nodiscard]] bool alive(NodeId id) const {
    return shard(id).alive[index_in_shard(id)] != 0;
  }

  void set_capacity(NodeId id, BitRate capacity);
  [[nodiscard]] BitRate capacity(NodeId id) const { return link(id).capacity(); }

  [[nodiscard]] const TrafficMeter& meter(NodeId id) const {
    return shard(id).meters[index_in_shard(id)];
  }
  [[nodiscard]] const UploadLink& link(NodeId id) const {
    return shard(id).links[index_in_shard(id)];
  }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  [[nodiscard]] std::uint64_t datagrams_lost() const;
  [[nodiscard]] std::uint64_t datagrams_delivered() const;

  // Sharded-mode traffic accounting (all zero for sequential / P == 1).
  // Counts are post-loss; `filtered_dead` are sends to already-crashed
  // destinations dropped at the sender. All are functions of the run seed —
  // identical at every worker count; the local/cross split (and therefore
  // the exchange byte volume) depends on the partition layout by definition.
  struct SuperstepCounters {
    std::uint64_t local_datagrams = 0;   // delivered within the sender's partition
    std::uint64_t xpart_datagrams = 0;   // crossed a partition boundary
    std::uint64_t filtered_dead = 0;     // destination already crashed at send
    std::uint64_t xpart_exchange_bytes = 0;  // stored payload bytes exchanged
  };
  [[nodiscard]] SuperstepCounters superstep_counters() const;

  // PartitionBridge (engine-driven; not for direct use).
  void begin_epoch(std::uint32_t partition) override;
  void exchange(std::uint32_t partition) override;

  // Nodes per shard. Shards are address-stable: every per-node vector inside
  // a shard is reserved to this capacity up front and never reallocates.
  static constexpr std::size_t kShardSize = 4096;

  // Pooled pack segment size for batched exchange. Matches the pool's top
  // size class so a full segment recycles through a free list; an oversized
  // message gets a dedicated segment of its exact length.
  static constexpr std::size_t kPackSegmentBytes = BufferPool::kMaxClassBytes;

 private:
  struct Shard {
    Shard();
    std::vector<UploadLink> links;       // by value: no per-node heap object
    std::vector<ReceiveFn> receive;
    std::vector<TrafficMeter> meters;
    std::vector<std::uint8_t> alive;     // hot: checked on every delivery
    // Sharded P >= 2 only: per-sender loss/latency stream and send-order
    // counter. Seeded from (run seed, node id) — partition-layout-invariant.
    std::vector<Rng> rngs;
    std::vector<std::uint64_t> xmit_seq;
  };

  // A cross-partition datagram parked until the next epoch barrier
  // (kDeepCopy exchange mode).
  struct OutMsg {
    Datagram d;
    sim::SimTime arrive;
    std::uint64_t tiebreak;      // seed-derived; independent of worker count
    std::uint32_t src_partition;
    std::uint32_t dst_partition;
  };

  // Batched exchange: one record per packed cross-partition datagram.
  struct PackRec {
    sim::SimTime arrive;
    std::uint64_t tiebreak;
    NodeId src;
    NodeId dst;
    std::uint32_t seg;           // index into the block's segment list
    std::uint32_t off;           // offset within that segment
    std::uint32_t len;           // stored payload bytes
    std::int64_t phantom;
    MsgClass cls;
  };

  // A pooled segment being filled by the sender. `fill` aliases the chunk's
  // payload (sole owner until the barrier seals it); `ref` recycles the
  // chunk on the sender's thread when the block clears next epoch.
  struct PackSeg {
    BufferRef ref;
    std::uint8_t* fill = nullptr;
    std::uint32_t capacity = 0;
    std::uint32_t used = 0;
  };

  // Everything sender partition sp accumulates for destination partition dp
  // during one epoch.
  struct PackBlock {
    std::vector<PackRec> recs;
    std::vector<PackSeg> segs;
  };

  // Everything one partition touches while its worker runs an epoch. Loss,
  // latency jitter, counters, and the outboxes are partition-private, so no
  // state is shared between concurrently running partitions.
  struct Partition {
    Partition(sim::Simulator* s, Rng r) : sim(s), rng(std::move(r)) {}
    sim::Simulator* sim;
    Rng rng;  // P == 1 sequential-semantics stream (unused when P >= 2)
    std::uint64_t lost = 0;
    std::uint64_t delivered = 0;
    std::uint64_t local_datagrams = 0;
    std::uint64_t xpart_datagrams = 0;
    std::uint64_t filtered_dead = 0;
    std::uint64_t xpart_bytes = 0;
    std::vector<PackBlock> blocks;  // indexed by destination partition
    std::vector<OutMsg> outbox;     // kDeepCopy mode
    // Exchange-side scratch (owned by this partition's worker): (source
    // partition, record/outbox index) pairs. Indices, not pointers — the
    // canonical import order must never rest on address comparisons (the
    // determinism linter's pointer-order rule enforces this tree-wide).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> import_order;
    std::vector<std::vector<BufferRef>> import_segs;  // per source partition
  };

  [[nodiscard]] Shard& shard(NodeId id) {
    HG_ASSERT(id.value() < node_count_);
    return *shards_[id.value() / kShardSize];
  }
  [[nodiscard]] const Shard& shard(NodeId id) const {
    HG_ASSERT(id.value() < node_count_);
    return *shards_[id.value() / kShardSize];
  }
  [[nodiscard]] static std::size_t index_in_shard(NodeId id) {
    return id.value() % kShardSize;
  }
  [[nodiscard]] UploadLink& link_mut(NodeId id) { return shard(id).links[index_in_shard(id)]; }
  [[nodiscard]] sim::Simulator& sim_for(NodeId id) {
    return engine_ != nullptr ? engine_->sim_of_node(id.value()) : *sim_;
  }
  // Per-sender streams are the P >= 2 determinism mechanism; with one
  // partition the shared-stream sequential semantics apply.
  [[nodiscard]] bool sender_streams() const {
    return engine_ != nullptr && parts_.size() > 1;
  }

  void on_wire(Datagram&& d);
  void deliver_parallel(const Datagram& d);
  void pack_outgoing(PackBlock& block, sim::SimTime arrive, std::uint64_t tiebreak,
                     const Datagram& d);
  void exchange_batched(std::uint32_t partition);
  void exchange_deep_copy(std::uint32_t partition);
  [[nodiscard]] std::uint64_t cross_tiebreak(NodeId src, NodeId dst,
                                             std::uint64_t seq) const;

  sim::Simulator* sim_ = nullptr;         // sequential mode only
  sim::ShardedEngine* engine_ = nullptr;  // sharded mode only
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<LossModel> loss_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t node_count_ = 0;
  Rng rng_;                // sequential / P == 1: the single loss+latency stream
  std::uint64_t lost_ = 0;       // sequential / P == 1 counters
  std::uint64_t delivered_ = 0;
  std::vector<Partition> parts_;  // sharded mode
  std::uint64_t tiebreak_salt_ = 0;
  std::uint64_t sender_seed_base_ = 0;  // roots the per-sender streams
};

}  // namespace hg::net
