// The simulated datagram network connecting all nodes.
//
// send() pushes a datagram through the sender's upload link (rate limiter),
// then applies the loss model and the latency model, and finally delivers to
// the destination's receive callback — unless either endpoint has crashed.
// Downlinks are unconstrained, matching the paper ("download capabilities
// are much higher than upload ones"; only upload is capped).
//
// Storage is sharded struct-of-arrays: nodes live in fixed-capacity shards
// of parallel vectors (alive flags, meters, upload links, receive hooks)
// rather than one heap Entry per node. Registering node 100000 never moves
// node 0 (UploadLink schedules events against its own address, so element
// addresses must be stable), there is no per-node unique_ptr hop on the
// delivery hot path, and each per-field array stays dense — the alive check
// and meter bump of a delivery touch two small arrays instead of a scattered
// 100-byte Entry.
//
// Two execution modes share this class:
//  * sequential — one Simulator drives everything (the classic engine);
//  * sharded — a sim::ShardedEngine drives per-partition Simulators. The
//    fabric then routes intra-partition sends to the local event queue and
//    buffers cross-partition sends in per-partition outboxes; as the
//    engine's PartitionBridge it exchanges those at every epoch barrier,
//    ordering imports by (arrival, seed-derived tiebreak, source partition,
//    send order) so results are identical for any worker count. Loss and
//    latency draw from per-partition RNG streams, and per-partition
//    lost/delivered counters are summed (deterministically) on read.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/datagram.hpp"
#include "net/latency.hpp"
#include "net/loss.hpp"
#include "net/traffic_meter.hpp"
#include "net/upload_link.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"

namespace hg::net {

using ReceiveFn = std::function<void(const Datagram&)>;

struct FabricConfig {
  QueueDiscipline discipline = QueueDiscipline::kFifo;
};

class NetworkFabric final : public sim::PartitionBridge {
 public:
  NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                std::unique_ptr<LossModel> loss, FabricConfig config = {});

  // Sharded mode: registers itself as `engine`'s PartitionBridge and routes
  // each node's traffic through its partition's Simulator. The latency
  // model's min_delay() must be >= the engine's epoch width.
  NetworkFabric(sim::ShardedEngine& engine, std::unique_ptr<LatencyModel> latency,
                std::unique_ptr<LossModel> loss, FabricConfig config = {});

  // Nodes must be registered with consecutive ids starting at 0. The
  // contract is enforced: registering out of order aborts.
  void register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive);

  // Sends `bytes` (already-encoded message) from src to dst. `phantom_bytes`
  // adds wire bytes the buffer does not store (virtual payloads).
  void send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes,
            std::int64_t phantom_bytes = 0);

  // Crash-stop: the node neither sends nor receives from now on. In sharded
  // mode this must run from a barrier control task (workers quiescent).
  void kill(NodeId id);
  [[nodiscard]] bool alive(NodeId id) const {
    return shard(id).alive[index_in_shard(id)] != 0;
  }

  void set_capacity(NodeId id, BitRate capacity);
  [[nodiscard]] BitRate capacity(NodeId id) const { return link(id).capacity(); }

  [[nodiscard]] const TrafficMeter& meter(NodeId id) const {
    return shard(id).meters[index_in_shard(id)];
  }
  [[nodiscard]] const UploadLink& link(NodeId id) const {
    return shard(id).links[index_in_shard(id)];
  }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  [[nodiscard]] std::uint64_t datagrams_lost() const;
  [[nodiscard]] std::uint64_t datagrams_delivered() const;

  // PartitionBridge (engine-driven; not for direct use).
  void begin_epoch(std::uint32_t partition) override;
  void exchange(std::uint32_t partition) override;

  // Nodes per shard. Shards are address-stable: every per-node vector inside
  // a shard is reserved to this capacity up front and never reallocates.
  static constexpr std::size_t kShardSize = 4096;

 private:
  struct Shard {
    Shard();
    std::vector<UploadLink> links;       // by value: no per-node heap object
    std::vector<ReceiveFn> receive;
    std::vector<TrafficMeter> meters;
    std::vector<std::uint8_t> alive;     // hot: checked on every delivery
  };

  // A cross-partition datagram parked until the next epoch barrier.
  struct OutMsg {
    Datagram d;
    sim::SimTime arrive;
    std::uint64_t tiebreak;      // seed-derived; independent of worker count
    std::uint32_t src_partition;
    std::uint32_t dst_partition;
  };

  // Everything one partition touches while its worker runs an epoch. Loss,
  // latency jitter, counters, and the outbox are partition-private, so no
  // state is shared between concurrently running partitions.
  struct Partition {
    Partition(sim::Simulator* s, Rng r) : sim(s), rng(std::move(r)) {}
    sim::Simulator* sim;
    Rng rng;
    std::uint64_t lost = 0;
    std::uint64_t delivered = 0;
    std::vector<OutMsg> outbox;
    std::vector<const OutMsg*> import_scratch;
  };

  [[nodiscard]] Shard& shard(NodeId id) {
    HG_ASSERT(id.value() < node_count_);
    return *shards_[id.value() / kShardSize];
  }
  [[nodiscard]] const Shard& shard(NodeId id) const {
    HG_ASSERT(id.value() < node_count_);
    return *shards_[id.value() / kShardSize];
  }
  [[nodiscard]] static std::size_t index_in_shard(NodeId id) {
    return id.value() % kShardSize;
  }
  [[nodiscard]] UploadLink& link_mut(NodeId id) { return shard(id).links[index_in_shard(id)]; }
  [[nodiscard]] sim::Simulator& sim_for(NodeId id) {
    return engine_ != nullptr ? engine_->sim_of_node(id.value()) : *sim_;
  }

  void on_wire(Datagram&& d);
  void deliver_parallel(const Datagram& d);
  [[nodiscard]] std::uint64_t cross_tiebreak(NodeId src, NodeId dst,
                                             std::uint64_t seq) const;

  sim::Simulator* sim_ = nullptr;         // sequential mode only
  sim::ShardedEngine* engine_ = nullptr;  // sharded mode only
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<LossModel> loss_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t node_count_ = 0;
  Rng rng_;                // sequential mode: the single loss+latency stream
  std::uint64_t lost_ = 0;       // sequential mode counters
  std::uint64_t delivered_ = 0;
  std::vector<Partition> parts_;  // sharded mode
  std::uint64_t tiebreak_salt_ = 0;
};

}  // namespace hg::net
