// serde is header-only; this translation unit exists so the library has a
// stable archive member and the header gets compiled standalone at least once.
#include "net/serde.hpp"

namespace hg::net {

static_assert(sizeof(ByteWriter) > 0);
static_assert(sizeof(ByteReader) > 0);

}  // namespace hg::net
