// One-way network latency models.
//
// The experiment default (PlanetLabLatency) draws a stable per-pair base
// delay from a log-normal distribution (wide-area RTT spreads are heavy
// tailed) plus small per-packet jitter — a standard abstraction of the
// PlanetLab testbed the paper ran on.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace hg::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  // One-way delay for a datagram src -> dst sent now.
  [[nodiscard]] virtual sim::SimTime sample(NodeId src, NodeId dst, Rng& rng) = 0;
};

// Fixed delay for every packet (unit tests, analytical checks).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(sim::SimTime delay) : delay_(delay) {}
  sim::SimTime sample(NodeId, NodeId, Rng&) override { return delay_; }

 private:
  sim::SimTime delay_;
};

// Independent uniform delay per packet.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(sim::SimTime lo, sim::SimTime hi) : lo_(lo), hi_(hi) {}
  sim::SimTime sample(NodeId, NodeId, Rng& rng) override;

 private:
  sim::SimTime lo_;
  sim::SimTime hi_;
};

struct PlanetLabLatencyConfig {
  // exp(N(mu, sigma)) milliseconds, clamped to [min, max].
  double log_mean_ms = 3.6;   // e^3.6 ~= 36 ms median one-way delay
  double log_sigma = 0.55;
  double min_ms = 3.0;
  double max_ms = 400.0;
  double jitter_max_ms = 5.0;  // uniform [0, jitter) added per packet
};

class PlanetLabLatency final : public LatencyModel {
 public:
  PlanetLabLatency(PlanetLabLatencyConfig cfg, Rng rng);
  sim::SimTime sample(NodeId src, NodeId dst, Rng& rng) override;

 private:
  [[nodiscard]] sim::SimTime base_for(NodeId src, NodeId dst);

  PlanetLabLatencyConfig cfg_;
  Rng pair_rng_;  // draws stable per-pair bases, keyed deterministically
  std::unordered_map<std::uint64_t, sim::SimTime> base_;
};

}  // namespace hg::net
