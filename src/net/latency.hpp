// One-way network latency models.
//
// The experiment default (PlanetLabLatency) draws a stable per-pair base
// delay from a log-normal distribution (wide-area RTT spreads are heavy
// tailed) plus small per-packet jitter — a standard abstraction of the
// PlanetLab testbed the paper ran on.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace hg::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  // One-way delay for a datagram src -> dst sent now.
  [[nodiscard]] virtual sim::SimTime sample(NodeId src, NodeId dst, Rng& rng) = 0;
  // A hard lower bound on sample(): the sharded engine uses it as the
  // superstep width (a cross-partition message sent in epoch k must not
  // arrive before epoch k+1 starts). Zero (the conservative default)
  // disables intra-run parallelism for the model.
  [[nodiscard]] virtual sim::SimTime min_delay() const { return sim::SimTime::zero(); }
};

// Fixed delay for every packet (unit tests, analytical checks).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(sim::SimTime delay) : delay_(delay) {}
  sim::SimTime sample(NodeId, NodeId, Rng&) override { return delay_; }
  [[nodiscard]] sim::SimTime min_delay() const override { return delay_; }

 private:
  sim::SimTime delay_;
};

// Independent uniform delay per packet.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(sim::SimTime lo, sim::SimTime hi) : lo_(lo), hi_(hi) {}
  sim::SimTime sample(NodeId, NodeId, Rng& rng) override;
  [[nodiscard]] sim::SimTime min_delay() const override { return lo_; }

 private:
  sim::SimTime lo_;
  sim::SimTime hi_;
};

struct PlanetLabLatencyConfig {
  // exp(N(mu, sigma)) milliseconds, clamped to [min, max].
  double log_mean_ms = 3.6;   // e^3.6 ~= 36 ms median one-way delay
  double log_sigma = 0.55;
  double min_ms = 3.0;
  double max_ms = 400.0;
  double jitter_max_ms = 5.0;  // uniform [0, jitter) added per packet
};

// The per-pair base is a pure function of (root rng, pair key): it is
// re-derived on every sample instead of memoized. A 100k-node run touches
// O(N * fanout * rounds) distinct pairs — a per-pair cache approaches N^2
// entries (gigabytes) while the recomputation is a handful of arithmetic
// ops, so the stateless form is both smaller and not measurably slower.
class PlanetLabLatency final : public LatencyModel {
 public:
  PlanetLabLatency(PlanetLabLatencyConfig cfg, Rng rng);
  sim::SimTime sample(NodeId src, NodeId dst, Rng& rng) override;
  // Bases are clamped to min_ms and jitter is non-negative.
  [[nodiscard]] sim::SimTime min_delay() const override {
    return sim::SimTime::us(static_cast<std::int64_t>(cfg_.min_ms * 1000.0));
  }

 private:
  [[nodiscard]] sim::SimTime base_for(NodeId src, NodeId dst) const;

  PlanetLabLatencyConfig cfg_;
  Rng pair_rng_;  // root of the per-pair base streams, keyed deterministically
};

}  // namespace hg::net
