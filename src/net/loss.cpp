#include "net/loss.hpp"

namespace hg::net {

bool GilbertElliottLoss::lost(NodeId src, NodeId, Rng& rng) {
  const std::size_t idx = src.value();
  if (idx >= bad_.size()) bad_.resize(idx + 1, 0);
  std::uint8_t& state = bad_[idx];
  if (state == 0) {
    if (rng.chance(cfg_.p_good_to_bad)) state = 1;
  } else {
    if (rng.chance(cfg_.p_bad_to_good)) state = 0;
  }
  return rng.chance(state == 0 ? cfg_.loss_good : cfg_.loss_bad);
}

}  // namespace hg::net
