// The unit of transport: an unreliable datagram, as UDP provides.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "net/buffer.hpp"

namespace hg::net {

// Per-datagram IPv4 (20 B) + UDP (8 B) header overhead added to every wire
// size; the paper's rate limiter operated on real UDP datagrams.
inline constexpr std::int64_t kUdpIpOverheadBytes = 28;

// Traffic classes, used for per-class bandwidth accounting (Fig. 4) and for
// the priority-queue ablation.
enum class MsgClass : std::uint8_t {
  kPropose = 0,
  kRequest,
  kServe,
  kAggregation,
  kMembership,
  kTree,
  kOther,
  kCount_,
};

[[nodiscard]] const char* to_string(MsgClass c);

struct Datagram {
  NodeId src;
  NodeId dst;
  MsgClass cls = MsgClass::kOther;
  // Encoded message (header + body). A pooled, refcounted slice: a propose
  // fanned out to f targets is encoded once, and a batched serve round
  // shares one buffer across all of its per-event datagrams.
  BufferRef bytes;
  // Bytes this datagram represents on the wire beyond what `bytes` stores —
  // the payload of a virtual-payload serve (large-scale runs). Phantom bytes
  // count toward every timing and accounting path (upload serialization,
  // traffic meters), so a virtual run's clock is bit-identical to a real one.
  std::int64_t phantom_bytes = 0;

  [[nodiscard]] std::int64_t wire_bytes() const {
    return static_cast<std::int64_t>(bytes.size()) + phantom_bytes + kUdpIpOverheadBytes;
  }
};

}  // namespace hg::net
