#include "net/fabric.hpp"

#include "common/assert.hpp"

namespace hg::net {

NetworkFabric::NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                             std::unique_ptr<LossModel> loss, FabricConfig config)
    : sim_(simulator),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      config_(config),
      rng_(simulator.make_rng(/*stream_tag=*/0x4e455446)) {  // "NETF"
  HG_ASSERT(latency_ != nullptr);
  HG_ASSERT(loss_ != nullptr);
}

void NetworkFabric::register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive) {
  HG_ASSERT_MSG(id.value() == entries_.size(),
                "register nodes with consecutive ids from 0 (entry() indexes by id)");
  Entry e;
  e.receive = std::move(receive);
  e.link = std::make_unique<UploadLink>(sim_, upload_capacity, config_.discipline,
                                        [this](Datagram&& d) { on_wire(std::move(d)); });
  entries_.push_back(std::move(e));
}

void NetworkFabric::send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes) {
  HG_ASSERT_MSG(static_cast<bool>(bytes), "send requires an encoded message");
  Entry& s = entry(src);
  if (!s.alive) return;
  HG_ASSERT_MSG(src != dst, "self-sends indicate a peer-selection bug");
  Datagram d{src, dst, cls, std::move(bytes)};
  s.meter.on_offered(cls, d.wire_bytes());
  s.link->enqueue(std::move(d));
}

void NetworkFabric::on_wire(Datagram&& d) {
  // The datagram has fully left the sender: this is what "used upload
  // bandwidth" means (Fig. 4), loss or not.
  entry(d.src).meter.on_sent(d.cls, d.wire_bytes());
  // Loss is evaluated when the datagram leaves the sender.
  if (loss_->lost(d.src, d.dst, rng_)) {
    ++lost_;
    entry(d.src).meter.on_dropped_in_flight(d.wire_bytes());
    return;
  }
  const sim::SimTime delay = latency_->sample(d.src, d.dst, rng_);
  sim_.after_fire_and_forget(delay, [this, d = std::move(d)]() {
    Entry& r = entry(d.dst);
    if (!r.alive) return;  // crashed while in flight
    ++delivered_;
    r.meter.on_received(d.cls, d.wire_bytes());
    if (r.receive) r.receive(d);
  });
}

void NetworkFabric::kill(NodeId id) {
  Entry& e = entry(id);
  e.alive = false;
  e.link->shutdown();
  e.receive = nullptr;
}

void NetworkFabric::set_capacity(NodeId id, BitRate capacity) {
  entry(id).link->set_capacity(capacity);
}

}  // namespace hg::net
