#include "net/fabric.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hg::net {

namespace {
constexpr std::uint64_t kFabricStream = 0x4e455446;    // "NETF"
constexpr std::uint64_t kTiebreakStream = 0x54424b53;  // "TBKS"
}  // namespace

NetworkFabric::NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                             std::unique_ptr<LossModel> loss, FabricConfig config)
    : sim_(&simulator),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      config_(config),
      rng_(simulator.make_rng(kFabricStream)) {
  HG_ASSERT(latency_ != nullptr);
  HG_ASSERT(loss_ != nullptr);
}

NetworkFabric::NetworkFabric(sim::ShardedEngine& engine, std::unique_ptr<LatencyModel> latency,
                             std::unique_ptr<LossModel> loss, FabricConfig config)
    : engine_(&engine),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      config_(config),
      rng_(engine.make_rng(kFabricStream)) {
  HG_ASSERT(latency_ != nullptr);
  HG_ASSERT(loss_ != nullptr);
  HG_ASSERT_MSG(engine.partitions() == 1 || latency_->min_delay() >= engine.epoch(),
                "latency floor below the engine's epoch width breaks the superstep "
                "delivery invariant");
  // Loss is evaluated concurrently across sender partitions: per-sender
  // state must exist up front instead of growing lazily under a race.
  loss_->prepare(engine.node_count());
  parts_.reserve(engine.partitions());
  for (std::uint32_t p = 0; p < engine.partitions(); ++p) {
    parts_.emplace_back(&engine.sim_of(p), engine.sim_of(p).make_rng(kFabricStream));
  }
  tiebreak_salt_ = engine.make_rng(kTiebreakStream).next();
  engine.set_bridge(this);
}

NetworkFabric::Shard::Shard() {
  // Reserve up front: UploadLink addresses must never move (pending transmit
  // events point at them), and SoA vectors must not reallocate mid-run.
  links.reserve(kShardSize);
  receive.reserve(kShardSize);
  meters.reserve(kShardSize);
  alive.reserve(kShardSize);
}

void NetworkFabric::register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive) {
  HG_ASSERT_MSG(id.value() == node_count_,
                "register nodes with consecutive ids from 0 (shards index by id)");
  if (id.value() / kShardSize == shards_.size()) shards_.push_back(std::make_unique<Shard>());
  Shard& s = *shards_.back();
  // Node_count_ is bumped after sim_for (it asserts against the engine's
  // node table, which already covers this id).
  s.links.emplace_back(sim_for(id), upload_capacity, config_.discipline,
                       [this](Datagram&& d) { on_wire(std::move(d)); });
  s.receive.push_back(std::move(receive));
  s.meters.emplace_back();
  s.alive.push_back(1);
  ++node_count_;
}

void NetworkFabric::send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes,
                         std::int64_t phantom_bytes) {
  HG_ASSERT_MSG(static_cast<bool>(bytes), "send requires an encoded message");
  HG_ASSERT(phantom_bytes >= 0);
  Shard& s = shard(src);
  const std::size_t i = index_in_shard(src);
  if (s.alive[i] == 0) return;
  HG_ASSERT_MSG(src != dst, "self-sends indicate a peer-selection bug");
  Datagram d{src, dst, cls, std::move(bytes), phantom_bytes};
  s.meters[i].on_offered(cls, d.wire_bytes());
  s.links[i].enqueue(std::move(d));
}

std::uint64_t NetworkFabric::cross_tiebreak(NodeId src, NodeId dst, std::uint64_t seq) const {
  std::uint64_t state = tiebreak_salt_ ^ (static_cast<std::uint64_t>(src.value()) << 32) ^
                        static_cast<std::uint64_t>(dst.value()) ^
                        (seq * 0x2545f4914f6cdd1dull);
  return splitmix64(state);
}

void NetworkFabric::on_wire(Datagram&& d) {
  // The datagram has fully left the sender: this is what "used upload
  // bandwidth" means (Fig. 4), loss or not.
  shard(d.src).meters[index_in_shard(d.src)].on_sent(d.cls, d.wire_bytes());
  if (engine_ == nullptr) {
    // Sequential path (unchanged — bitwise stability of existing runs).
    // Loss is evaluated when the datagram leaves the sender.
    if (loss_->lost(d.src, d.dst, rng_)) {
      ++lost_;
      shard(d.src).meters[index_in_shard(d.src)].on_dropped_in_flight(d.wire_bytes());
      return;
    }
    const sim::SimTime delay = latency_->sample(d.src, d.dst, rng_);
    sim_->after_fire_and_forget(delay, [this, d = std::move(d)]() {
      Shard& r = shard(d.dst);
      const std::size_t i = index_in_shard(d.dst);
      if (r.alive[i] == 0) return;  // crashed while in flight
      ++delivered_;
      r.meters[i].on_received(d.cls, d.wire_bytes());
      if (r.receive[i]) r.receive[i](d);
    });
    return;
  }

  // Sharded path: this runs on the *sender's* partition (the upload link
  // schedules its transmit completions there), so loss/latency draws come
  // from the sender partition's private stream in deterministic local order.
  const std::uint32_t sp = engine_->partition_of(d.src.value());
  Partition& part = parts_[sp];
  if (loss_->lost(d.src, d.dst, part.rng)) {
    ++part.lost;
    shard(d.src).meters[index_in_shard(d.src)].on_dropped_in_flight(d.wire_bytes());
    return;
  }
  const sim::SimTime delay = latency_->sample(d.src, d.dst, part.rng);
  const std::uint32_t dp = engine_->partition_of(d.dst.value());
  if (dp == sp) {
    part.sim->after_fire_and_forget(delay,
                                    [this, d = std::move(d)]() { deliver_parallel(d); });
    return;
  }
  const sim::SimTime arrive = part.sim->now() + delay;
  const std::uint64_t tb = cross_tiebreak(d.src, d.dst, part.outbox.size());
  part.outbox.push_back(OutMsg{std::move(d), arrive, tb, sp, dp});
}

void NetworkFabric::deliver_parallel(const Datagram& d) {
  Shard& r = shard(d.dst);
  const std::size_t i = index_in_shard(d.dst);
  if (r.alive[i] == 0) return;  // crashed while in flight
  ++parts_[engine_->partition_of(d.dst.value())].delivered;
  r.meters[i].on_received(d.cls, d.wire_bytes());
  if (r.receive[i]) r.receive[i](d);
}

void NetworkFabric::begin_epoch(std::uint32_t partition) {
  // Release last epoch's cross-partition datagrams on the owning worker:
  // their BufferRefs recycle into this thread's pool (refcounts are
  // non-atomic, so only the allocating thread may drop them while the run
  // is hot). Importers deep-copied the bytes at the barrier.
  parts_[partition].outbox.clear();
}

void NetworkFabric::exchange(std::uint32_t partition) {
  Partition& dst = parts_[partition];
  dst.import_scratch.clear();
  for (const Partition& src : parts_) {
    for (const OutMsg& m : src.outbox) {
      if (m.dst_partition == partition) dst.import_scratch.push_back(&m);
    }
  }
  // Deterministic import order, independent of the worker count: arrival
  // time, then a seed-derived tiebreak, then source partition, then send
  // order (address order within one outbox is index order).
  std::sort(dst.import_scratch.begin(), dst.import_scratch.end(),
            [](const OutMsg* a, const OutMsg* b) {
              if (a->arrive != b->arrive) return a->arrive < b->arrive;
              if (a->tiebreak != b->tiebreak) return a->tiebreak < b->tiebreak;
              if (a->src_partition != b->src_partition) {
                return a->src_partition < b->src_partition;
              }
              return a < b;
            });
  for (const OutMsg* m : dst.import_scratch) {
    // Deep copy on the importing worker's thread: destination-held bytes
    // must belong to the destination's thread-local pool.
    Datagram copy{m->d.src, m->d.dst, m->d.cls, BufferRef::copy_of(m->d.bytes.bytes()),
                  m->d.phantom_bytes};
    dst.sim->at(m->arrive, [this, c = std::move(copy)]() { deliver_parallel(c); });
  }
  dst.import_scratch.clear();
}

std::uint64_t NetworkFabric::datagrams_lost() const {
  std::uint64_t total = lost_;
  for (const Partition& p : parts_) total += p.lost;
  return total;
}

std::uint64_t NetworkFabric::datagrams_delivered() const {
  std::uint64_t total = delivered_;
  for (const Partition& p : parts_) total += p.delivered;
  return total;
}

void NetworkFabric::kill(NodeId id) {
  Shard& s = shard(id);
  const std::size_t i = index_in_shard(id);
  s.alive[i] = 0;
  s.links[i].shutdown();
  s.receive[i] = nullptr;
}

void NetworkFabric::set_capacity(NodeId id, BitRate capacity) {
  link_mut(id).set_capacity(capacity);
}

}  // namespace hg::net
