#include "net/fabric.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace hg::net {

namespace {
constexpr std::uint64_t kFabricStream = 0x4e455446;    // "NETF"
constexpr std::uint64_t kTiebreakStream = 0x54424b53;  // "TBKS"
constexpr std::uint64_t kSenderStream = 0x534e4452;    // "SNDR"
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
}  // namespace

NetworkFabric::NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                             std::unique_ptr<LossModel> loss, FabricConfig config)
    : sim_(&simulator),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      config_(config),
      rng_(simulator.make_rng(kFabricStream)) {
  HG_ASSERT(latency_ != nullptr);
  HG_ASSERT(loss_ != nullptr);
}

NetworkFabric::NetworkFabric(sim::ShardedEngine& engine, std::unique_ptr<LatencyModel> latency,
                             std::unique_ptr<LossModel> loss, FabricConfig config)
    : engine_(&engine),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      config_(config),
      rng_(engine.make_rng(kFabricStream)) {
  HG_ASSERT(latency_ != nullptr);
  HG_ASSERT(loss_ != nullptr);
  HG_ASSERT_MSG(engine.partitions() == 1 || latency_->min_delay() >= engine.epoch(),
                "latency floor below the engine's epoch width breaks the superstep "
                "delivery invariant");
  // Loss is evaluated concurrently across sender partitions: per-sender
  // state must exist up front instead of growing lazily under a race.
  loss_->prepare(engine.node_count());
  parts_.reserve(engine.partitions());
  for (std::uint32_t p = 0; p < engine.partitions(); ++p) {
    parts_.emplace_back(&engine.sim_of(p), engine.sim_of(p).make_rng(kFabricStream));
    parts_.back().blocks.resize(engine.partitions());
    parts_.back().import_segs.resize(engine.partitions());
  }
  tiebreak_salt_ = engine.make_rng(kTiebreakStream).next();
  sender_seed_base_ = engine.make_rng(kSenderStream).next();
  engine.set_bridge(this);
}

NetworkFabric::Shard::Shard() {
  // Reserve up front: UploadLink addresses must never move (pending transmit
  // events point at them), and SoA vectors must not reallocate mid-run.
  links.reserve(kShardSize);
  receive.reserve(kShardSize);
  meters.reserve(kShardSize);
  alive.reserve(kShardSize);
  rngs.reserve(kShardSize);
  xmit_seq.reserve(kShardSize);
}

void NetworkFabric::register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive) {
  HG_ASSERT_MSG(id.value() == node_count_,
                "register nodes with consecutive ids from 0 (shards index by id)");
  if (id.value() / kShardSize == shards_.size()) shards_.push_back(std::make_unique<Shard>());
  Shard& s = *shards_.back();
  // Node_count_ is bumped after sim_for (it asserts against the engine's
  // node table, which already covers this id).
  s.links.emplace_back(sim_for(id), upload_capacity, config_.discipline,
                       [this](Datagram&& d) { on_wire(std::move(d)); });
  s.receive.push_back(std::move(receive));
  s.meters.emplace_back();
  s.alive.push_back(1);
  if (sender_streams()) {
    // One loss+latency stream per sender node, a pure function of (run seed,
    // node id): partition count and placement cannot perturb any draw.
    std::uint64_t state = sender_seed_base_ ^ (kGolden * (id.value() + 1));
    s.rngs.emplace_back(splitmix64(state));
    s.xmit_seq.push_back(0);
  }
  ++node_count_;
}

void NetworkFabric::send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes,
                         std::int64_t phantom_bytes) {
  HG_ASSERT_MSG(static_cast<bool>(bytes), "send requires an encoded message");
  HG_ASSERT(phantom_bytes >= 0);
  Shard& s = shard(src);
  const std::size_t i = index_in_shard(src);
  if (s.alive[i] == 0) return;
  HG_ASSERT_MSG(src != dst, "self-sends indicate a peer-selection bug");
  Datagram d{src, dst, cls, std::move(bytes), phantom_bytes};
  s.meters[i].on_offered(cls, d.wire_bytes());
  s.links[i].enqueue(std::move(d));
}

std::uint64_t NetworkFabric::cross_tiebreak(NodeId src, NodeId dst, std::uint64_t seq) const {
  std::uint64_t state = tiebreak_salt_ ^ (static_cast<std::uint64_t>(src.value()) << 32) ^
                        static_cast<std::uint64_t>(dst.value()) ^
                        (seq * 0x2545f4914f6cdd1dull);
  return splitmix64(state);
}

void NetworkFabric::on_wire(Datagram&& d) {
  // The datagram has fully left the sender: this is what "used upload
  // bandwidth" means (Fig. 4), loss or not.
  shard(d.src).meters[index_in_shard(d.src)].on_sent(d.cls, d.wire_bytes());
  if (!sender_streams()) {
    // Sequential semantics (also P == 1 sharded: everything is local, the
    // shared stream draws in event order — bitwise the sequential engine).
    // Loss is evaluated when the datagram leaves the sender.
    if (loss_->lost(d.src, d.dst, rng_)) {
      ++lost_;
      shard(d.src).meters[index_in_shard(d.src)].on_dropped_in_flight(d.wire_bytes());
      return;
    }
    const sim::SimTime delay = latency_->sample(d.src, d.dst, rng_);
    sim::Simulator& s = sim_ != nullptr ? *sim_ : *parts_[0].sim;
    s.after_fire_and_forget(delay, [this, d = std::move(d)]() {
      Shard& r = shard(d.dst);
      const std::size_t i = index_in_shard(d.dst);
      if (r.alive[i] == 0) return;  // crashed while in flight
      ++delivered_;
      r.meters[i].on_received(d.cls, d.wire_bytes());
      if (r.receive[i]) r.receive[i](d);
    });
    return;
  }

  // Sharded path (P >= 2): this runs on the *sender's* partition (the upload
  // link schedules its transmit completions there). Loss and latency draw
  // from the sender node's private stream, and the send sequence number
  // counts per sender — both functions of the run alone, so every partition
  // layout produces the same draws and the same delivery keys.
  const std::uint32_t sp = engine_->partition_of(d.src.value());
  Partition& part = parts_[sp];
  Shard& ss = shard(d.src);
  const std::size_t si = index_in_shard(d.src);
  const std::uint64_t seq = ss.xmit_seq[si]++;
  if (loss_->lost(d.src, d.dst, ss.rngs[si])) {
    ++part.lost;
    ss.meters[si].on_dropped_in_flight(d.wire_bytes());
    return;
  }
  const sim::SimTime delay = latency_->sample(d.src, d.dst, ss.rngs[si]);
  // Filter sends to already-crashed destinations *after* the draws (stream
  // consumption must not depend on liveness). Crash-stop: a destination dead
  // now is dead at delivery, so this drop is exactly the delivery-time drop
  // — no counter or meter ever sees such a datagram. Alive flags only change
  // at barriers, so the cross-partition read is race-free.
  if (shard(d.dst).alive[index_in_shard(d.dst)] == 0) {
    ++part.filtered_dead;
    return;
  }
  const std::uint64_t tb = cross_tiebreak(d.src, d.dst, seq);
  const std::uint32_t dp = engine_->partition_of(d.dst.value());
  if (dp == sp) {
    ++part.local_datagrams;
    // Keyed by the same tiebreak an exchange import would carry: same-time
    // arrivals at one node order identically whether the sender is co-located
    // or remote.
    part.sim->after_keyed_fire_and_forget(delay, tb,
                                          [this, d = std::move(d)]() { deliver_parallel(d); });
    return;
  }
  ++part.xpart_datagrams;
  part.xpart_bytes += d.bytes.size();
  const sim::SimTime arrive = part.sim->now() + delay;
  if (config_.exchange == FabricConfig::ExchangeMode::kBatched) {
    pack_outgoing(part.blocks[dp], arrive, tb, d);
    // `d` dies here: the original buffer recycles into this worker's pool
    // immediately instead of pinning until the barrier.
  } else {
    part.outbox.push_back(OutMsg{std::move(d), arrive, tb, sp, dp});
  }
}

void NetworkFabric::pack_outgoing(PackBlock& block, sim::SimTime arrive, std::uint64_t tiebreak,
                                  const Datagram& d) {
  const std::size_t n = d.bytes.size();
  if (block.segs.empty() || block.segs.back().used + n > block.segs.back().capacity) {
    const std::size_t cap = std::max(kPackSegmentBytes, n);
    detail::BufferCtl* ctl = BufferPool::local().acquire(cap);
    PackSeg seg;
    seg.fill = ctl->data();
    seg.capacity = static_cast<std::uint32_t>(cap);
    seg.ref = BufferRef::adopt(ctl, static_cast<std::uint32_t>(cap));
    block.segs.push_back(std::move(seg));
  }
  PackSeg& seg = block.segs.back();
  std::memcpy(seg.fill + seg.used, d.bytes.data(), n);
  block.recs.push_back(PackRec{arrive, tiebreak, d.src, d.dst,
                               static_cast<std::uint32_t>(block.segs.size() - 1), seg.used,
                               static_cast<std::uint32_t>(n), d.phantom_bytes, d.cls});
  seg.used += static_cast<std::uint32_t>(n);
}

void NetworkFabric::deliver_parallel(const Datagram& d) {
  Shard& r = shard(d.dst);
  const std::size_t i = index_in_shard(d.dst);
  if (r.alive[i] == 0) return;  // crashed while in flight
  ++parts_[engine_->partition_of(d.dst.value())].delivered;
  r.meters[i].on_received(d.cls, d.wire_bytes());
  if (r.receive[i]) r.receive[i](d);
}

void NetworkFabric::begin_epoch(std::uint32_t partition) {
  // Release last epoch's cross-partition datagrams on the owning worker:
  // their buffers recycle into this thread's pool (refcounts are non-atomic,
  // so only the allocating thread may drop them while the run is hot).
  // Importers copied the bytes at the barrier.
  Partition& p = parts_[partition];
  for (PackBlock& b : p.blocks) {
    b.recs.clear();
    b.segs.clear();
  }
  p.outbox.clear();
}

void NetworkFabric::exchange(std::uint32_t partition) {
  if (config_.exchange == FabricConfig::ExchangeMode::kBatched) {
    exchange_batched(partition);
  } else {
    exchange_deep_copy(partition);
  }
}

void NetworkFabric::exchange_batched(std::uint32_t partition) {
  Partition& dst = parts_[partition];
  dst.import_order.clear();
  // Copy every inbound segment wholesale into this worker's pool — one
  // memcpy + one pooled allocation per <=256 KiB block, not per message —
  // then schedule zero-copy slices of the copies. The sender's originals
  // stay untouched until it releases them in its next begin_epoch.
  for (std::uint32_t sp = 0; sp < parts_.size(); ++sp) {
    const PackBlock& block = parts_[sp].blocks[partition];
    std::vector<BufferRef>& segs = dst.import_segs[sp];
    segs.clear();
    for (const PackSeg& s : block.segs) {
      segs.push_back(BufferRef::copy_of({s.fill, static_cast<std::size_t>(s.used)}));
    }
    for (std::uint32_t i = 0; i < block.recs.size(); ++i) dst.import_order.emplace_back(sp, i);
  }
  // Deterministic import order, independent of the worker count: arrival
  // time, then the seed-derived tiebreak, then source partition, then send
  // order (record index within one source's block is send order).
  const auto rec = [&](const std::pair<std::uint32_t, std::uint32_t>& e) -> const PackRec& {
    return parts_[e.first].blocks[partition].recs[e.second];
  };
  std::sort(dst.import_order.begin(), dst.import_order.end(),
            [&rec](const auto& a, const auto& b) {
              const PackRec& ra = rec(a);
              const PackRec& rb = rec(b);
              if (ra.arrive != rb.arrive) return ra.arrive < rb.arrive;
              if (ra.tiebreak != rb.tiebreak) return ra.tiebreak < rb.tiebreak;
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  for (const auto& e : dst.import_order) {
    const PackRec& r = rec(e);
    Datagram d{r.src, r.dst, r.cls, dst.import_segs[e.first][r.seg].slice(r.off, r.len),
               r.phantom};
    dst.sim->at_keyed(r.arrive, r.tiebreak, [this, d = std::move(d)]() { deliver_parallel(d); });
  }
  dst.import_order.clear();
  // The scheduled slices pin the segment copies; the scratch refs can drop.
  for (std::vector<BufferRef>& segs : dst.import_segs) segs.clear();
}

void NetworkFabric::exchange_deep_copy(std::uint32_t partition) {
  Partition& dst = parts_[partition];
  dst.import_order.clear();
  for (std::uint32_t sp = 0; sp < parts_.size(); ++sp) {
    const std::vector<OutMsg>& outbox = parts_[sp].outbox;
    for (std::uint32_t i = 0; i < outbox.size(); ++i) {
      if (outbox[i].dst_partition == partition) dst.import_order.emplace_back(sp, i);
    }
  }
  // Same canonical order as the batched path: arrival, tiebreak, source
  // partition, send order (outbox index order is send order).
  const auto msg = [&](const std::pair<std::uint32_t, std::uint32_t>& e) -> const OutMsg& {
    return parts_[e.first].outbox[e.second];
  };
  std::sort(dst.import_order.begin(), dst.import_order.end(),
            [&msg](const auto& a, const auto& b) {
              const OutMsg& ma = msg(a);
              const OutMsg& mb = msg(b);
              if (ma.arrive != mb.arrive) return ma.arrive < mb.arrive;
              if (ma.tiebreak != mb.tiebreak) return ma.tiebreak < mb.tiebreak;
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  for (const auto& e : dst.import_order) {
    const OutMsg& m = msg(e);
    // Deep copy on the importing worker's thread: destination-held bytes
    // must belong to the destination's thread-local pool.
    Datagram copy{m.d.src, m.d.dst, m.d.cls, BufferRef::copy_of(m.d.bytes.bytes()),
                  m.d.phantom_bytes};
    dst.sim->at_keyed(m.arrive, m.tiebreak, [this, c = std::move(copy)]() { deliver_parallel(c); });
  }
  dst.import_order.clear();
}

std::uint64_t NetworkFabric::datagrams_lost() const {
  std::uint64_t total = lost_;
  for (const Partition& p : parts_) total += p.lost;
  return total;
}

std::uint64_t NetworkFabric::datagrams_delivered() const {
  std::uint64_t total = delivered_;
  for (const Partition& p : parts_) total += p.delivered;
  return total;
}

NetworkFabric::SuperstepCounters NetworkFabric::superstep_counters() const {
  SuperstepCounters c;
  for (const Partition& p : parts_) {
    c.local_datagrams += p.local_datagrams;
    c.xpart_datagrams += p.xpart_datagrams;
    c.filtered_dead += p.filtered_dead;
    c.xpart_exchange_bytes += p.xpart_bytes;
  }
  return c;
}

void NetworkFabric::kill(NodeId id) {
  // Alive flags are read lock-free by every partition during epochs; they may
  // only change while the workers are parked at a barrier (control tasks,
  // setup/teardown). A mid-epoch kill would be a data race AND a determinism
  // hole (delivery would depend on thread timing) — abort instead.
  HG_ASSERT_MSG(engine_ == nullptr || engine_->quiescent(),
                "NetworkFabric::kill outside a barrier: crash-stop must run from a "
                "control task (ShardedEngine::schedule_control), never from a "
                "worker-driven event");
  Shard& s = shard(id);
  const std::size_t i = index_in_shard(id);
  s.alive[i] = 0;
  s.links[i].shutdown();
  s.receive[i] = nullptr;
}

void NetworkFabric::set_capacity(NodeId id, BitRate capacity) {
  // Same discipline as kill(): the capacity feeds concurrent transmit-time
  // math on the owner's worker; reconfigure only between epochs.
  HG_ASSERT_MSG(engine_ == nullptr || engine_->quiescent(),
                "NetworkFabric::set_capacity outside a barrier: reconfigure links from "
                "a control task, never from a worker-driven event");
  link_mut(id).set_capacity(capacity);
}

}  // namespace hg::net
