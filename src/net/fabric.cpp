#include "net/fabric.hpp"

#include "common/assert.hpp"

namespace hg::net {

NetworkFabric::NetworkFabric(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                             std::unique_ptr<LossModel> loss, FabricConfig config)
    : sim_(simulator),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      config_(config),
      rng_(simulator.make_rng(/*stream_tag=*/0x4e455446)) {  // "NETF"
  HG_ASSERT(latency_ != nullptr);
  HG_ASSERT(loss_ != nullptr);
}

NetworkFabric::Shard::Shard() {
  // Reserve up front: UploadLink addresses must never move (pending transmit
  // events point at them), and SoA vectors must not reallocate mid-run.
  links.reserve(kShardSize);
  receive.reserve(kShardSize);
  meters.reserve(kShardSize);
  alive.reserve(kShardSize);
}

void NetworkFabric::register_node(NodeId id, BitRate upload_capacity, ReceiveFn receive) {
  HG_ASSERT_MSG(id.value() == node_count_,
                "register nodes with consecutive ids from 0 (shards index by id)");
  if (id.value() / kShardSize == shards_.size()) shards_.push_back(std::make_unique<Shard>());
  Shard& s = *shards_.back();
  s.links.emplace_back(sim_, upload_capacity, config_.discipline,
                       [this](Datagram&& d) { on_wire(std::move(d)); });
  s.receive.push_back(std::move(receive));
  s.meters.emplace_back();
  s.alive.push_back(1);
  ++node_count_;
}

void NetworkFabric::send(NodeId src, NodeId dst, MsgClass cls, BufferRef bytes,
                         std::int64_t phantom_bytes) {
  HG_ASSERT_MSG(static_cast<bool>(bytes), "send requires an encoded message");
  HG_ASSERT(phantom_bytes >= 0);
  Shard& s = shard(src);
  const std::size_t i = index_in_shard(src);
  if (s.alive[i] == 0) return;
  HG_ASSERT_MSG(src != dst, "self-sends indicate a peer-selection bug");
  Datagram d{src, dst, cls, std::move(bytes), phantom_bytes};
  s.meters[i].on_offered(cls, d.wire_bytes());
  s.links[i].enqueue(std::move(d));
}

void NetworkFabric::on_wire(Datagram&& d) {
  // The datagram has fully left the sender: this is what "used upload
  // bandwidth" means (Fig. 4), loss or not.
  shard(d.src).meters[index_in_shard(d.src)].on_sent(d.cls, d.wire_bytes());
  // Loss is evaluated when the datagram leaves the sender.
  if (loss_->lost(d.src, d.dst, rng_)) {
    ++lost_;
    shard(d.src).meters[index_in_shard(d.src)].on_dropped_in_flight(d.wire_bytes());
    return;
  }
  const sim::SimTime delay = latency_->sample(d.src, d.dst, rng_);
  sim_.after_fire_and_forget(delay, [this, d = std::move(d)]() {
    Shard& r = shard(d.dst);
    const std::size_t i = index_in_shard(d.dst);
    if (r.alive[i] == 0) return;  // crashed while in flight
    ++delivered_;
    r.meters[i].on_received(d.cls, d.wire_bytes());
    if (r.receive[i]) r.receive[i](d);
  });
}

void NetworkFabric::kill(NodeId id) {
  Shard& s = shard(id);
  const std::size_t i = index_in_shard(id);
  s.alive[i] = 0;
  s.links[i].shutdown();
  s.receive[i] = nullptr;
}

void NetworkFabric::set_capacity(NodeId id, BitRate capacity) {
  link_mut(id).set_capacity(capacity);
}

}  // namespace hg::net
