#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace hg::net {

sim::SimTime UniformLatency::sample(NodeId, NodeId, Rng& rng) {
  const auto lo = lo_.as_us();
  const auto hi = hi_.as_us();
  return sim::SimTime::us(lo + static_cast<std::int64_t>(rng.below(
                                   static_cast<std::uint64_t>(hi - lo + 1))));
}

PlanetLabLatency::PlanetLabLatency(PlanetLabLatencyConfig cfg, Rng rng)
    : cfg_(cfg), pair_rng_(std::move(rng)) {}

sim::SimTime PlanetLabLatency::base_for(NodeId src, NodeId dst) const {
  // Symmetric, order-independent pair key: the base is derived from a hash of
  // the pair (not from a shared sequential stream), so the value is identical
  // no matter which protocol queries first — and can be recomputed on every
  // sample instead of cached (see the class comment).
  const std::uint32_t a = std::min(src.value(), dst.value());
  const std::uint32_t b = std::max(src.value(), dst.value());
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  Rng pair_stream = pair_rng_.fork(key);
  const double ms = std::clamp(
      std::exp(pair_stream.normal(cfg_.log_mean_ms, cfg_.log_sigma)), cfg_.min_ms,
      cfg_.max_ms);
  return sim::SimTime::us(static_cast<std::int64_t>(ms * 1000.0));
}

sim::SimTime PlanetLabLatency::sample(NodeId src, NodeId dst, Rng& rng) {
  const sim::SimTime jitter =
      sim::SimTime::us(static_cast<std::int64_t>(rng.uniform(0.0, cfg_.jitter_max_ms) * 1000.0));
  return base_for(src, dst) + jitter;
}

}  // namespace hg::net
