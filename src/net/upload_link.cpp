#include "net/upload_link.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hg::net {

UploadLink::UploadLink(sim::Simulator& simulator, BitRate capacity,
                       QueueDiscipline discipline, OnWireFn on_wire)
    : sim_(simulator),
      capacity_(capacity),
      discipline_(discipline),
      on_wire_(std::move(on_wire)) {
  HG_ASSERT(on_wire_ != nullptr);
}

void UploadLink::enqueue(Datagram d) {
  if (down_) return;
  Pending p{std::move(d), sim_.now()};
  if (discipline_ == QueueDiscipline::kControlPriority && is_control(p.datagram.cls)) {
    // Insert after the last queued control message, ahead of payload.
    auto it = std::find_if(queue_.begin(), queue_.end(), [this](const Pending& q) {
      return !is_control(q.datagram.cls);
    });
    queued_bytes_ += p.datagram.wire_bytes();
    queue_.insert(it, std::move(p));
  } else {
    queued_bytes_ += p.datagram.wire_bytes();
    queue_.push_back(std::move(p));
  }
  max_queue_len_ = std::max(max_queue_len_, queue_.size());
  if (!busy_) transmit_next();
}

void UploadLink::transmit_next() {
  if (down_ || queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  const std::int64_t wire = p.datagram.wire_bytes();
  queued_bytes_ -= wire;

  const sim::SimTime wait = sim_.now() - p.enqueued_at;
  max_queue_delay_ = std::max(max_queue_delay_, wait);
  total_queue_delay_ += wait;

  const auto tx = sim::SimTime::us(transmission_time_us(wire, capacity_));
  // The datagram is on the wire once fully serialized; then the next one may
  // start. Captures `this`; the owner (fabric) outlives the simulator run.
  sim_.after_fire_and_forget(tx, [this, d = std::move(p.datagram)]() mutable {
    if (down_) return;
    ++sent_count_;
    on_wire_(std::move(d));
    transmit_next();
  });
}

void UploadLink::shutdown() {
  down_ = true;
  queue_.clear();
  queued_bytes_ = 0;
}

}  // namespace hg::net
