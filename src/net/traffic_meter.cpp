#include "net/traffic_meter.hpp"

namespace hg::net {

const char* to_string(MsgClass c) {
  switch (c) {
    case MsgClass::kPropose: return "propose";
    case MsgClass::kRequest: return "request";
    case MsgClass::kServe: return "serve";
    case MsgClass::kAggregation: return "aggregation";
    case MsgClass::kMembership: return "membership";
    case MsgClass::kTree: return "tree";
    case MsgClass::kOther: return "other";
    case MsgClass::kCount_: break;
  }
  return "?";
}

double TrafficMeter::usage_fraction(sim::SimTime duration, std::int64_t capacity_bps) const {
  if (capacity_bps <= 0 || duration <= sim::SimTime::zero()) return 0.0;
  const double sent_bits = static_cast<double>(total_sent_bytes()) * 8.0;
  const double capacity_bits = static_cast<double>(capacity_bps) * duration.as_sec();
  return sent_bits / capacity_bits;
}

}  // namespace hg::net
