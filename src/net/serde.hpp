// Byte-level wire serialization.
//
// Every protocol message is encoded to bytes before it enters the network
// fabric, so message sizes — the quantity that drives all bandwidth effects
// in the paper — are measured, never estimated. Integers are little-endian
// fixed width; sequences are length-prefixed with a varint.
//
// ByteWriter encodes directly into a chunk from the thread-local BufferPool
// and hands the result off as a zero-copy BufferRef (finish()); the vector
// accessors (take/view) exist for tests and cold paths.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "net/buffer.hpp"

namespace hg::net {

class ByteWriter {
 public:
  // Always draws from the calling thread's pool — chunks recycle through
  // BufferPool::local() on release, so that is the only pool that can ever
  // get them back.
  explicit ByteWriter(std::size_t reserve = 64)
      : ctl_(BufferPool::local().acquire(reserve < 1 ? 1 : reserve)) {}

  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  ~ByteWriter() {
    if (ctl_ != nullptr && --ctl_->refs == 0) BufferPool::recycle(ctl_);
  }

  void u8(std::uint8_t v) { append(&v, sizeof v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }

  // LEB128-style unsigned varint (1 byte for values < 128).
  void varint(std::uint64_t v) {
    std::uint8_t tmp[10];
    std::size_t n = 0;
    while (v >= 0x80) {
      tmp[n++] = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    tmp[n++] = static_cast<std::uint8_t>(v);
    append(tmp, n);
  }

  void bytes(std::span<const std::uint8_t> data) {
    varint(data.size());
    append(data.data(), data.size());
  }

  void str(const std::string& s) {
    varint(s.size());
    append(s.data(), s.size());
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  // Hands the encoded bytes off as a zero-copy pooled reference. The writer
  // must not be written to afterwards.
  [[nodiscard]] BufferRef finish() {
    HG_ASSERT(ctl_ != nullptr);
    ctl_->size = size_;
    BufferRef out(ctl_, 0, size_);  // adopts the writer's reference
    ctl_ = nullptr;
    return out;
  }

  // Copying accessors for tests and cold paths.
  [[nodiscard]] std::vector<std::uint8_t> take() {
    HG_ASSERT(ctl_ != nullptr);
    return {ctl_->data(), ctl_->data() + size_};
  }
  [[nodiscard]] std::span<const std::uint8_t> view() const {
    HG_ASSERT(ctl_ != nullptr);
    return {ctl_->data(), static_cast<std::size_t>(size_)};
  }

 private:
  void append(const void* p, std::size_t n) {
    HG_ASSERT(ctl_ != nullptr);  // finish() ends the writer's lifetime
    if (n == 0) return;          // empty spans may carry a null pointer
    if (size_ + n > ctl_->capacity) grow(size_ + n);
    std::memcpy(ctl_->data() + size_, p, n);
    size_ += static_cast<std::uint32_t>(n);
  }

  void grow(std::size_t needed) {
    detail::BufferCtl* bigger =
        BufferPool::local().acquire(needed > 2 * std::size_t{ctl_->capacity}
                                        ? needed
                                        : 2 * std::size_t{ctl_->capacity});
    std::memcpy(bigger->data(), ctl_->data(), size_);
    if (--ctl_->refs == 0) BufferPool::recycle(ctl_);
    ctl_ = bigger;
  }

  detail::BufferCtl* ctl_;
  std::uint32_t size_ = 0;
};

// Non-owning reader over a received buffer. All accessors return
// std::nullopt on truncation or corruption instead of reading out of
// bounds; protocol handlers treat a malformed datagram as a drop (as a UDP
// stack would).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() { return fixed<std::uint8_t>(); }
  [[nodiscard]] std::optional<std::uint16_t> u16() { return fixed<std::uint16_t>(); }
  [[nodiscard]] std::optional<std::uint32_t> u32() { return fixed<std::uint32_t>(); }
  [[nodiscard]] std::optional<std::uint64_t> u64() { return fixed<std::uint64_t>(); }
  [[nodiscard]] std::optional<std::int64_t> i64() { return fixed<std::int64_t>(); }
  [[nodiscard]] std::optional<double> f64() { return fixed<double>(); }

  // Rejects non-terminating varints, encodings longer than 10 bytes, and
  // 10-byte encodings whose final byte would overflow 64 bits — a malformed
  // prefix can neither wrap silently nor walk past the buffer.
  [[nodiscard]] std::optional<std::uint64_t> varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos_ < data_.size()) {
      const std::uint8_t b = data_[pos_++];
      if (shift == 63 && (b & 0xfe) != 0) return std::nullopt;  // > 64 bits
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) return std::nullopt;  // > 10 bytes
    }
    return std::nullopt;  // truncated
  }

  [[nodiscard]] std::optional<std::span<const std::uint8_t>> bytes() {
    const auto n = varint();
    // Compare against remaining() — an oversized length claim must fail the
    // check rather than overflow pos_ + *n.
    if (!n || *n > remaining()) return std::nullopt;
    auto out = data_.subspan(pos_, *n);
    pos_ += *n;
    return out;
  }

  [[nodiscard]] std::optional<std::string> str() {
    auto b = bytes();
    if (!b) return std::nullopt;
    return std::string(b->begin(), b->end());
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  [[nodiscard]] std::optional<T> fixed() {
    if (sizeof(T) > remaining()) return std::nullopt;
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace hg::net
