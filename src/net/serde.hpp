// Byte-level wire serialization.
//
// Every protocol message is encoded to bytes before it enters the network
// fabric, so message sizes — the quantity that drives all bandwidth effects
// in the paper — are measured, never estimated. Integers are little-endian
// fixed width; sequences are length-prefixed with a varint.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace hg::net {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }

  // LEB128-style unsigned varint (1 byte for values < 128).
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    varint(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(const std::string& s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& view() const { return buf_; }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

// Non-owning reader over a received buffer. All accessors return
// std::nullopt on truncation instead of reading out of bounds; protocol
// handlers treat a malformed datagram as a drop (as a UDP stack would).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() { return fixed<std::uint8_t>(); }
  [[nodiscard]] std::optional<std::uint16_t> u16() { return fixed<std::uint16_t>(); }
  [[nodiscard]] std::optional<std::uint32_t> u32() { return fixed<std::uint32_t>(); }
  [[nodiscard]] std::optional<std::uint64_t> u64() { return fixed<std::uint64_t>(); }
  [[nodiscard]] std::optional<std::int64_t> i64() { return fixed<std::int64_t>(); }
  [[nodiscard]] std::optional<double> f64() { return fixed<double>(); }

  [[nodiscard]] std::optional<std::uint64_t> varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos_ < data_.size() && shift <= 63) {
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<std::span<const std::uint8_t>> bytes() {
    auto n = varint();
    if (!n || pos_ + *n > data_.size()) return std::nullopt;
    auto out = data_.subspan(pos_, *n);
    pos_ += *n;
    return out;
  }

  [[nodiscard]] std::optional<std::string> str() {
    auto b = bytes();
    if (!b) return std::nullopt;
    return std::string(b->begin(), b->end());
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  [[nodiscard]] std::optional<T> fixed() {
    if (pos_ + sizeof(T) > data_.size()) return std::nullopt;
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace hg::net
