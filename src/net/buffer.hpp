// Reference-counted, pooled wire buffers — the allocation substrate of the
// message path.
//
// Every encoded datagram lives in a chunk drawn from a thread-local
// BufferPool: size-class slabs (header + payload in one allocation) recycled
// through per-class free lists, so the steady-state send→deliver path never
// touches the heap. A BufferRef is a cheap (pointer, offset, length) slice
// with a non-atomic refcount — fan-out to many peers, batched serves, and
// payload storage all share the same bytes without copying or hashing.
//
// Threading model: simulations are single-threaded per replica (SweepRunner
// runs one Simulator per worker thread), so refcounts are plain integers.
// A chunk released on a thread other than its allocator (e.g. a finished
// Experiment destroyed on the main thread) is freed directly instead of
// being pushed onto a foreign free list; the owner pool pointer is only ever
// compared against the releasing thread's own pool, never dereferenced.
//
// In the sharded engine (P >= 2), the same rule is what keeps the non-atomic
// refcounts sound: every BufferRef is confined to the partition (and thus the
// worker thread) whose pool allocated it. NetworkFabric never moves a ref
// across partitions — a message crossing a partition boundary is deep-copied
// into the destination partition's pool during the barrier exchange, while
// workers are parked (see fabric.cpp). WorkerPool's static index→worker
// assignment makes partition→thread stable for the life of a run, so a
// chunk's allocating thread services it for every epoch.
//
// Nothing in this header can check that contract at compile time (the pool
// is thread-local by construction, not by annotation), so it is enforced
// dynamically: the TSan CI job runs the sharded-engine and parallel
// determinism suites at HG_WORKERS=4, where a ref leaking across the
// boundary shows up as a data race on `refs`. The determinism linter
// separately keeps address-ordered logic out of the exchange path, so the
// deep-copy import order stays canonical (src partition, index), never
// pointer-valued.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace hg::net {

class BufferPool;

namespace detail {

// Chunk header; the payload bytes follow immediately after.
struct BufferCtl {
  BufferPool* owner;       // allocating thread's pool (identity check only)
  BufferCtl* next_free;    // intrusive free-list link while pooled
  std::uint32_t refs;
  std::uint32_t capacity;  // payload capacity in bytes
  std::uint32_t size;      // payload bytes written
  std::uint8_t size_class; // index into the pool's class table; 0xff = unpooled

  [[nodiscard]] std::uint8_t* data() {
    return reinterpret_cast<std::uint8_t*>(this) + sizeof(BufferCtl);
  }
  [[nodiscard]] const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this) + sizeof(BufferCtl);
  }
};

}  // namespace detail

class BufferPool {
 public:
  // Size classes are powers of two from 64 B (headers, small control
  // messages) to 256 KiB (large serve batches); bigger requests fall back to
  // a one-off unpooled allocation.
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = 256 * 1024;
  static constexpr std::uint8_t kUnpooledClass = 0xff;

  struct Stats {
    std::uint64_t chunk_allocs = 0;   // chunks obtained from the heap
    std::uint64_t pool_hits = 0;      // chunks recycled from a free list
    std::uint64_t pool_returns = 0;   // chunks pushed back onto a free list
    std::uint64_t foreign_frees = 0;  // released off-thread: freed, not pooled
    std::uint64_t oversized = 0;      // requests beyond kMaxClassBytes
  };

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  // The calling thread's pool. All implicit allocations (ByteWriter,
  // BufferRef::copy_of) draw from here.
  [[nodiscard]] static BufferPool& local();

  // A chunk with capacity >= n, refs == 1, size == 0.
  [[nodiscard]] detail::BufferCtl* acquire(std::size_t n);

  // Called when a chunk's refcount hits zero (from any thread).
  static void recycle(detail::BufferCtl* ctl);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kClasses = 13;  // 64 << 12 == 256 KiB

  [[nodiscard]] static std::uint8_t class_for(std::size_t n);
  [[nodiscard]] static std::size_t class_bytes(std::uint8_t cls) {
    return kMinClassBytes << cls;
  }

  detail::BufferCtl* free_lists_[kClasses] = {};
  Stats stats_;
};

// A shared, immutable view of [offset, offset + length) within a pooled
// chunk. Copies bump the refcount; slices share the backing chunk, so a
// payload sliced out of a received datagram keeps the whole datagram buffer
// alive until the last reference drops.
class BufferRef {
 public:
  BufferRef() = default;

  BufferRef(const BufferRef& o) : ctl_(o.ctl_), off_(o.off_), len_(o.len_) {
    if (ctl_ != nullptr) ++ctl_->refs;
  }
  BufferRef(BufferRef&& o) noexcept : ctl_(o.ctl_), off_(o.off_), len_(o.len_) {
    o.ctl_ = nullptr;
    o.off_ = 0;
    o.len_ = 0;
  }
  BufferRef& operator=(const BufferRef& o) {
    if (this != &o) {
      reset();
      ctl_ = o.ctl_;
      off_ = o.off_;
      len_ = o.len_;
      if (ctl_ != nullptr) ++ctl_->refs;
    }
    return *this;
  }
  BufferRef& operator=(BufferRef&& o) noexcept {
    if (this != &o) {
      reset();
      ctl_ = o.ctl_;
      off_ = o.off_;
      len_ = o.len_;
      o.ctl_ = nullptr;
      o.off_ = 0;
      o.len_ = 0;
    }
    return *this;
  }
  ~BufferRef() { reset(); }

  void reset() {
    if (ctl_ != nullptr && --ctl_->refs == 0) BufferPool::recycle(ctl_);
    ctl_ = nullptr;
    off_ = 0;
    len_ = 0;
  }

  [[nodiscard]] explicit operator bool() const { return ctl_ != nullptr; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] const std::uint8_t* data() const {
    return ctl_ != nullptr ? ctl_->data() + off_ : nullptr;
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data(), static_cast<std::size_t>(len_)};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): a BufferRef *is* a byte view
  operator std::span<const std::uint8_t>() const { return bytes(); }

  // A sub-view sharing (and pinning) the same backing chunk.
  [[nodiscard]] BufferRef slice(std::size_t off, std::size_t len) const {
    HG_ASSERT(off + len <= len_);
    if (ctl_ != nullptr) ++ctl_->refs;
    return BufferRef(ctl_, off_ + static_cast<std::uint32_t>(off),
                     static_cast<std::uint32_t>(len));
  }

  // Number of owners of the backing chunk (introspection/tests).
  [[nodiscard]] std::uint32_t ref_count() const { return ctl_ != nullptr ? ctl_->refs : 0; }

  // Pooled copy of arbitrary bytes (cold paths, tests).
  [[nodiscard]] static BufferRef copy_of(std::span<const std::uint8_t> src);

  // Takes ownership of a chunk freshly obtained from BufferPool::acquire
  // (refs == 1): no refcount bump; the chunk recycles when the returned ref
  // (and every slice taken from it) drops. For components that fill pooled
  // chunks manually rather than through ByteWriter — the sharded fabric
  // packs cross-partition exchange segments this way.
  [[nodiscard]] static BufferRef adopt(detail::BufferCtl* ctl, std::uint32_t len) {
    HG_ASSERT(ctl != nullptr && ctl->refs == 1 && len <= ctl->capacity);
    return BufferRef(ctl, 0, len);
  }

  [[nodiscard]] std::vector<std::uint8_t> to_vector() const {
    return {data(), data() + size()};
  }

 private:
  friend class ByteWriter;

  // Adopts an existing reference (no refcount bump).
  BufferRef(detail::BufferCtl* ctl, std::uint32_t off, std::uint32_t len)
      : ctl_(ctl), off_(off), len_(len) {}

  detail::BufferCtl* ctl_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

}  // namespace hg::net
