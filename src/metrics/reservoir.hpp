// Fixed-memory streaming quantile reservoir.
//
// A deterministic MRL-style collapsing-buffer sketch (Manku, Rajagopalan,
// Lindsay): samples land in an unsorted level-0 buffer; a full buffer is
// sorted and *collapsed* — every second element survives, promoted one level
// up, where each element represents 2x the weight. Collapsing alternates the
// surviving offset per level instead of randomizing it, so the sketch is a
// pure function of the input sequence — no RNG, bit-identical regardless of
// thread count, and mergeable in deterministic order.
//
// Rank queries (percentile / fraction_at_most) are approximate with error
// O(log(n/k)/k) in rank; count/mean/stddev/min/max are exact running
// accumulators. Memory is O(k log(n/k)) doubles regardless of how many
// samples stream through — the whole point at 100k+ nodes, where exact
// sample hoarding in every report builder is what pins a run's memory to
// the population size.
#pragma once

#include <cstdint>
#include <vector>

namespace hg::metrics {

class QuantileReservoir {
 public:
  // `buffer_elems` is the per-level capacity k: larger k = lower rank error
  // and more memory. The default keeps worst-case rank error well under one
  // percentile point for hundreds of millions of samples.
  explicit QuantileReservoir(std::size_t buffer_elems = 2048);

  void add(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  // Exact (running accumulators, independent of the sketch).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  // Approximate rank queries. `q` in [0, 100]; empty reservoir asserts,
  // matching exact Samples.
  [[nodiscard]] double percentile(double q) const;
  // Fraction of samples <= threshold; 0.0 when empty (matching Samples).
  [[nodiscard]] double fraction_at_most(double threshold) const;

  // Absorbs `other` (same buffer_elems required): exact accumulators combine
  // exactly; sketch levels merge level-by-level with the usual collapse on
  // overflow. Deterministic — merging the same reservoirs in the same order
  // always yields the same sketch, so per-partition reservoirs reduce to a
  // run-level one independent of the worker count.
  void merge_from(const QuantileReservoir& other);

  // Elements currently held across all levels (introspection/tests).
  [[nodiscard]] std::size_t retained() const;

 private:
  void collapse_level(std::size_t level);
  // Materializes the weighted sorted view of all levels into scratch_.
  void gather() const;

  std::size_t capacity_;
  // levels_[0] is unsorted; higher levels are sorted ascending. An element
  // of levels_[i] has weight 2^i.
  std::vector<std::vector<double>> levels_;
  std::vector<bool> take_odd_;  // per-level alternating collapse offset

  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford
  double min_ = 0.0;
  double max_ = 0.0;

  mutable std::vector<std::pair<double, std::uint64_t>> scratch_;  // (value, weight)
  mutable bool scratch_valid_ = false;
};

}  // namespace hg::metrics
