// Order statistics over collected samples.
//
// Two storage modes behind one API:
//  * exact (default): every sample is retained and queries sort on demand —
//    what the paper-figure benches use, and what keeps their outputs
//    byte-stable.
//  * streaming: a fixed-memory QuantileReservoir absorbs the samples;
//    count/mean/stddev/min/max stay exact, percentile/fraction_at_most are
//    approximate with bounded rank error, and values() is unavailable. This
//    is the 100k+-node mode — memory no longer scales with the population.
#pragma once

#include <optional>
#include <vector>

#include "metrics/reservoir.hpp"

namespace hg::metrics {

class Samples {
 public:
  Samples() = default;  // exact mode

  // Fixed-memory mode; see QuantileReservoir for the `buffer_elems` knob.
  [[nodiscard]] static Samples streaming(std::size_t buffer_elems = 2048) {
    Samples s;
    s.sketch_.emplace(buffer_elems);
    return s;
  }
  [[nodiscard]] bool is_streaming() const { return sketch_.has_value(); }

  void add(double v) {
    if (sketch_) {
      sketch_->add(v);
      return;
    }
    values_.push_back(v);
    sorted_ = false;
  }
  void reserve(std::size_t n) {
    if (!sketch_) values_.reserve(n);
  }

  [[nodiscard]] std::size_t count() const {
    return sketch_ ? static_cast<std::size_t>(sketch_->count()) : values_.size();
  }
  [[nodiscard]] bool empty() const { return count() == 0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Nearest-rank percentile, q in [0, 100]. Approximate in streaming mode.
  [[nodiscard]] double percentile(double q) const;
  // Fraction of samples <= threshold. Approximate in streaming mode.
  [[nodiscard]] double fraction_at_most(double threshold) const;

  // Exact mode only: the raw samples (streaming mode does not retain them).
  [[nodiscard]] const std::vector<double>& values() const;

  // Absorbs `other` (both sides must share the storage mode). Exact mode
  // appends the raw samples; streaming mode merges the sketches
  // deterministically (see QuantileReservoir::merge_from).
  void merge_from(const Samples& other);

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  std::optional<QuantileReservoir> sketch_;
};

}  // namespace hg::metrics
