// Order statistics over collected samples.
#pragma once

#include <optional>
#include <vector>

namespace hg::metrics {

class Samples {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Nearest-rank percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  // Fraction of samples <= threshold.
  [[nodiscard]] double fraction_at_most(double threshold) const;

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace hg::metrics
