#include "metrics/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hg::metrics {

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (sketch_) return sketch_->mean();
  HG_ASSERT(!values_.empty());
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (sketch_) return sketch_->stddev();
  HG_ASSERT(!values_.empty());
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Samples::min() const {
  if (sketch_) return sketch_->min();
  ensure_sorted();
  HG_ASSERT(!values_.empty());
  return values_.front();
}

double Samples::max() const {
  if (sketch_) return sketch_->max();
  ensure_sorted();
  HG_ASSERT(!values_.empty());
  return values_.back();
}

double Samples::percentile(double q) const {
  if (sketch_) return sketch_->percentile(q);
  ensure_sorted();
  HG_ASSERT(!values_.empty());
  HG_ASSERT(q >= 0.0 && q <= 100.0);
  if (values_.size() == 1) return values_[0];
  const double rank = q / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::fraction_at_most(double threshold) const {
  if (sketch_) return sketch_->fraction_at_most(threshold);
  ensure_sorted();
  if (values_.empty()) return 0.0;
  const auto it = std::upper_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

void Samples::merge_from(const Samples& other) {
  HG_ASSERT_MSG(is_streaming() == other.is_streaming(),
                "cannot merge exact Samples with streaming Samples");
  if (sketch_) {
    sketch_->merge_from(*other.sketch_);
    return;
  }
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

const std::vector<double>& Samples::values() const {
  HG_ASSERT_MSG(!sketch_, "streaming Samples do not retain raw values");
  return values_;
}

}  // namespace hg::metrics
