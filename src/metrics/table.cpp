#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace hg::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HG_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HG_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::pct(double fraction01, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction01 * 100.0);
  return buf;
}

std::string Table::num(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += cells[c];
      line.append(width[c] - cells[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < width.size(); ++c) {
    sep.append(width[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + emit_row(headers_) + sep;
  for (const auto& row : rows_) out += emit_row(row);
  out += sep;
  return out;
}

}  // namespace hg::metrics
