// Plain-text table renderer for bench output (paper-style tables).
#pragma once

#include <string>
#include <vector>

namespace hg::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience cell formatters.
  [[nodiscard]] static std::string pct(double fraction01, int decimals = 1);
  [[nodiscard]] static std::string num(double v, int decimals = 2);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hg::metrics
