// Cumulative-distribution series, matching the paper's CDF plots
// ("percentage of nodes (cumulative distribution)" vs lag / jitter).
#pragma once

#include <string>
#include <vector>

#include "metrics/percentile.hpp"

namespace hg::metrics {

struct CdfPoint {
  double x = 0.0;        // threshold (e.g. stream lag in seconds)
  double percent = 0.0;  // % of population with value <= x
};

class Cdf {
 public:
  // Evaluates the CDF of `samples` at each grid point. `population` lets the
  // caller count against a larger denominator than samples.count() — e.g.
  // nodes that never reached the target contribute to the denominator but
  // have no sample (the paper's curves saturate below 100% for this reason).
  [[nodiscard]] static std::vector<CdfPoint> evaluate(const Samples& samples,
                                                      const std::vector<double>& grid,
                                                      std::size_t population);

  // Convenience: uniform grid [0, max] with `steps` points.
  [[nodiscard]] static std::vector<double> uniform_grid(double max, std::size_t steps);
};

// Renders one or more CDF series as a compact ASCII table, one row per grid
// point, one column per series.
[[nodiscard]] std::string render_cdf_table(const std::string& x_label,
                                           const std::vector<std::string>& series_names,
                                           const std::vector<std::vector<CdfPoint>>& series);

}  // namespace hg::metrics
