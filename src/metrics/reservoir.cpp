#include "metrics/reservoir.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hg::metrics {

QuantileReservoir::QuantileReservoir(std::size_t buffer_elems)
    : capacity_(buffer_elems < 8 ? 8 : buffer_elems) {
  levels_.emplace_back();
  levels_[0].reserve(capacity_);
  take_odd_.push_back(false);
}

void QuantileReservoir::add(double v) {
  HG_ASSERT_MSG(!std::isnan(v), "NaN sample");
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);

  levels_[0].push_back(v);
  scratch_valid_ = false;
  if (levels_[0].size() >= capacity_) collapse_level(0);
}

void QuantileReservoir::collapse_level(std::size_t level) {
  if (levels_.size() == level + 1) {
    // Grow the level ladder *before* taking references: emplace_back can
    // reallocate levels_ out from under them.
    levels_.emplace_back();
    levels_[level + 1].reserve(capacity_);
    take_odd_.push_back(false);
  }
  std::vector<double>& src = levels_[level];
  if (level == 0) {
    std::sort(src.begin(), src.end());
  }
  std::vector<double>& dst = levels_[level + 1];
  // Keep every second element; the surviving offset alternates per collapse
  // so neither the low nor the high tail is systematically dropped. This is
  // the deterministic stand-in for the classic random offset.
  const std::size_t start = take_odd_[level] ? 1 : 0;
  take_odd_[level] = !take_odd_[level];
  const std::size_t old_dst = dst.size();
  for (std::size_t i = start; i < src.size(); i += 2) dst.push_back(src[i]);
  src.clear();
  // Higher levels stay sorted: merge the appended run in place.
  std::inplace_merge(dst.begin(), dst.begin() + static_cast<std::ptrdiff_t>(old_dst),
                     dst.end());
  if (dst.size() >= capacity_) collapse_level(level + 1);
}

void QuantileReservoir::merge_from(const QuantileReservoir& other) {
  HG_ASSERT_MSG(capacity_ == other.capacity_,
                "merge requires reservoirs with the same buffer_elems");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Chan et al. parallel-variance combine: exact, like the running Welford.
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  count_ += other.count_;

  for (std::size_t level = 0; level < other.levels_.size(); ++level) {
    const std::vector<double>& src = other.levels_[level];
    if (src.empty()) continue;
    while (levels_.size() <= level) {
      levels_.emplace_back();
      levels_.back().reserve(capacity_);
      take_odd_.push_back(false);
    }
    std::vector<double>& dst = levels_[level];
    const std::size_t old_size = dst.size();
    dst.insert(dst.end(), src.begin(), src.end());
    if (level > 0) {
      // Higher levels stay sorted (collapse_level relies on it).
      std::inplace_merge(dst.begin(), dst.begin() + static_cast<std::ptrdiff_t>(old_size),
                         dst.end());
    }
    // Each input level holds < capacity_ elements, so one collapse (which
    // empties the level, recursing upward as needed) restores the invariant.
    if (dst.size() >= capacity_) collapse_level(level);
  }
  scratch_valid_ = false;
}

std::size_t QuantileReservoir::retained() const {
  std::size_t n = 0;
  for (const auto& l : levels_) n += l.size();
  return n;
}

double QuantileReservoir::mean() const {
  HG_ASSERT(count_ > 0);
  return mean_;
}

double QuantileReservoir::stddev() const {
  HG_ASSERT(count_ > 0);
  return std::sqrt(m2_ / static_cast<double>(count_));
}

double QuantileReservoir::min() const {
  HG_ASSERT(count_ > 0);
  return min_;
}

double QuantileReservoir::max() const {
  HG_ASSERT(count_ > 0);
  return max_;
}

void QuantileReservoir::gather() const {
  if (scratch_valid_) return;
  scratch_.clear();
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const std::uint64_t weight = std::uint64_t{1} << level;
    for (double v : levels_[level]) scratch_.emplace_back(v, weight);
  }
  std::sort(scratch_.begin(), scratch_.end());
  scratch_valid_ = true;
}

double QuantileReservoir::percentile(double q) const {
  HG_ASSERT(count_ > 0);
  HG_ASSERT(q >= 0.0 && q <= 100.0);
  // The extremes are tracked exactly; a collapse may have dropped the
  // retained copy of either, so answer them from the accumulators (keeps
  // the exact-mode guarantee percentile(0) == min, percentile(100) == max).
  if (q == 0.0) return min_;
  if (q == 100.0) return max_;
  gather();
  // Total retained weight can differ slightly from count_ (the level-0
  // buffer holds full-weight samples); rank against the retained total so
  // q = 100 always lands on the last element.
  std::uint64_t total = 0;
  for (const auto& [v, w] : scratch_) total += w;
  const double target = q / 100.0 * static_cast<double>(total - 1);
  std::uint64_t cum = 0;
  for (const auto& [v, w] : scratch_) {
    cum += w;
    if (static_cast<double>(cum - 1) >= target) return v;
  }
  return scratch_.back().first;
}

double QuantileReservoir::fraction_at_most(double threshold) const {
  if (count_ == 0) return 0.0;
  gather();
  std::uint64_t total = 0;
  std::uint64_t at_most = 0;
  for (const auto& [v, w] : scratch_) {
    total += w;
    if (v <= threshold) at_most += w;
  }
  return static_cast<double>(at_most) / static_cast<double>(total);
}

}  // namespace hg::metrics
