#include "metrics/cdf.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace hg::metrics {

std::vector<CdfPoint> Cdf::evaluate(const Samples& samples, const std::vector<double>& grid,
                                    std::size_t population) {
  HG_ASSERT(population >= samples.count());
  std::vector<CdfPoint> out;
  out.reserve(grid.size());
  for (double x : grid) {
    const double frac =
        population == 0
            ? 0.0
            : samples.fraction_at_most(x) * static_cast<double>(samples.count()) /
                  static_cast<double>(population);
    out.push_back(CdfPoint{x, frac * 100.0});
  }
  return out;
}

std::vector<double> Cdf::uniform_grid(double max, std::size_t steps) {
  HG_ASSERT(steps >= 2);
  std::vector<double> grid;
  grid.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    grid.push_back(max * static_cast<double>(i) / static_cast<double>(steps - 1));
  }
  return grid;
}

std::string render_cdf_table(const std::string& x_label,
                             const std::vector<std::string>& series_names,
                             const std::vector<std::vector<CdfPoint>>& series) {
  HG_ASSERT(series_names.size() == series.size());
  std::string out;
  char line[512];

  std::snprintf(line, sizeof(line), "%12s", x_label.c_str());
  out += line;
  for (const auto& name : series_names) {
    std::snprintf(line, sizeof(line), " | %20s", name.c_str());
    out += line;
  }
  out += '\n';
  out += std::string(12 + series.size() * 23, '-');
  out += '\n';

  const std::size_t rows = series.empty() ? 0 : series[0].size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::snprintf(line, sizeof(line), "%12.2f", series[0][r].x);
    out += line;
    for (const auto& s : series) {
      HG_ASSERT(s.size() == rows);
      std::snprintf(line, sizeof(line), " | %19.1f%%", s[r].percent);
      out += line;
    }
    out += '\n';
  }
  return out;
}

}  // namespace hg::metrics
