#include "tree/static_tree.hpp"

#include "common/assert.hpp"
#include "net/serde.hpp"

namespace hg::tree {

StaticTree::StaticTree(sim::Simulator& simulator, net::NetworkFabric& fabric,
                       std::size_t nodes, std::size_t arity, DeliverFn deliver)
    : sim_(simulator), fabric_(fabric), nodes_(nodes), arity_(arity),
      deliver_(std::move(deliver)) {
  HG_ASSERT(arity_ >= 1);
  HG_ASSERT(deliver_ != nullptr);
}

std::vector<NodeId> StaticTree::children_of(NodeId node) const {
  std::vector<NodeId> out;
  const std::uint64_t base = std::uint64_t{node.value()} * arity_ + 1;
  for (std::size_t k = 0; k < arity_; ++k) {
    const std::uint64_t child = base + k;
    if (child >= nodes_) break;
    out.push_back(NodeId{static_cast<std::uint32_t>(child)});
  }
  return out;
}

std::size_t StaticTree::depth() const {
  std::size_t d = 0;
  std::uint64_t covered = 1, level = 1;
  while (covered < nodes_) {
    level *= arity_;
    covered += level;
    ++d;
  }
  return d;
}

void StaticTree::publish(const gossip::Event& event) {
  deliver_(NodeId{0}, event);
  forward(NodeId{0}, event);
}

void StaticTree::forward(NodeId from, const gossip::Event& event) {
  // Same wire format as a gossip serve, tagged kTreePush. Encoded once into
  // a pooled buffer shared across all children.
  net::ByteWriter w(16 + event.payload_size());
  w.u8(static_cast<std::uint8_t>(gossip::MsgTag::kTreePush));
  w.u32(from.value());
  w.u64(event.id.raw());
  w.bytes(event.payload.bytes());
  const net::BufferRef bytes = w.finish();
  for (NodeId child : children_of(from)) {
    fabric_.send(from, child, net::MsgClass::kTree, bytes);
  }
}

void StaticTree::on_datagram(NodeId node, const net::Datagram& d) {
  net::ByteReader r(d.bytes);
  const auto tag = r.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(gossip::MsgTag::kTreePush)) return;
  const auto from = r.u32();
  const auto raw = r.u64();
  if (!from || !raw) return;
  const auto payload = r.bytes();
  if (!payload) return;
  gossip::Event event;
  event.id = gossip::EventId::from_raw(*raw);
  // Zero copy: pin the arrival buffer instead of copying the payload out.
  event.payload = d.bytes.slice(static_cast<std::size_t>(payload->data() - d.bytes.data()),
                                payload->size());
  deliver_(node, event);
  forward(node, event);
}

}  // namespace hg::tree
