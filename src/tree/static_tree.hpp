// Static k-ary push tree — the intro's strawman baseline.
//
// "Our preliminary experiments revealed the difficulty of disseminating
// through a static tree without any reconstruction even among 30 nodes."
// Packets are pushed root -> children over the same lossy, upload-
// constrained fabric, with no acknowledgements and no repair: one lost
// datagram prunes an entire subtree for that packet.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gossip/messages.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace hg::tree {

class StaticTree {
 public:
  // Node ids 0..n-1 are laid out heap-style: children of i are
  // i*arity+1 .. i*arity+arity. Node 0 is the root (source).
  using DeliverFn = std::function<void(NodeId node, const gossip::Event&)>;

  StaticTree(sim::Simulator& simulator, net::NetworkFabric& fabric, std::size_t nodes,
             std::size_t arity, DeliverFn deliver);

  // Root-side: deliver locally and push down the tree.
  void publish(const gossip::Event& event);

  // Receives a kTreePush datagram addressed to `node`.
  void on_datagram(NodeId node, const net::Datagram& d);

  [[nodiscard]] std::vector<NodeId> children_of(NodeId node) const;
  [[nodiscard]] std::size_t depth() const;

 private:
  void forward(NodeId from, const gossip::Event& event);

  sim::Simulator& sim_;
  net::NetworkFabric& fabric_;
  std::size_t nodes_;
  std::size_t arity_;
  DeliverFn deliver_;
};

}  // namespace hg::tree
