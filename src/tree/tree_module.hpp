// Mounts one node's leg of a StaticTree on a NodeRuntime, claiming the
// kTreePush tag. The tree object itself spans the whole population (it
// knows the topology); this adapter narrows it to the runtime's own id, so
// tree/gossip hybrid stacks compose like any other module.
#pragma once

#include "core/node_runtime.hpp"
#include "tree/static_tree.hpp"

namespace hg::tree {

class TreeModule final : public core::Protocol {
 public:
  TreeModule(core::NodeRuntime& runtime, StaticTree& tree)
      : self_(runtime.self()),
        tree_(tree),
        tag_(runtime.register_tag(gossip::MsgTag::kTreePush, this)) {}

  [[nodiscard]] const char* name() const override { return "tree"; }

  void on_datagram(const net::Datagram& d) { tree_.on_datagram(self_, d); }

  [[nodiscard]] StaticTree& tree() { return tree_; }

 private:
  NodeId self_;
  StaticTree& tree_;
  core::TagRegistration tag_;
};

}  // namespace hg::tree
