#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace hg {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  HG_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork(std::uint64_t stream_tag) const {
  std::uint64_t sm = seed_ ^ (0xa0761d6478bd642fULL + stream_tag * 0xe7037ed1a0b428dbULL);
  return Rng(splitmix64(sm));
}

void Rng::sample_indices(std::size_t n, std::size_t k, std::vector<std::uint32_t>& out) {
  HG_ASSERT(k <= n);
  out.clear();
  if (k == 0) return;
  // For small k relative to n, rejection sampling beats building a pool.
  if (k * 8 < n) {
    out.reserve(k);
    while (out.size() < k) {
      auto candidate = static_cast<std::uint32_t>(below(n));
      bool dup = false;
      for (auto v : out) {
        if (v == candidate) {
          dup = true;
          break;
        }
      }
      if (!dup) out.push_back(candidate);
    }
    return;
  }
  pool_.resize(n);
  for (std::size_t i = 0; i < n; ++i) pool_[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + below(n - i);
    std::swap(pool_[i], pool_[j]);
  }
  out.assign(pool_.begin(), pool_.begin() + static_cast<std::ptrdiff_t>(k));
}

}  // namespace hg
