// Clang thread-safety-analysis annotations (no-ops elsewhere).
//
// These macros attach the compiler-checked locking contract to shared state:
// which mutex guards a field, which lock a function requires, what a scoped
// guard acquires. Clang's `-Wthread-safety` then rejects, at compile time,
// any access that violates the contract — an unguarded read of a
// HG_GUARDED_BY field, a call to an HG_REQUIRES function without the lock,
// a forgotten unlock. GCC and MSVC see empty macros, so annotations cost
// nothing on non-Clang builds.
//
// The annotations only bite on types marked HG_CAPABILITY — std::mutex is
// not one (libstdc++ ships no attributes), which is why the project locks
// through hg::sync::Mutex / hg::sync::MutexLock (common/sync.hpp) instead of
// raw standard-library primitives.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define HG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HG_THREAD_ANNOTATION(x)  // no-op
#endif

// Type annotations -----------------------------------------------------------

// Marks a class as a capability (lockable). `x` names the capability kind in
// diagnostics, conventionally "mutex" or "role".
#define HG_CAPABILITY(x) HG_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (e.g. hg::sync::MutexLock).
#define HG_SCOPED_CAPABILITY HG_THREAD_ANNOTATION(scoped_lockable)

// Data-member annotations ----------------------------------------------------

// The member may only be accessed while holding capability `x`.
#define HG_GUARDED_BY(x) HG_THREAD_ANNOTATION(guarded_by(x))

// The *pointee* of this pointer member may only be accessed while holding `x`
// (the pointer itself is unguarded).
#define HG_PT_GUARDED_BY(x) HG_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention).
#define HG_ACQUIRED_BEFORE(...) HG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HG_ACQUIRED_AFTER(...) HG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function annotations -------------------------------------------------------

// The caller must hold the capability (exclusively / shared) when calling.
#define HG_REQUIRES(...) HG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HG_REQUIRES_SHARED(...) HG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and holds it on return.
#define HG_ACQUIRE(...) HG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HG_ACQUIRE_SHARED(...) HG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

// The function releases a capability the caller holds.
#define HG_RELEASE(...) HG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HG_RELEASE_SHARED(...) HG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// The function acquires the capability only when returning `b`.
#define HG_TRY_ACQUIRE(...) HG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// The caller must NOT hold the capability (the function acquires it itself —
// calling with it held would deadlock).
#define HG_EXCLUDES(...) HG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime-checked assertion that the capability is held; the analysis treats
// it as held for the rest of the scope.
#define HG_ASSERT_CAPABILITY(x) HG_THREAD_ANNOTATION(assert_capability(x))

// The function returns a reference to the named capability.
#define HG_RETURN_CAPABILITY(x) HG_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables analysis inside one function. Every use carries a
// comment explaining why the contract cannot be expressed.
#define HG_NO_THREAD_SAFETY_ANALYSIS HG_THREAD_ANNOTATION(no_thread_safety_analysis)
