#include "common/log.hpp"

#include <cstdio>

namespace hg::log {

namespace {
Level g_level = Level::kOff;

const char* level_name(Level l) {
  switch (l) {
    case Level::kError: return "ERROR";
    case Level::kWarn: return "WARN ";
    case Level::kInfo: return "INFO ";
    case Level::kDebug: return "DEBUG";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level = level; }

Level level() { return g_level; }

void write(Level lvl, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_name(lvl));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace hg::log
