// Deterministic random number generation.
//
// Every stochastic component (latency, loss, peer selection, fanout
// rounding...) draws from its own Rng stream, derived from the experiment
// seed with SplitMix64. Runs are therefore reproducible bit-for-bit for a
// given seed, independent of the order in which components are constructed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace hg {

// xoshiro256** by Blackman & Vigna — fast, high quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  [[nodiscard]] std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  // Uniform integer in [0, bound). Unbiased (Lemire rejection).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  // Bernoulli trial.
  [[nodiscard]] bool chance(double p);

  // Exponentially distributed with the given mean.
  [[nodiscard]] double exponential(double mean);

  // Normal via Box-Muller (no cached spare: simplicity over speed).
  [[nodiscard]] double normal(double mean, double stddev);

  // Derives an independent child stream; `stream_tag` distinguishes children.
  [[nodiscard]] Rng fork(std::uint64_t stream_tag) const;

  // k distinct uniform indices from [0, n), k <= n. Partial Fisher-Yates on a
  // caller-provided scratch pool to avoid per-call allocation.
  void sample_indices(std::size_t n, std::size_t k, std::vector<std::uint32_t>& out);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained for fork()
  std::vector<std::uint32_t> pool_;  // scratch for sample_indices
};

// SplitMix64: used for seeding and stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace hg
