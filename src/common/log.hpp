// Minimal leveled logger.
//
// Logging is off by default (simulations emit millions of events); enable per
// run with hg::log::set_level. Output goes to stderr so bench tables on
// stdout stay machine-readable.
#pragma once

#include <cstdarg>

namespace hg::log {

enum class Level { kOff = 0, kError, kWarn, kInfo, kDebug };

void set_level(Level level);
[[nodiscard]] Level level();

void write(Level level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace hg::log

#define HG_LOG_ERROR(...)                                             \
  do {                                                                \
    if (::hg::log::level() >= ::hg::log::Level::kError)               \
      ::hg::log::write(::hg::log::Level::kError, __VA_ARGS__);        \
  } while (false)
#define HG_LOG_WARN(...)                                              \
  do {                                                                \
    if (::hg::log::level() >= ::hg::log::Level::kWarn)                \
      ::hg::log::write(::hg::log::Level::kWarn, __VA_ARGS__);         \
  } while (false)
#define HG_LOG_INFO(...)                                              \
  do {                                                                \
    if (::hg::log::level() >= ::hg::log::Level::kInfo)                \
      ::hg::log::write(::hg::log::Level::kInfo, __VA_ARGS__);         \
  } while (false)
#define HG_LOG_DEBUG(...)                                             \
  do {                                                                \
    if (::hg::log::level() >= ::hg::log::Level::kDebug)               \
      ::hg::log::write(::hg::log::Level::kDebug, __VA_ARGS__);        \
  } while (false)
