// Bandwidth and data-size units.
//
// All rates in the paper are quoted in kbps/Mbps; all internal arithmetic is
// done in bits-per-second (64-bit) and bytes to avoid unit mistakes.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace hg {

// A non-negative data rate. Value semantics, cheap to copy.
class BitRate {
 public:
  constexpr BitRate() = default;

  [[nodiscard]] static constexpr BitRate bps(std::int64_t v) { return BitRate(v); }
  [[nodiscard]] static constexpr BitRate kbps(double v) {
    return BitRate(static_cast<std::int64_t>(v * 1000.0));
  }
  [[nodiscard]] static constexpr BitRate mbps(double v) {
    return BitRate(static_cast<std::int64_t>(v * 1000.0 * 1000.0));
  }
  // The paper's capability classes use binary multiples (512 kbps = 512*1024).
  // Kept decimal here: the distinction is irrelevant to every result shape,
  // and decimal matches the stream-rate arithmetic in the paper (551/600).
  [[nodiscard]] static constexpr BitRate unlimited() {
    return BitRate(std::int64_t{1} << 62);
  }

  [[nodiscard]] constexpr std::int64_t bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double kbits_per_sec() const {
    return static_cast<double>(bps_) / 1000.0;
  }
  [[nodiscard]] constexpr bool is_unlimited() const {
    return bps_ >= (std::int64_t{1} << 62);
  }
  [[nodiscard]] constexpr bool positive() const { return bps_ > 0; }

  friend constexpr auto operator<=>(BitRate, BitRate) = default;

  friend constexpr BitRate operator+(BitRate a, BitRate b) {
    return BitRate(a.bps_ + b.bps_);
  }
  friend constexpr double operator/(BitRate a, BitRate b) {
    return static_cast<double>(a.bps_) / static_cast<double>(b.bps_);
  }
  friend constexpr BitRate operator*(BitRate a, double k) {
    return BitRate(static_cast<std::int64_t>(static_cast<double>(a.bps_) * k));
  }

 private:
  constexpr explicit BitRate(std::int64_t bps) : bps_(bps) {}
  std::int64_t bps_ = 0;
};

// Human-readable rendering, e.g. "512 kbps", "3 Mbps", "unlimited".
[[nodiscard]] std::string to_string(BitRate r);

// Microseconds needed to push `bytes` through a link of rate `r`.
[[nodiscard]] constexpr std::int64_t transmission_time_us(std::int64_t bytes, BitRate r) {
  if (r.is_unlimited() || !r.positive()) return 0;
  return (bytes * 8 * 1'000'000 + r.bits_per_sec() - 1) / r.bits_per_sec();
}

}  // namespace hg
