// Lightweight always-on assertion macro.
//
// Simulation correctness depends on invariants (event ordering, queue
// conservation, matrix invertibility); these checks are cheap relative to
// event processing, so they stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hg::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "HG_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace hg::detail

#define HG_ASSERT(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::hg::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define HG_ASSERT_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::hg::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
