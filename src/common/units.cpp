#include "common/units.hpp"

#include <cstdio>

namespace hg {

std::string to_string(BitRate r) {
  if (r.is_unlimited()) return "unlimited";
  char buf[32];
  const double k = r.kbits_per_sec();
  if (k >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.4g Mbps", k / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g kbps", k);
  }
  return buf;
}

}  // namespace hg
