// Fundamental identifier types shared by every subsystem.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace hg {

// Identifies a node (peer) in the system. The stream source is a node too.
// Strong type: implicit conversion from integers is not allowed, so a NodeId
// can never be confused with a fanout, an index or a count.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

 private:
  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t value_ = kInvalid;
};

inline constexpr NodeId kInvalidNode{};

// Identifies an event (one stream packet): (window, index-in-window) packed
// into 64 bits. Index 0..data-1 are data packets, data..total-1 parity.
//
// This decomposition is the canonical dense-indexing scheme of the system:
// the stream is windowed by construction (a fixed packet count per window,
// strictly advancing window ids, state garbage-collected below a moving
// cutoff), so every per-event container — the gossip engine's window rings,
// the retransmit tracker, the player's seen-bitmaps — addresses state as
// (window, index) instead of hashing opaque 64-bit ids.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr EventId(std::uint32_t window, std::uint16_t index)
      : v_((static_cast<std::uint64_t>(window) << 16) | index) {}

  [[nodiscard]] static constexpr EventId from_raw(std::uint64_t raw) {
    EventId id;
    id.v_ = raw;
    return id;
  }

  [[nodiscard]] constexpr std::uint64_t raw() const { return v_; }
  [[nodiscard]] constexpr std::uint32_t window() const {
    return static_cast<std::uint32_t>(v_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t index() const {
    return static_cast<std::uint16_t>(v_ & 0xffff);
  }

  // Validity against a deployment's window geometry: a well-formed id of a
  // stream coded at `packets_per_window` packets never carries an index at
  // or beyond it. Ids that fail this came off the wire malformed (or from a
  // misconfigured publisher) and must not be allowed to materialize state.
  [[nodiscard]] constexpr bool index_valid(std::uint32_t packets_per_window) const {
    return index() < packets_per_window;
  }

  friend constexpr auto operator<=>(EventId, EventId) = default;

 private:
  std::uint64_t v_ = 0;
};

}  // namespace hg

// Deliberately NO std::hash specializations for NodeId/EventId: simulation
// state must never live in hash containers (iteration order is bucket-layout
// dependent — the determinism linter rejects them tree-wide), so making the
// ids hashable would only invite the bug back. Test-side hash *models* (e.g.
// the WindowRing equivalence fuzz) define their own local specializations.
