// Fundamental identifier types shared by every subsystem.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace hg {

// Identifies a node (peer) in the system. The stream source is a node too.
// Strong type: implicit conversion from integers is not allowed, so a NodeId
// can never be confused with a fanout, an index or a count.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

 private:
  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t value_ = kInvalid;
};

inline constexpr NodeId kInvalidNode{};

}  // namespace hg

template <>
struct std::hash<hg::NodeId> {
  std::size_t operator()(hg::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
