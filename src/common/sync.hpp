// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable_any that carry the
// Clang thread-safety attributes (common/thread_annotations.hpp). libstdc++'s
// primitives ship without capability annotations, so locking through them is
// invisible to `-Wthread-safety`; locking through these makes every guarded
// access compiler-checked. On non-Clang builds the annotations vanish and the
// wrappers compile down to the standard types.
//
// CondVar wraps condition_variable_any waiting on the Mutex itself (it is
// BasicLockable), so the analysis sees one capability throughout a wait. The
// usual caveat applies: wait() releases the mutex internally while blocked;
// the annotations assert only that the caller holds it at entry and exit,
// which is the contract predicate loops rely on.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace hg::sync {

class HG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HG_ACQUIRE() { mu_.lock(); }
  void unlock() HG_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() HG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII guard; the analysis tracks the capability for the guard's scope.
class HG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HG_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until `pred()` holds; `mu` must be held and is held again on
  // return (released while blocked, like any condition wait).
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) HG_REQUIRES(mu) {
    cv_.wait(mu, pred);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hg::sync
