// Strict parsing of numeric environment knobs (HG_SEEDS, HG_THREADS, ...).
//
// std::strtol-with-silent-fallback turns a typo ("HG_SEEDS=1O") into a
// surprising-but-plausible run; worse, out-of-range values are UB-adjacent
// via unchecked narrowing. Here the whole value must parse as a decimal
// integer within the caller's bounds — anything else terminates with a
// message naming the variable, which is the right behaviour for a knob that
// silently shapes benchmark results.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <climits>
#include <thread>

namespace hg {

// Parses `text` as a decimal integer in [min_value, max_value]. `name` is
// used in diagnostics only. Exits (code 2) on empty input, trailing
// garbage, signs outside the range, or overflow.
[[nodiscard]] inline long parse_env_int(const char* name, const char* text, long min_value,
                                        long max_value) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "%s: empty value (expected an integer in [%ld, %ld])\n", name,
                 min_value, max_value);
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: '%s' is not an integer\n", name, text);
    std::exit(2);
  }
  if (errno == ERANGE || v < min_value || v > max_value) {
    std::fprintf(stderr, "%s: %s out of range [%ld, %ld]\n", name, text, min_value, max_value);
    std::exit(2);
  }
  return v;
}

// getenv wrapper: `fallback` when the variable is unset. An *empty* set
// value is rejected like garbage (it is never what the user meant).
[[nodiscard]] inline long env_int_or(const char* name, long fallback, long min_value,
                                     long max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  return parse_env_int(name, text, min_value, max_value);
}

// HG_WORKERS: intra-run worker threads for the superstep-sharded engine.
// Unset/0 = the classic sequential event loop. Parsed as strictly as
// HG_SEEDS/HG_THREADS: garbage or out-of-range terminates with exit code 2.
[[nodiscard]] inline std::size_t env_workers() {
  return static_cast<std::size_t>(env_int_or("HG_WORKERS", 0, 0, 4096));
}

// HG_PARTITIONS: logical partition count for the superstep-sharded engine.
// Unset/0 = auto (the deployment scales it with the population). Results are
// partition-count-invariant for any count >= 2; the knob exists so CI can
// prove exactly that byte-for-byte.
[[nodiscard]] inline std::uint32_t env_partitions() {
  return static_cast<std::uint32_t>(env_int_or("HG_PARTITIONS", 0, 0, 65536));
}

// Loud sanity check for the two-level thread budget: `workers` intra-run
// threads per job × `threads` concurrent jobs. Oversubscribing cores turns a
// parallelism knob into a slowdown knob, which users reliably misread as a
// regression — warn, don't die (CI runners legitimately overcommit).
inline void warn_if_oversubscribed(std::size_t workers, std::size_t threads) {
  if (workers <= 1 || threads <= 1) return;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  const std::size_t demand = workers * threads;
  if (demand > hw) {
    std::fprintf(stderr,
                 "WARNING: HG_WORKERS=%zu x HG_THREADS=%zu asks for %zu threads on %u "
                 "hardware cores; expect slowdown, not speedup (results are unaffected)\n",
                 workers, threads, demand, hw);
  }
}

}  // namespace hg
