// Move-only type-erased nullary callable with inline small-object storage.
//
// The event queue stores every scheduled callback in one of these. Callables
// up to kInlineBytes that are nothrow-move-constructible live inside the
// object itself — the common simulation callbacks (datagram delivery captures
// ~40 bytes: a fabric pointer plus a Datagram) therefore cost zero heap
// allocations. Larger or throwing-move callables fall back to a single heap
// allocation, exactly like std::function — but with a 48-byte threshold
// instead of libstdc++'s 16.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hg::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> && std::is_invocable_v<D&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = heap_ops<D>();
    }
  }

  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  // Whether the callable lives in the inline buffer (introspection/tests).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct *src into dst, then destroy *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <class D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
        [](void* dst, void* src) noexcept {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
        true,
    };
    return &ops;
  }

  template <class D>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        },
        [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
        false,
    };
    return &ops;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hg::sim
