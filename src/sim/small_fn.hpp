// Move-only type-erased callable with inline small-object storage.
//
// `BasicSmallFn<R(Args...)>` is the general template; `SmallFn` is the
// nullary alias the event queue stores every scheduled callback in.
// Callables up to kInlineBytes that are nothrow-move-constructible live
// inside the object itself — the common simulation callbacks (datagram
// delivery captures ~40 bytes: a fabric pointer plus a Datagram) therefore
// cost zero heap allocations. Larger or throwing-move callables fall back
// to a single heap allocation, exactly like std::function — but with a
// 48-byte threshold instead of libstdc++'s 16. The signal bus
// (core/signal.hpp) stores its subscribers in the non-nullary
// instantiations, so delivery observers get the same allocation model.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hg::sim {

template <class Sig>
class BasicSmallFn;

template <class R, class... Args>
class BasicSmallFn<R(Args...)> {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  BasicSmallFn() = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, BasicSmallFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  BasicSmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = heap_ops<D>();
    }
  }

  BasicSmallFn(BasicSmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  BasicSmallFn& operator=(BasicSmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  BasicSmallFn(const BasicSmallFn&) = delete;
  BasicSmallFn& operator=(const BasicSmallFn&) = delete;

  ~BasicSmallFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  // Whether the callable lives in the inline buffer (introspection/tests).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  R operator()(Args... args) { return ops_->invoke(buf_, std::forward<Args>(args)...); }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Move-construct *src into dst, then destroy *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <class D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* p, Args&&... args) -> R {
          return (*std::launder(reinterpret_cast<D*>(p)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
        true,
    };
    return &ops;
  }

  template <class D>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* p, Args&&... args) -> R {
          return (**std::launder(reinterpret_cast<D**>(p)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        },
        [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
        false,
    };
    return &ops;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// The event queue's callback type: nullary, void.
using SmallFn = BasicSmallFn<void()>;

}  // namespace hg::sim
