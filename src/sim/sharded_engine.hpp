// Superstep-sharded execution of one simulation (Pregel-style).
//
// Nodes are partitioned into P blocks — contiguous by default, or an explicit
// placement map recorded in the run plan — each owned by its own Simulator
// (clock + event queue). The run advances in epochs no wider than the minimum
// cross-partition network latency: every partition drains its local events
// for the epoch in parallel, cross-partition messages accumulate in
// outboxes, and a barrier exchanges and deterministically orders them before
// the next epoch — a message sent during epoch k can only arrive at or after
// the start of epoch k+1, so no partition ever sees an event from its own
// future.
//
// Determinism is by construction, not by scheduling discipline: P is fixed
// by configuration (never derived from the worker count), each partition's
// event order is sequentially deterministic, and the exchange orders imports
// by (arrival time, seed-derived tiebreak, source partition, send index).
// Workers only map partitions onto threads, so any worker count >= 1
// produces bit-identical results. Every partition Simulator is seeded with
// the *run* seed: a node's random streams are functions of its id alone, so
// the partition layout (count or placement) cannot change results either —
// any P >= 2 produces bit-identical output for a given run seed.
//
// P == 1 is a pure delegation shell around one Simulator: control tasks
// become plain events and run_until forwards directly, so a single-partition
// engine is bit-identical to the sequential engine by construction.
//
// Adaptive epoch widening: before each epoch the barrier polls every
// partition's next-event horizon. When the earliest pending event lies past
// the epoch end, the barrier fast-forwards straight to it (capped by the
// next control task and the run bound) instead of grinding through empty
// min-latency epochs — this collapses the quiescent tails of churn and
// startup phases. The widened jump never crosses a scheduled control task,
// and since it only happens when no events exist before the target, no
// partition can emit a datagram inside the skipped span: the epoch-width
// arrival invariant is untouched.
//
// Cross-partition side effects that are *not* datagrams (churn kills, failure
// detection drains, metric snapshots) run as control tasks: single-threaded
// callbacks executed between epochs at their exact timestamp, before any
// partition processes local events carrying the same timestamp — mirroring
// the sequential discipline where same-time churn preempts protocol timers.
// Thread-safety contract: the engine itself is driven by ONE thread (the
// caller of run_until). Worker threads only ever execute inside the two
// pool_.run() phases, during which they touch exclusively their own
// partition's Simulator and bridge state — nothing on this class. Everything
// else here (control_, now_, the epoch counters) is therefore confined to
// the driving thread *between* phases. That discipline is runtime-enforced:
// quiescent() flips around every parallel phase, and entry points that must
// only run between epochs (schedule_control, NetworkFabric::kill, ...)
// HG_ASSERT it — calling them from a worker-driven event aborts the run
// instead of corrupting it. The WorkerPool barrier provides the
// happens-before edges; TSan verifies there is no unsynchronized access
// (see the tsan CI job).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hg::sim {

// Exchange hooks the engine invokes around each epoch. Implemented by the
// network fabric; the sim layer stays free of net dependencies.
class PartitionBridge {
 public:
  virtual ~PartitionBridge() = default;
  // Runs on `partition`'s worker at the start of an epoch, before any event:
  // release resources handed to other partitions last epoch.
  virtual void begin_epoch(std::uint32_t partition) = 0;
  // Runs on `partition`'s worker after the barrier: gather every message
  // destined for this partition, order deterministically, schedule locally.
  virtual void exchange(std::uint32_t partition) = 0;
};

class ShardedEngine {
 public:
  struct Config {
    std::uint32_t partitions = 1;  // P: fixed by config, independent of workers
    std::size_t workers = 1;       // W: threads driving the partitions
    // Maximum superstep width. Must not exceed the minimum cross-partition
    // message latency; zero means "no datagram traffic is epoch-bound" (only
    // valid with partitions == 1, where everything is local).
    SimTime epoch = SimTime::zero();
    // Explicit node -> partition map (size node_count, every partition
    // non-empty). Empty means balanced contiguous blocks. Placement is part
    // of the run plan, not a tuning knob discovered at runtime: with
    // run-seeded partitions it cannot change results, only the volume of
    // cross-partition traffic.
    std::vector<std::uint32_t> placement;
    // Adaptive epoch widening (see file comment). On by default; results are
    // identical either way — only the barrier count changes.
    bool epoch_widening = true;
  };

  // `seed` roots the run exactly like a sequential Simulator(seed):
  // make_rng(tag) returns the same stream either way, and every partition
  // Simulator is seeded with `seed` itself so node-id-salted component
  // streams are independent of the partition layout. `node_count` fixes the
  // partition blocks. Degenerate requests (more partitions than nodes) clamp
  // to a single partition — the delegation shell — rather than to a sea of
  // near-empty shards whose barrier cost would dwarf the run.
  ShardedEngine(std::uint64_t seed, std::size_t node_count, Config config);

  [[nodiscard]] std::uint32_t partitions() const { return partitions_; }
  [[nodiscard]] std::size_t workers() const { return pool_.workers(); }
  [[nodiscard]] SimTime epoch() const { return epoch_; }
  [[nodiscard]] SimTime now() const {
    return partitions_ == 1 ? partition_sims_[0]->now() : now_;
  }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] bool epoch_widening() const { return widen_; }

  // Partition owning a node: placement map if configured, else balanced
  // contiguous blocks (partition p owns nodes [lo, hi)).
  [[nodiscard]] std::uint32_t partition_of(std::uint32_t node_index) const;
  [[nodiscard]] Simulator& sim_of(std::uint32_t partition) {
    return *partition_sims_[partition];
  }
  [[nodiscard]] Simulator& sim_of_node(std::uint32_t node_index) {
    return sim_of(partition_of(node_index));
  }

  // Same root streams as a sequential Simulator(seed) — component streams
  // (population assignment, latency bases, churn) draw identical values in
  // both engines.
  [[nodiscard]] Rng make_rng(std::uint64_t stream_tag) const {
    return root_rng_.fork(stream_tag);
  }

  void set_bridge(PartitionBridge* bridge) { bridge_ = bridge; }

  // Runs `fn` single-threaded at exactly `when` (>= now), between epochs and
  // before local events at the same timestamp. Tasks at equal times run in
  // scheduling order; a task may schedule further control tasks (including at
  // the current time). With one partition the task becomes a plain event on
  // the underlying Simulator (the sequential interleaving).
  void schedule_control(SimTime when, std::function<void()> fn);

  // Advances every partition to `until` in lockstepped epochs; events
  // scheduled exactly at `until` are processed (matching Simulator::run_until).
  // Returns the number of events executed by this call.
  std::uint64_t run_until(SimTime until);

  // Total events executed across all partitions.
  [[nodiscard]] std::uint64_t events_executed() const;

  // Superstep accounting: barrier intervals actually run, and the empty
  // min-latency epochs that adaptive widening skipped over. Both are
  // functions of the seed and the run plan only — identical at every worker
  // count, and (for P >= 2) at every partition count.
  [[nodiscard]] std::uint64_t epochs_run() const { return epochs_run_; }
  [[nodiscard]] std::uint64_t epochs_skipped() const { return epochs_skipped_; }

  // Guard seam for epoch widening: a widened barrier target must never jump
  // past a scheduled control task (churn kills, detector drains, metric
  // snapshots would silently run late). run_until routes every widened jump
  // through this check; exposed so tests can exercise the guard directly.
  void assert_widen_safe(SimTime target) const;

  // True between epochs (workers parked at the barrier) and outside run_until
  // — the only states in which engine/fabric mutation (schedule_control,
  // kill, set_capacity) is legal. False exactly while a parallel phase runs.
  // Relaxed atomic: the flag is written by the driving thread only; a read
  // from a worker can only be a contract violation about to abort, and the
  // atomic keeps that misuse detection itself race-free.
  [[nodiscard]] bool quiescent() const {
    return !in_parallel_phase_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] SimTime next_barrier(SimTime until);
  [[nodiscard]] SimTime widen_target(SimTime t_epoch, SimTime t_cap) const;
  void run_controls_due();

  // Runs `job` over all partitions on the pool with the quiescence flag
  // dropped for the duration (see quiescent()).
  void run_parallel_phase(const std::function<void(std::size_t)>& job);

  std::size_t node_count_;
  std::uint32_t partitions_;
  SimTime epoch_;
  bool widen_ = true;
  Rng root_rng_;
  std::vector<std::unique_ptr<Simulator>> partition_sims_;
  WorkerPool pool_;
  PartitionBridge* bridge_ = nullptr;
  SimTime now_ = SimTime::zero();
  std::atomic<bool> in_parallel_phase_{false};
  // Ordered; equal keys preserve insertion order (multimap inserts at the
  // upper bound of the equal range). Driving thread only, between phases.
  std::multimap<SimTime, std::function<void()>> control_;
  std::vector<std::uint32_t> placement_;  // empty = contiguous blocks
  std::size_t block_base_ = 0;            // nodes per partition block
  std::size_t block_rem_ = 0;             // first block_rem_ partitions hold one extra
  std::uint64_t epochs_run_ = 0;
  std::uint64_t epochs_skipped_ = 0;
};

}  // namespace hg::sim
