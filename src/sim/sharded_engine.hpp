// Superstep-sharded execution of one simulation (Pregel-style).
//
// Nodes are partitioned into P contiguous blocks, each owned by its own
// Simulator (clock + event queue + RNG root). The run advances in epochs no
// wider than the minimum cross-partition network latency: every partition
// drains its local events for the epoch in parallel, cross-partition
// messages accumulate in outboxes, and a barrier exchanges and deterministically
// orders them before the next epoch — a message sent during epoch k can only
// arrive at or after the start of epoch k+1, so no partition ever sees an
// event from its own future.
//
// Determinism is by construction, not by scheduling discipline: P is fixed
// by configuration (never derived from the worker count), each partition's
// event order is sequentially deterministic, and the exchange orders imports
// by (arrival time, seed-derived tiebreak, source partition, send index).
// Workers only map partitions onto threads, so any worker count >= 1
// produces bit-identical results.
//
// Cross-partition side effects that are *not* datagrams (churn kills, failure
// detection drains, metric snapshots) run as control tasks: single-threaded
// callbacks executed between epochs at their exact timestamp, before any
// partition processes local events carrying the same timestamp — mirroring
// the sequential discipline where same-time churn preempts protocol timers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hg::sim {

// Exchange hooks the engine invokes around each epoch. Implemented by the
// network fabric; the sim layer stays free of net dependencies.
class PartitionBridge {
 public:
  virtual ~PartitionBridge() = default;
  // Runs on `partition`'s worker at the start of an epoch, before any event:
  // release resources handed to other partitions last epoch.
  virtual void begin_epoch(std::uint32_t partition) = 0;
  // Runs on `partition`'s worker after the barrier: gather every message
  // destined for this partition, order deterministically, schedule locally.
  virtual void exchange(std::uint32_t partition) = 0;
};

class ShardedEngine {
 public:
  struct Config {
    std::uint32_t partitions = 1;  // P: fixed by config, independent of workers
    std::size_t workers = 1;       // W: threads driving the partitions
    // Maximum superstep width. Must not exceed the minimum cross-partition
    // message latency; zero means "no datagram traffic is epoch-bound" (only
    // valid with partitions == 1, where everything is local).
    SimTime epoch = SimTime::zero();
  };

  // `seed` roots the run exactly like a sequential Simulator(seed):
  // make_rng(tag) returns the same stream either way. `node_count` fixes the
  // contiguous partition blocks.
  ShardedEngine(std::uint64_t seed, std::size_t node_count, Config config);

  [[nodiscard]] std::uint32_t partitions() const { return partitions_; }
  [[nodiscard]] std::size_t workers() const { return pool_.workers(); }
  [[nodiscard]] SimTime epoch() const { return epoch_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  // Balanced contiguous blocks: partition p owns nodes [lo, hi).
  [[nodiscard]] std::uint32_t partition_of(std::uint32_t node_index) const;
  [[nodiscard]] Simulator& sim_of(std::uint32_t partition) {
    return *partition_sims_[partition];
  }
  [[nodiscard]] Simulator& sim_of_node(std::uint32_t node_index) {
    return sim_of(partition_of(node_index));
  }

  // Same root streams as a sequential Simulator(seed) — component streams
  // (population assignment, latency bases, churn) draw identical values in
  // both engines.
  [[nodiscard]] Rng make_rng(std::uint64_t stream_tag) const {
    return root_rng_.fork(stream_tag);
  }

  void set_bridge(PartitionBridge* bridge) { bridge_ = bridge; }

  // Runs `fn` single-threaded at exactly `when` (>= now), between epochs and
  // before local events at the same timestamp. Tasks at equal times run in
  // scheduling order; a task may schedule further control tasks (including at
  // the current time).
  void schedule_control(SimTime when, std::function<void()> fn);

  // Advances every partition to `until` in lockstepped epochs; events
  // scheduled exactly at `until` are processed (matching Simulator::run_until).
  // Returns the number of events executed by this call.
  std::uint64_t run_until(SimTime until);

  // Total events executed across all partitions.
  [[nodiscard]] std::uint64_t events_executed() const;

 private:
  [[nodiscard]] SimTime next_barrier(SimTime until) const;
  void run_controls_due();

  std::size_t node_count_;
  std::uint32_t partitions_;
  SimTime epoch_;
  Rng root_rng_;
  std::vector<std::unique_ptr<Simulator>> partition_sims_;
  WorkerPool pool_;
  PartitionBridge* bridge_ = nullptr;
  SimTime now_ = SimTime::zero();
  // Ordered; equal keys preserve insertion order (multimap inserts at the
  // upper bound of the equal range).
  std::multimap<SimTime, std::function<void()>> control_;
  std::size_t block_base_ = 0;  // nodes per partition block
  std::size_t block_rem_ = 0;   // first block_rem_ partitions hold one extra
};

}  // namespace hg::sim
