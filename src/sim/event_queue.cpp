#include "sim/event_queue.hpp"

namespace hg::sim {

void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel(slot_, gen_);
  queue_ = nullptr;
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->handle_pending(slot_, gen_);
}

void EventQueue::free_slot(std::uint32_t i) {
  Slot& s = slots_[i];
  s.fn.reset();
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = i;
  --live_;
}

void EventQueue::cancel(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots_.size() || slots_[slot].gen != gen) return;  // fired or cancelled
  free_slot(slot);  // heap entry stays behind as a generation-mismatched tombstone
}

bool EventQueue::handle_pending(std::uint32_t slot, std::uint32_t gen) const {
  return slot < slots_.size() && slots_[slot].gen == gen;
}

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!(heap_[parent] > e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[best] > heap_[c]) best = c;
    }
    if (!(e > heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::pop_dead() {
  while (!heap_.empty() && !entry_live(heap_.front())) pop_top();
}

bool EventQueue::run_next(SimTime& now) {
  pop_dead();
  if (heap_.empty()) return false;
  const Entry e = heap_.front();
  pop_top();
  HG_ASSERT_MSG(e.at >= now, "event queue must never run backwards in time");
  now = e.at;
  ++executed_;
  // Move the callback out before freeing: the callback may schedule further
  // events, which can grow (and reallocate) the slot slab.
  SmallFn fn = std::move(slots_[e.slot].fn);
  free_slot(e.slot);  // generation bump: handles report !pending() while running
  fn();
  return true;
}

bool EventQueue::prune_and_empty() {
  pop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  HG_ASSERT(!heap_.empty());
  return heap_.front().at;
}

}  // namespace hg::sim
