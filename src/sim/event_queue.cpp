#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hg::sim {

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
  alive_.reset();
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  auto alive = std::make_shared<bool>(true);
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), alive});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  return EventHandle{std::move(alive)};
}

void EventQueue::schedule_fire_and_forget(SimTime at, EventFn fn) {
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), nullptr});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void EventQueue::pop_dead() {
  while (!heap_.empty() && heap_.front().alive && !*heap_.front().alive) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

bool EventQueue::prune_and_empty() {
  pop_dead();
  return heap_.empty();
}

bool EventQueue::run_next(SimTime& now) {
  pop_dead();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  HG_ASSERT_MSG(e.at >= now, "event queue must never run backwards in time");
  now = e.at;
  ++executed_;
  if (e.alive) *e.alive = false;  // mark fired so handle.pending() is false
  e.fn();
  return true;
}

SimTime EventQueue::next_time() const {
  HG_ASSERT(!heap_.empty());
  return heap_.front().at;
}

}  // namespace hg::sim
