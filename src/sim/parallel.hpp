// Fork-join worker pool for the sharded superstep engine.
//
// A fixed set of persistent threads executes index ranges with a *static*
// assignment (index i runs on worker i % workers): a partition is always
// driven by the same thread, so its thread-local buffer pool keeps recycling
// its own chunks and no state ever migrates between threads mid-run.
// Determinism never depends on this mapping — partitions share nothing while
// a phase runs — but cache and pool locality do.
//
// run() is a barrier: it returns only after every index has been processed.
// The calling thread doubles as worker 0, so a single-worker pool spawns no
// threads at all and adds no synchronization to the sequential path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hg::sim {

class WorkerPool {
 public:
  // `workers` >= 1; workers - 1 threads are spawned (the caller is worker 0).
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  // Executes job(i) for i in [0, n), index i on worker i % workers. Blocks
  // until all indices have completed. Exceptions in jobs are not supported
  // (the simulation aborts on internal errors instead of throwing).
  void run(std::size_t n, const std::function<void(std::size_t)>& job);

 private:
  void thread_main(std::size_t worker);
  void run_share(std::size_t worker);

  std::size_t workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_ = 0;     // bumped per run(); threads wait for the next round
  std::size_t n_ = 0;           // indices in the current round
  std::size_t pending_ = 0;     // workers still running the current round
  const std::function<void(std::size_t)>* job_ = nullptr;
  bool stop_ = false;
};

}  // namespace hg::sim
