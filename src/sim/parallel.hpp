// Fork-join worker pool for the sharded superstep engine.
//
// A fixed set of persistent threads executes index ranges with a *static*
// assignment (index i runs on worker i % workers): a partition is always
// driven by the same thread, so its thread-local buffer pool keeps recycling
// its own chunks and no state ever migrates between threads mid-run.
// Determinism never depends on this mapping — partitions share nothing while
// a phase runs — but cache and pool locality do.
//
// run() is a barrier: it returns only after every index has been processed.
// The calling thread doubles as worker 0, so a single-worker pool spawns no
// threads at all and adds no synchronization to the sequential path.
//
// The locking protocol is compiler-checked: every cross-thread field is
// HG_GUARDED_BY(mu_), and Clang's -Wthread-safety rejects any access outside
// the lock at compile time (see common/thread_annotations.hpp). The round
// payload (n_, job_) is written under mu_ before the round counter bumps and
// read by workers only after they observe the bump under the same lock, so
// the handoff needs no atomics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace hg::sim {

class WorkerPool {
 public:
  // `workers` >= 1; workers - 1 threads are spawned (the caller is worker 0).
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool() HG_EXCLUDES(mu_);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  // Executes job(i) for i in [0, n), index i on worker i % workers. Blocks
  // until all indices have completed. Exceptions in jobs are not supported
  // (the simulation aborts on internal errors instead of throwing).
  void run(std::size_t n, const std::function<void(std::size_t)>& job) HG_EXCLUDES(mu_);

 private:
  void thread_main(std::size_t worker) HG_EXCLUDES(mu_);

  std::size_t workers_;
  std::vector<std::thread> threads_;

  sync::Mutex mu_;
  sync::CondVar start_cv_;
  sync::CondVar done_cv_;
  // Bumped per run(); threads wait for the next round.
  std::uint64_t round_ HG_GUARDED_BY(mu_) = 0;
  // Indices in the current round.
  std::size_t n_ HG_GUARDED_BY(mu_) = 0;
  // Workers still running the current round.
  std::size_t pending_ HG_GUARDED_BY(mu_) = 0;
  const std::function<void(std::size_t)>* job_ HG_GUARDED_BY(mu_) = nullptr;
  bool stop_ HG_GUARDED_BY(mu_) = false;
};

}  // namespace hg::sim
