#include "sim/simulator.hpp"

namespace hg::sim {

Simulator::Simulator(std::uint64_t seed) : root_rng_(seed) {}

void Simulator::PeriodicHandle::cancel() {
  if (active_) *active_ = false;
  active_.reset();
}

bool Simulator::PeriodicHandle::active() const { return active_ && *active_; }

// One control-block + one callback allocation per timer *lifetime*; the
// per-tick closure below (this + 2 shared_ptrs + period = 48 bytes) fits the
// queue's inline callback storage, so ticking allocates nothing.
void Simulator::schedule_periodic(std::shared_ptr<bool> active, SimTime period,
                                  std::shared_ptr<EventFn> fn) {
  queue_.schedule_fire_and_forget(now_ + period, [this, active, period, fn]() {
    if (!*active) return;
    (*fn)();
    if (*active) schedule_periodic(active, period, fn);
  });
}

Simulator::PeriodicHandle Simulator::every(SimTime initial_delay, SimTime period, EventFn fn) {
  HG_ASSERT(period > SimTime::zero());
  PeriodicHandle handle;
  handle.active_ = std::make_shared<bool>(true);
  auto shared_fn = std::make_shared<EventFn>(std::move(fn));
  auto active = handle.active_;
  queue_.schedule_fire_and_forget(now_ + initial_delay, [this, active, period, shared_fn]() {
    if (!*active) return;
    (*shared_fn)();
    if (*active) schedule_periodic(active, period, shared_fn);
  });
  return handle;
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.prune_and_empty()) {
    if (queue_.next_time() > until) break;
    if (queue_.run_next(now_)) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

std::uint64_t Simulator::run_to_completion() {
  std::uint64_t ran = 0;
  while (queue_.run_next(now_)) ++ran;
  return ran;
}

}  // namespace hg::sim
