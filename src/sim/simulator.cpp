#include "sim/simulator.hpp"

namespace hg::sim {

Simulator::Simulator(std::uint64_t seed) : root_rng_(seed) {}

void Simulator::PeriodicHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_timer(slot_, gen_);
  sim_ = nullptr;
}

bool Simulator::PeriodicHandle::active() const {
  return sim_ != nullptr && sim_->timer_active(slot_, gen_);
}

void Simulator::cancel_timer(std::uint32_t slot, std::uint32_t gen) {
  // Only deactivate: an active timer always has exactly one pending tick,
  // and that tick reclaims the slot (freeing here would destroy `fn` while
  // the tick that is running it sits on the stack during self-cancel).
  if (slot < timers_.size() && timers_[slot].gen == gen) timers_[slot].active = false;
}

bool Simulator::timer_active(std::uint32_t slot, std::uint32_t gen) const {
  return slot < timers_.size() && timers_[slot].gen == gen && timers_[slot].active;
}

void Simulator::free_timer_slot(std::uint32_t slot) {
  TimerSlot& t = timers_[slot];
  ++t.gen;  // invalidate outstanding handles before the slot is reused
  t.fn = nullptr;
  t.active = false;
  t.next_free = timer_free_head_;
  timer_free_head_ = slot;
}

void Simulator::timer_tick(std::uint32_t slot, std::uint32_t gen) {
  if (timers_[slot].gen != gen) return;  // slot already reclaimed and reused
  if (!timers_[slot].active) {
    free_timer_slot(slot);  // cancelled since the last tick
    return;
  }
  // Run the callback from a stack local: it may arm new timers (reallocating
  // the slab under any reference into it) or cancel its own (which must not
  // destroy the object being invoked).
  EventFn fn = std::move(timers_[slot].fn);
  fn();
  TimerSlot& t = timers_[slot];  // slab may have moved during fn()
  HG_ASSERT(t.gen == gen);       // the slot cannot be reused while its tick runs
  if (!t.active) {
    free_timer_slot(slot);
    return;
  }
  t.fn = std::move(fn);
  queue_.schedule_fire_and_forget(now_ + t.period,
                                  [this, slot, gen]() { timer_tick(slot, gen); });
}

Simulator::PeriodicHandle Simulator::every(SimTime initial_delay, SimTime period, EventFn fn) {
  HG_ASSERT(period > SimTime::zero());
  std::uint32_t slot;
  if (timer_free_head_ != kNilTimer) {
    slot = timer_free_head_;
    timer_free_head_ = timers_[slot].next_free;
  } else {
    HG_ASSERT_MSG(timers_.size() < kNilTimer, "periodic timer slab exhausted");
    slot = static_cast<std::uint32_t>(timers_.size());
    timers_.emplace_back();
  }
  TimerSlot& t = timers_[slot];
  t.fn = std::move(fn);
  t.period = period;
  t.active = true;
  const std::uint32_t gen = t.gen;
  queue_.schedule_fire_and_forget(now_ + initial_delay,
                                  [this, slot, gen]() { timer_tick(slot, gen); });
  return PeriodicHandle{this, slot, gen};
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.prune_and_empty()) {
    if (queue_.next_time() > until) break;
    if (queue_.run_next(now_)) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

std::uint64_t Simulator::run_before(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.prune_and_empty()) {
    if (queue_.next_time() >= until) break;
    if (queue_.run_next(now_)) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

std::uint64_t Simulator::run_to_completion() {
  std::uint64_t ran = 0;
  while (queue_.run_next(now_)) ++ran;
  return ran;
}

}  // namespace hg::sim
