// Pending-event set of the discrete-event simulator.
//
// A binary heap keyed by (time, sequence-number): events at equal times fire
// in scheduling order, which keeps runs deterministic. Cancellation is lazy —
// a cancelled entry stays in the heap and is skipped on pop — because the
// dominant consumers (retransmission timers that almost always get cancelled)
// are cheaper this way than with a tombstone-free structure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace hg::sim {

using EventFn = std::function<void()>;

// Token for cancelling a scheduled event. Default-constructed handles are
// inert; cancel() on an already-fired or cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle schedule(SimTime at, EventFn fn);

  // Schedules without allocating a cancellation token (hot path: network
  // deliveries are never cancelled).
  void schedule_fire_and_forget(SimTime at, EventFn fn);

  // Pops and runs the earliest live event; returns false when empty.
  // `now` is updated to the event's timestamp before the callback runs.
  bool run_next(SimTime& now);

  // Removes cancelled entries from the front, then reports whether a live
  // event remains. O(1) amortized: each tombstone is popped exactly once.
  [[nodiscard]] bool prune_and_empty();

  // Entries in the heap, including cancelled-but-unpopped tombstones.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  // Precondition: prune_and_empty() returned false; next live timestamp.
  [[nodiscard]] SimTime next_time() const;

  // Total events executed so far (for perf accounting and tests).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> alive;  // null => not cancellable

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void pop_dead();

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hg::sim
