// Pending-event set of the discrete-event simulator.
//
// Two structures cooperate:
//
//  * a slab of pooled slots holding the callbacks (SmallFn: callables up to
//    48 bytes are stored inline — the datagram-delivery hot path allocates
//    nothing). Freed slots go on a free list and are reused; each slot
//    carries a generation counter so stale handles and stale heap entries
//    are detected after reuse.
//  * a 4-ary heap of plain-old-data entries keyed by (time, sequence
//    number): events at equal times fire in scheduling order, which keeps
//    runs deterministic. Sift operations move 24-byte PODs, never callbacks;
//    the 4-way branching halves the tree height and keeps sibling groups in
//    one cache line, which is where a 100k-event backlog spends its time.
//
// Cancellation frees the slot immediately (the callback dies right away) and
// leaves the heap entry behind as a tombstone — detected by generation
// mismatch and skipped on pop. The dominant consumers (retransmission timers
// that almost always get cancelled) are cheaper this way than with a
// tombstone-free structure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace hg::sim {

// Type-erased callback alias, kept for signatures that store callbacks
// long-term (periodic timers, retransmit owners). Scheduling itself is
// templated and does not round-trip through std::function.
using EventFn = std::function<void()>;

class EventQueue;

// Token for cancelling a scheduled event. Default-constructed handles are
// inert; cancel() on an already-fired or cancelled event is a no-op. A
// handle refers into its queue's slot pool and must not outlive the queue.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  template <class F>
  EventHandle schedule(SimTime at, F&& fn) {
    const std::uint32_t slot = alloc_slot(std::forward<F>(fn));
    push_entry(at, 0, slot);
    return EventHandle{this, slot, slots_[slot].gen};
  }

  // Like schedule, but with an explicit secondary ordering key: events at
  // equal times run in (key2, scheduling order). The sharded engine keys
  // datagram deliveries by their seed-derived exchange tiebreak so that
  // same-microsecond arrivals at one node order identically whether they
  // were scheduled locally during an epoch or imported at a barrier —
  // ordering becomes a function of the seed, not of the partition layout.
  // Every plain schedule uses key2 == 0, so the sequential engine's
  // (time, scheduling order) contract is bit-for-bit unchanged.
  template <class F>
  EventHandle schedule_keyed(SimTime at, std::uint64_t key2, F&& fn) {
    const std::uint32_t slot = alloc_slot(std::forward<F>(fn));
    push_entry(at, key2, slot);
    return EventHandle{this, slot, slots_[slot].gen};
  }

  // Schedules without returning a cancellation token (hot path: network
  // deliveries are never cancelled). Identical storage; the only saving is
  // not materializing the handle.
  template <class F>
  void schedule_fire_and_forget(SimTime at, F&& fn) {
    push_entry(at, 0, alloc_slot(std::forward<F>(fn)));
  }

  template <class F>
  void schedule_keyed_fire_and_forget(SimTime at, std::uint64_t key2, F&& fn) {
    push_entry(at, key2, alloc_slot(std::forward<F>(fn)));
  }

  // Pops and runs the earliest live event; returns false when empty.
  // `now` is updated to the event's timestamp before the callback runs.
  bool run_next(SimTime& now);

  // Removes cancelled entries from the front, then reports whether a live
  // event remains. O(1) amortized: each tombstone is popped exactly once.
  [[nodiscard]] bool prune_and_empty();

  // Entries in the heap, including cancelled-but-unpopped tombstones.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  // Precondition: prune_and_empty() returned false; next live timestamp.
  [[nodiscard]] SimTime next_time() const;

  // Total events executed so far (for perf accounting and tests).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  // Pool introspection (tests/benchmarks).
  [[nodiscard]] std::size_t live_events() const { return live_; }
  [[nodiscard]] std::size_t pool_slots() const { return slots_.size(); }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Slot {
    SmallFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
  };

  // POD heap record; liveness = generation match against the slot.
  struct Entry {
    SimTime at;
    std::uint64_t key2;  // secondary order at equal times; 0 for plain events
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      if (key2 != o.key2) return key2 > o.key2;
      return seq > o.seq;
    }
  };

  static constexpr std::size_t kHeapArity = 4;

  template <class F>
  std::uint32_t alloc_slot(F&& fn) {
    std::uint32_t i;
    if (free_head_ != kNilSlot) {
      i = free_head_;
      free_head_ = slots_[i].next_free;
      slots_[i].fn = SmallFn(std::forward<F>(fn));
    } else {
      HG_ASSERT_MSG(slots_.size() < kNilSlot, "event slot pool exhausted");
      i = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      slots_[i].fn = SmallFn(std::forward<F>(fn));
    }
    ++live_;
    return i;
  }

  // Destroys the callback and recycles the slot. The generation bump
  // invalidates every outstanding handle/heap entry referring to it. (A
  // slot would need 2^32 reuses for a stale handle to alias a new event.)
  void free_slot(std::uint32_t i);

  void push_entry(SimTime at, std::uint64_t key2, std::uint32_t slot) {
    heap_.push_back(Entry{at, key2, next_seq_++, slot, slots_[slot].gen});
    sift_up(heap_.size() - 1);
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  // Removes heap_[0] (min), maintaining the heap property.
  void pop_top();

  void cancel(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool handle_pending(std::uint32_t slot, std::uint32_t gen) const;
  [[nodiscard]] bool entry_live(const Entry& e) const { return slots_[e.slot].gen == e.gen; }
  void pop_dead();

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
};

}  // namespace hg::sim
