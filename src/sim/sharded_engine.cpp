#include "sim/sharded_engine.hpp"

#include "common/assert.hpp"

namespace hg::sim {

ShardedEngine::ShardedEngine(std::uint64_t seed, std::size_t node_count, Config config)
    : node_count_(node_count),
      partitions_(config.partitions == 0 ? 1 : config.partitions),
      epoch_(config.epoch),
      root_rng_(seed),
      pool_(config.workers == 0 ? 1 : config.workers) {
  if (node_count_ > 0 && partitions_ > node_count_) {
    partitions_ = static_cast<std::uint32_t>(node_count_);
  }
  HG_ASSERT_MSG(partitions_ == 1 || epoch_ > SimTime::zero(),
                "multiple partitions require a positive epoch width (the minimum "
                "cross-partition latency)");
  partition_sims_.reserve(partitions_);
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    // Distinct per-partition seed, mixed so neighbouring p never produce
    // correlated xoshiro states; partition 0 must not alias the root seed.
    std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * (p + 1));
    partition_sims_.push_back(std::make_unique<Simulator>(splitmix64(state)));
  }
  block_base_ = partitions_ > 0 ? node_count_ / partitions_ : 0;
  block_rem_ = partitions_ > 0 ? node_count_ % partitions_ : 0;
}

std::uint32_t ShardedEngine::partition_of(std::uint32_t node_index) const {
  HG_ASSERT(node_index < node_count_);
  // The first block_rem_ partitions hold (base + 1) nodes, the rest base.
  const std::size_t i = node_index;
  const std::size_t wide = block_rem_ * (block_base_ + 1);
  if (i < wide) return static_cast<std::uint32_t>(i / (block_base_ + 1));
  return static_cast<std::uint32_t>(block_rem_ + (i - wide) / block_base_);
}

void ShardedEngine::schedule_control(SimTime when, std::function<void()> fn) {
  HG_ASSERT_MSG(when >= now_, "cannot schedule a control task into the past");
  control_.emplace(when, std::move(fn));
}

void ShardedEngine::run_controls_due() {
  while (!control_.empty() && control_.begin()->first <= now_) {
    auto it = control_.begin();
    auto fn = std::move(it->second);
    control_.erase(it);
    fn();  // may schedule further control tasks, including at now_
  }
}

SimTime ShardedEngine::next_barrier(SimTime until) const {
  SimTime next = until;
  if (epoch_ > SimTime::zero() && now_ + epoch_ < next) next = now_ + epoch_;
  if (!control_.empty() && control_.begin()->first < next) next = control_.begin()->first;
  return next;
}

std::uint64_t ShardedEngine::run_until(SimTime until) {
  HG_ASSERT_MSG(until >= now_, "cannot run into the past");
  const std::uint64_t before = events_executed();
  run_controls_due();  // tasks armed at exactly now_ (e.g. time zero)
  while (now_ < until) {
    const SimTime next = next_barrier(until);
    // Epoch phase: each partition first releases the messages it handed out
    // last epoch, then drains its local events strictly before the barrier.
    // Events *at* the barrier time wait for control tasks carrying the same
    // timestamp (churn preempts same-time protocol activity, as in the
    // sequential engine).
    pool_.run(partitions_, [&](std::size_t p) {
      if (bridge_ != nullptr) bridge_->begin_epoch(static_cast<std::uint32_t>(p));
      partition_sims_[p]->run_before(next);
    });
    // Exchange phase: import cross-partition messages on their destination's
    // worker, in deterministic order. Arrivals are >= next by the epoch
    // invariant (send time >= epoch start, delay >= epoch width).
    if (bridge_ != nullptr) {
      pool_.run(partitions_,
                [&](std::size_t p) { bridge_->exchange(static_cast<std::uint32_t>(p)); });
    }
    now_ = next;
    run_controls_due();
  }
  // Inclusive tail: events scheduled exactly at `until` run (the sequential
  // run_until contract). Cross-partition messages they emit arrive strictly
  // after `until` and stay queued, as they would in a sequential run.
  pool_.run(partitions_, [&](std::size_t p) {
    if (bridge_ != nullptr) bridge_->begin_epoch(static_cast<std::uint32_t>(p));
    partition_sims_[p]->run_until(until);
  });
  return events_executed() - before;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : partition_sims_) total += s->events_executed();
  return total;
}

}  // namespace hg::sim
