#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hg::sim {

ShardedEngine::ShardedEngine(std::uint64_t seed, std::size_t node_count, Config config)
    : node_count_(node_count),
      partitions_(config.partitions == 0 ? 1 : config.partitions),
      epoch_(config.epoch),
      widen_(config.epoch_widening),
      root_rng_(seed),
      pool_(config.workers == 0 ? 1 : config.workers) {
  if (node_count_ > 0 && partitions_ > node_count_) {
    // More partitions than nodes is a degenerate plan (empty shards would
    // still pay every barrier). Collapse to the single-partition delegation
    // shell, which is bit-identical to the sequential engine.
    HG_LOG_WARN("partitions (%u) exceed node count (%zu); clamping to 1",
                partitions_, node_count_);
    partitions_ = 1;
  }
  HG_ASSERT_MSG(partitions_ == 1 || epoch_ > SimTime::zero(),
                "multiple partitions require a positive epoch width (the minimum "
                "cross-partition latency)");
  if (partitions_ > 1 && !config.placement.empty()) {
    HG_ASSERT_MSG(config.placement.size() == node_count_,
                  "placement map must cover every node");
    std::vector<std::size_t> sizes(partitions_, 0);
    for (std::uint32_t p : config.placement) {
      HG_ASSERT_MSG(p < partitions_, "placement entry names a nonexistent partition");
      ++sizes[p];
    }
    for (std::uint32_t p = 0; p < partitions_; ++p) {
      HG_ASSERT_MSG(sizes[p] > 0, "placement map leaves a partition empty");
    }
    placement_ = std::move(config.placement);
  }
  partition_sims_.reserve(partitions_);
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    // Every partition runs off the *run* seed: component streams fork from it
    // salted by node id (or stream tag), never by partition, so the partition
    // layout cannot perturb any random draw.
    partition_sims_.push_back(std::make_unique<Simulator>(seed));
  }
  block_base_ = partitions_ > 0 ? node_count_ / partitions_ : 0;
  block_rem_ = partitions_ > 0 ? node_count_ % partitions_ : 0;
}

std::uint32_t ShardedEngine::partition_of(std::uint32_t node_index) const {
  HG_ASSERT(node_index < node_count_);
  if (!placement_.empty()) return placement_[node_index];
  // The first block_rem_ partitions hold (base + 1) nodes, the rest base.
  const std::size_t i = node_index;
  const std::size_t wide = block_rem_ * (block_base_ + 1);
  if (i < wide) return static_cast<std::uint32_t>(i / (block_base_ + 1));
  return static_cast<std::uint32_t>(block_rem_ + (i - wide) / block_base_);
}

void ShardedEngine::schedule_control(SimTime when, std::function<void()> fn) {
  if (partitions_ == 1) {
    // Delegation shell: control tasks are ordinary events, interleaved with
    // protocol events purely by (time, scheduling order) — the sequential
    // discipline.
    partition_sims_[0]->at(when, std::move(fn));
    return;
  }
  HG_ASSERT_MSG(quiescent(),
                "schedule_control called from inside a parallel phase; control tasks "
                "may only be scheduled between epochs (setup code or another control "
                "task), never from a worker-driven event");
  HG_ASSERT_MSG(when >= now_, "cannot schedule a control task into the past");
  control_.emplace(when, std::move(fn));
}

void ShardedEngine::run_controls_due() {
  while (!control_.empty() && control_.begin()->first <= now_) {
    auto it = control_.begin();
    auto fn = std::move(it->second);
    control_.erase(it);
    fn();  // may schedule further control tasks, including at now_
  }
}

void ShardedEngine::assert_widen_safe(SimTime target) const {
  HG_ASSERT_MSG(target >= now_, "widened barrier target lies in the past");
  HG_ASSERT_MSG(control_.empty() || control_.begin()->first >= target,
                "epoch widening must not jump past a scheduled control task");
}

SimTime ShardedEngine::widen_target(SimTime t_epoch, SimTime t_cap) const {
  // Earliest pending event across all partitions. Computed at the barrier,
  // after the previous exchange: every in-flight datagram is already queued
  // at its destination, so the horizon is a function of the run state alone —
  // identical at every worker and partition count.
  std::optional<SimTime> horizon;
  for (const auto& s : partition_sims_) {
    const auto t = s->next_event_time();
    if (t.has_value() && (!horizon.has_value() || *t < *horizon)) horizon = *t;
  }
  if (!horizon.has_value()) return t_cap;   // fully quiescent: next control/bound
  if (*horizon < t_epoch) return t_epoch;   // work inside the epoch: no widening
  return std::min(*horizon, t_cap);
}

SimTime ShardedEngine::next_barrier(SimTime until) {
  // Control tasks and the run bound cap every barrier, widened or not.
  SimTime cap = until;
  if (!control_.empty() && control_.begin()->first < cap) cap = control_.begin()->first;
  if (epoch_ <= SimTime::zero() || now_ + epoch_ >= cap) return cap;
  const SimTime t_epoch = now_ + epoch_;
  if (!widen_) return t_epoch;
  const SimTime target = widen_target(t_epoch, cap);
  if (target > t_epoch) {
    assert_widen_safe(target);
    // Count the empty min-latency epochs this jump replaces. ceil((target -
    // now) / epoch) barriers would have run; this one counts as run below.
    const std::int64_t span = (target - now_).as_us();
    const std::int64_t w = epoch_.as_us();
    epochs_skipped_ += static_cast<std::uint64_t>((span + w - 1) / w - 1);
  }
  return target;
}

void ShardedEngine::run_parallel_phase(const std::function<void(std::size_t)>& job) {
  in_parallel_phase_.store(true, std::memory_order_relaxed);
  pool_.run(partitions_, job);
  in_parallel_phase_.store(false, std::memory_order_relaxed);
}

std::uint64_t ShardedEngine::run_until(SimTime until) {
  if (partitions_ == 1) return partition_sims_[0]->run_until(until);
  HG_ASSERT_MSG(until >= now_, "cannot run into the past");
  const std::uint64_t before = events_executed();
  run_controls_due();  // tasks armed at exactly now_ (e.g. time zero)
  while (now_ < until) {
    const SimTime next = next_barrier(until);
    ++epochs_run_;
    // Epoch phase: each partition first releases the messages it handed out
    // last epoch, then drains its local events strictly before the barrier.
    // Events *at* the barrier time wait for control tasks carrying the same
    // timestamp (churn preempts same-time protocol activity, as in the
    // sequential engine).
    run_parallel_phase([&](std::size_t p) {
      if (bridge_ != nullptr) bridge_->begin_epoch(static_cast<std::uint32_t>(p));
      partition_sims_[p]->run_before(next);
    });
    // Exchange phase: import cross-partition messages on their destination's
    // worker, in deterministic order. Arrivals are >= next by the epoch
    // invariant (send time >= epoch start, delay >= epoch width).
    if (bridge_ != nullptr) {
      run_parallel_phase([&](std::size_t p) { bridge_->exchange(static_cast<std::uint32_t>(p)); });
    }
    now_ = next;
    run_controls_due();
  }
  // Inclusive tail: events scheduled exactly at `until` run (the sequential
  // run_until contract). Cross-partition messages they emit arrive strictly
  // after `until` and stay queued, as they would in a sequential run.
  run_parallel_phase([&](std::size_t p) {
    if (bridge_ != nullptr) bridge_->begin_epoch(static_cast<std::uint32_t>(p));
    partition_sims_[p]->run_until(until);
  });
  return events_executed() - before;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : partition_sims_) total += s->events_executed();
  return total;
}

}  // namespace hg::sim
