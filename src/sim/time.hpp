// Simulated time.
//
// SimTime is a count of microseconds since the start of the run. Strongly
// typed so wall-clock numbers, durations and other integers cannot be mixed
// up silently.
#pragma once

#include <compare>
#include <cstdint>

namespace hg::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime us(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1000}; }
  [[nodiscard]] static constexpr SimTime sec(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::int64_t{0x7fffffffffffffff}};
  }

  [[nodiscard]] constexpr std::int64_t as_us() const { return us_; }
  [[nodiscard]] constexpr double as_ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double as_sec() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us_ + b.us_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us_ - b.us_}; }
  constexpr SimTime& operator+=(SimTime o) {
    us_ += o.us_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.us_ * k}; }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace hg::sim
