// The simulation driver: virtual clock + event loop + periodic timers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace hg::sim {

class Simulator {
 public:
  // `seed` roots every derived random stream in the run.
  explicit Simulator(std::uint64_t seed);

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule at an absolute virtual time (must not be in the past).
  EventHandle at(SimTime when, EventFn fn);
  // Schedule after a delay from now.
  EventHandle after(SimTime delay, EventFn fn);
  // Non-cancellable fast path.
  void after_fire_and_forget(SimTime delay, EventFn fn);

  // Repeats `fn` every `period` until the returned handle is cancelled or the
  // run ends. First invocation after `initial_delay`. The callback may cancel
  // its own timer.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();
    [[nodiscard]] bool active() const;

   private:
    friend class Simulator;
    std::shared_ptr<bool> active_;
  };
  PeriodicHandle every(SimTime initial_delay, SimTime period, EventFn fn);

  // Runs until the queue drains or virtual time would exceed `until`.
  // Returns the number of events executed by this call.
  std::uint64_t run_until(SimTime until);

  // Drain everything (tests; real experiments always bound time).
  std::uint64_t run_to_completion();

  // Derive a deterministic, component-specific random stream.
  [[nodiscard]] Rng make_rng(std::uint64_t stream_tag) const { return root_rng_.fork(stream_tag); }

  [[nodiscard]] std::uint64_t events_executed() const { return queue_.executed(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  void schedule_periodic(std::shared_ptr<bool> active, SimTime period,
                         std::shared_ptr<EventFn> fn);

  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  Rng root_rng_;
};

}  // namespace hg::sim
