// The simulation driver: virtual clock + event loop + periodic timers.
//
// Scheduling is templated end-to-end: a lambda passed to at()/after() lands
// directly in the event queue's pooled slot storage without a std::function
// round-trip, so the common paths allocate nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace hg::sim {

class Simulator {
 public:
  // `seed` roots every derived random stream in the run.
  explicit Simulator(std::uint64_t seed);

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule at an absolute virtual time (must not be in the past).
  template <class F>
  EventHandle at(SimTime when, F&& fn) {
    HG_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    return queue_.schedule(when, std::forward<F>(fn));
  }

  // Schedule after a delay from now.
  template <class F>
  EventHandle after(SimTime delay, F&& fn) {
    HG_ASSERT(delay >= SimTime::zero());
    return queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  // Non-cancellable fast path.
  template <class F>
  void after_fire_and_forget(SimTime delay, F&& fn) {
    HG_ASSERT(delay >= SimTime::zero());
    queue_.schedule_fire_and_forget(now_ + delay, std::forward<F>(fn));
  }

  // Repeats `fn` every `period` until the returned handle is cancelled or the
  // run ends. First invocation after `initial_delay`. The callback may cancel
  // its own timer.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();
    [[nodiscard]] bool active() const;

   private:
    friend class Simulator;
    std::shared_ptr<bool> active_;
  };
  PeriodicHandle every(SimTime initial_delay, SimTime period, EventFn fn);

  // Runs until the queue drains or virtual time would exceed `until`.
  // Returns the number of events executed by this call.
  std::uint64_t run_until(SimTime until);

  // Drain everything (tests; real experiments always bound time).
  std::uint64_t run_to_completion();

  // Derive a deterministic, component-specific random stream.
  [[nodiscard]] Rng make_rng(std::uint64_t stream_tag) const { return root_rng_.fork(stream_tag); }

  [[nodiscard]] std::uint64_t events_executed() const { return queue_.executed(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  void schedule_periodic(std::shared_ptr<bool> active, SimTime period,
                         std::shared_ptr<EventFn> fn);

  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  Rng root_rng_;
};

}  // namespace hg::sim
