// The simulation driver: virtual clock + event loop + periodic timers.
//
// Scheduling is templated end-to-end: a lambda passed to at()/after() lands
// directly in the event queue's pooled slot storage without a std::function
// round-trip, so the common paths allocate nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace hg::sim {

class Simulator {
 public:
  // `seed` roots every derived random stream in the run.
  explicit Simulator(std::uint64_t seed);

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule at an absolute virtual time (must not be in the past).
  template <class F>
  EventHandle at(SimTime when, F&& fn) {
    HG_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    return queue_.schedule(when, std::forward<F>(fn));
  }

  // Schedule after a delay from now.
  template <class F>
  EventHandle after(SimTime delay, F&& fn) {
    HG_ASSERT(delay >= SimTime::zero());
    return queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  // Non-cancellable fast path.
  template <class F>
  void after_fire_and_forget(SimTime delay, F&& fn) {
    HG_ASSERT(delay >= SimTime::zero());
    queue_.schedule_fire_and_forget(now_ + delay, std::forward<F>(fn));
  }

  // Keyed scheduling (see EventQueue::schedule_keyed): events at equal times
  // order by key2 before scheduling order. The sharded fabric keys datagram
  // deliveries by their seed-derived tiebreak so same-time arrivals at one
  // node order identically at every partition count.
  template <class F>
  EventHandle at_keyed(SimTime when, std::uint64_t key2, F&& fn) {
    HG_ASSERT_MSG(when >= now_, "cannot schedule into the past");
    return queue_.schedule_keyed(when, key2, std::forward<F>(fn));
  }

  template <class F>
  void after_keyed_fire_and_forget(SimTime delay, std::uint64_t key2, F&& fn) {
    HG_ASSERT(delay >= SimTime::zero());
    queue_.schedule_keyed_fire_and_forget(now_ + delay, key2, std::forward<F>(fn));
  }

  // Timestamp of the earliest live pending event, or nullopt when the queue
  // is (or prunes to) empty. The sharded engine polls this at barriers to
  // fast-forward over epochs no partition has work for.
  [[nodiscard]] std::optional<SimTime> next_event_time() {
    if (queue_.prune_and_empty()) return std::nullopt;
    return queue_.next_time();
  }

  // Repeats `fn` every `period` until the returned handle is cancelled or the
  // run ends. First invocation after `initial_delay`. The callback may cancel
  // its own timer.
  //
  // Timer state lives in a pooled slab inside the simulator (parallel to the
  // event queue's slot pool): one slab record per timer lifetime, reused via
  // a free list, with a generation counter guarding stale handles — no
  // shared_ptr control blocks, and the per-tick closure is two words (slot +
  // generation), well inside the queue's inline callback storage. A 100k-node
  // run arms a few timers per node; the slab keeps them dense instead of
  // scattering 100k+ control blocks across the heap.
  //
  // Handles are cheap value types; they must not outlive the simulator.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();
    [[nodiscard]] bool active() const;

   private:
    friend class Simulator;
    PeriodicHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
        : sim_(sim), slot_(slot), gen_(gen) {}

    Simulator* sim_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };
  PeriodicHandle every(SimTime initial_delay, SimTime period, EventFn fn);

  // Runs until the queue drains or virtual time would exceed `until`.
  // Returns the number of events executed by this call.
  std::uint64_t run_until(SimTime until);

  // Like run_until but *exclusive*: processes events strictly before `until`,
  // then advances the clock to `until`. The sharded engine steps partitions in
  // epochs [T, T') with this, so events at an epoch boundary run after the
  // barrier's control tasks (churn, detection) carrying the same timestamp.
  std::uint64_t run_before(SimTime until);

  // Drain everything (tests; real experiments always bound time).
  std::uint64_t run_to_completion();

  // Derive a deterministic, component-specific random stream.
  [[nodiscard]] Rng make_rng(std::uint64_t stream_tag) const { return root_rng_.fork(stream_tag); }

  [[nodiscard]] std::uint64_t events_executed() const { return queue_.executed(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  static constexpr std::uint32_t kNilTimer = 0xffffffffu;

  struct TimerSlot {
    EventFn fn;
    SimTime period;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilTimer;
    bool active = false;
  };

  void timer_tick(std::uint32_t slot, std::uint32_t gen);
  void free_timer_slot(std::uint32_t slot);
  void cancel_timer(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool timer_active(std::uint32_t slot, std::uint32_t gen) const;

  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  std::vector<TimerSlot> timers_;
  std::uint32_t timer_free_head_ = kNilTimer;
  Rng root_rng_;
};

}  // namespace hg::sim
