#include "sim/parallel.hpp"

#include "common/assert.hpp"

namespace hg::sim {

WorkerPool::WorkerPool(std::size_t workers) : workers_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w]() { thread_main(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    sync::MutexLock lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::thread_main(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    // Snapshot the round payload under the lock; the strided loop itself runs
    // unlocked (the job pointer and bound are immutable for the round, and
    // run() cannot retire them until pending_ drains).
    std::size_t n = 0;
    const std::function<void(std::size_t)>* job = nullptr;
    {
      sync::MutexLock lock(mu_);
      start_cv_.wait(mu_, [&]() HG_REQUIRES(mu_) { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
      n = n_;
      job = job_;
    }
    for (std::size_t i = worker; i < n; i += workers_) (*job)(i);
    {
      sync::MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  if (workers_ == 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  {
    sync::MutexLock lock(mu_);
    HG_ASSERT_MSG(pending_ == 0, "WorkerPool::run is not reentrant");
    n_ = n;
    job_ = &job;
    pending_ = workers_ - 1;
    ++round_;
  }
  start_cv_.notify_all();
  // The caller is worker 0: run its share while the spawned workers run
  // theirs, then wait for the stragglers.
  for (std::size_t i = 0; i < n; i += workers_) job(i);
  sync::MutexLock lock(mu_);
  done_cv_.wait(mu_, [&]() HG_REQUIRES(mu_) { return pending_ == 0; });
  job_ = nullptr;
}

}  // namespace hg::sim
