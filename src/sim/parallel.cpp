#include "sim/parallel.hpp"

#include "common/assert.hpp"

namespace hg::sim {

WorkerPool::WorkerPool(std::size_t workers) : workers_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w]() { thread_main(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run_share(std::size_t worker) {
  const std::function<void(std::size_t)>& job = *job_;
  for (std::size_t i = worker; i < n_; i += workers_) job(i);
}

void WorkerPool::thread_main(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&]() { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
    }
    run_share(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  if (workers_ == 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    HG_ASSERT_MSG(pending_ == 0, "WorkerPool::run is not reentrant");
    n_ = n;
    job_ = &job;
    pending_ = workers_ - 1;
    ++round_;
  }
  start_cv_.notify_all();
  run_share(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&]() { return pending_ == 0; });
  job_ = nullptr;
}

}  // namespace hg::sim
