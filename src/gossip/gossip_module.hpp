// Mounts the three-phase dissemination engine on a NodeRuntime.
//
// Owns the engine and its fanout policy, claims the kPropose / kRequest /
// kServe tags, and bridges the engine's hooks onto the runtime's signal
// bus: deliveries fan out to every subscriber, request vetoes come from the
// gate, and window_cancelled() commands feed cancel_window_requests. It
// also installs itself as the runtime's publisher, so NodeRuntime::publish
// reaches Algorithm 1's publish path.
#pragma once

#include <memory>

#include "core/node_runtime.hpp"
#include "gossip/fanout_policy.hpp"
#include "gossip/three_phase.hpp"

namespace hg::gossip {

class GossipModule final : public core::Protocol {
 public:
  GossipModule(core::NodeRuntime& runtime, GossipConfig config,
               std::unique_ptr<FanoutPolicy> policy);

  void start() override { engine_.start(); }
  void stop() override { engine_.stop(); }
  [[nodiscard]] const char* name() const override { return "gossip"; }

  void on_datagram(const net::Datagram& d) { engine_.on_datagram(d); }

  void publish(Event event) { engine_.publish(std::move(event)); }

  [[nodiscard]] ThreePhaseGossip& engine() { return engine_; }
  [[nodiscard]] const ThreePhaseGossip& engine() const { return engine_; }
  [[nodiscard]] FanoutPolicy& policy() { return *policy_; }
  [[nodiscard]] const FanoutPolicy& policy() const { return *policy_; }

 private:
  std::unique_ptr<FanoutPolicy> policy_;
  ThreePhaseGossip engine_;
  core::TagRegistration tags_[3];
  core::Subscription cancel_sub_;
};

}  // namespace hg::gossip
