#include "gossip/fanout_policy.hpp"

#include <algorithm>
#include <cmath>

#include "aggregation/freshness_aggregator.hpp"
#include "common/assert.hpp"

namespace hg::gossip {

std::size_t round_fanout(double target, FanoutRounding rounding, Rng& rng) {
  HG_ASSERT_MSG(!std::isnan(target), "fanout target is NaN");
  if (target <= 0.0) return 0;  // clamp: a negative target must not wrap size_t
  const double base = std::floor(target);
  switch (rounding) {
    case FanoutRounding::kFloor:
      return static_cast<std::size_t>(base);
    case FanoutRounding::kRandomized:
      break;
  }
  const double frac = target - base;
  return static_cast<std::size_t>(base) + (rng.chance(frac) ? 1 : 0);
}

FixedFanout::FixedFanout(double fanout) : fanout_(fanout) {
  HG_ASSERT_MSG(!std::isnan(fanout_), "FixedFanout configured with NaN");
}

AdaptiveFanout::AdaptiveFanout(BitRate own_capability,
                               const aggregation::CapabilityEstimator* estimator,
                               AdaptiveFanoutConfig config)
    : own_capability_(own_capability), estimator_(estimator), config_(config) {
  HG_ASSERT(estimator_ != nullptr);
  HG_ASSERT_MSG(!std::isnan(config_.base_fanout), "AdaptiveFanout configured with NaN");
  HG_ASSERT(config_.base_fanout >= 0.0);
}

double AdaptiveFanout::current_target() const {
  const double avg = estimator_->average_capability_bps();
  if (avg <= 0.0) return config_.base_fanout;  // no estimate yet: behave like std gossip
  const double ratio = static_cast<double>(own_capability_.bits_per_sec()) / avg;
  return std::clamp(config_.base_fanout * ratio, config_.min_fanout, config_.max_fanout);
}

std::size_t AdaptiveFanout::fanout_for_round(Rng& rng) {
  return round_fanout(current_target(), config_.rounding, rng);
}

}  // namespace hg::gossip
