// Fanout selection — the knob HEAP turns.
//
// The dissemination engine asks its policy for a fanout before every gossip
// round. Standard gossip answers a constant; HEAP answers
// f * (own capability / estimated average capability), using randomized
// rounding so fractional targets are met in expectation (core/fanout_policy).
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace hg::gossip {

class FanoutPolicy {
 public:
  virtual ~FanoutPolicy() = default;

  // Number of peers to propose to in this round.
  [[nodiscard]] virtual std::size_t fanout_for_round(Rng& rng) = 0;

  // The current (possibly fractional) target, for introspection/metrics.
  [[nodiscard]] virtual double current_target() const = 0;
};

// Standard homogeneous gossip: everyone uses the same fanout. Fractional
// values are honored in expectation via randomized rounding so fanout
// sweeps (Fig. 2) can use non-integer averages too.
class FixedFanout final : public FanoutPolicy {
 public:
  explicit FixedFanout(double fanout) : fanout_(fanout) {}

  std::size_t fanout_for_round(Rng& rng) override {
    const auto base = static_cast<std::size_t>(fanout_);
    const double frac = fanout_ - static_cast<double>(base);
    return base + (rng.chance(frac) ? 1 : 0);
  }

  double current_target() const override { return fanout_; }

 private:
  double fanout_;
};

}  // namespace hg::gossip
