// Fanout selection — the knob HEAP turns.
//
// The dissemination engine asks its policy for a fanout before every gossip
// round. Standard gossip answers a constant (FixedFanout); HEAP answers the
// capability-proportional rule (AdaptiveFanout, paper §2.2, Equation 1):
//
//     f_p = f * b_p / b̄
//
// where b_p is the node's own upload capability and b̄ the continuously
// gossip-estimated average capability. The system-wide mean fanout stays f,
// preserving the ln(n)+c reliability threshold [15] while shifting serve
// load onto capable nodes. Both policies honor fractional targets in
// expectation via randomized rounding.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/units.hpp"

// AdaptiveFanout only holds a pointer to the estimator interface; the full
// aggregation header is needed by the .cpp alone. Keeping this a forward
// declaration preserves the layering (aggregation sits above gossip).
namespace hg::aggregation {
class CapabilityEstimator;
}  // namespace hg::aggregation

namespace hg::gossip {

class FanoutPolicy {
 public:
  virtual ~FanoutPolicy() = default;

  // Number of peers to propose to in this round.
  [[nodiscard]] virtual std::size_t fanout_for_round(Rng& rng) = 0;

  // The current (possibly fractional) target, for introspection/metrics.
  [[nodiscard]] virtual double current_target() const = 0;
};

enum class FanoutRounding {
  kRandomized,  // floor(f)+Bernoulli(frac): exact in expectation (default)
  kFloor,       // biased low — ablation shows the reliability cost
};

// Randomized rounding of a (possibly fractional, possibly non-positive)
// fanout target. Non-positive targets round to 0 instead of wrapping
// size_t; NaN is rejected by the policy constructors before it gets here.
[[nodiscard]] std::size_t round_fanout(double target, FanoutRounding rounding, Rng& rng);

// Standard homogeneous gossip: everyone uses the same fanout. Fractional
// values are honored in expectation via randomized rounding so fanout
// sweeps (Fig. 2) can use non-integer averages too.
class FixedFanout final : public FanoutPolicy {
 public:
  // Asserts on NaN so misconfigured sweeps fail loudly at construction.
  explicit FixedFanout(double fanout);

  std::size_t fanout_for_round(Rng& rng) override {
    return round_fanout(fanout_, FanoutRounding::kRandomized, rng);
  }

  double current_target() const override { return fanout_; }

 private:
  double fanout_;
};

struct AdaptiveFanoutConfig {
  double base_fanout = 7.0;   // the system-wide average f
  double max_fanout = 64.0;   // safety cap (also ablation knob)
  double min_fanout = 0.0;    // HEAP lets very poor nodes drop below 1
  FanoutRounding rounding = FanoutRounding::kRandomized;
};

// HEAP's contribution: fanout proportional to own capability over the
// aggregation protocol's running estimate of the population average.
class AdaptiveFanout final : public FanoutPolicy {
 public:
  // `own_capability` b_p; `estimator` supplies b̄ each round (never null).
  AdaptiveFanout(BitRate own_capability, const aggregation::CapabilityEstimator* estimator,
                 AdaptiveFanoutConfig config);

  std::size_t fanout_for_round(Rng& rng) override;
  [[nodiscard]] double current_target() const override;

  void set_own_capability(BitRate capability) { own_capability_ = capability; }

 private:
  BitRate own_capability_;
  const aggregation::CapabilityEstimator* estimator_;
  AdaptiveFanoutConfig config_;
};

}  // namespace hg::gossip
