// Wire messages of the three-phase gossip protocol and the aggregation
// protocol, with byte-exact encode/decode.
//
// Every datagram starts with a one-byte tag so a node can dispatch the
// protocols sharing its UDP port.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/serde.hpp"
#include "sim/time.hpp"

namespace hg::gossip {

// Tags are shared across all protocols multiplexed on a node's port.
enum class MsgTag : std::uint8_t {
  kPropose = 1,
  kRequest = 2,
  kServe = 3,
  kAggregation = 4,
  kCyclonRequest = 5,
  kCyclonReply = 6,
  kTreePush = 7,
};

// Identifies an event (one stream packet): (window, index-in-window) packed
// into 64 bits. Index 0..data-1 are data packets, data..total-1 parity.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr EventId(std::uint32_t window, std::uint16_t index)
      : v_((static_cast<std::uint64_t>(window) << 16) | index) {}

  [[nodiscard]] static constexpr EventId from_raw(std::uint64_t raw) {
    EventId id;
    id.v_ = raw;
    return id;
  }

  [[nodiscard]] constexpr std::uint64_t raw() const { return v_; }
  [[nodiscard]] constexpr std::uint32_t window() const {
    return static_cast<std::uint32_t>(v_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t index() const {
    return static_cast<std::uint16_t>(v_ & 0xffff);
  }

  friend constexpr auto operator<=>(EventId, EventId) = default;

 private:
  std::uint64_t v_ = 0;
};

}  // namespace hg::gossip

template <>
struct std::hash<hg::gossip::EventId> {
  std::size_t operator()(hg::gossip::EventId id) const noexcept {
    return static_cast<std::size_t>(id.raw() * 0x9e3779b97f4a7c15ULL);  // Fibonacci hash
  }
};

namespace hg::gossip {

// A disseminated event: id + payload. The payload buffer is shared —
// fan-out to many peers and storage for later serves never copy it.
struct Event {
  EventId id;
  std::shared_ptr<const std::vector<std::uint8_t>> payload;

  [[nodiscard]] std::size_t payload_size() const { return payload ? payload->size() : 0; }
};

struct ProposeMsg {
  NodeId sender;
  std::vector<EventId> ids;
};

struct RequestMsg {
  NodeId sender;
  std::vector<EventId> ids;
};

// One event per serve datagram: stream packets are MTU-sized (1316 B), so a
// multi-packet serve would not fit a UDP datagram anyway.
struct ServeMsg {
  NodeId sender;
  Event event;
};

// One capability observation flowing through the aggregation protocol.
struct CapabilityRecord {
  NodeId origin;
  std::int64_t capability_bps = 0;
  sim::SimTime measured_at;  // origin-local timestamp (clocks are synchronized in-sim)
};

struct AggregationMsg {
  NodeId sender;
  std::vector<CapabilityRecord> records;
};

// --- encode / decode ---------------------------------------------------
// Encoders return a shared buffer ready for NetworkFabric::send. Decoders
// return nullopt on any truncation/corruption (treated as datagram loss).

[[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> encode(const ProposeMsg& m);
[[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> encode(const RequestMsg& m);
[[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> encode(const ServeMsg& m);
[[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> encode(const AggregationMsg& m);

[[nodiscard]] std::optional<MsgTag> peek_tag(const std::vector<std::uint8_t>& buf);
[[nodiscard]] std::optional<ProposeMsg> decode_propose(const std::vector<std::uint8_t>& buf);
[[nodiscard]] std::optional<RequestMsg> decode_request(const std::vector<std::uint8_t>& buf);
[[nodiscard]] std::optional<ServeMsg> decode_serve(const std::vector<std::uint8_t>& buf);
[[nodiscard]] std::optional<AggregationMsg> decode_aggregation(
    const std::vector<std::uint8_t>& buf);

}  // namespace hg::gossip
