// Wire messages of the three-phase gossip protocol and the aggregation
// protocol, with byte-exact encode/decode.
//
// Every datagram starts with a one-byte tag so a node can dispatch the
// protocols sharing its UDP port.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "net/buffer.hpp"
#include "net/serde.hpp"
#include "sim/time.hpp"

namespace hg::gossip {

// Tags are shared across all protocols multiplexed on a node's port.
enum class MsgTag : std::uint8_t {
  kPropose = 1,
  kRequest = 2,
  kServe = 3,
  kAggregation = 4,
  kCyclonRequest = 5,
  kCyclonReply = 6,
  kTreePush = 7,
};

// The canonical (window, index) event identifier lives in common/types.hpp
// alongside NodeId; re-exported here because the wire layer popularized the
// name and every gossip file spells it unqualified.
using ::hg::EventId;

// A disseminated event: id + payload. The payload is a refcounted pooled
// slice — fan-out to many peers and storage for later serves never copy it,
// and a payload decoded from a serve pins the arrival buffer instead of
// copying out of it.
//
// Virtual payloads (large-scale simulation): an event may instead carry only
// a declared payload *size*. Serve datagrams of such events ship the header
// alone and account the missing bytes as phantom wire bytes, so every
// timing-relevant quantity (upload serialization, queueing, traffic meters)
// is bit-identical to a real payload of that size — while a 100k-node run
// stores no payload bytes at all. Whether a deployment runs virtual is a
// GossipConfig/StreamConfig decision applied uniformly to every node.
struct Event {
  EventId id;
  net::BufferRef payload;
  std::uint32_t virtual_size = 0;  // payload bytes represented but not stored

  [[nodiscard]] bool virtual_payload() const { return !payload && virtual_size > 0; }
  [[nodiscard]] std::size_t payload_size() const {
    return payload ? payload.size() : virtual_size;
  }
};

struct ProposeMsg {
  NodeId sender;
  std::vector<EventId> ids;
};

struct RequestMsg {
  NodeId sender;
  std::vector<EventId> ids;
};

// One event per serve *datagram*: stream packets are MTU-sized (1316 B), so
// a multi-packet serve would not fit a UDP datagram anyway. All serves of
// one request are still encoded back-to-back into a single pooled buffer
// and sent as zero-copy slices of it (see ThreePhaseGossip::on_request).
struct ServeMsg {
  NodeId sender;
  Event event;
};

// One capability observation flowing through the aggregation protocol.
struct CapabilityRecord {
  NodeId origin;
  std::int64_t capability_bps = 0;
  sim::SimTime measured_at;  // origin-local timestamp (clocks are synchronized in-sim)
};

struct AggregationMsg {
  NodeId sender;
  std::vector<CapabilityRecord> records;
};

// --- encode / decode ---------------------------------------------------
// Encoders write into a pooled buffer and return a zero-copy reference
// ready for NetworkFabric::send. Decoders return nullopt on any
// truncation/corruption (treated as datagram loss).

[[nodiscard]] net::BufferRef encode(const ProposeMsg& m);
[[nodiscard]] net::BufferRef encode(const RequestMsg& m);
[[nodiscard]] net::BufferRef encode(const ServeMsg& m);
[[nodiscard]] net::BufferRef encode(const AggregationMsg& m);

// Hot-path forms: encode straight from scratch storage without constructing
// a message struct (constructing ProposeMsg/RequestMsg would copy the id
// vector — an allocation the steady-state wire path must not make).
[[nodiscard]] net::BufferRef encode_propose(NodeId sender, std::span<const EventId> ids);
[[nodiscard]] net::BufferRef encode_request(NodeId sender, std::span<const EventId> ids);

// Exact wire size of one serve of `event` (virtual payload bytes included:
// this is what the datagram *accounts*, not what the buffer stores), and the
// batched-serve building block: appends a complete, standalone ServeMsg
// encoding to `w`, so a slice of the finished buffer is bit-identical to
// encode(ServeMsg{...}).
[[nodiscard]] std::size_t encoded_serve_size(const Event& event);
void encode_serve_into(net::ByteWriter& w, NodeId sender, const Event& event);

// One batched-serve datagram: a slice of the shared buffer plus the phantom
// byte count a virtual payload adds to its wire size (0 for real payloads).
struct ServeSpan {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  std::uint32_t phantom_bytes = 0;
};

// The batched serve: all of `events` encoded back-to-back into one pooled
// buffer. `spans` (cleared first) receives each event's span; every slice of
// the result at a span is a standalone serve datagram.
[[nodiscard]] net::BufferRef encode_serve_batch(NodeId sender, std::span<const Event> events,
                                                std::vector<ServeSpan>& spans);

[[nodiscard]] std::optional<MsgTag> peek_tag(std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<ProposeMsg> decode_propose(std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<RequestMsg> decode_request(std::span<const std::uint8_t> buf);
// Zero-copy: the decoded payload is a slice pinning `buf`'s backing chunk.
// `virtual_payloads` selects the deployment's serve framing: with it set,
// the payload length is declared but no bytes follow, and the decoded event
// carries virtual_size instead of a payload slice.
[[nodiscard]] std::optional<ServeMsg> decode_serve(const net::BufferRef& buf,
                                                   bool virtual_payloads = false);
// Copying overload for callers without a pooled buffer (tests, fuzzing).
[[nodiscard]] std::optional<ServeMsg> decode_serve(std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<AggregationMsg> decode_aggregation(
    std::span<const std::uint8_t> buf);

}  // namespace hg::gossip
