// Retransmission bookkeeping (paper Algorithm 2, "Retransmission").
//
// A [Propose] for an event starts a timer when the event is requested; a
// [Serve] cancels it. If the timer fires, the event is re-requested. The
// paper replays the propose; consistent with the authors' DSN'09 companion
// implementation, our retry claims the event from the *next* known proposer
// (round-robin), falling back to the original when nobody else proposed it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"
#include "gossip/messages.hpp"
#include "sim/simulator.hpp"

namespace hg::gossip {

class RetransmitTracker {
 public:
  struct Stats {
    std::uint64_t timers_started = 0;
    std::uint64_t cancelled_by_serve = 0;
    std::uint64_t retries_fired = 0;
    std::uint64_t gave_up = 0;
  };

  // `fire` is invoked with (id, retry_count) when a timer expires; the owner
  // decides whom to re-request from and calls arm() again if it retries.
  using FireFn = std::function<void(EventId, int)>;

  RetransmitTracker(sim::Simulator& simulator, sim::SimTime period, int max_retries,
                    FireFn fire)
      : sim_(simulator), period_(period), max_retries_(max_retries), fire_(std::move(fire)) {}

  // Arms (or re-arms) the timer for `id`. The timeout backs off
  // exponentially with the retry count (x1, x2, x4, x8 capped): at 512 kbps
  // a single batched serve of ~11 stream packets occupies the uplink for
  // ~2.5 s, so a fixed short timeout would fire while the original serve is
  // still queued and flood the system with duplicate payloads.
  void arm(EventId id, int retry_count) {
    auto [it, inserted] = pending_.try_emplace(id);
    if (!inserted) it->second.handle.cancel();
    if (inserted) ++stats_.timers_started;
    it->second.retries = retry_count;
    const int shift = std::min(retry_count, 3);
    const sim::SimTime timeout = sim::SimTime::us(period_.as_us() << shift);
    it->second.handle = sim_.after(timeout, [this, id]() { on_fire(id); });
  }

  // The event arrived: stop tracking it.
  void cancel(EventId id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    it->second.handle.cancel();
    pending_.erase(it);
    ++stats_.cancelled_by_serve;
  }

  // Drop all state for a window (e.g., window decoded or garbage-collected).
  void cancel_window(std::uint32_t window) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->first.window() == window) {
        it->second.handle.cancel();
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  [[nodiscard]] bool tracking(EventId id) const { return pending_.contains(id); }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct PendingEntry {
    sim::EventHandle handle;
    int retries = 0;
  };

  void on_fire(EventId id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    const int retries = it->second.retries;
    if (retries >= max_retries_) {
      pending_.erase(it);
      ++stats_.gave_up;
      return;
    }
    ++stats_.retries_fired;
    // Leave the entry in place; the owner re-arms (or cancels) from fire_.
    fire_(id, retries + 1);
  }

  sim::Simulator& sim_;
  sim::SimTime period_;
  int max_retries_;
  FireFn fire_;
  std::unordered_map<EventId, PendingEntry> pending_;
  Stats stats_;
};

}  // namespace hg::gossip
