// Retransmission bookkeeping (paper Algorithm 2, "Retransmission").
//
// A [Propose] for an event starts a timer when the event is requested; a
// [Serve] cancels it. If the timer fires, the event is re-requested. The
// paper replays the propose; consistent with the authors' DSN'09 companion
// implementation, our retry claims the event from the *next* known proposer
// (round-robin), falling back to the original when nobody else proposed it.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"
#include "gossip/messages.hpp"
#include "gossip/window_ring.hpp"
#include "sim/simulator.hpp"

namespace hg::gossip {

class RetransmitTracker {
 public:
  struct Stats {
    std::uint64_t timers_started = 0;
    std::uint64_t cancelled_by_serve = 0;
    std::uint64_t retries_fired = 0;
    std::uint64_t gave_up = 0;
  };

  // `fire` is invoked with (id, retry_count) when a timer expires; the owner
  // decides whom to re-request from and calls arm() again if it retries.
  using FireFn = std::function<void(EventId, int)>;

  // `geometry` bounds the tracked id domain; the gossip engine passes its
  // request-ring geometry so both advance in lockstep at gc. The default
  // suits standalone use (tests) that never calls gc().
  RetransmitTracker(sim::Simulator& simulator, sim::SimTime period, int max_retries,
                    FireFn fire, RingGeometry geometry = {64, 128})
      : sim_(simulator),
        period_(period),
        max_retries_(max_retries),
        fire_(std::move(fire)),
        pending_(geometry) {}

  // Arms (or re-arms) the timer for `id`. The timeout backs off
  // exponentially with the retry count (x1, x2, x4, x8 capped): at 512 kbps
  // a single batched serve of ~11 stream packets occupies the uplink for
  // ~2.5 s, so a fixed short timeout would fire while the original serve is
  // still queued and flood the system with duplicate payloads.
  void arm(EventId id, int retry_count) {
    auto [entry, inserted] = pending_.insert(id);
    if (!inserted) entry->handle.cancel();
    if (inserted) ++stats_.timers_started;
    entry->retries = retry_count;
    const int shift = std::min(retry_count, 3);
    const sim::SimTime timeout = sim::SimTime::us(period_.as_us() << shift);
    entry->handle = sim_.after(timeout, [this, id]() { on_fire(id); });
  }

  // The event arrived: stop tracking it.
  void cancel(EventId id) {
    PendingEntry* entry = pending_.find(id);
    if (entry == nullptr) return;
    entry->handle.cancel();
    pending_.erase(id);
    ++stats_.cancelled_by_serve;
  }

  // Drop all state for a window (e.g., window decoded): cancel every timer,
  // then release the window's slab. Returns the number of armed timers
  // killed — the "serves this cancel saved" quantity the gossip stats track.
  std::size_t cancel_window(std::uint32_t window) {
    std::size_t killed = 0;
    pending_.for_each_in_window(window, [&killed](std::uint32_t, PendingEntry& e) {
      e.handle.cancel();
      ++killed;
    });
    pending_.clear_window(window);
    return killed;
  }

  // Garbage collection: windows below `cutoff` leave the id domain — their
  // timers are cancelled silently (nothing left to re-request; the engine
  // dropped the proposer lists in the same sweep).
  void gc(std::uint32_t cutoff) {
    for (std::uint32_t w = pending_.base(); w < cutoff; ++w) {
      pending_.for_each_in_window(w,
                                  [](std::uint32_t, PendingEntry& e) { e.handle.cancel(); });
    }
    pending_.advance(cutoff);
  }

  [[nodiscard]] bool tracking(EventId id) const { return pending_.contains(id); }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Heap bytes of the pending ring (ring state + live slabs).
  [[nodiscard]] std::size_t state_bytes() const { return pending_.state_bytes(); }

 private:
  struct PendingEntry {
    sim::EventHandle handle;
    int retries = 0;
  };

  void on_fire(EventId id) {
    PendingEntry* entry = pending_.find(id);
    if (entry == nullptr) return;
    const int retries = entry->retries;
    if (retries >= max_retries_) {
      pending_.erase(id);
      ++stats_.gave_up;
      return;
    }
    ++stats_.retries_fired;
    // Leave the entry in place; the owner re-arms (or cancels) from fire_.
    fire_(id, retries + 1);
  }

  sim::Simulator& sim_;
  sim::SimTime period_;
  int max_retries_;
  FireFn fire_;
  WindowRing<PendingEntry> pending_;
  Stats stats_;
};

}  // namespace hg::gossip
