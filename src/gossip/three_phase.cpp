#include "gossip/three_phase.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hg::gossip {

ThreePhaseGossip::ThreePhaseGossip(sim::Simulator& simulator, net::NetworkFabric& fabric,
                                   membership::LocalView& view, NodeId self,
                                   GossipConfig config, FanoutPolicy& policy)
    : sim_(simulator),
      fabric_(fabric),
      view_(view),
      self_(self),
      config_(config),
      policy_(policy),
      rng_(simulator.make_rng(0x474f5353ULL ^ (std::uint64_t{self.value()} << 24))),
      delivered_(RingGeometry{config.delivered_ring_windows(), config.packets_per_window}),
      requested_(RingGeometry{config.request_ring_windows(), config.packets_per_window}),
      proposers_(RingGeometry{config.request_ring_windows(), config.packets_per_window}),
      retransmit_(simulator, config.retransmit_period, config.max_retransmits,
                  [this](EventId id, int retry) { on_retransmit_fire(id, retry); },
                  RingGeometry{config.request_ring_windows(), config.packets_per_window}) {
  HG_ASSERT_MSG(config_.max_proposers_tracked <= ProposerSlot::kCapacity,
                "proposer slots are fixed-capacity arrays");
}

void ThreePhaseGossip::start() {
  // Random phase: nodes must not propose in lockstep. Drawn identically in
  // both round modes so the node's RNG stream is mode-independent.
  const auto phase = sim::SimTime::us(static_cast<std::int64_t>(
      rng_.below(static_cast<std::uint64_t>(config_.period.as_us()))));
  if (config_.park_idle_rounds) {
    round_anchor_ = sim_.now() + phase;
    started_ = true;
    // Ids delivered before start wait for the first grid instant, exactly
    // like the periodic timer's first tick.
    if (!to_propose_.empty()) {
      round_event_ = sim_.at(round_anchor_, [this]() { gossip_round(); });
    }
    return;
  }
  timer_ = sim_.every(phase, config_.period, [this]() { gossip_round(); });
}

void ThreePhaseGossip::stop() {
  timer_.cancel();
  round_event_.cancel();
  started_ = false;
}

void ThreePhaseGossip::arm_round() {
  if (round_event_.pending()) return;
  // Next grid instant strictly after now: keyed delivery ordering runs a
  // grid tick before any same-instant arrival, so an id delivered exactly on
  // the grid belongs to the *next* round — same rule the periodic timer
  // enforces.
  const std::int64_t period = config_.period.as_us();
  const std::int64_t now = sim_.now().as_us();
  const std::int64_t anchor = round_anchor_.as_us();
  const std::int64_t k = now >= anchor ? (now - anchor) / period + 1 : 0;
  round_event_ = sim_.at(sim::SimTime::us(anchor + k * period), [this]() { gossip_round(); });
}

void ThreePhaseGossip::publish(Event event) {
  const EventId id = event.id;
  deliver_event(std::move(event));
  if (config_.immediate_publish) {
    // Algorithm 1 line 5: the source gossips {e.id} right away...
    gossip_ids({id});
    // ...and must not re-propose it in the next periodic round.
    to_propose_.erase(std::remove(to_propose_.begin(), to_propose_.end(), id),
                      to_propose_.end());
  }
}

void ThreePhaseGossip::gossip_round() {
  ++stats_.rounds;
  if (to_propose_.empty()) return;
  gossip_ids(to_propose_);
  to_propose_.clear();  // infect and die
}

void ThreePhaseGossip::gossip_ids(const std::vector<EventId>& ids) {
  if (ids.empty()) return;
  const std::size_t fanout = policy_.fanout_for_round(rng_);
  if (fanout == 0) return;
  view_.select_nodes(fanout, targets_scratch_, rng_);
  if (targets_scratch_.empty()) return;
  // Encode once; the buffer is shared across all targets.
  const auto bytes = encode_propose(self_, ids);
  for (NodeId target : targets_scratch_) {
    fabric_.send(self_, target, net::MsgClass::kPropose, bytes);
    ++stats_.proposes_sent;
    stats_.ids_proposed += ids.size();
  }
}

void ThreePhaseGossip::on_datagram(const net::Datagram& d) {
  const auto tag = peek_tag(d.bytes);
  if (!tag) {
    ++stats_.malformed;
    return;
  }
  switch (*tag) {
    case MsgTag::kPropose: {
      if (auto m = decode_propose(d.bytes)) {
        on_propose(*m);
      } else {
        ++stats_.malformed;
      }
      break;
    }
    case MsgTag::kRequest: {
      if (auto m = decode_request(d.bytes)) {
        on_request(*m);
      } else {
        ++stats_.malformed;
      }
      break;
    }
    case MsgTag::kServe: {
      // Zero copy: the decoded payload is a slice of the arrival buffer.
      if (auto m = decode_serve(d.bytes, config_.virtual_payloads)) {
        on_serve(*m);
      } else {
        ++stats_.malformed;
      }
      break;
    }
    default:
      ++stats_.malformed;
      break;
  }
}

void ThreePhaseGossip::record_proposer(EventId id, NodeId proposer) {
  auto [slot, inserted] = proposers_.insert(id);
  if (slot->count >= config_.max_proposers_tracked) return;
  const auto begin = slot->nodes.begin();
  const auto end = begin + slot->count;
  if (std::find(begin, end, proposer) == end) {
    slot->nodes[slot->count++] = proposer;
  }
}

void ThreePhaseGossip::on_propose(const ProposeMsg& m) {
  // Phase 2 (Algorithm 1 lines 8-13): request everything new, immediately,
  // from the proposer.
  std::vector<EventId>& wanted = wanted_scratch_;
  wanted.clear();
  for (EventId id : m.ids) {
    if (!id_admissible(id)) {
      // Out-of-range packet index, a window gc already reclaimed, or a
      // window further ahead than any live proposer can be: requesting it
      // would materialize state the rings cannot (or must no longer) hold.
      ++stats_.malformed;
      continue;
    }
    if (delivered_.contains(id)) continue;
    if (requested_.cancelled(id.window())) continue;
    record_proposer(id, m.sender);  // fallback for retransmissions
    if (requested_.contains(id)) continue;
    if (should_request_ && !should_request_(id)) {
      ++stats_.declined_requests;
      continue;
    }
    requested_.insert(id);
    wanted.push_back(id);
  }
  if (wanted.empty()) return;
  fabric_.send(self_, m.sender, net::MsgClass::kRequest, encode_request(self_, wanted));
  ++stats_.requests_sent;
  for (EventId id : wanted) {
    ProposerSlot* slot = proposers_.find(id);
    HG_ASSERT(slot != nullptr);  // record_proposer ran above
    slot->last_requested = m.sender;
    retransmit_.arm(id, 0);
  }
}

void ThreePhaseGossip::on_request(const RequestMsg& m) {
  // Phase 3 (lines 14-17): serve what we have. Each event stays its own
  // datagram (stream packets are MTU-sized; per-datagram loss, latency, and
  // wire accounting are untouched), but all serves answering this request
  // are encoded back-to-back into ONE pooled buffer and sent as zero-copy
  // slices of it — one allocation per request instead of one per event.
  serve_events_scratch_.clear();
  for (EventId id : m.ids) {
    const Event* stored = delivered_.find(id);
    if (stored == nullptr) {
      ++stats_.unknown_requests;
      continue;
    }
    serve_events_scratch_.push_back(*stored);  // refcounted payload, no byte copy
  }
  if (serve_events_scratch_.empty()) return;
  const net::BufferRef batch =
      encode_serve_batch(self_, serve_events_scratch_, serve_spans_scratch_);
  for (const ServeSpan& span : serve_spans_scratch_) {
    fabric_.send(self_, m.sender, net::MsgClass::kServe, batch.slice(span.offset, span.length),
                 span.phantom_bytes);
    ++stats_.serves_sent;
  }
  if (serve_events_scratch_.size() > 1) ++stats_.serve_batches;
  // Drop the payload refs now (keeping capacity): holding them would pin
  // the chunks past window GC until the next request arrives.
  serve_events_scratch_.clear();
}

void ThreePhaseGossip::on_serve(const ServeMsg& m) {
  if (!id_admissible(m.event.id)) {
    // A serve below the gc cutoff would re-insert a delivered event gc
    // already reclaimed (and re-propose it); reject instead of resurrecting.
    ++stats_.malformed;
    return;
  }
  if (delivered_.contains(m.event.id)) {
    ++stats_.duplicate_serves;  // e.g., a retransmitted request raced the serve
    return;
  }
  retransmit_.cancel(m.event.id);
  deliver_event(m.event);
}

void ThreePhaseGossip::deliver_event(Event event) {
  const EventId id = event.id;
  HG_ASSERT(!delivered_.contains(id));
  to_propose_.push_back(id);
  ++stats_.events_delivered;
  // Advance gc *before* inserting: the delivered ring spans exactly
  // [cutoff, newest], so a delivery that moves `newest` must move the
  // cutoff first to make room. The new id is above the cutoff by
  // construction, so ordering gc first reclaims exactly what it used to.
  if (id.window() > newest_window_seen_) {
    newest_window_seen_ = id.window();
    gc(newest_window_seen_);
  }
  delivered_.insert(event);
  proposers_.erase(id);
  if (config_.park_idle_rounds && started_) arm_round();
  if (deliver_) deliver_(event);
}

void ThreePhaseGossip::on_retransmit_fire(EventId id, int retry_count) {
  HG_ASSERT(!delivered_.contains(id));  // serve would have cancelled the timer
  ProposerSlot* slot = proposers_.find(id);
  if (slot == nullptr || slot->count == 0) {
    retransmit_.cancel(id);
    return;
  }
  // Find a proposer other than the one our last request went to; a repeat
  // request would just elicit a duplicate serve from a slow-but-alive peer.
  NodeId target = kInvalidNode;
  for (std::uint32_t probe = 0; probe < slot->count; ++probe) {
    const NodeId candidate = slot->nodes[slot->next % slot->count];
    ++slot->next;
    if (candidate != slot->last_requested) {
      target = candidate;
      break;
    }
  }
  if (!target.valid()) {
    // Sole proposer: back off and wait — either its queued serve arrives or
    // someone else proposes the id (record_proposer keeps collecting).
    retransmit_.arm(id, retry_count);
    return;
  }
  slot->last_requested = target;
  const EventId one[] = {id};
  fabric_.send(self_, target, net::MsgClass::kRequest, encode_request(self_, one));
  ++stats_.requests_sent;
  retransmit_.arm(id, retry_count);
}

void ThreePhaseGossip::cancel_window_requests(std::uint32_t window) {
  if (requested_.cancelled(window)) return;  // idempotent: repeat cancels are no-ops
  requested_.set_cancelled(window);
  // The window's request-side state is dead from here on: the cancelled
  // flag blocks every future request (and proposer recording) for it, so
  // release the slabs now instead of carrying them to the gc horizon —
  // with smart receivers a decoded window strands ~n-k never-delivered
  // packets whose proposer lists would otherwise linger.
  requested_.clear_window(window);
  proposers_.clear_window(window);
  stats_.timers_cancelled_by_window += retransmit_.cancel_window(window);
  ++stats_.windows_cancelled;
}

void ThreePhaseGossip::gc(std::uint32_t newest_window) {
  if (newest_window < config_.gc_window_horizon) return;
  const std::uint32_t cutoff = newest_window - config_.gc_window_horizon;
  if (cutoff <= gc_done_below_) return;
  delivered_.advance(cutoff);
  requested_.advance(cutoff);  // also resets the dropped windows' cancelled flags
  proposers_.advance(cutoff);
  retransmit_.gc(cutoff);
  gc_done_below_ = cutoff;
}

}  // namespace hg::gossip
