#include "gossip/three_phase.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hg::gossip {

ThreePhaseGossip::ThreePhaseGossip(sim::Simulator& simulator, net::NetworkFabric& fabric,
                                   membership::LocalView& view, NodeId self,
                                   GossipConfig config, FanoutPolicy& policy)
    : sim_(simulator),
      fabric_(fabric),
      view_(view),
      self_(self),
      config_(config),
      policy_(policy),
      rng_(simulator.make_rng(0x474f5353ULL ^ (std::uint64_t{self.value()} << 24))),
      retransmit_(simulator, config.retransmit_period, config.max_retransmits,
                  [this](EventId id, int retry) { on_retransmit_fire(id, retry); }) {}

void ThreePhaseGossip::start() {
  // Random phase: nodes must not propose in lockstep.
  const auto phase = sim::SimTime::us(static_cast<std::int64_t>(
      rng_.below(static_cast<std::uint64_t>(config_.period.as_us()))));
  timer_ = sim_.every(phase, config_.period, [this]() { gossip_round(); });
}

void ThreePhaseGossip::stop() { timer_.cancel(); }

void ThreePhaseGossip::publish(Event event) {
  const EventId id = event.id;
  deliver_event(std::move(event));
  if (config_.immediate_publish) {
    // Algorithm 1 line 5: the source gossips {e.id} right away...
    gossip_ids({id});
    // ...and must not re-propose it in the next periodic round.
    to_propose_.erase(std::remove(to_propose_.begin(), to_propose_.end(), id),
                      to_propose_.end());
  }
}

void ThreePhaseGossip::gossip_round() {
  ++stats_.rounds;
  if (to_propose_.empty()) return;
  gossip_ids(to_propose_);
  to_propose_.clear();  // infect and die
}

void ThreePhaseGossip::gossip_ids(const std::vector<EventId>& ids) {
  if (ids.empty()) return;
  const std::size_t fanout = policy_.fanout_for_round(rng_);
  if (fanout == 0) return;
  view_.select_nodes(fanout, targets_scratch_, rng_);
  if (targets_scratch_.empty()) return;
  // Encode once; the buffer is shared across all targets.
  const auto bytes = encode_propose(self_, ids);
  for (NodeId target : targets_scratch_) {
    fabric_.send(self_, target, net::MsgClass::kPropose, bytes);
    ++stats_.proposes_sent;
    stats_.ids_proposed += ids.size();
  }
}

void ThreePhaseGossip::on_datagram(const net::Datagram& d) {
  const auto tag = peek_tag(d.bytes);
  if (!tag) {
    ++stats_.malformed;
    return;
  }
  switch (*tag) {
    case MsgTag::kPropose: {
      if (auto m = decode_propose(d.bytes)) {
        on_propose(*m);
      } else {
        ++stats_.malformed;
      }
      break;
    }
    case MsgTag::kRequest: {
      if (auto m = decode_request(d.bytes)) {
        on_request(*m);
      } else {
        ++stats_.malformed;
      }
      break;
    }
    case MsgTag::kServe: {
      // Zero copy: the decoded payload is a slice of the arrival buffer.
      if (auto m = decode_serve(d.bytes, config_.virtual_payloads)) {
        on_serve(*m);
      } else {
        ++stats_.malformed;
      }
      break;
    }
    default:
      ++stats_.malformed;
      break;
  }
}

void ThreePhaseGossip::record_proposer(EventId id, NodeId proposer) {
  ProposerList& list = proposers_[id];
  if (list.nodes.size() >= config_.max_proposers_tracked) return;
  if (std::find(list.nodes.begin(), list.nodes.end(), proposer) == list.nodes.end()) {
    list.nodes.push_back(proposer);
  }
}

void ThreePhaseGossip::on_propose(const ProposeMsg& m) {
  // Phase 2 (Algorithm 1 lines 8-13): request everything new, immediately,
  // from the proposer.
  std::vector<EventId>& wanted = wanted_scratch_;
  wanted.clear();
  for (EventId id : m.ids) {
    if (delivered_.contains(id)) continue;
    if (cancelled_windows_.contains(id.window())) continue;
    record_proposer(id, m.sender);  // fallback for retransmissions
    if (requested_.contains(id)) continue;
    if (should_request_ && !should_request_(id)) {
      ++stats_.declined_requests;
      continue;
    }
    requested_.insert(id);
    wanted.push_back(id);
  }
  if (wanted.empty()) return;
  fabric_.send(self_, m.sender, net::MsgClass::kRequest, encode_request(self_, wanted));
  ++stats_.requests_sent;
  for (EventId id : wanted) {
    proposers_[id].last_requested = m.sender;
    retransmit_.arm(id, 0);
  }
}

void ThreePhaseGossip::on_request(const RequestMsg& m) {
  // Phase 3 (lines 14-17): serve what we have. Each event stays its own
  // datagram (stream packets are MTU-sized; per-datagram loss, latency, and
  // wire accounting are untouched), but all serves answering this request
  // are encoded back-to-back into ONE pooled buffer and sent as zero-copy
  // slices of it — one allocation per request instead of one per event.
  serve_events_scratch_.clear();
  for (EventId id : m.ids) {
    const auto it = delivered_.find(id);
    if (it == delivered_.end()) {
      ++stats_.unknown_requests;
      continue;
    }
    serve_events_scratch_.push_back(it->second);  // refcounted payload, no byte copy
  }
  if (serve_events_scratch_.empty()) return;
  const net::BufferRef batch =
      encode_serve_batch(self_, serve_events_scratch_, serve_spans_scratch_);
  for (const ServeSpan& span : serve_spans_scratch_) {
    fabric_.send(self_, m.sender, net::MsgClass::kServe, batch.slice(span.offset, span.length),
                 span.phantom_bytes);
    ++stats_.serves_sent;
  }
  if (serve_events_scratch_.size() > 1) ++stats_.serve_batches;
  // Drop the payload refs now (keeping capacity): holding them would pin
  // the chunks past window GC until the next request arrives.
  serve_events_scratch_.clear();
}

void ThreePhaseGossip::on_serve(const ServeMsg& m) {
  if (delivered_.contains(m.event.id)) {
    ++stats_.duplicate_serves;  // e.g., a retransmitted request raced the serve
    return;
  }
  retransmit_.cancel(m.event.id);
  deliver_event(m.event);
}

void ThreePhaseGossip::deliver_event(Event event) {
  const EventId id = event.id;
  HG_ASSERT(!delivered_.contains(id));
  to_propose_.push_back(id);
  ++stats_.events_delivered;
  const Event& stored = delivered_.emplace(id, std::move(event)).first->second;
  proposers_.erase(id);
  if (id.window() > newest_window_seen_) {
    newest_window_seen_ = id.window();
    gc(newest_window_seen_);
  }
  if (deliver_) deliver_(stored);
}

void ThreePhaseGossip::on_retransmit_fire(EventId id, int retry_count) {
  HG_ASSERT(!delivered_.contains(id));  // serve would have cancelled the timer
  auto it = proposers_.find(id);
  if (it == proposers_.end() || it->second.nodes.empty()) {
    retransmit_.cancel(id);
    return;
  }
  ProposerList& list = it->second;
  // Find a proposer other than the one our last request went to; a repeat
  // request would just elicit a duplicate serve from a slow-but-alive peer.
  NodeId target = kInvalidNode;
  for (std::size_t probe = 0; probe < list.nodes.size(); ++probe) {
    const NodeId candidate = list.nodes[list.next % list.nodes.size()];
    ++list.next;
    if (candidate != list.last_requested) {
      target = candidate;
      break;
    }
  }
  if (!target.valid()) {
    // Sole proposer: back off and wait — either its queued serve arrives or
    // someone else proposes the id (record_proposer keeps collecting).
    retransmit_.arm(id, retry_count);
    return;
  }
  list.last_requested = target;
  const EventId one[] = {id};
  fabric_.send(self_, target, net::MsgClass::kRequest, encode_request(self_, one));
  ++stats_.requests_sent;
  retransmit_.arm(id, retry_count);
}

void ThreePhaseGossip::cancel_window_requests(std::uint32_t window) {
  cancelled_windows_.insert(window);
  retransmit_.cancel_window(window);
}

void ThreePhaseGossip::gc(std::uint32_t newest_window) {
  if (newest_window < config_.gc_window_horizon) return;
  const std::uint32_t cutoff = newest_window - config_.gc_window_horizon;
  if (cutoff <= gc_done_below_) return;
  auto stale = [cutoff](EventId id) { return id.window() < cutoff; };
  std::erase_if(delivered_, [&](const auto& kv) { return stale(kv.first); });
  std::erase_if(requested_, stale);
  std::erase_if(proposers_, [&](const auto& kv) { return stale(kv.first); });
  std::erase_if(cancelled_windows_, [&](std::uint32_t w) { return w < cutoff; });
  gc_done_below_ = cutoff;
}

}  // namespace hg::gossip
