#include "gossip/messages.hpp"

namespace hg::gossip {

namespace {

void write_ids(net::ByteWriter& w, std::span<const EventId> ids) {
  w.varint(ids.size());
  // Ids within one message are near-consecutive (they batch one gossip
  // period of the stream); delta-encoding would shave bytes but the paper
  // computes overheads with plain 8-byte ids, so stay faithful.
  for (EventId id : ids) w.u64(id.raw());
}

[[nodiscard]] bool read_ids(net::ByteReader& r, std::vector<EventId>& out) {
  const auto n = r.varint();
  if (!n || *n > 100000) return false;
  out.reserve(*n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto raw = r.u64();
    if (!raw) return false;
    out.push_back(EventId::from_raw(*raw));
  }
  return true;
}

}  // namespace

net::BufferRef encode_propose(NodeId sender, std::span<const EventId> ids) {
  net::ByteWriter w(8 + ids.size() * 8);
  w.u8(static_cast<std::uint8_t>(MsgTag::kPropose));
  w.u32(sender.value());
  write_ids(w, ids);
  return w.finish();
}

net::BufferRef encode_request(NodeId sender, std::span<const EventId> ids) {
  net::ByteWriter w(8 + ids.size() * 8);
  w.u8(static_cast<std::uint8_t>(MsgTag::kRequest));
  w.u32(sender.value());
  write_ids(w, ids);
  return w.finish();
}

net::BufferRef encode(const ProposeMsg& m) { return encode_propose(m.sender, m.ids); }

net::BufferRef encode(const RequestMsg& m) { return encode_request(m.sender, m.ids); }

std::size_t encoded_serve_size(const Event& event) {
  // tag + sender + id + payload length varint + payload bytes. For a
  // virtual payload the bytes are phantom (never stored), but they are part
  // of the serve's *wire* size all the same.
  const std::size_t n = event.payload_size();
  std::size_t varint_len = 1;
  for (std::uint64_t v = n; v >= 0x80; v >>= 7) ++varint_len;
  return 1 + 4 + 8 + varint_len + n;
}

void encode_serve_into(net::ByteWriter& w, NodeId sender, const Event& event) {
  w.u8(static_cast<std::uint8_t>(MsgTag::kServe));
  w.u32(sender.value());
  w.u64(event.id.raw());
  if (event.virtual_payload()) {
    // Declared length, no bytes: the datagram carries the difference as
    // phantom wire bytes (see Datagram::phantom_bytes).
    w.varint(event.virtual_size);
  } else {
    w.bytes(event.payload.bytes());
  }
}

net::BufferRef encode(const ServeMsg& m) {
  net::ByteWriter w(encoded_serve_size(m.event));
  encode_serve_into(w, m.sender, m.event);
  return w.finish();
}

net::BufferRef encode_serve_batch(NodeId sender, std::span<const Event> events,
                                  std::vector<ServeSpan>& spans) {
  std::size_t total = 0;
  for (const Event& e : events) {
    total += encoded_serve_size(e) - (e.virtual_payload() ? e.virtual_size : 0);
  }
  net::ByteWriter w(total);
  spans.clear();
  for (const Event& e : events) {
    const auto begin = static_cast<std::uint32_t>(w.size());
    encode_serve_into(w, sender, e);
    spans.push_back(ServeSpan{begin, static_cast<std::uint32_t>(w.size()) - begin,
                              e.virtual_payload() ? e.virtual_size : 0});
  }
  return w.finish();
}

net::BufferRef encode(const AggregationMsg& m) {
  net::ByteWriter w(8 + m.records.size() * 20);
  w.u8(static_cast<std::uint8_t>(MsgTag::kAggregation));
  w.u32(m.sender.value());
  w.varint(m.records.size());
  for (const CapabilityRecord& rec : m.records) {
    w.u32(rec.origin.value());
    w.i64(rec.capability_bps);
    w.i64(rec.measured_at.as_us());
  }
  return w.finish();
}

std::optional<MsgTag> peek_tag(std::span<const std::uint8_t> buf) {
  if (buf.empty()) return std::nullopt;
  const std::uint8_t t = buf[0];
  if (t < static_cast<std::uint8_t>(MsgTag::kPropose) ||
      t > static_cast<std::uint8_t>(MsgTag::kTreePush)) {
    return std::nullopt;
  }
  return static_cast<MsgTag>(t);
}

namespace {

[[nodiscard]] bool read_header(net::ByteReader& r, MsgTag expected, NodeId& sender) {
  const auto tag = r.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(expected)) return false;
  const auto s = r.u32();
  if (!s) return false;
  sender = NodeId{*s};
  return true;
}

// Shared serve parse: on success, `payload` is the payload's span within
// `buf` (the caller decides whether to slice or copy it out).
[[nodiscard]] bool parse_serve(std::span<const std::uint8_t> buf, ServeMsg& m,
                               std::span<const std::uint8_t>& payload) {
  net::ByteReader r(buf);
  if (!read_header(r, MsgTag::kServe, m.sender)) return false;
  const auto raw = r.u64();
  if (!raw) return false;
  m.event.id = EventId::from_raw(*raw);
  const auto p = r.bytes();
  if (!p) return false;
  payload = *p;
  return true;
}

}  // namespace

std::optional<ProposeMsg> decode_propose(std::span<const std::uint8_t> buf) {
  net::ByteReader r(buf);
  ProposeMsg m;
  if (!read_header(r, MsgTag::kPropose, m.sender)) return std::nullopt;
  if (!read_ids(r, m.ids)) return std::nullopt;
  return m;
}

std::optional<RequestMsg> decode_request(std::span<const std::uint8_t> buf) {
  net::ByteReader r(buf);
  RequestMsg m;
  if (!read_header(r, MsgTag::kRequest, m.sender)) return std::nullopt;
  if (!read_ids(r, m.ids)) return std::nullopt;
  return m;
}

std::optional<ServeMsg> decode_serve(const net::BufferRef& buf, bool virtual_payloads) {
  ServeMsg m;
  if (virtual_payloads) {
    net::ByteReader r(buf.bytes());
    if (!read_header(r, MsgTag::kServe, m.sender)) return std::nullopt;
    const auto raw = r.u64();
    if (!raw) return std::nullopt;
    m.event.id = EventId::from_raw(*raw);
    const auto declared = r.varint();
    // The declared length must fit virtual_size, and no payload bytes may
    // actually follow — a real-payload serve in a virtual deployment is a
    // framing bug, not a loss event we can shrug off.
    if (!declared || *declared > 0xffffffffULL || !r.exhausted()) return std::nullopt;
    m.event.virtual_size = static_cast<std::uint32_t>(*declared);
    return m;
  }
  std::span<const std::uint8_t> payload;
  if (!parse_serve(buf.bytes(), m, payload)) return std::nullopt;
  // Zero copy: the payload keeps the arrival buffer alive via the slice.
  m.event.payload = buf.slice(static_cast<std::size_t>(payload.data() - buf.data()),
                              payload.size());
  return m;
}

std::optional<ServeMsg> decode_serve(std::span<const std::uint8_t> buf) {
  ServeMsg m;
  std::span<const std::uint8_t> payload;
  if (!parse_serve(buf, m, payload)) return std::nullopt;
  m.event.payload = net::BufferRef::copy_of(payload);
  return m;
}

std::optional<AggregationMsg> decode_aggregation(std::span<const std::uint8_t> buf) {
  net::ByteReader r(buf);
  AggregationMsg m;
  if (!read_header(r, MsgTag::kAggregation, m.sender)) return std::nullopt;
  const auto n = r.varint();
  if (!n || *n > 10000) return std::nullopt;
  m.records.reserve(*n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto origin = r.u32();
    const auto cap = r.i64();
    const auto ts = r.i64();
    if (!origin || !cap || !ts) return std::nullopt;
    m.records.push_back(
        CapabilityRecord{NodeId{*origin}, *cap, sim::SimTime::us(*ts)});
  }
  return m;
}

}  // namespace hg::gossip
