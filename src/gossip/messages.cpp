#include "gossip/messages.hpp"

namespace hg::gossip {

namespace {

void write_ids(net::ByteWriter& w, const std::vector<EventId>& ids) {
  w.varint(ids.size());
  // Ids within one message are near-consecutive (they batch one gossip
  // period of the stream); delta-encoding would shave bytes but the paper
  // computes overheads with plain 8-byte ids, so stay faithful.
  for (EventId id : ids) w.u64(id.raw());
}

[[nodiscard]] bool read_ids(net::ByteReader& r, std::vector<EventId>& out) {
  const auto n = r.varint();
  if (!n || *n > 100000) return false;
  out.reserve(*n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto raw = r.u64();
    if (!raw) return false;
    out.push_back(EventId::from_raw(*raw));
  }
  return true;
}

std::shared_ptr<const std::vector<std::uint8_t>> finish(net::ByteWriter&& w) {
  return std::make_shared<const std::vector<std::uint8_t>>(w.take());
}

}  // namespace

std::shared_ptr<const std::vector<std::uint8_t>> encode(const ProposeMsg& m) {
  net::ByteWriter w(8 + m.ids.size() * 8);
  w.u8(static_cast<std::uint8_t>(MsgTag::kPropose));
  w.u32(m.sender.value());
  write_ids(w, m.ids);
  return finish(std::move(w));
}

std::shared_ptr<const std::vector<std::uint8_t>> encode(const RequestMsg& m) {
  net::ByteWriter w(8 + m.ids.size() * 8);
  w.u8(static_cast<std::uint8_t>(MsgTag::kRequest));
  w.u32(m.sender.value());
  write_ids(w, m.ids);
  return finish(std::move(w));
}

std::shared_ptr<const std::vector<std::uint8_t>> encode(const ServeMsg& m) {
  net::ByteWriter w(16 + m.event.payload_size());
  w.u8(static_cast<std::uint8_t>(MsgTag::kServe));
  w.u32(m.sender.value());
  w.u64(m.event.id.raw());
  if (m.event.payload) {
    w.bytes(*m.event.payload);
  } else {
    w.varint(0);
  }
  return finish(std::move(w));
}

std::shared_ptr<const std::vector<std::uint8_t>> encode(const AggregationMsg& m) {
  net::ByteWriter w(8 + m.records.size() * 20);
  w.u8(static_cast<std::uint8_t>(MsgTag::kAggregation));
  w.u32(m.sender.value());
  w.varint(m.records.size());
  for (const CapabilityRecord& rec : m.records) {
    w.u32(rec.origin.value());
    w.i64(rec.capability_bps);
    w.i64(rec.measured_at.as_us());
  }
  return finish(std::move(w));
}

std::optional<MsgTag> peek_tag(const std::vector<std::uint8_t>& buf) {
  if (buf.empty()) return std::nullopt;
  const std::uint8_t t = buf[0];
  if (t < static_cast<std::uint8_t>(MsgTag::kPropose) ||
      t > static_cast<std::uint8_t>(MsgTag::kTreePush)) {
    return std::nullopt;
  }
  return static_cast<MsgTag>(t);
}

namespace {
[[nodiscard]] bool read_header(net::ByteReader& r, MsgTag expected, NodeId& sender) {
  const auto tag = r.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(expected)) return false;
  const auto s = r.u32();
  if (!s) return false;
  sender = NodeId{*s};
  return true;
}
}  // namespace

std::optional<ProposeMsg> decode_propose(const std::vector<std::uint8_t>& buf) {
  net::ByteReader r(buf);
  ProposeMsg m;
  if (!read_header(r, MsgTag::kPropose, m.sender)) return std::nullopt;
  if (!read_ids(r, m.ids)) return std::nullopt;
  return m;
}

std::optional<RequestMsg> decode_request(const std::vector<std::uint8_t>& buf) {
  net::ByteReader r(buf);
  RequestMsg m;
  if (!read_header(r, MsgTag::kRequest, m.sender)) return std::nullopt;
  if (!read_ids(r, m.ids)) return std::nullopt;
  return m;
}

std::optional<ServeMsg> decode_serve(const std::vector<std::uint8_t>& buf) {
  net::ByteReader r(buf);
  ServeMsg m;
  if (!read_header(r, MsgTag::kServe, m.sender)) return std::nullopt;
  const auto raw = r.u64();
  if (!raw) return std::nullopt;
  m.event.id = EventId::from_raw(*raw);
  const auto payload = r.bytes();
  if (!payload) return std::nullopt;
  m.event.payload =
      std::make_shared<const std::vector<std::uint8_t>>(payload->begin(), payload->end());
  return m;
}

std::optional<AggregationMsg> decode_aggregation(const std::vector<std::uint8_t>& buf) {
  net::ByteReader r(buf);
  AggregationMsg m;
  if (!read_header(r, MsgTag::kAggregation, m.sender)) return std::nullopt;
  const auto n = r.varint();
  if (!n || *n > 10000) return std::nullopt;
  m.records.reserve(*n);
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto origin = r.u32();
    const auto cap = r.i64();
    const auto ts = r.i64();
    if (!origin || !cap || !ts) return std::nullopt;
    m.records.push_back(
        CapabilityRecord{NodeId{*origin}, *cap, sim::SimTime::us(*ts)});
  }
  return m;
}

}  // namespace hg::gossip
