#include "gossip/gossip_module.hpp"

namespace hg::gossip {

GossipModule::GossipModule(core::NodeRuntime& runtime, GossipConfig config,
                           std::unique_ptr<FanoutPolicy> policy)
    : policy_(std::move(policy)),
      engine_(runtime.sim(), runtime.fabric(), runtime.view(), runtime.self(), config,
              *policy_) {
  tags_[0] = runtime.register_tag(MsgTag::kPropose, this);
  tags_[1] = runtime.register_tag(MsgTag::kRequest, this);
  tags_[2] = runtime.register_tag(MsgTag::kServe, this);
  // Capturing the runtime by pointer is safe: runtimes are heap-owned and
  // outlive their modules.
  core::NodeRuntime* rt = &runtime;
  engine_.set_deliver([rt](const Event& e) { rt->deliveries().emit(e); });
  engine_.set_should_request([rt](EventId id) { return rt->request_gate().ask(id); });
  cancel_sub_ = runtime.window_cancelled().subscribe(
      [this](std::uint32_t window) { engine_.cancel_window_requests(window); });
  runtime.set_publisher([this](Event e) { engine_.publish(std::move(e)); });
}

}  // namespace hg::gossip
