// Dense per-window event state: the shared replacement for every per-EventId
// hash container in the gossip/retransmit/stream layers.
//
// The stream is windowed by construction — a fixed number of coded packets
// per window, strictly advancing window ids, all bookkeeping garbage-
// collected below a moving cutoff — so per-event state never needs hashing:
// an EventId decomposes into (window, index) and indexes a fixed ring of
// per-window slabs directly.
//
//   WindowRing<T>   ring of `windows` slabs, each a presence bitmap over
//                   `slots` packet indices plus (for non-void T) a
//                   contiguous value array, plus a per-window cancelled
//                   flag. Lookup / insert / erase are O(1); gc is an O(1)
//                   base advance that frees the dropped slabs. Slabs are
//                   allocated lazily on first insert and released when a
//                   window empties, so quiet windows cost 24 bytes of ring
//                   state, not a slab.
//   EventRing       the delivered-event store, same ring shape but SoA:
//                   presence bits + a uint32 virtual-size array always, a
//                   BufferRef payload array only for windows that actually
//                   store payload bytes — a virtual-payload run (100k-node
//                   scale) allocates no payload slabs at all.
//
// Domain: a ring covers windows [base, base + windows). Callers gate ids
// against in_domain()/slot_valid() *before* inserting (out-of-range wire
// ids are malformed, see ThreePhaseGossip); lookups outside the domain are
// safe and report absence.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "gossip/messages.hpp"

namespace hg::gossip {

struct RingGeometry {
  std::uint32_t windows = 0;  // ring capacity, in windows
  std::uint32_t slots = 0;    // packet indices per window
};

template <typename T>
class WindowRing {
  static constexpr bool kHasValues = !std::is_void_v<T>;
  // void rings are bitmap-only; the value array member stays null forever.
  using Stored = std::conditional_t<kHasValues, T, char>;

 public:
  explicit WindowRing(RingGeometry geo)
      : geo_(geo), words_((geo.slots + 63) / 64), states_(geo.windows) {}

  [[nodiscard]] const RingGeometry& geometry() const { return geo_; }
  [[nodiscard]] std::uint32_t base() const { return base_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool in_domain(std::uint32_t window) const {
    return window >= base_ && window - base_ < geo_.windows;
  }
  [[nodiscard]] bool slot_valid(EventId id) const { return id.index() < geo_.slots; }

  [[nodiscard]] bool contains(EventId id) const {
    if (!in_domain(id.window()) || !slot_valid(id)) return false;
    const State& s = state(id.window());
    return s.bits && ((s.bits[id.index() >> 6] >> (id.index() & 63)) & 1u);
  }

  // Pointer to the stored value, or nullptr if absent (out-of-domain ids
  // included). Non-void rings only.
  [[nodiscard]] T* find(EventId id)
    requires kHasValues
  {
    if (!contains(id)) return nullptr;
    return &state(id.window()).values[id.index()];
  }
  [[nodiscard]] const T* find(EventId id) const
    requires kHasValues
  {
    return const_cast<WindowRing*>(this)->find(id);
  }

  // try_emplace semantics: inserts a default-constructed value if absent.
  // Returns {value, inserted} for value rings, `inserted` for void rings.
  // Precondition: in_domain(id.window()) && slot_valid(id).
  auto insert(EventId id) {
    HG_ASSERT(in_domain(id.window()) && slot_valid(id));
    State& s = state(id.window());
    ensure_slab(s);
    std::uint64_t& word = s.bits[id.index() >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (id.index() & 63);
    const bool inserted = (word & mask) == 0;
    if (inserted) {
      word |= mask;
      ++s.count;
      ++size_;
      if constexpr (kHasValues) s.values[id.index()] = Stored{};
    }
    if constexpr (kHasValues) {
      return std::pair<T*, bool>{&s.values[id.index()], inserted};
    } else {
      return inserted;
    }
  }

  // Removes `id` if present; releases the window's slab when it empties.
  bool erase(EventId id) {
    if (!in_domain(id.window()) || !slot_valid(id)) return false;
    State& s = state(id.window());
    if (!s.bits) return false;
    std::uint64_t& word = s.bits[id.index() >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (id.index() & 63);
    if ((word & mask) == 0) return false;
    word &= ~mask;
    --s.count;
    --size_;
    if (s.count == 0) release_slab(s);
    return true;
  }

  // Per-window cancelled flag. Lives in the fixed ring state, not the slab:
  // cancelling windows never allocates. Out-of-domain windows are ignored
  // (below base means already gc'd). The flag is reset when the window is
  // dropped by advance().
  void set_cancelled(std::uint32_t window) {
    if (in_domain(window)) state(window).cancelled = true;
  }
  [[nodiscard]] bool cancelled(std::uint32_t window) const {
    return in_domain(window) && state(window).cancelled;
  }

  // Visits every present entry of `window` in ascending index order (the
  // deterministic order every consumer relies on). fn(index, T&) for value
  // rings, fn(index) for void rings.
  template <typename Fn>
  void for_each_in_window(std::uint32_t window, Fn&& fn) {
    if (!in_domain(window)) return;
    State& s = state(window);
    if (!s.bits) return;
    for (std::uint32_t w = 0; w < words_; ++w) {
      std::uint64_t word = s.bits[w];
      while (word != 0) {
        const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
        word &= word - 1;
        const std::uint32_t index = w * 64 + bit;
        if constexpr (kHasValues) {
          fn(index, s.values[index]);
        } else {
          fn(index);
        }
      }
    }
  }

  // Drops all entries of `window` (idempotent; cancelled flag untouched —
  // flags outlive their window's entries until gc).
  void clear_window(std::uint32_t window) {
    if (!in_domain(window)) return;
    State& s = state(window);
    size_ -= s.count;
    release_slab(s);
  }

  // GC: advances the domain to [new_base, new_base + windows), freeing the
  // slabs and cancelled flags of every dropped window. O(windows dropped),
  // independent of entry count; no-op if new_base is not ahead of base.
  void advance(std::uint32_t new_base) {
    if (new_base <= base_) return;
    const std::uint64_t dropped = std::uint64_t{new_base} - base_;
    const auto clamp = static_cast<std::uint32_t>(
        dropped < geo_.windows ? dropped : geo_.windows);
    for (std::uint32_t i = 0; i < clamp; ++i) {
      State& s = state(base_ + i);
      size_ -= s.count;
      release_slab(s);
      s.cancelled = false;
    }
    base_ = new_base;
  }

  // Heap bytes of ring state + live slabs (what bench_fig_scale tracks).
  [[nodiscard]] std::size_t state_bytes() const {
    std::size_t bytes = states_.capacity() * sizeof(State);
    for (const State& s : states_) {
      if (!s.bits) continue;
      bytes += words_ * sizeof(std::uint64_t);
      if constexpr (kHasValues) bytes += geo_.slots * sizeof(Stored);
    }
    return bytes;
  }

 private:
  struct State {
    std::unique_ptr<std::uint64_t[]> bits;
    std::unique_ptr<Stored[]> values;  // null for void rings
    std::uint32_t count = 0;
    bool cancelled = false;
  };

  [[nodiscard]] State& state(std::uint32_t window) { return states_[window % geo_.windows]; }
  [[nodiscard]] const State& state(std::uint32_t window) const {
    return states_[window % geo_.windows];
  }

  void ensure_slab(State& s) {
    if (s.bits) return;
    s.bits = std::make_unique<std::uint64_t[]>(words_);
    if constexpr (kHasValues) s.values = std::make_unique<Stored[]>(geo_.slots);
  }
  void release_slab(State& s) {
    s.bits.reset();
    if constexpr (kHasValues) s.values.reset();
    s.count = 0;
  }

  RingGeometry geo_;
  std::uint32_t words_;
  std::uint32_t base_ = 0;
  std::size_t size_ = 0;
  std::vector<State> states_;
};

// The delivered-event store. Ring shape as WindowRing, but the slabs are
// struct-of-arrays: presence bits and a uint32 virtual-size array always, a
// payload BufferRef array only materialized for windows that store real
// payload bytes. find() reassembles the Event into a scratch slot — valid
// until the next find()/insert() — so the `const Event*` surface of
// ThreePhaseGossip::delivered_event survives the representation change.
class EventRing {
 public:
  explicit EventRing(RingGeometry geo)
      : geo_(geo), words_((geo.slots + 63) / 64), states_(geo.windows) {}

  [[nodiscard]] std::uint32_t base() const { return base_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool in_domain(std::uint32_t window) const {
    return window >= base_ && window - base_ < geo_.windows;
  }
  [[nodiscard]] bool slot_valid(EventId id) const { return id.index() < geo_.slots; }

  [[nodiscard]] bool contains(EventId id) const {
    if (!in_domain(id.window()) || !slot_valid(id)) return false;
    const State& s = state(id.window());
    return s.bits && ((s.bits[id.index() >> 6] >> (id.index() & 63)) & 1u);
  }

  [[nodiscard]] const Event* find(EventId id) const {
    if (!contains(id)) return nullptr;
    const State& s = state(id.window());
    scratch_.id = id;
    scratch_.payload = s.payloads ? s.payloads[id.index()] : net::BufferRef{};
    scratch_.virtual_size = s.virtual_sizes[id.index()];
    return &scratch_;
  }

  // Precondition: !contains(event.id) and the id is in-domain and valid.
  void insert(const Event& event) {
    const EventId id = event.id;
    HG_ASSERT(in_domain(id.window()) && slot_valid(id));
    State& s = state(id.window());
    if (!s.bits) {
      s.bits = std::make_unique<std::uint64_t[]>(words_);
      s.virtual_sizes = std::make_unique<std::uint32_t[]>(geo_.slots);
    }
    std::uint64_t& word = s.bits[id.index() >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (id.index() & 63);
    HG_ASSERT((word & mask) == 0);
    word |= mask;
    ++s.count;
    ++size_;
    s.virtual_sizes[id.index()] = event.virtual_size;
    if (event.payload) {
      if (!s.payloads) s.payloads = std::make_unique<net::BufferRef[]>(geo_.slots);
      s.payloads[id.index()] = event.payload;
    }
  }

  void advance(std::uint32_t new_base) {
    if (new_base <= base_) return;
    const std::uint64_t dropped = std::uint64_t{new_base} - base_;
    const auto clamp = static_cast<std::uint32_t>(
        dropped < geo_.windows ? dropped : geo_.windows);
    for (std::uint32_t i = 0; i < clamp; ++i) {
      State& s = state(base_ + i);
      size_ -= s.count;
      s.bits.reset();
      s.virtual_sizes.reset();
      s.payloads.reset();  // releases the pooled payload chunks
      s.count = 0;
    }
    base_ = new_base;
  }

  [[nodiscard]] std::size_t state_bytes() const {
    std::size_t bytes = states_.capacity() * sizeof(State);
    for (const State& s : states_) {
      if (s.bits) bytes += words_ * sizeof(std::uint64_t) + geo_.slots * sizeof(std::uint32_t);
      if (s.payloads) bytes += geo_.slots * sizeof(net::BufferRef);
    }
    return bytes;
  }

 private:
  struct State {
    std::unique_ptr<std::uint64_t[]> bits;
    std::unique_ptr<std::uint32_t[]> virtual_sizes;
    std::unique_ptr<net::BufferRef[]> payloads;  // only when real bytes are stored
    std::uint32_t count = 0;
  };

  [[nodiscard]] State& state(std::uint32_t window) { return states_[window % geo_.windows]; }
  [[nodiscard]] const State& state(std::uint32_t window) const {
    return states_[window % geo_.windows];
  }

  RingGeometry geo_;
  std::uint32_t words_;
  std::uint32_t base_ = 0;
  std::size_t size_ = 0;
  std::vector<State> states_;
  mutable Event scratch_;
};

}  // namespace hg::gossip
