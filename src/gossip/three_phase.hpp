// Three-phase push-request-push gossip dissemination (paper Algorithm 1)
// with the retransmission extension of Algorithm 2.
//
// Phase 1: every `period`, propose the ids delivered since the last round
//          ("infect and die": each id is proposed exactly once) to
//          fanout-many uniformly random peers.
// Phase 2: a peer receiving a [Propose] immediately [Request]s the ids it
//          has not requested yet from the proposer.
// Phase 3: the proposer [Serve]s the payloads; one datagram per event, but
//          all serves answering one request are encoded into a single
//          pooled buffer and sent as zero-copy slices of it.
//
// The fanout comes from a FanoutPolicy: a constant for standard gossip, the
// capability-proportional rule for HEAP — this single indirection is the
// paper's entire behavioural delta.
//
// All per-event state lives in dense window rings (see window_ring.hpp)
// indexed by the (window, packet) decomposition of EventId — no hashing on
// the propose/request/serve hot path, and gc is an O(1) ring advance.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "gossip/config.hpp"
#include "gossip/fanout_policy.hpp"
#include "gossip/messages.hpp"
#include "gossip/retransmit.hpp"
#include "gossip/window_ring.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace hg::gossip {

class ThreePhaseGossip {
 public:
  // Called exactly once per distinct event, when its payload first arrives.
  using DeliverFn = std::function<void(const Event&)>;
  // Lets the application veto requests (e.g., the player declines further
  // packets of a window it has already decoded). Default: request all.
  using ShouldRequestFn = std::function<bool(EventId)>;

  ThreePhaseGossip(sim::Simulator& simulator, net::NetworkFabric& fabric,
                   membership::LocalView& view, NodeId self, GossipConfig config,
                   FanoutPolicy& policy);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_should_request(ShouldRequestFn fn) { should_request_ = std::move(fn); }

  // Starts the periodic gossip timer (random initial phase).
  void start();
  void stop();

  // Source-side entry point (Algorithm 1 `publish`): deliver locally, then
  // propose — immediately by default, else in the next round.
  void publish(Event event);

  // Dispatches kPropose / kRequest / kServe datagrams addressed to self.
  void on_datagram(const net::Datagram& d);

  // Stop requesting/retransmitting packets of `window` (already decodable).
  void cancel_window_requests(std::uint32_t window);

  [[nodiscard]] bool has_delivered(EventId id) const { return delivered_.contains(id); }
  // Stored event (payload included) or nullptr if unknown/garbage-collected.
  // The pointer refers to a scratch slot valid until the next call.
  [[nodiscard]] const Event* delivered_event(EventId id) const { return delivered_.find(id); }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const GossipConfig& config() const { return config_; }
  [[nodiscard]] FanoutPolicy& policy() { return policy_; }

  struct Stats {
    std::uint64_t rounds = 0;
    std::uint64_t proposes_sent = 0;       // datagrams
    std::uint64_t ids_proposed = 0;        // id entries across proposes
    std::uint64_t requests_sent = 0;
    std::uint64_t serves_sent = 0;         // per-event serve datagrams
    std::uint64_t serve_batches = 0;       // multi-event serve rounds sharing one buffer
    std::uint64_t events_delivered = 0;
    std::uint64_t duplicate_serves = 0;
    std::uint64_t declined_requests = 0;   // vetoed by should_request
    std::uint64_t unknown_requests = 0;    // asked for events we lack
    std::uint64_t malformed = 0;           // undecodable datagrams + out-of-domain ids
    std::uint64_t windows_cancelled = 0;   // cancel commands honored (decode-on-k)
    std::uint64_t timers_cancelled_by_window = 0;  // retransmit timers those cancels killed
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RetransmitTracker::Stats& retransmit_stats() const {
    return retransmit_.stats();
  }

  // Heap bytes of the per-event protocol state (delivered events, requested
  // flags, proposer lists, retransmit timers) — the quantity bench_fig_scale
  // tracks as gossip_state_bytes_per_node.
  [[nodiscard]] std::size_t state_bytes() const {
    return delivered_.state_bytes() + requested_.state_bytes() + proposers_.state_bytes() +
           to_propose_.capacity() * sizeof(EventId) + retransmit_.state_bytes();
  }

 private:
  // An id is admissible if its packet index fits the window geometry and its
  // window is neither below the gc cutoff nor beyond the request-ring
  // domain. Wire ids failing this are malformed: acting on them would
  // resurrect state gc already reclaimed (or index past a slab).
  [[nodiscard]] bool id_admissible(EventId id) const {
    return id.index() < config_.packets_per_window && requested_.in_domain(id.window());
  }

  void gossip_round();
  void arm_round();
  void gossip_ids(const std::vector<EventId>& ids);
  void on_propose(const ProposeMsg& m);
  void on_request(const RequestMsg& m);
  void on_serve(const ServeMsg& m);
  void on_retransmit_fire(EventId id, int retry_count);
  void deliver_event(Event event);
  void record_proposer(EventId id, NodeId proposer);
  void gc(std::uint32_t newest_window);

  sim::Simulator& sim_;
  net::NetworkFabric& fabric_;
  membership::LocalView& view_;
  NodeId self_;
  GossipConfig config_;
  FanoutPolicy& policy_;
  Rng rng_;

  DeliverFn deliver_;
  ShouldRequestFn should_request_;

  // Known proposers per not-yet-delivered event; [0] got the first request,
  // retries walk the rest round-robin. Re-requesting the node that already
  // has our request queued would only produce a duplicate serve, so retries
  // require a *different* target; with no alternate the timer re-arms
  // silently and waits for new proposers.
  struct ProposerSlot {
    static constexpr std::size_t kCapacity = 8;
    std::array<NodeId, kCapacity> nodes;
    std::uint32_t count = 0;
    std::uint32_t next = 1;              // index of the proposer for the next retry
    NodeId last_requested;               // whoever got the latest request
  };

  EventRing delivered_;
  // Requested flags; also carries the per-window cancelled flags that
  // replaced the old unbounded cancelled-window set.
  WindowRing<void> requested_;
  WindowRing<ProposerSlot> proposers_;
  std::vector<EventId> to_propose_;
  RetransmitTracker retransmit_;

  sim::Simulator::PeriodicHandle timer_;     // periodic round mode
  sim::EventHandle round_event_;             // park_idle_rounds one-shot
  sim::SimTime round_anchor_;                // park mode: grid = anchor + k*period
  bool started_ = false;
  std::uint32_t newest_window_seen_ = 0;
  std::uint32_t gc_done_below_ = 0;
  std::vector<NodeId> targets_scratch_;
  // Reused per round so the steady-state wire path performs no heap
  // allocations (the pooled buffers carry the bytes; these carry indices).
  std::vector<EventId> wanted_scratch_;
  std::vector<Event> serve_events_scratch_;
  std::vector<ServeSpan> serve_spans_scratch_;
  Stats stats_;
};

}  // namespace hg::gossip
