// Configuration of the three-phase gossip dissemination (paper §2.1, §3.1).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hg::gossip {

struct GossipConfig {
  // Gossip period between [Propose] rounds (paper: 200 ms, which batches
  // ~11.26 packet ids per propose at the 600 kbps stream rate).
  sim::SimTime period = sim::SimTime::ms(200);

  // The system-wide average fanout target f = ln(n) + c (paper: 7 for 270
  // nodes; ln(270) ~= 5.6). Individual per-round fanouts come from the
  // FanoutPolicy, which must preserve this average.
  double base_fanout = 7.0;

  // Retransmission (Algorithm 2): a requested event not served within
  // retransmit_period is re-requested from an alternate proposer.
  sim::SimTime retransmit_period = sim::SimTime::ms(1000);
  int max_retransmits = 8;

  // The source proposes each published event immediately (Algorithm 1 line
  // 5: publish -> gossip({e.id})); relaying nodes batch per period (line 6).
  bool immediate_publish = true;

  // State horizon: per-event bookkeeping (delivered payloads, proposer
  // lists, requested flags) is garbage-collected once the event's window is
  // this many windows behind the newest seen (40 windows ~= 77 s of stream,
  // beyond the largest lag the paper plots).
  std::uint32_t gc_window_horizon = 40;

  // Keep at most this many distinct proposers per event as retransmission
  // fallbacks.
  std::size_t max_proposers_tracked = 8;

  // Stream coding geometry: ids with a packet index at or beyond this are
  // malformed and never materialize state. Drives the slot count of every
  // WindowRing slab; the scenario layer copies StreamConfig::window_packets()
  // here so gossip and stream agree on one indexing scheme.
  std::uint32_t packets_per_window = 110;

  // WindowRing capacities (in windows) derived from the GC horizon.
  //
  // Delivered events live in [gc cutoff, newest window seen] — exactly
  // horizon+1 windows once GC has run, which deliver_event guarantees by
  // advancing the cutoff *before* inserting.
  [[nodiscard]] std::uint32_t delivered_ring_windows() const { return gc_window_horizon + 1; }

  // Requested flags, proposer lists and retransmit timers also exist for
  // events *ahead* of our newest delivery (a proposer is at most one serve
  // round-trip ahead, i.e. well under horizon+1 windows for any sane
  // horizon), so those rings span twice the delivered depth: horizon+1
  // windows of history plus horizon+1 of lead.
  [[nodiscard]] std::uint32_t request_ring_windows() const {
    return 2 * (gc_window_horizon + 1);
  }

  // Large-scale runs: serves carry declared payload sizes instead of bytes
  // (see gossip::Event). Must match StreamConfig::virtual_payloads and be
  // uniform across the deployment — the flag selects the serve framing both
  // when encoding and when decoding.
  bool virtual_payloads = false;

  // Replace the free-running periodic round timer with one-shot rounds armed
  // on the same phase-shifted grid only while ids are pending. Message-
  // for-message identical where enabled, but an idle node schedules no
  // events at all — which is what lets the sharded engine's epoch widening
  // fast-forward over quiescent stretches. Only valid under the sharded
  // P >= 2 engine (keyed delivery ordering makes a grid tick run before
  // same-instant arrivals, matching the periodic timer exactly); the
  // sequential engine keeps the periodic timer and its bitwise-frozen
  // event interleaving. The scenario layer sets this, not users.
  bool park_idle_rounds = false;
};

}  // namespace hg::gossip
