// Upload-capability distributions (paper Table 1 + the uniform "dist2" of
// Fig. 2 and the unconstrained setting of Fig. 1).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace hg::scenario {

struct BandwidthClass {
  std::string name;      // e.g. "256kbps"
  BitRate capability;
  double fraction = 0;   // share of the population
};

struct NodeBandwidth {
  BitRate capability;
  int class_index = 0;   // index into BandwidthDistribution::classes
};

class BandwidthDistribution {
 public:
  // --- the paper's distributions -----------------------------------------
  // ref-691: CSR 1.15, avg 691 kbps; 10% @2 Mbps, 50% @768 kbps, 40% @256 kbps
  [[nodiscard]] static BandwidthDistribution ref691();
  // ref-724: CSR 1.20, avg 724 kbps; 15% @2 Mbps, 39% @768 kbps, 46% @256 kbps
  [[nodiscard]] static BandwidthDistribution ref724();
  // ms-691 ("dist1"): CSR 1.15, avg 691 kbps; 5% @3 Mbps, 10% @1 Mbps, 85% @512 kbps
  [[nodiscard]] static BandwidthDistribution ms691();
  // "dist2": continuous uniform with the same 691 kbps average. The paper
  // does not give the support; we use ±50% around the mean (documented in
  // DESIGN.md §4.5) and make the width configurable.
  [[nodiscard]] static BandwidthDistribution dist2_uniform(double half_width = 0.5);
  // Fig. 1: no upload caps at all.
  [[nodiscard]] static BandwidthDistribution unconstrained();
  // Single homogeneous class (tests, ablations).
  [[nodiscard]] static BandwidthDistribution homogeneous(BitRate capability);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<BandwidthClass>& classes() const { return classes_; }
  [[nodiscard]] double average_kbps() const;
  // Capability supply ratio for a given stream rate (paper: avg / rate).
  [[nodiscard]] double csr(double stream_rate_kbps) const {
    return average_kbps() / stream_rate_kbps;
  }

  // Deterministically assigns capabilities to n nodes: class sizes by
  // largest-remainder apportionment, then a seeded shuffle so classes are
  // not correlated with node ids.
  [[nodiscard]] std::vector<NodeBandwidth> assign(std::size_t n, Rng& rng) const;

 private:
  enum class Kind { kClasses, kUniformRange, kUnconstrained };

  std::string name_;
  Kind kind_ = Kind::kClasses;
  std::vector<BandwidthClass> classes_;
  double uniform_lo_kbps_ = 0;
  double uniform_hi_kbps_ = 0;
};

}  // namespace hg::scenario
