#include "scenario/deployment.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "stream/fec_module.hpp"
#include "stream/player_module.hpp"

namespace hg::scenario {

namespace {
constexpr std::uint64_t kAssignStream = 0x41535347;  // "ASSG"
constexpr std::uint64_t kNoiseStream = 0x4e4f4953;   // "NOIS"
constexpr std::uint64_t kChurnStream = 0x4348524e;   // "CHRN"
}  // namespace

Deployment::~Deployment() = default;

std::unique_ptr<Deployment> Deployment::Builder::build() const {
  // --- plan validation ------------------------------------------------------
  sim::SimTime prev_churn = sim::SimTime::zero();
  for (const ChurnEvent& event : churn_.schedule) {
    HG_ASSERT_MSG(event.fraction >= 0.0 && event.fraction <= 1.0,
                  "ChurnEvent.fraction must be within [0, 1]");
    HG_ASSERT_MSG(event.at >= prev_churn,
                  "churn schedule must be sorted by time (non-monotone schedule rejected)");
    prev_churn = event.at;
  }

  HG_ASSERT_MSG(population_.node.gossip.virtual_payloads == stream_.stream.virtual_payloads,
                "virtual_payloads must be set on the gossip AND stream config (the flag "
                "selects the serve wire framing deployment-wide)");

  // make_unique can't reach the private constructor.
  std::unique_ptr<Deployment> d(new Deployment());
  d->stream_ = stream_;
  d->churn_ = churn_;

  const std::size_t total = population_.node_count + 1;  // + source

  // Latency first: the sharded engine's epoch width is the latency floor.
  // Rng(seed).fork(tag) is exactly what both engines' make_rng(tag) returns,
  // so the latency base stream is identical in every mode.
  std::unique_ptr<net::LatencyModel> latency;
  if (network_.latency.has_value()) {
    latency = std::make_unique<net::PlanetLabLatency>(*network_.latency, Rng(seed_).fork(7));
  } else {
    latency = std::make_unique<net::ConstantLatency>(sim::SimTime::ms(30));
  }
  std::unique_ptr<net::LossModel> loss;
  if (network_.loss_rate > 0) {
    loss = std::make_unique<net::BernoulliLoss>(network_.loss_rate);
  } else {
    loss = std::make_unique<net::NoLoss>();
  }

  // Population assignment before engine construction: the clustered
  // placement needs per-node capabilities, and the assignment stream
  // (Rng(seed).fork) is engine-independent, so hoisting it changes no draw.
  Rng assign_rng = Rng(seed_).fork(kAssignStream);
  const auto assignment = population_.distribution.assign(population_.node_count, assign_rng);

  if (parallel_.workers == 0) {
    d->sim_ = std::make_unique<sim::Simulator>(seed_);
  } else {
    const sim::SimTime epoch = latency->min_delay();
    std::uint32_t parts = parallel_.partitions;
    if (parts == 0) {
      // Auto: one partition per ~64 nodes, capped — tiny runs stay effectively
      // sequential, big runs get enough blocks for 16 workers.
      parts = static_cast<std::uint32_t>(
          std::min<std::size_t>(16, std::max<std::size_t>(1, total / 64)));
    }
    if (epoch <= sim::SimTime::zero() && parts > 1) {
      HG_LOG_WARN(
          "latency model has a zero delay floor: superstep epochs cannot bound "
          "cross-partition traffic, forcing partitions=1 (was %u)",
          parts);
      parts = 1;
    }
    std::vector<std::uint32_t> placement;
    if (parallel_.placement == Placement::kClustered && parts > 1 && total >= parts) {
      // Capability-sorted snake deal (see Placement::kClustered). The source
      // (node 0) ranks by its own capability like everyone else.
      std::vector<std::uint32_t> order(total);
      for (std::uint32_t i = 0; i < total; ++i) order[i] = i;
      auto capability_of = [&](std::uint32_t id) {
        return id == 0 ? population_.source_capability : assignment[id - 1].capability;
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         const BitRate ca = capability_of(a);
                         const BitRate cb = capability_of(b);
                         if (ca.is_unlimited() != cb.is_unlimited()) return ca.is_unlimited();
                         if (ca.bits_per_sec() != cb.bits_per_sec()) {
                           return ca.bits_per_sec() > cb.bits_per_sec();
                         }
                         return a < b;  // id-stable ties
                       });
      placement.resize(total);
      for (std::uint32_t rank = 0; rank < total; ++rank) {
        const std::uint32_t lap = rank / parts;
        const std::uint32_t step = rank % parts;
        placement[order[rank]] = (lap % 2 == 0) ? step : parts - 1 - step;
      }
    }
    d->engine_ = std::make_unique<sim::ShardedEngine>(
        seed_, total,
        sim::ShardedEngine::Config{parts, parallel_.workers, epoch, std::move(placement),
                                   parallel_.epoch_widening});
  }

  if (d->engine_ != nullptr) {
    d->fabric_ = std::make_unique<net::NetworkFabric>(*d->engine_, std::move(latency),
                                                      std::move(loss),
                                                      net::FabricConfig{network_.discipline});
    sim::ShardedEngine* engine = d->engine_.get();
    d->directory_ = std::make_unique<membership::Directory>(
        churn_.detection, engine->make_rng(membership::kDirectoryStream),
        [engine](sim::SimTime at, std::function<void()> fn) {
          engine->schedule_control(at, std::move(fn));
        },
        [engine]() { return engine->now(); });
  } else {
    d->fabric_ = std::make_unique<net::NetworkFabric>(*d->sim_, std::move(latency),
                                                      std::move(loss),
                                                      net::FabricConfig{network_.discipline});
    d->directory_ = std::make_unique<membership::Directory>(*d->sim_, churn_.detection);
  }

  for (std::uint32_t i = 0; i < total; ++i) d->directory_->add_node(NodeId{i});

  // Each node's stack runs on its own partition's simulator (the sequential
  // engine is "one partition" here).
  auto sim_of = [&d](NodeId id) -> sim::Simulator& {
    return d->engine_ != nullptr ? d->engine_->sim_of_node(id.value()) : *d->sim_;
  };

  NodeFactory make_node = factory_;
  if (!make_node) {
    make_node = [](sim::Simulator& s, net::NetworkFabric& f, membership::Directory& dir,
                   NodeId id, const core::NodeConfig& cfg) {
      return core::NodeRuntime::make(s, f, dir, id, cfg);
    };
  }

  // Per-node template; park idle gossip rounds under the sharded P >= 2
  // engine (message-identical there — see GossipConfig::park_idle_rounds —
  // and quiescent nodes are what epoch widening fast-forwards over). The
  // sequential and single-partition engines keep the periodic timer and its
  // bitwise-frozen interleaving.
  core::NodeConfig node_template = population_.node;
  if (d->engine_ != nullptr && d->engine_->partitions() > 1) {
    node_template.gossip.park_idle_rounds = true;
  }

  // --- source (node 0) ----------------------------------------------------
  core::NodeConfig source_cfg = node_template;
  source_cfg.mode = core::Mode::kStandard;  // the broadcaster does not adapt
  source_cfg.capability = population_.source_capability;
  d->source_node_ =
      make_node(sim_of(NodeId{0}), *d->fabric_, *d->directory_, NodeId{0}, source_cfg);
  d->source_node_->attach(population_.source_capability);

  // --- receivers ----------------------------------------------------------
  Rng noise_rng = Rng(seed_).fork(kNoiseStream);

  d->receivers_.reserve(population_.node_count);
  for (std::size_t i = 0; i < population_.node_count; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i + 1)};
    Receiver r;
    r.info.id = id;
    r.info.class_index = assignment[i].class_index;
    r.info.capability = assignment[i].capability;
    r.info.actual_capacity = assignment[i].capability;
    if (population_.noise_fraction > 0 && noise_rng.chance(population_.noise_fraction) &&
        !r.info.capability.is_unlimited()) {
      // A background-loaded PlanetLab node: delivers only part of its cap.
      r.info.actual_capacity = r.info.capability * noise_rng.uniform(0.3, 0.7);
    }

    core::NodeConfig node_cfg = node_template;
    node_cfg.capability = r.info.capability;
    r.node = make_node(sim_of(id), *d->fabric_, *d->directory_, id, node_cfg);
    r.player = std::make_unique<stream::Player>(
        sim_of(id), stream_.stream, stream_.windows,
        population_.lean_players ? stream::Player::Recording::kLean
                                 : stream::Player::Recording::kFull);
    r.player->set_smart(population_.smart_receivers);

    // Signal-bus glue: deliveries -> player, request budget -> gate, window
    // cancellation -> the gossip module's subscription.
    r.node->emplace_module<stream::PlayerModule>(*r.player);
    if (stream_.stream.real_payloads) {
      // Real bytes on the wire: mount the online decoder so windows are
      // reconstructed (erasures repaired from parity) the moment any k of n
      // packets arrive. Sized/virtual runs mount nothing — decodability is
      // pure counting there, and the stack stays bit-identical to before
      // the FEC layer existed.
      r.node->emplace_module<stream::FecModule>(stream_.stream, stream_.windows);
    }
    r.node->attach(r.info.actual_capacity);
    d->receivers_.push_back(std::move(r));
  }

  // --- stream source app ---------------------------------------------------
  d->source_ = std::make_unique<stream::StreamSource>(
      sim_of(NodeId{0}), stream_.stream,
      [source_node = d->source_node_.get()](gossip::Event e) {
        source_node->publish(std::move(e));
      });

  // --- churn ----------------------------------------------------------------
  // Armed here, not in start(): same-time events fire in scheduling order,
  // and crashes must preempt protocol timers tied to the same timestamp. The
  // sharded engine gives the same guarantee structurally: control tasks run
  // at the barrier before any partition's local events at that time.
  Deployment* dp = d.get();
  for (const ChurnEvent& event : churn_.schedule) {
    dp->schedule_control(event.at, [dp, event]() { dp->apply_churn(event); });
  }

  return d;
}

std::uint64_t Deployment::run_until(sim::SimTime until) {
  return engine_ != nullptr ? engine_->run_until(until) : sim_->run_until(until);
}

void Deployment::schedule_control(sim::SimTime when, std::function<void()> fn) {
  if (engine_ != nullptr) {
    engine_->schedule_control(when, std::move(fn));
  } else {
    sim_->at(when, std::move(fn));
  }
}

sim::SimTime Deployment::now() const {
  return engine_ != nullptr ? engine_->now() : sim_->now();
}

std::uint64_t Deployment::events_executed() const {
  return engine_ != nullptr ? engine_->events_executed() : sim_->events_executed();
}

void Deployment::start() {
  HG_ASSERT_MSG(!started_, "Deployment::start is single-shot");
  started_ = true;

  source_->start(stream_.start, stream_.windows);
  source_node_->start();
  for (auto& r : receivers_) r.node->start();
}

void Deployment::apply_churn(const ChurnEvent& event) {
  const std::uint64_t tag = kChurnStream ^ static_cast<std::uint64_t>(event.at.as_us());
  Rng churn_rng = engine_ != nullptr ? engine_->make_rng(tag) : sim_->make_rng(tag);
  std::vector<std::size_t> alive_idx;
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if (!receivers_[i].info.crashed) alive_idx.push_back(i);
  }
  const auto kill_count = static_cast<std::size_t>(
      event.fraction * static_cast<double>(receivers_.size()));
  churn_rng.shuffle(alive_idx);
  const std::size_t n = std::min(kill_count, alive_idx.size());
  HG_LOG_INFO("churn at t=%.1fs: crashing %zu of %zu receivers", event.at.as_sec(), n,
              alive_idx.size());
  for (std::size_t k = 0; k < n; ++k) {
    Receiver& r = receivers_[alive_idx[k]];
    r.info.crashed = true;
    r.info.crashed_at = now();
    r.node->stop();
    fabric_->kill(r.info.id);
    directory_->kill(r.info.id);
  }
}

}  // namespace hg::scenario
