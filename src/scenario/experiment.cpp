#include "scenario/experiment.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace hg::scenario {

namespace {
constexpr std::uint64_t kAssignStream = 0x41535347;  // "ASSG"
constexpr std::uint64_t kNoiseStream = 0x4e4f4953;   // "NOIS"
constexpr std::uint64_t kChurnStream = 0x4348524e;   // "CHRN"
}  // namespace

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}

Experiment::~Experiment() = default;

void Experiment::build() {
  sim_ = std::make_unique<sim::Simulator>(config_.seed);

  std::unique_ptr<net::LatencyModel> latency;
  if (config_.latency.has_value()) {
    latency = std::make_unique<net::PlanetLabLatency>(*config_.latency, sim_->make_rng(7));
  } else {
    latency = std::make_unique<net::ConstantLatency>(sim::SimTime::ms(30));
  }
  std::unique_ptr<net::LossModel> loss;
  if (config_.loss_rate > 0) {
    loss = std::make_unique<net::BernoulliLoss>(config_.loss_rate);
  } else {
    loss = std::make_unique<net::NoLoss>();
  }
  fabric_ = std::make_unique<net::NetworkFabric>(*sim_, std::move(latency), std::move(loss),
                                                 net::FabricConfig{config_.discipline});
  directory_ = std::make_unique<membership::Directory>(*sim_, config_.detection);

  const std::size_t total = config_.node_count + 1;  // + source
  for (std::uint32_t i = 0; i < total; ++i) directory_->add_node(NodeId{i});

  // --- source (node 0) ----------------------------------------------------
  gossip::GossipConfig gossip_cfg;
  gossip_cfg.period = config_.gossip_period;
  gossip_cfg.base_fanout = config_.fanout;
  gossip_cfg.retransmit_period = config_.retransmit_period;
  gossip_cfg.max_retransmits = config_.max_retransmits;

  core::NodeConfig source_cfg;
  source_cfg.mode = core::Mode::kStandard;  // the broadcaster does not adapt
  source_cfg.capability = config_.source_capability;
  source_cfg.gossip = gossip_cfg;
  source_node_ = std::make_unique<core::HeapNode>(*sim_, *fabric_, *directory_, NodeId{0},
                                                  source_cfg);
  fabric_->register_node(NodeId{0}, config_.source_capability,
                         [node = source_node_.get()](const net::Datagram& d) {
                           node->on_datagram(d);
                         });

  // --- receivers ----------------------------------------------------------
  Rng assign_rng = sim_->make_rng(kAssignStream);
  Rng noise_rng = sim_->make_rng(kNoiseStream);
  const auto assignment = config_.distribution.assign(config_.node_count, assign_rng);

  receivers_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i + 1)};
    Receiver r;
    r.info.id = id;
    r.info.class_index = assignment[i].class_index;
    r.info.capability = assignment[i].capability;
    r.info.actual_capacity = assignment[i].capability;
    if (config_.noise_fraction > 0 && noise_rng.chance(config_.noise_fraction) &&
        !r.info.capability.is_unlimited()) {
      // A background-loaded PlanetLab node: delivers only part of its cap.
      r.info.actual_capacity = r.info.capability * noise_rng.uniform(0.3, 0.7);
    }

    core::NodeConfig node_cfg;
    node_cfg.mode = config_.mode;
    node_cfg.capability = r.info.capability;
    node_cfg.gossip = gossip_cfg;
    node_cfg.aggregation = config_.aggregation;
    node_cfg.max_fanout = config_.max_fanout;
    node_cfg.rounding = config_.rounding;
    r.node = std::make_unique<core::HeapNode>(*sim_, *fabric_, *directory_, id, node_cfg);
    r.player = std::make_unique<stream::Player>(*sim_, config_.stream, config_.stream_windows);
    r.player->set_smart(config_.smart_receivers);

    auto* player = r.player.get();
    auto* node = r.node.get();
    node->set_deliver([player](const gossip::Event& e) { player->on_deliver(e); });
    node->set_should_request([player](gossip::EventId id) { return player->should_request(id); });
    player->set_cancel_window(
        [node](std::uint32_t w) { node->gossip().cancel_window_requests(w); });

    fabric_->register_node(id, r.info.actual_capacity,
                           [node](const net::Datagram& d) { node->on_datagram(d); });
    receivers_.push_back(std::move(r));
  }

  // --- stream source app ----------------------------------------------------
  source_ = std::make_unique<stream::StreamSource>(
      *sim_, config_.stream,
      [this](gossip::Event e) { source_node_->publish(std::move(e)); });

  // --- churn ----------------------------------------------------------------
  for (const ChurnEvent& event : config_.churn) {
    sim_->at(event.at, [this, event]() { apply_churn(event); });
  }
}

void Experiment::apply_churn(const ChurnEvent& event) {
  Rng churn_rng = sim_->make_rng(kChurnStream ^ static_cast<std::uint64_t>(event.at.as_us()));
  std::vector<std::size_t> alive_idx;
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if (!receivers_[i].info.crashed) alive_idx.push_back(i);
  }
  const auto kill_count = static_cast<std::size_t>(
      event.fraction * static_cast<double>(receivers_.size()));
  churn_rng.shuffle(alive_idx);
  const std::size_t n = std::min(kill_count, alive_idx.size());
  HG_LOG_INFO("churn at t=%.1fs: crashing %zu of %zu receivers", event.at.as_sec(), n,
              alive_idx.size());
  for (std::size_t k = 0; k < n; ++k) {
    Receiver& r = receivers_[alive_idx[k]];
    r.info.crashed = true;
    r.info.crashed_at = sim_->now();
    r.node->stop();
    fabric_->kill(r.info.id);
    directory_->kill(r.info.id);
  }
}

void Experiment::run() {
  HG_ASSERT_MSG(!ran_, "Experiment::run is single-shot");
  ran_ = true;
  build();

  source_->start(config_.stream_start, config_.stream_windows);
  source_node_->start();
  for (auto& r : receivers_) r.node->start();

  analyzer_ = std::make_unique<stream::LagAnalyzer>(*source_);

  // Snapshot upload counters when the stream ends: Fig. 4's usage is the
  // mean upload rate while the stream is live.
  sim_->at(config_.stream_end(), [this]() {
    for (auto& r : receivers_) {
      r.info.uploaded_bytes_at_stream_end = fabric_->meter(r.info.id).total_sent_bytes();
    }
  });

  sim_->run_until(config_.run_end());
}

const net::TrafficMeter& Experiment::meter(std::size_t i) const {
  return fabric_->meter(receivers_[i].info.id);
}

double Experiment::upload_usage(std::size_t i) const {
  const ReceiverInfo& info = receivers_[i].info;
  if (info.actual_capacity.is_unlimited()) return 0.0;
  const double bits = static_cast<double>(info.uploaded_bytes_at_stream_end) * 8.0;
  const double capacity_bits =
      static_cast<double>(info.actual_capacity.bits_per_sec()) *
      config_.stream_end().as_sec();
  return bits / capacity_bits;
}

std::vector<const stream::Player*> Experiment::surviving_players() const {
  std::vector<const stream::Player*> out;
  out.reserve(receivers_.size());
  for (const auto& r : receivers_) {
    if (!r.info.crashed) out.push_back(r.player.get());
  }
  return out;
}

std::vector<const stream::Player*> Experiment::players_of_class(int class_index) const {
  std::vector<const stream::Player*> out;
  for (const auto& r : receivers_) {
    if (!r.info.crashed && r.info.class_index == class_index) out.push_back(r.player.get());
  }
  return out;
}

}  // namespace hg::scenario
