#include "scenario/experiment.hpp"

#include "common/assert.hpp"

namespace hg::scenario {

NetworkPlan ExperimentConfig::network_plan() const {
  NetworkPlan plan;
  plan.loss_rate = loss_rate;
  plan.discipline = discipline;
  plan.latency = latency;
  return plan;
}

PopulationPlan ExperimentConfig::population_plan() const {
  PopulationPlan plan;
  plan.node_count = node_count;
  plan.distribution = distribution;
  plan.source_capability = source_capability;
  plan.noise_fraction = noise_fraction;
  plan.smart_receivers = smart_receivers;

  plan.node.mode = mode;
  plan.node.gossip.period = gossip_period;
  plan.node.gossip.base_fanout = fanout;
  plan.node.gossip.retransmit_period = retransmit_period;
  plan.node.gossip.max_retransmits = max_retransmits;
  plan.node.gossip.gc_window_horizon = gc_window_horizon;
  // Gossip and stream must agree on the (window, index) geometry: the ring
  // slabs are sized by it, and ids indexing past it are malformed.
  plan.node.gossip.packets_per_window = static_cast<std::uint32_t>(stream.window_packets());
  plan.node.gossip.virtual_payloads = virtual_payloads || stream.virtual_payloads;
  plan.node.aggregation = aggregation;
  plan.node.max_fanout = max_fanout;
  plan.node.rounding = rounding;
  plan.lean_players = lean_players;
  return plan;
}

StreamPlan ExperimentConfig::stream_plan() const {
  StreamPlan plan{stream, stream_windows, stream_start};
  if (virtual_payloads) plan.stream.virtual_payloads = true;
  return plan;
}

ChurnPlan ExperimentConfig::churn_plan() const { return ChurnPlan{churn, detection}; }

ParallelPlan ExperimentConfig::parallel_plan() const {
  return ParallelPlan{workers, partitions, placement, epoch_widening};
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}

Experiment::~Experiment() = default;

void Experiment::run() {
  HG_ASSERT_MSG(!ran_, "Experiment::run is single-shot");
  ran_ = true;

  deployment_ = Deployment::Builder{}
                    .seed(config_.seed)
                    .network(config_.network_plan())
                    .population(config_.population_plan())
                    .stream(config_.stream_plan())
                    .churn(config_.churn_plan())
                    .parallel(config_.parallel_plan())
                    .node_factory(config_.node_factory)
                    .build();
  deployment_->start();

  analyzer_ = std::make_unique<stream::LagAnalyzer>(deployment_->source());

  // Snapshot upload counters when the stream ends: Fig. 4's usage is the
  // mean upload rate while the stream is live. In parallel mode the snapshot
  // is a barrier control task — every partition has drained to stream_end()
  // before it reads the meters.
  deployment_->schedule_control(config_.stream_end(), [this]() {
    for (std::size_t i = 0; i < deployment_->receivers(); ++i) {
      ReceiverInfo& info = deployment_->info(i);
      info.uploaded_bytes_at_stream_end = deployment_->meter(i).total_sent_bytes();
    }
  });

  deployment_->run_until(config_.run_end());
}

double Experiment::upload_usage(std::size_t i) const {
  const ReceiverInfo& info = deployment_->info(i);
  if (info.actual_capacity.is_unlimited()) return 0.0;
  const double bits = static_cast<double>(info.uploaded_bytes_at_stream_end) * 8.0;
  const double capacity_bits =
      static_cast<double>(info.actual_capacity.bits_per_sec()) *
      config_.stream_end().as_sec();
  return bits / capacity_bits;
}

std::vector<const stream::Player*> Experiment::surviving_players() const {
  std::vector<const stream::Player*> out;
  out.reserve(deployment_->receivers());
  for (std::size_t i = 0; i < deployment_->receivers(); ++i) {
    if (!deployment_->info(i).crashed) out.push_back(&deployment_->player(i));
  }
  return out;
}

std::vector<const stream::Player*> Experiment::players_of_class(int class_index) const {
  std::vector<const stream::Player*> out;
  for (std::size_t i = 0; i < deployment_->receivers(); ++i) {
    if (!deployment_->info(i).crashed && deployment_->info(i).class_index == class_index) {
      out.push_back(&deployment_->player(i));
    }
  }
  return out;
}

}  // namespace hg::scenario
