#include "scenario/scale_preset.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hg::scenario {

ExperimentConfig ScalePreset::config(std::size_t nodes, core::Mode mode, std::uint64_t seed) {
  HG_ASSERT(nodes > 0);
  ExperimentConfig cfg;
  cfg.node_count = nodes;
  cfg.mode = mode;
  cfg.seed = seed;

  // Reliability threshold: f = ln(n) + c keeps the delivery probability on
  // the supercritical side as N grows (c = 2, the margin the paper's f = 7
  // gives its 270-node testbed over ln(270) ~= 5.6).
  cfg.fanout = std::log(static_cast<double>(nodes)) + 2.0;
  cfg.distribution = BandwidthDistribution::ref691();

  // Short stream: a few FEC windows expose the steady-state lag/jitter
  // distributions; the tail covers the retransmission horizon.
  cfg.stream_windows = 4;
  cfg.tail = sim::SimTime::sec(20.0);

  // The large-N switches (see the header).
  cfg.virtual_payloads = true;
  cfg.lean_players = true;
  cfg.gc_window_horizon = 4;
  cfg.aggregation.max_records = 64;
  // One aggregation partner per second still re-converges b̄ well inside a
  // 30 s record expiry, at 1/5th of the default message load — at 100k
  // nodes the 200 ms paper period alone is half a million msgs/s.
  cfg.aggregation.period = sim::SimTime::ms(1000);

  // Parallel runs: balance the upload-capability mass across partitions so
  // HEAP's busiest senders don't pile into one barrier-straggling block.
  // Results are placement-invariant; only wall clock moves.
  cfg.placement = Placement::kClustered;

  return cfg;
}

}  // namespace hg::scenario
