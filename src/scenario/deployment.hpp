// Deployment: the assembled system under test — simulator, network fabric,
// membership directory, one protocol stack + player per peer, a stream
// source, and a churn schedule.
//
// Assembly is split into four composable plans (network, population, stream,
// churn) glued together by a Builder, so scenarios can vary one axis without
// re-describing the rest, and a pluggable NodeFactory handing out
// core::NodeRuntime stacks so experiments can deploy custom or misbehaving
// node compositions — including mixed populations where different receivers
// run different stacks. `Experiment` remains the paper-shaped front end: it
// flattens an ExperimentConfig into these plans.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "core/node_runtime.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "scenario/distribution.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"
#include "stream/player.hpp"
#include "stream/source.hpp"

namespace hg::scenario {

struct ChurnEvent {
  sim::SimTime at;
  double fraction = 0.0;  // share of receivers crashed simultaneously
};

// --- composable plans ------------------------------------------------------

struct NetworkPlan {
  double loss_rate = 0.005;
  net::QueueDiscipline discipline = net::QueueDiscipline::kFifo;
  // Engaged: PlanetLab-like pairwise latencies. Empty: constant 30 ms.
  std::optional<net::PlanetLabLatencyConfig> latency = net::PlanetLabLatencyConfig{};
};

struct PopulationPlan {
  std::size_t node_count = 270;  // receivers; the source is an extra node (id 0)
  BandwidthDistribution distribution = BandwidthDistribution::ref691();
  // Template for every receiver; capability is overwritten per node from the
  // distribution (mode/gossip/aggregation/max_fanout/rounding are shared).
  core::NodeConfig node;
  // The source is a well-provisioned peer; it gossips with the same average
  // fanout but does not adapt (its capability would dwarf the estimate).
  BitRate source_capability = BitRate::mbps(10);
  // PlanetLab background-load noise: this share of nodes actually delivers
  // only 30-70% of its nominal capability (paper §3.1 observed 5-7%).
  double noise_fraction = 0.0;
  bool smart_receivers = true;
  // Large-N runs: players record seen-bitmaps + per-window decode times
  // instead of per-packet arrival timestamps (see stream::Player::Recording).
  bool lean_players = false;
};

struct StreamPlan {
  stream::StreamConfig stream;        // paper defaults (551 kbps, 101+9, 1316 B)
  std::uint32_t windows = 16;         // ~31 s of stream at paper rates
  sim::SimTime start = sim::SimTime::sec(2.0);
};

struct ChurnPlan {
  std::vector<ChurnEvent> schedule;   // crashes (Fig. 10)
  membership::DetectionConfig detection;  // failure-detection latency
};

// Node -> partition placement policy. Per-node random streams are functions
// of the run seed and the node id alone, so placement can never change
// results — it only shifts where work and cross-partition traffic land.
enum class Placement : std::uint8_t {
  kContiguous = 0,  // balanced blocks by node id (the default)
  // Capability-aware snake deal: nodes sorted by declared capability
  // (descending, id-stable) are dealt 0..P-1, P-1..0, ... so every partition
  // carries a near-equal share of the upload-capability mass. Under HEAP's
  // capability-proportional fanout the busiest senders dominate epoch wall
  // clock; contiguous blocks can concentrate them (class assignment is
  // id-correlated in sorted populations), making the hottest partition the
  // barrier straggler. Deterministic: derived from the seed-assigned
  // capabilities only.
  kClustered = 1,
};

struct ParallelPlan {
  // 0 = classic sequential event loop (the default; bitwise-identical to all
  // previous releases). >= 1 = superstep-sharded engine driven by this many
  // worker threads. Results of a sharded run depend only on the seed —
  // every workers >= 1 value and every partitions >= 2 count yields
  // identical bytes (partitions == 1 matches the sequential engine instead).
  std::size_t workers = 0;
  // Logical partition count; 0 = auto (scales with the population, capped at
  // 16). Fixed by configuration and never derived from `workers`, so the
  // thread count can change between machines without changing results.
  std::uint32_t partitions = 0;
  // Recorded in the plan: placement is part of the run description even
  // though it cannot affect results (see Placement).
  Placement placement = Placement::kContiguous;
  // Adaptive epoch widening (results identical on/off; off is the benchmark
  // baseline that grinds every min-latency epoch).
  bool epoch_widening = true;
};

struct ReceiverInfo {
  NodeId id;
  int class_index = 0;
  BitRate capability;          // declared/advertised
  BitRate actual_capacity;     // enforced by the fabric (noise may derate)
  bool crashed = false;
  sim::SimTime crashed_at = sim::SimTime::max();
  // Wire bytes this node had uploaded when the stream ended.
  std::int64_t uploaded_bytes_at_stream_end = 0;
};

class Deployment {
 public:
  // Hands out the protocol stack each node runs. The default is
  // core::NodeRuntime::make (preset selected by NodeConfig::mode); override
  // to deploy custom stacks — instrumented nodes, freeriders, or mixed
  // populations choosing a preset per id.
  using NodeFactory = std::function<std::unique_ptr<core::NodeRuntime>(
      sim::Simulator&, net::NetworkFabric&, membership::Directory&, NodeId,
      const core::NodeConfig&)>;

  class Builder {
   public:
    Builder& seed(std::uint64_t seed) {
      seed_ = seed;
      return *this;
    }
    Builder& network(NetworkPlan plan) {
      network_ = std::move(plan);
      return *this;
    }
    Builder& population(PopulationPlan plan) {
      population_ = std::move(plan);
      return *this;
    }
    Builder& stream(StreamPlan plan) {
      stream_ = std::move(plan);
      return *this;
    }
    Builder& churn(ChurnPlan plan) {
      churn_ = std::move(plan);
      return *this;
    }
    Builder& parallel(ParallelPlan plan) {
      parallel_ = plan;
      return *this;
    }
    Builder& node_factory(NodeFactory factory) {
      factory_ = std::move(factory);
      return *this;
    }

    // Assembles the full system and arms the churn schedule; protocol and
    // stream activity only begins at start(). Validates the plans first:
    // a churn fraction outside [0, 1] or a non-monotone churn schedule is
    // rejected with a clear error.
    [[nodiscard]] std::unique_ptr<Deployment> build() const;

   private:
    std::uint64_t seed_ = 1;
    NetworkPlan network_;
    PopulationPlan population_;
    StreamPlan stream_;
    ChurnPlan churn_;
    ParallelPlan parallel_;
    NodeFactory factory_;
  };

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;
  ~Deployment();

  // Starts the source and the protocol stacks on every node (the churn
  // schedule is armed at build()). Call once, then drive run_until().
  void start();

  // True when the deployment runs on the superstep-sharded engine. The
  // engine-agnostic driver surface below works in both modes; sim() and
  // engine() are mode-specific.
  [[nodiscard]] bool parallel() const { return engine_ != nullptr; }
  [[nodiscard]] sim::ShardedEngine& engine() {
    HG_ASSERT_MSG(engine_ != nullptr, "engine() requires a parallel deployment");
    return *engine_;
  }

  // Advances the deployment to `until` (inclusive, like Simulator::run_until)
  // on whichever engine drives it. Returns events executed by this call.
  std::uint64_t run_until(sim::SimTime until);
  // Schedules `fn` at absolute time `when`; in sharded mode it runs as a
  // single-threaded barrier control task, before local events at that time.
  void schedule_control(sim::SimTime when, std::function<void()> fn);
  [[nodiscard]] sim::SimTime now() const;
  [[nodiscard]] std::uint64_t events_executed() const;

  [[nodiscard]] sim::Simulator& sim() {
    HG_ASSERT_MSG(sim_ != nullptr,
                  "no global simulator in a parallel deployment — drive it via "
                  "run_until()/schedule_control()/now()");
    return *sim_;
  }
  [[nodiscard]] net::NetworkFabric& fabric() { return *fabric_; }
  [[nodiscard]] const net::NetworkFabric& fabric() const { return *fabric_; }
  [[nodiscard]] membership::Directory& directory() { return *directory_; }
  [[nodiscard]] stream::StreamSource& source() { return *source_; }
  [[nodiscard]] const stream::StreamSource& source() const { return *source_; }
  [[nodiscard]] const StreamPlan& stream_plan() const { return stream_; }

  [[nodiscard]] std::size_t receivers() const { return receivers_.size(); }
  [[nodiscard]] ReceiverInfo& info(std::size_t i) { return receivers_[i].info; }
  [[nodiscard]] const ReceiverInfo& info(std::size_t i) const { return receivers_[i].info; }
  [[nodiscard]] const stream::Player& player(std::size_t i) const {
    return *receivers_[i].player;
  }
  [[nodiscard]] core::NodeRuntime& node(std::size_t i) { return *receivers_[i].node; }
  [[nodiscard]] const core::NodeRuntime& node(std::size_t i) const {
    return *receivers_[i].node;
  }
  [[nodiscard]] core::NodeRuntime& source_node() { return *source_node_; }
  [[nodiscard]] const net::TrafficMeter& meter(std::size_t i) const {
    return fabric_->meter(receivers_[i].info.id);
  }

 private:
  Deployment() = default;

  struct Receiver {
    ReceiverInfo info;
    std::unique_ptr<core::NodeRuntime> node;
    std::unique_ptr<stream::Player> player;
  };

  void apply_churn(const ChurnEvent& event);

  StreamPlan stream_;
  ChurnPlan churn_;
  // Exactly one of engine_/sim_ is set. engine_ is declared first: the
  // partition simulators it owns must outlive every component holding a
  // Simulator reference (links, nodes, players).
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::NetworkFabric> fabric_;
  std::unique_ptr<membership::Directory> directory_;
  std::unique_ptr<core::NodeRuntime> source_node_;
  std::unique_ptr<stream::StreamSource> source_;
  std::vector<Receiver> receivers_;
  bool started_ = false;
};

}  // namespace hg::scenario
