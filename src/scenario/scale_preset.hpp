// ScalePreset: tuned ExperimentConfig bundles for 10k-100k+ node runs.
//
// The paper's experiments top out at ~700 PlanetLab nodes; the phenomena
// HEAP is about (capability-class stratification, freerider impact, churn
// waves) only become statistically crisp at much larger N. This preset
// flips every large-N switch the engine grew for that purpose:
//
//   * virtual payloads  — serves carry declared sizes, not bytes: identical
//                         clock and wire accounting, zero payload storage
//   * lean players      — seen-bitmaps + per-window decode times instead of
//                         per-packet arrival timestamps
//   * tight gc horizon  — per-event gossip state trimmed a few windows
//                         behind the stream head
//   * capped aggregation— the b̄ estimate runs on a bounded record table
//                         (the uncapped table converges on O(N) per node)
//   * ln(N) + c fanout  — the reliability threshold scales with N
//
// Streams are short (a few FEC windows): scale runs measure the engine and
// the class-stratified lag/jitter distributions, not long-haul playback.
// Metrics over such runs should use metrics::Samples::streaming so report
// memory stays fixed no matter the population.
#pragma once

#include <cstddef>
#include <cstdint>

#include "scenario/experiment.hpp"

namespace hg::scenario {

struct ScalePreset {
  // `nodes` receivers at the given mode, ref-691 capability distribution.
  [[nodiscard]] static ExperimentConfig config(std::size_t nodes,
                                               core::Mode mode = core::Mode::kHeap,
                                               std::uint64_t seed = 2009);

  // The bench_fig_scale ladder.
  [[nodiscard]] static ExperimentConfig nodes_10k() { return config(10'000); }
  [[nodiscard]] static ExperimentConfig nodes_50k() { return config(50'000); }
  [[nodiscard]] static ExperimentConfig nodes_100k() { return config(100'000); }
};

}  // namespace hg::scenario
