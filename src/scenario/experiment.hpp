// Experiment runner: assembles a complete deployment — simulator, network
// fabric, membership, one protocol node + player per peer, a stream source,
// optional churn — runs it, and exposes everything the report builders need.
//
// This is the in-silico equivalent of the paper's 270-node PlanetLab
// testbed driver.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/heap_node.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "scenario/distribution.hpp"
#include "sim/simulator.hpp"
#include "stream/lag_analyzer.hpp"
#include "stream/player.hpp"
#include "stream/source.hpp"

namespace hg::scenario {

struct ChurnEvent {
  sim::SimTime at;
  double fraction = 0.0;  // share of receivers crashed simultaneously
};

struct ExperimentConfig {
  // Population: receivers; the source is an extra node (id 0).
  std::size_t node_count = 270;

  core::Mode mode = core::Mode::kHeap;
  double fanout = 7.0;  // fixed fanout (standard) / average fanout (HEAP)
  BandwidthDistribution distribution = BandwidthDistribution::ref691();

  stream::StreamConfig stream;        // paper defaults (551 kbps, 101+9, 1316 B)
  std::uint32_t stream_windows = 16;  // ~31 s of stream at paper rates
  sim::SimTime stream_start = sim::SimTime::sec(2.0);
  // Extra simulated time after the last packet so late deliveries and the
  // lag tail (up to 60 s in the paper's plots) are observable.
  sim::SimTime tail = sim::SimTime::sec(65.0);

  // The source is a well-provisioned peer; it gossips with the same average
  // fanout but does not adapt (its capability would dwarf the estimate).
  BitRate source_capability = BitRate::mbps(10);

  // Network.
  double loss_rate = 0.005;
  net::QueueDiscipline discipline = net::QueueDiscipline::kFifo;
  std::optional<net::PlanetLabLatencyConfig> latency = net::PlanetLabLatencyConfig{};

  // PlanetLab background-load noise: this share of nodes actually delivers
  // only 30-70% of its nominal capability (paper §3.1 observed 5-7%).
  double noise_fraction = 0.0;

  // Churn (Fig. 10): crashes + failure-detection latency.
  std::vector<ChurnEvent> churn;
  membership::DetectionConfig detection;

  // Protocol details.
  sim::SimTime gossip_period = sim::SimTime::ms(200);
  sim::SimTime retransmit_period = sim::SimTime::ms(1000);
  int max_retransmits = 8;
  aggregation::AggregationConfig aggregation;
  double max_fanout = 64.0;
  core::FanoutRounding rounding = core::FanoutRounding::kRandomized;
  bool smart_receivers = true;

  std::uint64_t seed = 1;

  [[nodiscard]] sim::SimTime stream_end() const {
    return stream_start + sim::SimTime::sec(stream.window_duration_sec() *
                                            static_cast<double>(stream_windows));
  }
  [[nodiscard]] sim::SimTime run_end() const { return stream_end() + tail; }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // Builds the deployment and runs to run_end(). Call once.
  void run();

  // --- results (valid after run()) ---------------------------------------
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const stream::LagAnalyzer& analyzer() const { return *analyzer_; }
  [[nodiscard]] std::size_t receivers() const { return receivers_.size(); }

  struct ReceiverInfo {
    NodeId id;
    int class_index = 0;
    BitRate capability;          // declared/advertised
    BitRate actual_capacity;     // enforced by the fabric (noise may derate)
    bool crashed = false;
    sim::SimTime crashed_at = sim::SimTime::max();
    // Wire bytes this node had uploaded when the stream ended.
    std::int64_t uploaded_bytes_at_stream_end = 0;
  };

  [[nodiscard]] const ReceiverInfo& info(std::size_t i) const { return receivers_[i].info; }
  [[nodiscard]] const stream::Player& player(std::size_t i) const {
    return *receivers_[i].player;
  }
  [[nodiscard]] const core::HeapNode& node(std::size_t i) const {
    return *receivers_[i].node;
  }
  [[nodiscard]] const net::TrafficMeter& meter(std::size_t i) const;
  [[nodiscard]] const net::NetworkFabric& fabric() const { return *fabric_; }
  [[nodiscard]] const stream::StreamSource& source() const { return *source_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  // Mean upload usage (fraction of actual capacity) over the stream
  // interval, including all protocol overhead — Fig. 4's quantity.
  [[nodiscard]] double upload_usage(std::size_t i) const;

  // Players of all receivers that never crashed (series for Figs. 5-10).
  [[nodiscard]] std::vector<const stream::Player*> surviving_players() const;
  [[nodiscard]] std::vector<const stream::Player*> players_of_class(int class_index) const;

 private:
  struct Receiver {
    ReceiverInfo info;
    std::unique_ptr<core::HeapNode> node;
    std::unique_ptr<stream::Player> player;
  };

  void build();
  void apply_churn(const ChurnEvent& event);

  ExperimentConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::NetworkFabric> fabric_;
  std::unique_ptr<membership::Directory> directory_;
  std::unique_ptr<core::HeapNode> source_node_;
  std::unique_ptr<stream::StreamSource> source_;
  std::unique_ptr<stream::LagAnalyzer> analyzer_;
  std::vector<Receiver> receivers_;
  bool ran_ = false;
};

}  // namespace hg::scenario
