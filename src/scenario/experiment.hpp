// Experiment runner: the paper-shaped front end over the composable
// Deployment builder. One flat ExperimentConfig describes a complete run —
// population, network, stream, churn — which run() decomposes into the
// deployment plans, executes to run_end(), and exposes to the report
// builders.
//
// This is the in-silico equivalent of the paper's 270-node PlanetLab
// testbed driver. For multi-seed / multi-config executions across a thread
// pool, see scenario/sweep_runner.hpp.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "scenario/deployment.hpp"
#include "stream/lag_analyzer.hpp"

namespace hg::scenario {

struct ExperimentConfig {
  // Population: receivers; the source is an extra node (id 0).
  std::size_t node_count = 270;

  core::Mode mode = core::Mode::kHeap;
  double fanout = 7.0;  // fixed fanout (standard) / average fanout (HEAP)
  BandwidthDistribution distribution = BandwidthDistribution::ref691();

  stream::StreamConfig stream;        // paper defaults (551 kbps, 101+9, 1316 B)
  std::uint32_t stream_windows = 16;  // ~31 s of stream at paper rates
  sim::SimTime stream_start = sim::SimTime::sec(2.0);
  // Extra simulated time after the last packet so late deliveries and the
  // lag tail (up to 60 s in the paper's plots) are observable.
  sim::SimTime tail = sim::SimTime::sec(65.0);

  // The source is a well-provisioned peer; it gossips with the same average
  // fanout but does not adapt (its capability would dwarf the estimate).
  BitRate source_capability = BitRate::mbps(10);

  // Network.
  double loss_rate = 0.005;
  net::QueueDiscipline discipline = net::QueueDiscipline::kFifo;
  std::optional<net::PlanetLabLatencyConfig> latency = net::PlanetLabLatencyConfig{};

  // PlanetLab background-load noise: this share of nodes actually delivers
  // only 30-70% of its nominal capability (paper §3.1 observed 5-7%).
  double noise_fraction = 0.0;

  // Churn (Fig. 10): crashes + failure-detection latency.
  std::vector<ChurnEvent> churn;
  membership::DetectionConfig detection;

  // Protocol details.
  sim::SimTime gossip_period = sim::SimTime::ms(200);
  sim::SimTime retransmit_period = sim::SimTime::ms(1000);
  int max_retransmits = 8;
  std::uint32_t gc_window_horizon = 40;  // per-event state horizon (windows)
  aggregation::AggregationConfig aggregation;
  double max_fanout = 64.0;
  gossip::FanoutRounding rounding = gossip::FanoutRounding::kRandomized;
  bool smart_receivers = true;

  // Large-scale switches (see scenario::ScalePreset for the tuned bundle):
  // virtual_payloads drops all payload bytes from the run (identical clock,
  // no storage); lean_players drops per-packet arrival timestamps.
  bool virtual_payloads = false;
  bool lean_players = false;

  // Intra-run parallelism (see ParallelPlan): workers == 0 runs the classic
  // sequential loop; workers >= 1 runs the superstep-sharded engine, whose
  // results depend only on the seed — never on workers, the partition
  // count (any >= 2), or the placement policy.
  std::size_t workers = 0;
  std::uint32_t partitions = 0;  // 0 = auto
  Placement placement = Placement::kContiguous;
  bool epoch_widening = true;

  // Optional override for the protocol stack each node runs (mixed
  // populations, instrumented stacks). Null: preset selected by `mode`.
  Deployment::NodeFactory node_factory;

  std::uint64_t seed = 1;

  [[nodiscard]] sim::SimTime stream_end() const {
    return stream_start + sim::SimTime::sec(stream.window_duration_sec() *
                                            static_cast<double>(stream_windows));
  }
  [[nodiscard]] sim::SimTime run_end() const { return stream_end() + tail; }

  // Decomposition into the deployment plans (run() uses these; scenarios
  // that want to swap one axis can take them piecemeal).
  [[nodiscard]] NetworkPlan network_plan() const;
  [[nodiscard]] PopulationPlan population_plan() const;
  [[nodiscard]] StreamPlan stream_plan() const;
  [[nodiscard]] ChurnPlan churn_plan() const;
  [[nodiscard]] ParallelPlan parallel_plan() const;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // Builds the deployment and runs to run_end(). Call once.
  void run();

  // --- results (valid after run()) ---------------------------------------
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const stream::LagAnalyzer& analyzer() const { return *analyzer_; }
  [[nodiscard]] std::size_t receivers() const { return deployment_->receivers(); }

  using ReceiverInfo = scenario::ReceiverInfo;

  [[nodiscard]] const ReceiverInfo& info(std::size_t i) const { return deployment_->info(i); }
  [[nodiscard]] const stream::Player& player(std::size_t i) const {
    return deployment_->player(i);
  }
  [[nodiscard]] const core::NodeRuntime& node(std::size_t i) const {
    return deployment_->node(i);
  }
  [[nodiscard]] const net::TrafficMeter& meter(std::size_t i) const {
    return deployment_->meter(i);
  }
  [[nodiscard]] const net::NetworkFabric& fabric() const { return deployment_->fabric(); }
  [[nodiscard]] const stream::StreamSource& source() const { return deployment_->source(); }
  // Sequential runs only — asserts in parallel mode; prefer the
  // engine-agnostic accessors below.
  [[nodiscard]] sim::Simulator& simulator() { return deployment_->sim(); }
  [[nodiscard]] Deployment& deployment() { return *deployment_; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return deployment_->events_executed();
  }

  // Mean upload usage (fraction of actual capacity) over the stream
  // interval, including all protocol overhead — Fig. 4's quantity.
  [[nodiscard]] double upload_usage(std::size_t i) const;

  // Players of all receivers that never crashed (series for Figs. 5-10).
  [[nodiscard]] std::vector<const stream::Player*> surviving_players() const;
  [[nodiscard]] std::vector<const stream::Player*> players_of_class(int class_index) const;

 private:
  ExperimentConfig config_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<stream::LagAnalyzer> analyzer_;
  bool ran_ = false;
};

}  // namespace hg::scenario
