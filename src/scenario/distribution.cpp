#include "scenario/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hg::scenario {

BandwidthDistribution BandwidthDistribution::ref691() {
  BandwidthDistribution d;
  d.name_ = "ref-691";
  d.kind_ = Kind::kClasses;
  d.classes_ = {{"2Mbps", BitRate::kbps(2048), 0.10},
                {"768kbps", BitRate::kbps(768), 0.50},
                {"256kbps", BitRate::kbps(256), 0.40}};
  return d;
}

BandwidthDistribution BandwidthDistribution::ref724() {
  BandwidthDistribution d;
  d.name_ = "ref-724";
  d.kind_ = Kind::kClasses;
  d.classes_ = {{"2Mbps", BitRate::kbps(2048), 0.15},
                {"768kbps", BitRate::kbps(768), 0.39},
                {"256kbps", BitRate::kbps(256), 0.46}};
  return d;
}

BandwidthDistribution BandwidthDistribution::ms691() {
  BandwidthDistribution d;
  d.name_ = "ms-691";
  d.kind_ = Kind::kClasses;
  d.classes_ = {{"3Mbps", BitRate::kbps(3072), 0.05},
                {"1Mbps", BitRate::kbps(1024), 0.10},
                {"512kbps", BitRate::kbps(512), 0.85}};
  return d;
}

BandwidthDistribution BandwidthDistribution::dist2_uniform(double half_width) {
  HG_ASSERT(half_width > 0.0 && half_width < 1.0);
  BandwidthDistribution d;
  d.name_ = "dist2-uniform";
  d.kind_ = Kind::kUniformRange;
  const double mean = 691.0;
  d.uniform_lo_kbps_ = mean * (1.0 - half_width);
  d.uniform_hi_kbps_ = mean * (1.0 + half_width);
  d.classes_ = {{"uniform", BitRate::kbps(mean), 1.0}};
  return d;
}

BandwidthDistribution BandwidthDistribution::unconstrained() {
  BandwidthDistribution d;
  d.name_ = "unconstrained";
  d.kind_ = Kind::kUnconstrained;
  d.classes_ = {{"unconstrained", BitRate::unlimited(), 1.0}};
  return d;
}

BandwidthDistribution BandwidthDistribution::homogeneous(BitRate capability) {
  BandwidthDistribution d;
  d.name_ = "homogeneous-" + to_string(capability);
  d.kind_ = Kind::kClasses;
  d.classes_ = {{to_string(capability), capability, 1.0}};
  return d;
}

double BandwidthDistribution::average_kbps() const {
  switch (kind_) {
    case Kind::kUnconstrained:
      return BitRate::unlimited().kbits_per_sec();
    case Kind::kUniformRange:
      return (uniform_lo_kbps_ + uniform_hi_kbps_) / 2.0;
    case Kind::kClasses: {
      double avg = 0;
      for (const auto& c : classes_) avg += c.fraction * c.capability.kbits_per_sec();
      return avg;
    }
  }
  return 0;
}

std::vector<NodeBandwidth> BandwidthDistribution::assign(std::size_t n, Rng& rng) const {
  std::vector<NodeBandwidth> out;
  out.reserve(n);

  switch (kind_) {
    case Kind::kUnconstrained: {
      out.assign(n, NodeBandwidth{BitRate::unlimited(), 0});
      return out;
    }
    case Kind::kUniformRange: {
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(
            NodeBandwidth{BitRate::kbps(rng.uniform(uniform_lo_kbps_, uniform_hi_kbps_)), 0});
      }
      return out;
    }
    case Kind::kClasses:
      break;
  }

  // Largest-remainder apportionment: counts match fractions as closely as an
  // integer split allows, so the realized average tracks Table 1 exactly.
  std::vector<std::size_t> count(classes_.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const double exact = classes_[c].fraction * static_cast<double>(n);
    count[c] = static_cast<std::size_t>(exact);
    assigned += count[c];
    remainders.emplace_back(exact - std::floor(exact), c);
  }
  std::sort(remainders.begin(), remainders.end(), std::greater<>{});
  for (std::size_t i = 0; assigned < n; ++i, ++assigned) {
    count[remainders[i % remainders.size()].second]++;
  }

  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (std::size_t i = 0; i < count[c]; ++i) {
      out.push_back(NodeBandwidth{classes_[c].capability, static_cast<int>(c)});
    }
  }
  rng.shuffle(out);
  return out;
}

}  // namespace hg::scenario
