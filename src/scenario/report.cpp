#include "scenario/report.hpp"

#include <cmath>

namespace hg::scenario {

namespace {

// Applies `fn(receiver_index)` per class and averages the results.
template <typename Fn>
std::vector<ClassStat> per_class_mean(const Experiment& e, Fn&& fn) {
  const auto& classes = e.config().distribution.classes();
  std::vector<ClassStat> out(classes.size());
  std::vector<std::size_t> counted(classes.size(), 0);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    out[c].class_name = classes[c].name;
  }
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    if (e.info(i).crashed) continue;
    const auto c = static_cast<std::size_t>(e.info(i).class_index);
    const std::optional<double> v = fn(i);
    out[c].nodes += 1;
    if (v.has_value()) {
      out[c].value += *v;
      counted[c] += 1;
    }
  }
  for (std::size_t c = 0; c < classes.size(); ++c) {
    out[c].value = counted[c] > 0 ? out[c].value / static_cast<double>(counted[c])
                                  : std::nan("");
  }
  return out;
}

}  // namespace

std::vector<ClassStat> usage_by_class(const Experiment& e) {
  return per_class_mean(e, [&](std::size_t i) -> std::optional<double> {
    if (e.info(i).actual_capacity.is_unlimited()) return std::nullopt;
    return e.upload_usage(i);
  });
}

std::vector<ClassStat> jitter_free_pct_by_class(const Experiment& e, double lag_sec) {
  return per_class_mean(e, [&](std::size_t i) -> std::optional<double> {
    return 1.0 - e.analyzer().jitter_fraction(e.player(i), lag_sec);
  });
}

std::vector<ClassStat> mean_lag_to_jitter_free_by_class(const Experiment& e, double cap_sec) {
  return per_class_mean(e, [&](std::size_t i) -> std::optional<double> {
    const auto lag = e.analyzer().lag_to_jitter_at_most(e.player(i), 0.0);
    return std::min(lag.value_or(cap_sec), cap_sec);
  });
}

std::vector<ClassStat> jitter_free_nodes_pct_by_class(const Experiment& e, double lag_sec) {
  return per_class_mean(e, [&](std::size_t i) -> std::optional<double> {
    return e.analyzer().jitter_fraction(e.player(i), lag_sec) == 0.0 ? 1.0 : 0.0;
  });
}

std::vector<ClassStat> delivery_in_jittered_by_class(const Experiment& e, double lag_sec) {
  return per_class_mean(e, [&](std::size_t i) -> std::optional<double> {
    return e.analyzer().mean_delivery_in_jittered(e.player(i), lag_sec);
  });
}

metrics::Samples stream_fraction_lags(const Experiment& e, double fraction) {
  metrics::Samples s;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    if (e.info(i).crashed) continue;
    if (const auto lag = e.analyzer().lag_to_stream_fraction(e.player(i), fraction)) {
      s.add(*lag);
    }
  }
  return s;
}

metrics::Samples jitter_free_lags(const Experiment& e, double max_jitter) {
  metrics::Samples s;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    if (e.info(i).crashed) continue;
    if (const auto lag = e.analyzer().lag_to_jitter_at_most(e.player(i), max_jitter)) {
      s.add(*lag);
    }
  }
  return s;
}

metrics::Samples jitter_percent_at_lag(const Experiment& e, double lag_sec) {
  metrics::Samples s;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    if (e.info(i).crashed) continue;
    s.add(100.0 * e.analyzer().jitter_fraction(e.player(i), lag_sec));
  }
  return s;
}

metrics::Samples jitter_percent_offline(const Experiment& e) {
  metrics::Samples s;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    if (e.info(i).crashed) continue;
    s.add(100.0 * e.analyzer().jitter_fraction_offline(e.player(i)));
  }
  return s;
}

std::vector<double> per_window_decode_percent(const Experiment& e, double lag_sec) {
  std::vector<const stream::Player*> players;
  for (std::size_t i = 0; i < e.receivers(); ++i) {
    players.push_back(&e.player(i));  // include crashed: they stop decoding
  }
  return e.analyzer().per_window_decode_percent(players, lag_sec, e.receivers());
}

std::vector<metrics::CdfPoint> cdf_over_grid(const metrics::Samples& samples,
                                             const std::vector<double>& grid,
                                             std::size_t population) {
  return metrics::Cdf::evaluate(samples, grid, population);
}

}  // namespace hg::scenario
