// SweepRunner: executes N seeds × M configs across a thread pool.
//
// Each job builds and runs its own Experiment — a Simulator and everything
// hanging off it are self-contained, so replicas share nothing and no
// locking is needed. Results are merged deterministically: job i's result
// always lands in slot i, regardless of which worker finished first, so a
// parallel sweep is bitwise-identical to running the same configs
// sequentially.
//
// Wire buffers (net::BufferPool) are thread-local, matching this
// one-replica-per-thread model: a replica's entire message traffic recycles
// through its worker's pool with non-atomic refcounts. Experiments returned
// to (and destroyed on) the caller's thread still hold delivered payloads;
// those chunks are heap-freed on release rather than pooled — safe even
// after the worker thread has exited, and off the hot path by definition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "scenario/experiment.hpp"

namespace hg::scenario {

struct SweepOptions {
  // Total thread budget. 0 = one thread per hardware core (capped by the
  // number of jobs).
  std::size_t threads = 0;
  // Intra-run workers each job uses (ExperimentConfig::workers). The runner
  // composes both levels under the one budget: outer concurrency becomes
  // max(1, threads / workers_per_job), so 16 threads with 4-worker jobs run
  // 4 experiments at a time instead of oversubscribing 64 threads. Purely a
  // scheduling hint — results never depend on it.
  std::size_t workers_per_job = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  // The same config at each of `seeds` — the common "N replicas" sweep.
  [[nodiscard]] static std::vector<ExperimentConfig> seed_sweep(
      ExperimentConfig base, const std::vector<std::uint64_t>& seeds);

  // Runs every config, hands the finished Experiment to `analyze`, and
  // returns the per-job analysis results in config order. The Experiment is
  // destroyed after analysis, so memory stays bounded by the worker count.
  template <class Fn>
  auto map(const std::vector<ExperimentConfig>& configs, Fn&& analyze)
      -> std::vector<std::invoke_result_t<Fn&, Experiment&>> {
    using R = std::invoke_result_t<Fn&, Experiment&>;
    // Boxed so workers write distinct objects even when R is bool
    // (std::vector<bool> packs bits — concurrent element writes would race).
    struct Boxed {
      R value{};
    };
    std::vector<Boxed> slots(configs.size());
    run_indexed(configs.size(), [&](std::size_t i) {
      Experiment exp(configs[i]);
      exp.run();
      slots[i].value = analyze(exp);
    });
    std::vector<R> results;
    results.reserve(slots.size());
    for (Boxed& s : slots) results.push_back(std::move(s.value));
    return results;
  }

  // Runs every config and keeps the full Experiments (config order). Heavier
  // than map() — all replicas stay resident — but lets callers drive several
  // report builders over each run.
  [[nodiscard]] std::vector<std::unique_ptr<Experiment>> run_experiments(
      const std::vector<ExperimentConfig>& configs);

 private:
  // Executes job(0..n-1), each exactly once, across the pool. Blocks until
  // all jobs finish.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& job);

  SweepOptions options_;
};

}  // namespace hg::scenario
