#include "scenario/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace hg::scenario {

std::vector<ExperimentConfig> SweepRunner::seed_sweep(ExperimentConfig base,
                                                      const std::vector<std::uint64_t>& seeds) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    ExperimentConfig cfg = base;
    cfg.seed = seed;
    configs.push_back(std::move(cfg));
  }
  return configs;
}

std::vector<std::unique_ptr<Experiment>> SweepRunner::run_experiments(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<std::unique_ptr<Experiment>> experiments(configs.size());
  run_indexed(configs.size(), [&](std::size_t i) {
    experiments[i] = std::make_unique<Experiment>(configs[i]);
    experiments[i]->run();
  });
  return experiments;
}

void SweepRunner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;

  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // Jobs that parallelize internally (intra-run workers) draw from the same
  // budget: divide it between the two levels instead of multiplying them.
  if (options_.workers_per_job > 1) {
    threads = std::max<std::size_t>(1, threads / options_.workers_per_job);
  }
  threads = std::min(threads, n);

  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }

  // Work stealing off a shared counter: job i is claimed by exactly one
  // worker. Each job writes only its own result slot, so the merged output
  // is independent of scheduling order.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      job(i);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

}  // namespace hg::scenario
