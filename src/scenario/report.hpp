// Report builders: turn a finished Experiment into the series/rows the
// paper's figures and tables show.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "metrics/cdf.hpp"
#include "metrics/percentile.hpp"
#include "scenario/experiment.hpp"

namespace hg::scenario {

struct ClassStat {
  std::string class_name;
  std::size_t nodes = 0;
  double value = 0.0;  // meaning depends on the builder
};

// Fig. 4: mean upload usage (fraction of capacity, incl. overhead) by class.
[[nodiscard]] std::vector<ClassStat> usage_by_class(const Experiment& e);

// Figs. 5/6: mean percentage of jitter-free windows at `lag_sec`, by class.
[[nodiscard]] std::vector<ClassStat> jitter_free_pct_by_class(const Experiment& e,
                                                              double lag_sec);

// Fig. 8: mean lag (s) to obtain a fully jitter-free stream, by class. Nodes
// that never get jitter-free contribute `cap_sec` (the plot's axis limit).
[[nodiscard]] std::vector<ClassStat> mean_lag_to_jitter_free_by_class(const Experiment& e,
                                                                      double cap_sec);

// Table 3: percentage of nodes with a fully jitter-free stream at `lag_sec`.
[[nodiscard]] std::vector<ClassStat> jitter_free_nodes_pct_by_class(const Experiment& e,
                                                                    double lag_sec);

// Table 2: mean delivery ratio inside jittered windows at `lag_sec`, by
// class (NaN -> no jittered windows in that class).
[[nodiscard]] std::vector<ClassStat> delivery_in_jittered_by_class(const Experiment& e,
                                                                   double lag_sec);

// Figs. 1/2/3: per-node lag to receive >= `fraction` of the stream.
// Returns samples over surviving nodes (missing nodes never reach it).
[[nodiscard]] metrics::Samples stream_fraction_lags(const Experiment& e, double fraction);

// Figs. 9a/9b: per-node lag to at most `max_jitter` jittered windows.
[[nodiscard]] metrics::Samples jitter_free_lags(const Experiment& e, double max_jitter);

// Fig. 7: per-node jitter percentage at `lag_sec` (or offline).
[[nodiscard]] metrics::Samples jitter_percent_at_lag(const Experiment& e, double lag_sec);
[[nodiscard]] metrics::Samples jitter_percent_offline(const Experiment& e);

// Fig. 10: per-window decode % of the initial population at `lag_sec`.
[[nodiscard]] std::vector<double> per_window_decode_percent(const Experiment& e,
                                                            double lag_sec);

// Convenience: CDF series over a lag grid for the given per-node samples.
[[nodiscard]] std::vector<metrics::CdfPoint> cdf_over_grid(const metrics::Samples& samples,
                                                           const std::vector<double>& grid,
                                                           std::size_t population);

}  // namespace hg::scenario
