// A full protocol node: three-phase gossip + (for HEAP) the capability
// aggregation protocol and the adaptive fanout policy wired together.
//
// The same class runs both protocols of the paper's evaluation:
//   Mode::kStandard — fixed fanout f, no aggregation  (the baseline)
//   Mode::kHeap     — aggregation estimates b̄, fanout = f * b_p/b̄
#pragma once

#include <memory>
#include <optional>

#include "aggregation/freshness_aggregator.hpp"
#include "gossip/fanout_policy.hpp"
#include "gossip/three_phase.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"

namespace hg::core {

enum class Mode { kStandard, kHeap };

struct NodeConfig {
  Mode mode = Mode::kHeap;
  // Declared upload capability b_p: what the node advertises through the
  // aggregation protocol and uses for its own fanout. (The enforced link
  // rate lives in the network fabric; declared == enforced unless a test
  // deliberately lies, e.g. to model freeriders.)
  BitRate capability = BitRate::unlimited();
  gossip::GossipConfig gossip;
  aggregation::AggregationConfig aggregation;
  double max_fanout = 64.0;
  gossip::FanoutRounding rounding = gossip::FanoutRounding::kRandomized;
};

class HeapNode {
 public:
  HeapNode(sim::Simulator& simulator, net::NetworkFabric& fabric,
           membership::Directory& directory, NodeId self, NodeConfig config);

  // Non-movable: the fabric holds a callback bound to `this`.
  HeapNode(const HeapNode&) = delete;
  HeapNode& operator=(const HeapNode&) = delete;

  void start();
  void stop();

  // Routes an incoming datagram to the owning protocol by message tag.
  void on_datagram(const net::Datagram& d);

  // Source role: publish an event into the dissemination.
  void publish(gossip::Event event) { gossip_->publish(std::move(event)); }

  void set_deliver(gossip::ThreePhaseGossip::DeliverFn fn) {
    gossip_->set_deliver(std::move(fn));
  }
  void set_should_request(gossip::ThreePhaseGossip::ShouldRequestFn fn) {
    gossip_->set_should_request(std::move(fn));
  }

  [[nodiscard]] NodeId id() const { return self_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] gossip::ThreePhaseGossip& gossip() { return *gossip_; }
  [[nodiscard]] const gossip::ThreePhaseGossip& gossip() const { return *gossip_; }
  // Null in standard mode.
  [[nodiscard]] aggregation::FreshnessAggregator* aggregator() { return aggregator_.get(); }
  [[nodiscard]] gossip::FanoutPolicy& fanout_policy() { return *policy_; }
  [[nodiscard]] membership::LocalView& view() { return *view_; }

 private:
  NodeId self_;
  NodeConfig config_;
  std::unique_ptr<membership::LocalView> view_;
  std::unique_ptr<aggregation::FreshnessAggregator> aggregator_;  // HEAP only
  std::unique_ptr<gossip::FanoutPolicy> policy_;
  std::unique_ptr<gossip::ThreePhaseGossip> gossip_;
};

}  // namespace hg::core
