#include "core/heap_node.hpp"

namespace hg::core {

HeapNode::HeapNode(sim::Simulator& simulator, net::NetworkFabric& fabric,
                   membership::Directory& directory, NodeId self, NodeConfig config)
    : self_(self), config_(config), view_(directory.make_view(self)) {
  if (config_.mode == Mode::kHeap) {
    aggregator_ = std::make_unique<aggregation::FreshnessAggregator>(
        simulator, fabric, *view_, self, config_.capability, config_.aggregation);
    policy_ = std::make_unique<gossip::AdaptiveFanout>(
        config_.capability, aggregator_.get(),
        gossip::AdaptiveFanoutConfig{.base_fanout = config_.gossip.base_fanout,
                                     .max_fanout = config_.max_fanout,
                                     .min_fanout = 0.0,
                                     .rounding = config_.rounding});
  } else {
    policy_ = std::make_unique<gossip::FixedFanout>(config_.gossip.base_fanout);
  }
  gossip_ = std::make_unique<gossip::ThreePhaseGossip>(simulator, fabric, *view_, self,
                                                       config_.gossip, *policy_);
}

void HeapNode::start() {
  gossip_->start();
  if (aggregator_) aggregator_->start();
}

void HeapNode::stop() {
  gossip_->stop();
  if (aggregator_) aggregator_->stop();
}

void HeapNode::on_datagram(const net::Datagram& d) {
  const auto tag = gossip::peek_tag(d.bytes);
  if (!tag) return;
  switch (*tag) {
    case gossip::MsgTag::kPropose:
    case gossip::MsgTag::kRequest:
    case gossip::MsgTag::kServe:
      gossip_->on_datagram(d);
      break;
    case gossip::MsgTag::kAggregation:
      if (aggregator_) aggregator_->on_datagram(d);
      break;
    default:
      break;  // other protocols (cyclon, tree) are wired separately
  }
}

}  // namespace hg::core
