// Typed signal bus: multi-subscriber observation without factory gymnastics.
//
// `Signal<Args...>` is a list of `void(Args...)` subscribers invoked in
// subscription order; `Gate<Args...>` is its veto-shaped sibling — every
// subscriber returns bool and ask() is the AND over all of them (true when
// empty). Both hand back a move-only RAII `Subscription` that detaches on
// destruction, so an observer that dies can never leave a dangling callback
// behind. Subscribers are stored in `sim::BasicSmallFn` slots: captures up
// to 48 bytes (a player pointer, a stats struct reference) live inline.
//
// Lifetime contract: a Subscription must not outlive its Signal/Gate (like
// an EventHandle and its queue). Emission is not reentrant with mutation —
// subscribing or unsubscribing from inside a callback asserts (re-emitting
// a signal from inside its own emission is allowed).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/small_fn.hpp"

namespace hg::core {

namespace detail {
template <class Fn>
class SlotList;
}  // namespace detail

// Detaches one subscriber from its Signal/Gate when destroyed or reset.
class Subscription {
 public:
  Subscription() = default;

  Subscription(Subscription&& o) noexcept : owner_(o.owner_), detach_(o.detach_), id_(o.id_) {
    o.owner_ = nullptr;
  }
  Subscription& operator=(Subscription&& o) noexcept {
    if (this != &o) {
      reset();
      owner_ = o.owner_;
      detach_ = o.detach_;
      id_ = o.id_;
      o.owner_ = nullptr;
    }
    return *this;
  }

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  ~Subscription() { reset(); }

  void reset() {
    if (owner_ != nullptr) {
      detach_(owner_, id_);
      owner_ = nullptr;
    }
  }

  [[nodiscard]] bool active() const { return owner_ != nullptr; }

 private:
  template <class>
  friend class detail::SlotList;

  Subscription(void* owner, void (*detach)(void*, std::uint64_t), std::uint64_t id)
      : owner_(owner), detach_(detach), id_(id) {}

  void* owner_ = nullptr;
  void (*detach_)(void*, std::uint64_t) = nullptr;
  std::uint64_t id_ = 0;
};

namespace detail {

// Shared subscriber-list mechanics of Signal and Gate: ordered slots, RAII
// detachment, and the iteration guard.
template <class Fn>
class SlotList {
 public:
  SlotList() = default;
  SlotList(const SlotList&) = delete;  // subscriptions hold our address
  SlotList& operator=(const SlotList&) = delete;

  [[nodiscard]] Subscription subscribe(Fn fn) {
    HG_ASSERT_MSG(!iterating_, "cannot subscribe from inside emit/ask");
    const std::uint64_t id = next_id_++;
    slots_.push_back(Slot{id, std::move(fn)});
    return Subscription{this, &SlotList::detach, id};
  }

  [[nodiscard]] std::size_t count() const { return slots_.size(); }

  // Guard for the duration of one emit/ask. Nested iteration of the same
  // list is fine (read-only); the saved flag keeps the guard armed until
  // the outermost iteration finishes.
  class IterationScope {
   public:
    explicit IterationScope(SlotList& list) : list_(list), was_(list.iterating_) {
      list_.iterating_ = true;
    }
    ~IterationScope() { list_.iterating_ = was_; }
    IterationScope(const IterationScope&) = delete;
    IterationScope& operator=(const IterationScope&) = delete;

   private:
    SlotList& list_;
    bool was_;
  };

  struct Slot {
    std::uint64_t id;
    Fn fn;
  };

  std::vector<Slot> slots_;

 private:
  static void detach(void* owner, std::uint64_t id) {
    static_cast<SlotList*>(owner)->remove(id);
  }

  void remove(std::uint64_t id) {
    HG_ASSERT_MSG(!iterating_, "cannot unsubscribe from inside emit/ask");
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].id == id) {
        slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  std::uint64_t next_id_ = 1;
  bool iterating_ = false;
};

}  // namespace detail

// Multi-subscriber notification: emit() invokes every subscriber, in
// subscription order.
template <class... Args>
class Signal {
 public:
  using Fn = sim::BasicSmallFn<void(Args...)>;

  [[nodiscard]] Subscription subscribe(Fn fn) { return list_.subscribe(std::move(fn)); }

  void emit(Args... args) {
    typename detail::SlotList<Fn>::IterationScope scope(list_);
    for (auto& slot : list_.slots_) slot.fn(args...);
  }

  [[nodiscard]] std::size_t subscriber_count() const { return list_.count(); }

 private:
  detail::SlotList<Fn> list_;
};

// Multi-subscriber veto: ask() is true iff every subscriber approves (an
// empty gate approves everything). Subscribers are asked in subscription
// order and the first veto short-circuits.
template <class... Args>
class Gate {
 public:
  using Fn = sim::BasicSmallFn<bool(Args...)>;

  [[nodiscard]] Subscription subscribe(Fn fn) { return list_.subscribe(std::move(fn)); }

  [[nodiscard]] bool ask(Args... args) {
    typename detail::SlotList<Fn>::IterationScope scope(list_);
    for (auto& slot : list_.slots_) {
      if (!slot.fn(args...)) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t subscriber_count() const { return list_.count(); }

 private:
  detail::SlotList<Fn> list_;
};

}  // namespace hg::core
