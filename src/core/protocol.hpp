// The uniform lifecycle every protocol module mounted on a NodeRuntime
// implements.
//
// A module is one protocol of a node's stack: three-phase gossip, capability
// aggregation, Cyclon sampling, a tree leg, or pure signal-bus glue like the
// stream player adapter. The interface is deliberately lifecycle-only —
// datagram routing does NOT go through this vtable. A module claims the
// message tags it owns with NodeRuntime::register_tag, and the runtime
// dispatches incoming datagrams through a flat tag table of plain function
// pointers, so the receive hot path never pays a virtual call.
#pragma once

namespace hg::core {

class Protocol {
 public:
  virtual ~Protocol() = default;

  // Called by NodeRuntime::start()/stop(), once per transition (the runtime
  // makes repeated start()/stop() calls idempotent). Modules arm and cancel
  // their timers here; construction must not schedule anything.
  virtual void start() {}
  virtual void stop() {}

  // Stable diagnostic name ("gossip", "aggregation", ...).
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace hg::core
