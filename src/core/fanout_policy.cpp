#include "core/fanout_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hg::core {

AdaptiveFanout::AdaptiveFanout(BitRate own_capability,
                               const aggregation::CapabilityEstimator* estimator,
                               AdaptiveFanoutConfig config)
    : own_capability_(own_capability), estimator_(estimator), config_(config) {
  HG_ASSERT(estimator_ != nullptr);
  HG_ASSERT(config_.base_fanout >= 0.0);
}

double AdaptiveFanout::current_target() const {
  const double avg = estimator_->average_capability_bps();
  if (avg <= 0.0) return config_.base_fanout;  // no estimate yet: behave like std gossip
  const double ratio = static_cast<double>(own_capability_.bits_per_sec()) / avg;
  return std::clamp(config_.base_fanout * ratio, config_.min_fanout, config_.max_fanout);
}

std::size_t AdaptiveFanout::fanout_for_round(Rng& rng) {
  const double target = current_target();
  const double base = std::floor(target);
  const double frac = target - base;
  switch (config_.rounding) {
    case FanoutRounding::kFloor:
      return static_cast<std::size_t>(base);
    case FanoutRounding::kRandomized:
      break;
  }
  return static_cast<std::size_t>(base) + (rng.chance(frac) ? 1 : 0);
}

}  // namespace hg::core
