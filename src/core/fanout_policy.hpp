// HEAP's contribution: the capability-proportional fanout rule
//
//     f_p = f * b_p / b̄        (paper §2.2, Equation 1 + aggregation)
//
// where b_p is the node's own upload capability and b̄ the continuously
// gossip-estimated average capability. The system-wide mean fanout stays f,
// preserving the ln(n)+c reliability threshold [15] while shifting serve
// load onto capable nodes.
#pragma once

#include "aggregation/freshness_aggregator.hpp"
#include "common/units.hpp"
#include "gossip/fanout_policy.hpp"

namespace hg::core {

enum class FanoutRounding {
  kRandomized,  // floor(f)+Bernoulli(frac): exact in expectation (default)
  kFloor,       // biased low — ablation shows the reliability cost
};

struct AdaptiveFanoutConfig {
  double base_fanout = 7.0;   // the system-wide average f
  double max_fanout = 64.0;   // safety cap (also ablation knob)
  double min_fanout = 0.0;    // HEAP lets very poor nodes drop below 1
  FanoutRounding rounding = FanoutRounding::kRandomized;
};

class AdaptiveFanout final : public gossip::FanoutPolicy {
 public:
  // `own_capability` b_p; `estimator` supplies b̄ each round (never null).
  AdaptiveFanout(BitRate own_capability, const aggregation::CapabilityEstimator* estimator,
                 AdaptiveFanoutConfig config);

  std::size_t fanout_for_round(Rng& rng) override;
  [[nodiscard]] double current_target() const override;

  void set_own_capability(BitRate capability) { own_capability_ = capability; }

 private:
  BitRate own_capability_;
  const aggregation::CapabilityEstimator* estimator_;
  AdaptiveFanoutConfig config_;
};

}  // namespace hg::core
