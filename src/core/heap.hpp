// Public umbrella header for the heapgossip library.
//
// Quick tour (see examples/quickstart.cpp for a runnable version):
//
//   hg::scenario::ExperimentConfig cfg;
//   cfg.node_count   = 270;
//   cfg.mode         = hg::core::Mode::kHeap;      // or kStandard
//   cfg.distribution = hg::scenario::BandwidthDistribution::ms691();
//   hg::scenario::Experiment exp(cfg);
//   exp.run();
//   auto lag = hg::scenario::jitter_free_lags(exp, /*max_jitter=*/0.0);
//
// Nodes are protocol stacks: a core::NodeRuntime routes datagrams by tag to
// the protocol modules mounted on it, and applications observe the stack
// through its typed signal bus. NodeRuntime::heap / ::standard are the
// paper's two presets; custom stacks mount any mix of modules.
//
// Layers, bottom to top:
//   sim          deterministic discrete-event kernel
//   net          serialization, latency/loss, upload-rate limiting, fabric
//   membership   full-view directory + Cyclon peer sampling
//   fec          GF(256) systematic Reed-Solomon windows
//   gossip       three-phase propose/request/serve dissemination
//   aggregation  capability averaging (freshness gossip + push-sum)
//   core         NodeRuntime + Protocol: tag-routed module composition
//   stream       source, player, lag/jitter analysis
//   scenario     experiment runner + paper report builders
#pragma once

#include "aggregation/aggregation_module.hpp"
#include "aggregation/freshness_aggregator.hpp"
#include "aggregation/push_sum.hpp"
#include "core/node_runtime.hpp"
#include "core/protocol.hpp"
#include "core/signal.hpp"
#include "fec/window_codec.hpp"
#include "gossip/fanout_policy.hpp"
#include "gossip/gossip_module.hpp"
#include "gossip/three_phase.hpp"
#include "membership/cyclon.hpp"
#include "membership/cyclon_module.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "scenario/deployment.hpp"
#include "scenario/distribution.hpp"
#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/simulator.hpp"
#include "stream/fec_module.hpp"
#include "stream/lag_analyzer.hpp"
#include "stream/player.hpp"
#include "stream/player_module.hpp"
#include "stream/source.hpp"
#include "tree/static_tree.hpp"
#include "tree/tree_module.hpp"
