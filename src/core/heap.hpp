// Public umbrella header for the heapgossip library.
//
// Quick tour (see examples/quickstart.cpp for a runnable version):
//
//   hg::scenario::ExperimentConfig cfg;
//   cfg.node_count   = 270;
//   cfg.mode         = hg::core::Mode::kHeap;      // or kStandard
//   cfg.distribution = hg::scenario::BandwidthDistribution::ms691();
//   hg::scenario::Experiment exp(cfg);
//   exp.run();
//   auto lag = hg::scenario::jitter_free_lags(exp, /*max_jitter=*/0.0);
//
// Layers, bottom to top:
//   sim          deterministic discrete-event kernel
//   net          serialization, latency/loss, upload-rate limiting, fabric
//   membership   full-view directory + Cyclon peer sampling
//   fec          GF(256) systematic Reed-Solomon windows
//   gossip       three-phase propose/request/serve dissemination
//   aggregation  capability averaging (freshness gossip + push-sum)
//   core         HEAP: adaptive fanout policy + node composition
//   stream       source, player, lag/jitter analysis
//   scenario     experiment runner + paper report builders
#pragma once

#include "aggregation/freshness_aggregator.hpp"
#include "aggregation/push_sum.hpp"
#include "core/heap_node.hpp"
#include "fec/window_codec.hpp"
#include "gossip/fanout_policy.hpp"
#include "gossip/three_phase.hpp"
#include "membership/cyclon.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "scenario/deployment.hpp"
#include "scenario/distribution.hpp"
#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/simulator.hpp"
#include "stream/lag_analyzer.hpp"
#include "stream/player.hpp"
#include "stream/source.hpp"
#include "tree/static_tree.hpp"
