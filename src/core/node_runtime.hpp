// NodeRuntime: a node assembled from pluggable protocol modules.
//
// The runtime owns the pieces every protocol needs (membership view, signal
// bus, dispatch table) and a stack of core::Protocol modules. Each module
// registers the message tags it owns; incoming datagrams are routed by tag
// in O(1) through a flat per-runtime table of (function pointer, context)
// pairs — no virtual dispatch and no branching chain on the hot path, and
// the zero-copy BufferRef wire path is untouched. The table covers the low
// kTagTableSize tag values (wire tags are small and centrally assigned in
// gossip::MsgTag); a full 256-entry table would cost 4 KB per node — 400 MB
// of dead weight across a 100k-node run. Datagrams with tags beyond the
// table take the unknown-tag path.
//
// Application hooks are a typed signal bus instead of setter soup:
//   deliveries()       every delivered event, multi-subscriber (player,
//                      lag instrumentation, test observers — all at once)
//   request_gate()     veto for requesting an event id (AND over subscribers)
//   window_cancelled() "stop requesting this window" commands, which the
//                      gossip module subscribes to
//
// The paper's two protocol variants are one-line presets:
//   NodeRuntime::standard(cfg)  fixed-fanout three-phase gossip
//   NodeRuntime::heap(cfg)      + capability aggregation driving an
//                               adaptive (Eq. 1) fanout policy
//
// Lifetime: a NodeRuntime is non-copyable and non-movable (the fabric's
// receive callback and every registered tag handler point at it), so it is
// always heap-owned — the presets hand back unique_ptrs. Registration is
// RAII: a module's TagRegistration deregisters its tag on destruction, so a
// dead module can never leave a dangling handler in the table.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "aggregation/freshness_aggregator.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "core/protocol.hpp"
#include "core/signal.hpp"
#include "gossip/config.hpp"
#include "gossip/fanout_policy.hpp"
#include "gossip/messages.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"

namespace hg::core {

enum class Mode { kStandard, kHeap };

struct NodeConfig {
  Mode mode = Mode::kHeap;
  // Declared upload capability b_p: what the node advertises through the
  // aggregation protocol and uses for its own fanout. (The enforced link
  // rate lives in the network fabric; declared == enforced unless a test
  // deliberately lies, e.g. to model freeriders.)
  BitRate capability = BitRate::unlimited();
  gossip::GossipConfig gossip;
  aggregation::AggregationConfig aggregation;
  double max_fanout = 64.0;
  gossip::FanoutRounding rounding = gossip::FanoutRounding::kRandomized;
};

class NodeRuntime;

// RAII ownership of one tag-table entry: deregisters on destruction.
class TagRegistration {
 public:
  TagRegistration() = default;

  TagRegistration(TagRegistration&& o) noexcept : runtime_(o.runtime_), tag_(o.tag_) {
    o.runtime_ = nullptr;
  }
  TagRegistration& operator=(TagRegistration&& o) noexcept {
    if (this != &o) {
      reset();
      runtime_ = o.runtime_;
      tag_ = o.tag_;
      o.runtime_ = nullptr;
    }
    return *this;
  }

  TagRegistration(const TagRegistration&) = delete;
  TagRegistration& operator=(const TagRegistration&) = delete;

  ~TagRegistration() { reset(); }

  void reset();
  [[nodiscard]] bool active() const { return runtime_ != nullptr; }

 private:
  friend class NodeRuntime;
  TagRegistration(NodeRuntime* runtime, std::uint8_t tag) : runtime_(runtime), tag_(tag) {}

  NodeRuntime* runtime_ = nullptr;
  std::uint8_t tag_ = 0;
};

class NodeRuntime {
 public:
  // Non-virtual datagram handler: called with the context pointer the tag
  // was registered with.
  using DatagramHandler = void (*)(void*, const net::Datagram&);
  using PublishFn = sim::BasicSmallFn<void(gossip::Event)>;

  // One past the highest routable tag value. Must stay a power of two-ish
  // small constant; raise it if gossip::MsgTag ever grows past it.
  static constexpr std::size_t kTagTableSize = 16;

  NodeRuntime(sim::Simulator& simulator, net::NetworkFabric& fabric,
              membership::Directory& directory, NodeId self, NodeConfig config);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  // --- presets --------------------------------------------------------------
  // Fixed-fanout three-phase gossip (the paper's homogeneous baseline).
  [[nodiscard]] static std::unique_ptr<NodeRuntime> standard(sim::Simulator& simulator,
                                                             net::NetworkFabric& fabric,
                                                             membership::Directory& directory,
                                                             NodeId self, NodeConfig config);
  // HEAP: gossip + freshness aggregation driving an adaptive fanout (Eq. 1).
  [[nodiscard]] static std::unique_ptr<NodeRuntime> heap(sim::Simulator& simulator,
                                                         net::NetworkFabric& fabric,
                                                         membership::Directory& directory,
                                                         NodeId self, NodeConfig config);
  // Preset selected by config.mode — the default Deployment node factory.
  [[nodiscard]] static std::unique_ptr<NodeRuntime> make(sim::Simulator& simulator,
                                                         net::NetworkFabric& fabric,
                                                         membership::Directory& directory,
                                                         NodeId self, const NodeConfig& config);

  // --- assembly -------------------------------------------------------------
  // Constructs a module in place. By convention every module constructor
  // takes the owning runtime as its first parameter; modules register their
  // tags and signal subscriptions there. start()/stop() run in mount order /
  // reverse mount order.
  template <class M, class... Args>
  M& emplace_module(Args&&... args) {
    auto module = std::make_unique<M>(*this, std::forward<Args>(args)...);
    M& ref = *module;
    modules_.push_back(std::move(module));
    return ref;
  }
  Protocol& add_module(std::unique_ptr<Protocol> module);

  // Claims `tag` for `module` (any type with on_datagram(const Datagram&)).
  // Duplicate claims abort: two modules answering one tag is a stack bug.
  template <class T>
  [[nodiscard]] TagRegistration register_tag(gossip::MsgTag tag, T* module) {
    return register_handler(tag, module, [](void* ctx, const net::Datagram& d) {
      static_cast<T*>(ctx)->on_datagram(d);
    });
  }
  [[nodiscard]] TagRegistration register_handler(gossip::MsgTag tag, void* ctx,
                                                 DatagramHandler handler);

  // Declares a tag as expected-but-unowned: datagrams carrying it are
  // counted as ignored (not unknown) and dropped, even in strict mode. For
  // stacks deployed next to peers running protocols they do not mount —
  // e.g. a fixed-fanout minority inside a HEAP deployment keeps receiving
  // kAggregation traffic, which is legitimate, not junk. The runtime owns
  // the registration (it lives until the runtime dies).
  void ignore_tag(gossip::MsgTag tag);

  // First mounted module of type M, or nullptr.
  template <class M>
  [[nodiscard]] M* find_module() {
    for (auto& m : modules_) {
      if (auto* typed = dynamic_cast<M*>(m.get())) return typed;
    }
    return nullptr;
  }
  template <class M>
  [[nodiscard]] const M* find_module() const {
    for (const auto& m : modules_) {
      if (const auto* typed = dynamic_cast<const M*>(m.get())) return typed;
    }
    return nullptr;
  }
  // As find_module, but asserts the module is mounted.
  template <class M>
  [[nodiscard]] M& module() {
    M* m = find_module<M>();
    HG_ASSERT_MSG(m != nullptr, "requested module is not mounted on this runtime");
    return *m;
  }
  template <class M>
  [[nodiscard]] const M& module() const {
    const M* m = find_module<M>();
    HG_ASSERT_MSG(m != nullptr, "requested module is not mounted on this runtime");
    return *m;
  }
  [[nodiscard]] std::vector<const char*> module_names() const;

  // --- lifecycle ------------------------------------------------------------
  // Idempotent: a second start() (or stop() while stopped) is a no-op, so
  // timers can never be armed twice.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  // Registers this runtime's receive callback with the fabric. The callback
  // binds `this`, which is safe because runtimes are always heap-owned.
  void attach(BitRate upload_capacity);

  // Hot path: O(1) tag lookup, then a plain indirect call into the owning
  // module. Unknown tags are counted, logged at debug level, and — in
  // strict mode (tests) — abort.
  void on_datagram(const net::Datagram& d);

  // --- signal bus -----------------------------------------------------------
  [[nodiscard]] Signal<const gossip::Event&>& deliveries() { return deliveries_; }
  [[nodiscard]] Gate<gossip::EventId>& request_gate() { return request_gate_; }
  [[nodiscard]] Signal<std::uint32_t>& window_cancelled() { return window_cancelled_; }

  // --- application commands -------------------------------------------------
  // Source role: hand an event to the dissemination module. The publishing
  // module (normally gossip) installs itself via set_publisher.
  void publish(gossip::Event event);
  void set_publisher(PublishFn fn) { publish_ = std::move(fn); }

  // --- plumbing accessors (modules build themselves from these) ------------
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::NetworkFabric& fabric() { return fabric_; }
  [[nodiscard]] membership::Directory& directory() { return directory_; }
  [[nodiscard]] membership::LocalView& view() { return *view_; }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t datagrams_dispatched = 0;  // routed to a module (incl. ignored)
    std::uint64_t ignored_datagrams = 0;     // tags declared via ignore_tag
    std::uint64_t unknown_tag_datagrams = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  // Abort on unknown-tag datagrams instead of counting them (tests).
  void set_strict_unknown_tags(bool strict) { strict_unknown_tags_ = strict; }

 private:
  friend class TagRegistration;
  void deregister(std::uint8_t tag);

  struct Handler {
    DatagramHandler fn = nullptr;
    void* ctx = nullptr;
  };

  sim::Simulator& sim_;
  net::NetworkFabric& fabric_;
  membership::Directory& directory_;
  NodeId self_;
  NodeConfig config_;
  std::unique_ptr<membership::LocalView> view_;
  std::array<Handler, kTagTableSize> handlers_{};
  // Signals are declared before the module stack: modules hold Subscriptions
  // into them and must be destroyed first.
  Signal<const gossip::Event&> deliveries_;
  Gate<gossip::EventId> request_gate_;
  Signal<std::uint32_t> window_cancelled_;
  PublishFn publish_;
  std::vector<TagRegistration> ignored_tags_;
  std::vector<std::unique_ptr<Protocol>> modules_;
  bool running_ = false;
  bool strict_unknown_tags_ = false;
  Stats stats_;
};

}  // namespace hg::core
