#include "core/node_runtime.hpp"

#include "aggregation/aggregation_module.hpp"
#include "common/log.hpp"
#include "gossip/gossip_module.hpp"

namespace hg::core {

void TagRegistration::reset() {
  if (runtime_ != nullptr) {
    runtime_->deregister(tag_);
    runtime_ = nullptr;
  }
}

NodeRuntime::NodeRuntime(sim::Simulator& simulator, net::NetworkFabric& fabric,
                         membership::Directory& directory, NodeId self, NodeConfig config)
    : sim_(simulator),
      fabric_(fabric),
      directory_(directory),
      self_(self),
      config_(config),
      view_(directory.make_view(self)) {}

NodeRuntime::~NodeRuntime() = default;

Protocol& NodeRuntime::add_module(std::unique_ptr<Protocol> module) {
  HG_ASSERT(module != nullptr);
  modules_.push_back(std::move(module));
  return *modules_.back();
}

TagRegistration NodeRuntime::register_handler(gossip::MsgTag tag, void* ctx,
                                              DatagramHandler handler) {
  HG_ASSERT(handler != nullptr);
  HG_ASSERT_MSG(static_cast<std::uint8_t>(tag) < kTagTableSize,
                "tag beyond the dispatch table: raise NodeRuntime::kTagTableSize");
  Handler& slot = handlers_[static_cast<std::uint8_t>(tag)];
  HG_ASSERT_MSG(slot.fn == nullptr, "duplicate tag registration: two modules claim one tag");
  slot = Handler{handler, ctx};
  return TagRegistration{this, static_cast<std::uint8_t>(tag)};
}

void NodeRuntime::deregister(std::uint8_t tag) { handlers_[tag] = Handler{}; }

void NodeRuntime::ignore_tag(gossip::MsgTag tag) {
  ignored_tags_.push_back(register_handler(
      tag, &stats_,
      [](void* ctx, const net::Datagram&) { ++static_cast<Stats*>(ctx)->ignored_datagrams; }));
}

std::vector<const char*> NodeRuntime::module_names() const {
  std::vector<const char*> names;
  names.reserve(modules_.size());
  for (const auto& m : modules_) names.push_back(m->name());
  return names;
}

void NodeRuntime::start() {
  if (running_) return;
  running_ = true;
  for (auto& m : modules_) m->start();
}

void NodeRuntime::stop() {
  if (!running_) return;
  running_ = false;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) (*it)->stop();
}

void NodeRuntime::attach(BitRate upload_capacity) {
  fabric_.register_node(self_, upload_capacity,
                        [this](const net::Datagram& d) { on_datagram(d); });
}

void NodeRuntime::on_datagram(const net::Datagram& d) {
  const std::uint8_t tag = d.bytes.empty() ? 0xff : d.bytes.data()[0];
  const Handler handler = tag < kTagTableSize ? handlers_[tag] : Handler{};
  if (handler.fn == nullptr) {
    ++stats_.unknown_tag_datagrams;
    HG_LOG_DEBUG("node %u: dropping datagram with unknown tag %u from node %u", self_.value(),
                 d.bytes.empty() ? 0u : static_cast<unsigned>(d.bytes.data()[0]),
                 d.src.value());
    HG_ASSERT_MSG(!strict_unknown_tags_, "unknown-tag datagram in strict mode");
    return;
  }
  ++stats_.datagrams_dispatched;
  handler.fn(handler.ctx, d);
}

void NodeRuntime::publish(gossip::Event event) {
  HG_ASSERT_MSG(static_cast<bool>(publish_), "no publishing module mounted");
  publish_(std::move(event));
}

// --- presets ----------------------------------------------------------------

std::unique_ptr<NodeRuntime> NodeRuntime::standard(sim::Simulator& simulator,
                                                   net::NetworkFabric& fabric,
                                                   membership::Directory& directory, NodeId self,
                                                   NodeConfig config) {
  config.mode = Mode::kStandard;
  auto rt = std::make_unique<NodeRuntime>(simulator, fabric, directory, self, config);
  rt->emplace_module<gossip::GossipModule>(
      config.gossip, std::make_unique<gossip::FixedFanout>(config.gossip.base_fanout));
  return rt;
}

std::unique_ptr<NodeRuntime> NodeRuntime::heap(sim::Simulator& simulator,
                                               net::NetworkFabric& fabric,
                                               membership::Directory& directory, NodeId self,
                                               NodeConfig config) {
  config.mode = Mode::kHeap;
  auto rt = std::make_unique<NodeRuntime>(simulator, fabric, directory, self, config);
  // The estimator must exist before the adaptive policy that reads it, but
  // gossip starts first (timer creation order is part of the deterministic
  // contract) — so construct aggregation up front, mount it after gossip.
  auto aggregation = std::make_unique<aggregation::AggregationModule>(*rt, config.capability,
                                                                      config.aggregation);
  auto policy = std::make_unique<gossip::AdaptiveFanout>(
      config.capability, &aggregation->aggregator(),
      gossip::AdaptiveFanoutConfig{.base_fanout = config.gossip.base_fanout,
                                   .max_fanout = config.max_fanout,
                                   .min_fanout = 0.0,
                                   .rounding = config.rounding});
  rt->emplace_module<gossip::GossipModule>(config.gossip, std::move(policy));
  rt->add_module(std::move(aggregation));
  return rt;
}

std::unique_ptr<NodeRuntime> NodeRuntime::make(sim::Simulator& simulator,
                                               net::NetworkFabric& fabric,
                                               membership::Directory& directory, NodeId self,
                                               const NodeConfig& config) {
  return config.mode == Mode::kHeap ? heap(simulator, fabric, directory, self, config)
                                    : standard(simulator, fabric, directory, self, config);
}

}  // namespace hg::core
