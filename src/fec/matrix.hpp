// Dense matrices over GF(256): just enough linear algebra for Reed-Solomon
// (construction, multiplication, Gaussian inversion).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace hg::fec {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] static Matrix identity(std::size_t n);
  // Vandermonde: a[r][c] = (r+1)^c. Any square submatrix built from distinct
  // evaluation points is invertible — the property erasure codes rely on.
  [[nodiscard]] static Matrix vandermonde(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const {
    HG_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, std::uint8_t v) {
    HG_ASSERT(r < rows_ && c < cols_);
    data_[r * cols_ + c] = v;
  }
  [[nodiscard]] const std::uint8_t* row(std::size_t r) const { return &data_[r * cols_]; }
  [[nodiscard]] std::uint8_t* row(std::size_t r) { return &data_[r * cols_]; }

  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  // Returns a matrix made of the selected rows, in the given order.
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& indices) const;
  // Gauss-Jordan inverse. Asserts the matrix is square and invertible
  // (callers only invert matrices that are invertible by construction).
  [[nodiscard]] Matrix inverted() const;

  [[nodiscard]] bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace hg::fec
