// Arithmetic over GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
//
// Log/antilog tables make multiply/divide O(1); mul_add_slice is the bulk
// operation the Reed-Solomon coder spends its time in. The slice kernels
// are runtime-dispatched: on x86 with SSSE3 (or aarch64 with NEON) they use
// split-nibble table lookups (two 16-entry tables per coefficient, combined
// with PSHUFB/TBL), falling back to the scalar log/exp loop elsewhere. Both
// paths are bit-identical — GF(256) arithmetic is exact, so the dispatch
// never affects simulation results, only throughput.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hg::fec {

class GF256 {
 public:
  enum class SimdLevel : std::uint8_t { kScalar, kSsse3, kNeon };
  [[nodiscard]] static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;  // characteristic 2: addition == subtraction == XOR
  }
  [[nodiscard]] static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  [[nodiscard]] static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  [[nodiscard]] static std::uint8_t div(std::uint8_t a, std::uint8_t b);
  [[nodiscard]] static std::uint8_t inv(std::uint8_t a);
  // a^power for non-negative exponents.
  [[nodiscard]] static std::uint8_t pow(std::uint8_t a, unsigned power);
  // The field generator (3 for this polynomial) raised to `power`.
  [[nodiscard]] static std::uint8_t exp(unsigned power);

  // dst[i] ^= coeff * src[i] — the row operation of encode and decode.
  // Dispatches to the best slice kernel for this machine on first use.
  static void mul_add_slice(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                            std::uint8_t coeff);
  // dst[i] = coeff * dst[i]
  static void scale_slice(std::uint8_t* dst, std::size_t n, std::uint8_t coeff);

  // The portable log/exp loops behind the dispatched kernels. Public so
  // tests and benches can pin the scalar path and compare it byte-for-byte
  // against whatever simd_level() selected.
  static void mul_add_slice_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                                   std::uint8_t coeff);
  static void scale_slice_scalar(std::uint8_t* dst, std::size_t n, std::uint8_t coeff);

  // Which slice kernel the dispatcher selected for this process.
  [[nodiscard]] static SimdLevel simd_level();
  [[nodiscard]] static const char* simd_level_name();

 private:
  struct Tables {
    std::uint8_t exp[512];  // doubled so mul needs no modulo
    std::uint8_t log[256];
    std::uint8_t inv[256];
  };
  static const Tables& tables();
};

}  // namespace hg::fec
