#include "fec/window_codec.hpp"

#include "common/assert.hpp"

namespace hg::fec {

WindowCodec::WindowCodec(WindowCodecConfig config)
    : config_(config), rs_(config.data_per_window, config.parity_per_window) {
  HG_ASSERT(config.packet_bytes > 0);
}

std::vector<std::vector<std::uint8_t>> WindowCodec::encode_window(
    std::span<const std::vector<std::uint8_t>> data_packets) const {
  HG_ASSERT(data_packets.size() == config_.data_per_window);
  for (const auto& p : data_packets) HG_ASSERT(p.size() == config_.packet_bytes);
  return rs_.encode(data_packets);
}

std::optional<std::vector<std::vector<std::uint8_t>>> WindowCodec::decode_window(
    std::span<const std::optional<std::vector<std::uint8_t>>> received) const {
  HG_ASSERT(received.size() == window_packets());
  return rs_.decode(received);
}

}  // namespace hg::fec
