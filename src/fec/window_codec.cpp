#include "fec/window_codec.hpp"

#include "common/assert.hpp"

namespace hg::fec {

WindowCodecConfig WindowCodec::validated(WindowCodecConfig config) {
  // Validate here, before the ReedSolomon member is built: a bad config must
  // fail with a message naming the codec contract, not an assert deep inside
  // the Vandermonde construction.
  HG_ASSERT_MSG(config.data_per_window >= 1, "window needs at least one data packet");
  HG_ASSERT_MSG(config.data_per_window + config.parity_per_window <= 255,
                "GF(256) windows hold at most 255 packets");
  HG_ASSERT_MSG(config.packet_bytes > 0, "packet_bytes must be positive");
  return config;
}

WindowCodec::WindowCodec(WindowCodecConfig config)
    : config_(validated(config)), rs_(config.data_per_window, config.parity_per_window) {}

std::vector<std::vector<std::uint8_t>> WindowCodec::encode_window(
    std::span<const std::vector<std::uint8_t>> data_packets) const {
  HG_ASSERT(data_packets.size() == config_.data_per_window);
  for (const auto& p : data_packets) HG_ASSERT(p.size() == config_.packet_bytes);
  return rs_.encode(data_packets);
}

std::optional<std::vector<std::vector<std::uint8_t>>> WindowCodec::decode_window(
    std::span<const std::optional<std::vector<std::uint8_t>>> received) const {
  HG_ASSERT(received.size() == window_packets());
  return rs_.decode(received);
}

}  // namespace hg::fec
