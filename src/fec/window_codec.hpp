// FEC windowing for the streaming application.
//
// The paper's source groups 101 stream packets with 9 parity packets into a
// 110-packet window (systematic code): a window is decodable from any 101 of
// its 110 packets; because the code is systematic, even an undecodable
// window yields every raw data packet that did arrive.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/reed_solomon.hpp"

namespace hg::fec {

struct WindowCodecConfig {
  std::size_t data_per_window = 101;
  std::size_t parity_per_window = 9;
  std::size_t packet_bytes = 1316;
};

class WindowCodec {
 public:
  explicit WindowCodec(WindowCodecConfig config);

  [[nodiscard]] const WindowCodecConfig& config() const { return config_; }
  [[nodiscard]] std::size_t window_packets() const {
    return config_.data_per_window + config_.parity_per_window;
  }

  // Encodes one window: input exactly data_per_window packets of
  // packet_bytes each; returns the parity packets.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_window(
      std::span<const std::vector<std::uint8_t>> data_packets) const;

  // Attempts to decode a window from whichever packets arrived (indexed
  // 0..window_packets-1, data first). Returns all data packets on success.
  [[nodiscard]] std::optional<std::vector<std::vector<std::uint8_t>>> decode_window(
      std::span<const std::optional<std::vector<std::uint8_t>>> received) const;

  // Decodability is purely a counting property for an MDS code: any
  // data_per_window of the window's packets suffice. The count is clamped to
  // the window size so the degenerate parity == 0 codec (window_packets ==
  // data_per_window, nothing repairable) cannot be declared decodable by an
  // upstream overcount — it needs every packet, and no count above the window
  // size is meaningful.
  [[nodiscard]] bool decodable(std::size_t packets_received) const {
    const std::size_t clamped =
        packets_received < window_packets() ? packets_received : window_packets();
    return clamped >= config_.data_per_window;
  }

 private:
  // Asserts the config invariants (data >= 1, data + parity <= 255,
  // packet_bytes > 0); returns the config unchanged so it can run before
  // rs_ is constructed.
  static WindowCodecConfig validated(WindowCodecConfig config);

  WindowCodecConfig config_;
  ReedSolomon rs_;
};

}  // namespace hg::fec
