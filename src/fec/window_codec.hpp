// FEC windowing for the streaming application.
//
// The paper's source groups 101 stream packets with 9 parity packets into a
// 110-packet window (systematic code): a window is decodable from any 101 of
// its 110 packets; because the code is systematic, even an undecodable
// window yields every raw data packet that did arrive.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/reed_solomon.hpp"

namespace hg::fec {

struct WindowCodecConfig {
  std::size_t data_per_window = 101;
  std::size_t parity_per_window = 9;
  std::size_t packet_bytes = 1316;
};

class WindowCodec {
 public:
  explicit WindowCodec(WindowCodecConfig config);

  [[nodiscard]] const WindowCodecConfig& config() const { return config_; }
  [[nodiscard]] std::size_t window_packets() const {
    return config_.data_per_window + config_.parity_per_window;
  }

  // Encodes one window: input exactly data_per_window packets of
  // packet_bytes each; returns the parity packets.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_window(
      std::span<const std::vector<std::uint8_t>> data_packets) const;

  // Attempts to decode a window from whichever packets arrived (indexed
  // 0..window_packets-1, data first). Returns all data packets on success.
  [[nodiscard]] std::optional<std::vector<std::vector<std::uint8_t>>> decode_window(
      std::span<const std::optional<std::vector<std::uint8_t>>> received) const;

  // Decodability is purely a counting property for an MDS code.
  [[nodiscard]] bool decodable(std::size_t packets_received) const {
    return packets_received >= config_.data_per_window;
  }

 private:
  WindowCodecConfig config_;
  ReedSolomon rs_;
};

}  // namespace hg::fec
