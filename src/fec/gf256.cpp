#include "fec/gf256.hpp"

#include "common/assert.hpp"

namespace hg::fec {

const GF256::Tables& GF256::tables() {
  static const Tables t = [] {
    Tables tab{};
    // Generator 3 (0x03) is primitive for polynomial 0x11b.
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      tab.exp[i] = x;
      tab.log[x] = static_cast<std::uint8_t>(i);
      // multiply x by 3 in GF(2^8): x*2 + x
      const std::uint8_t x2 =
          static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
      x = static_cast<std::uint8_t>(x2 ^ x);
    }
    for (int i = 255; i < 512; ++i) tab.exp[i] = tab.exp[i - 255];
    tab.log[0] = 0;  // undefined; guarded by callers
    tab.inv[0] = 0;
    for (int i = 1; i < 256; ++i) {
      tab.inv[i] = tab.exp[255 - tab.log[i]];
    }
    return tab;
  }();
  return t;
}

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) {
  HG_ASSERT_MSG(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) {
  HG_ASSERT_MSG(a != 0, "zero has no inverse in GF(256)");
  return tables().inv[a];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  // Reduce the exponent mod 255 (the multiplicative group order) before the
  // multiply: log[a] * power can exceed 2^32 for power > ~16.9M, and wrapping
  // mod 2^32 first is not congruent mod 255.
  const unsigned e = (static_cast<unsigned>(t.log[a]) * (power % 255u)) % 255u;
  return t.exp[e];
}

std::uint8_t GF256::exp(unsigned power) { return tables().exp[power % 255]; }

void GF256::mul_add_slice_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                                 std::uint8_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const Tables& t = tables();
  const unsigned lc = t.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp[lc + t.log[s]];
  }
}

void GF256::scale_slice_scalar(std::uint8_t* dst, std::size_t n, std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const Tables& t = tables();
  const unsigned lc = t.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = dst[i];
    dst[i] = (s == 0) ? 0 : t.exp[lc + t.log[s]];
  }
}

}  // namespace hg::fec
