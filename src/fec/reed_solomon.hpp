// Systematic Reed-Solomon erasure code over GF(256).
//
// Encoding matrix: the top k rows are the identity (shards 0..k-1 are the
// data unchanged — *systematic* coding, which the paper relies on: a node
// that cannot decode a window still plays the raw stream packets it did
// receive); the bottom m rows make every k-subset of the n=k+m rows
// invertible (Vandermonde construction, normalized so parity rows stay
// independent together with identity rows).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/matrix.hpp"

namespace hg::fec {

class ReedSolomon {
 public:
  // k data shards, m parity shards; k + m <= 255.
  ReedSolomon(std::size_t k, std::size_t m);

  [[nodiscard]] std::size_t data_shards() const { return k_; }
  [[nodiscard]] std::size_t parity_shards() const { return m_; }
  [[nodiscard]] std::size_t total_shards() const { return k_ + m_; }

  // data: k equally sized shards. Returns m parity shards of the same size.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::vector<std::uint8_t>> data) const;

  // shards: n entries; missing ones empty/nullopt. Returns the k data shards
  // if at least k shards are present, std::nullopt otherwise.
  [[nodiscard]] std::optional<std::vector<std::vector<std::uint8_t>>> decode(
      std::span<const std::optional<std::vector<std::uint8_t>>> shards) const;

  [[nodiscard]] const Matrix& encoding_matrix() const { return enc_; }

 private:
  std::size_t k_;
  std::size_t m_;
  Matrix enc_;  // (k+m) x k
};

}  // namespace hg::fec
