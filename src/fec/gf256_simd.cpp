// Runtime-dispatched SIMD kernels for the GF(256) slice operations.
//
// Technique: split-nibble table lookup. For a fixed coefficient c, build two
// 16-entry tables lo[x] = c*x and hi[x] = c*(x<<4); then for any byte
// s = (h<<4)|l, c*s = lo[l] ^ hi[h] by linearity of GF(2^8) multiplication
// over XOR. PSHUFB (SSSE3) and TBL (NEON) perform sixteen such lookups per
// instruction, so one window-sized mul_add touches each byte with ~6 vector
// ops instead of two scalar table loads and a branch.
//
// The scalar fallback in gf256.cpp computes the exact same field elements —
// dispatch changes throughput only, never bytes. Selection happens once per
// process from CPU capability (not configuration), so results stay identical
// across machines with and without the fast path.
#include "fec/gf256.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HG_GF256_HAVE_SSSE3_KERNEL 1
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define HG_GF256_HAVE_NEON_KERNEL 1
#endif

namespace hg::fec {
namespace {

// 2 x 16-entry product tables for one coefficient (see file comment).
struct NibbleTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

NibbleTables make_nibble_tables(std::uint8_t coeff) {
  NibbleTables t{};
  for (unsigned x = 0; x < 16; ++x) {
    t.lo[x] = GF256::mul(coeff, static_cast<std::uint8_t>(x));
    t.hi[x] = GF256::mul(coeff, static_cast<std::uint8_t>(x << 4));
  }
  return t;
}

#if HG_GF256_HAVE_SSSE3_KERNEL

__attribute__((target("ssse3"))) void mul_add_slice_ssse3(std::uint8_t* dst,
                                                          const std::uint8_t* src, std::size_t n,
                                                          std::uint8_t coeff) {
  if (coeff == 0) return;
  const NibbleTables t = make_nibble_tables(coeff);
  const __m128i tlo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i thi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(s, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
    const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, prod));
  }
  if (i < n) GF256::mul_add_slice_scalar(dst + i, src + i, n - i, coeff);
}

__attribute__((target("ssse3"))) void scale_slice_ssse3(std::uint8_t* dst, std::size_t n,
                                                        std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const NibbleTables t = make_nibble_tables(coeff);
  const __m128i tlo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i thi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i lo = _mm_and_si128(s, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
    const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), prod);
  }
  if (i < n) GF256::scale_slice_scalar(dst + i, n - i, coeff);
}

bool cpu_has_ssse3() { return __builtin_cpu_supports("ssse3") != 0; }

#endif  // HG_GF256_HAVE_SSSE3_KERNEL

#if HG_GF256_HAVE_NEON_KERNEL

void mul_add_slice_neon(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        std::uint8_t coeff) {
  if (coeff == 0) return;
  const NibbleTables t = make_nibble_tables(coeff);
  const uint8x16_t tlo = vld1q_u8(t.lo);
  const uint8x16_t thi = vld1q_u8(t.hi);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t lo = vandq_u8(s, mask);
    const uint8x16_t hi = vshrq_n_u8(s, 4);
    const uint8x16_t prod = veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi));
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), prod));
  }
  if (i < n) GF256::mul_add_slice_scalar(dst + i, src + i, n - i, coeff);
}

void scale_slice_neon(std::uint8_t* dst, std::size_t n, std::uint8_t coeff) {
  if (coeff == 1) return;
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const NibbleTables t = make_nibble_tables(coeff);
  const uint8x16_t tlo = vld1q_u8(t.lo);
  const uint8x16_t thi = vld1q_u8(t.hi);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(dst + i);
    const uint8x16_t lo = vandq_u8(s, mask);
    const uint8x16_t hi = vshrq_n_u8(s, 4);
    vst1q_u8(dst + i, veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi)));
  }
  if (i < n) GF256::scale_slice_scalar(dst + i, n - i, coeff);
}

#endif  // HG_GF256_HAVE_NEON_KERNEL

using MulAddFn = void (*)(std::uint8_t*, const std::uint8_t*, std::size_t, std::uint8_t);
using ScaleFn = void (*)(std::uint8_t*, std::size_t, std::uint8_t);

struct Kernels {
  MulAddFn mul_add;
  ScaleFn scale;
  GF256::SimdLevel level;
};

Kernels pick_kernels() {
#if HG_GF256_HAVE_NEON_KERNEL
  return {&mul_add_slice_neon, &scale_slice_neon, GF256::SimdLevel::kNeon};
#else
#if HG_GF256_HAVE_SSSE3_KERNEL
  if (cpu_has_ssse3()) {
    return {&mul_add_slice_ssse3, &scale_slice_ssse3, GF256::SimdLevel::kSsse3};
  }
#endif
  return {&GF256::mul_add_slice_scalar, &GF256::scale_slice_scalar, GF256::SimdLevel::kScalar};
#endif
}

const Kernels& kernels() {
  static const Kernels k = pick_kernels();
  return k;
}

}  // namespace

void GF256::mul_add_slice(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          std::uint8_t coeff) {
  kernels().mul_add(dst, src, n, coeff);
}

void GF256::scale_slice(std::uint8_t* dst, std::size_t n, std::uint8_t coeff) {
  kernels().scale(dst, n, coeff);
}

GF256::SimdLevel GF256::simd_level() { return kernels().level; }

const char* GF256::simd_level_name() {
  switch (simd_level()) {
    case SimdLevel::kSsse3:
      return "ssse3";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace hg::fec
