#include "fec/matrix.hpp"

#include "fec/gf256.hpp"

namespace hg::fec {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

Matrix Matrix::vandermonde(std::size_t rows, std::size_t cols) {
  HG_ASSERT_MSG(rows <= 255, "GF(256) Vandermonde needs distinct nonzero points");
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto point = static_cast<std::uint8_t>(r + 1);
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, GF256::pow(point, static_cast<unsigned>(c)));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  HG_ASSERT(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(r, k);
      if (a == 0) continue;
      GF256::mul_add_slice(out.row(r), other.row(k), other.cols_, a);
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    HG_ASSERT(indices[i] < rows_);
    for (std::size_t c = 0; c < cols_; ++c) out.set(i, c, at(indices[i], c));
  }
  return out;
}

Matrix Matrix::inverted() const {
  HG_ASSERT(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    HG_ASSERT_MSG(pivot < n, "matrix is singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.row(col)[c], work.row(pivot)[c]);
        std::swap(inv.row(col)[c], inv.row(pivot)[c]);
      }
    }
    // Normalize pivot row.
    const std::uint8_t p = work.at(col, col);
    if (p != 1) {
      const std::uint8_t pinv = GF256::inv(p);
      GF256::scale_slice(work.row(col), n, pinv);
      GF256::scale_slice(inv.row(col), n, pinv);
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      GF256::mul_add_slice(work.row(r), work.row(col), n, factor);
      GF256::mul_add_slice(inv.row(r), inv.row(col), n, factor);
    }
  }
  return inv;
}

}  // namespace hg::fec
