#include "fec/reed_solomon.hpp"

#include "common/assert.hpp"
#include "fec/gf256.hpp"

namespace hg::fec {

ReedSolomon::ReedSolomon(std::size_t k, std::size_t m) : k_(k), m_(m) {
  // m == 0 is the degenerate parity-free code: encode() returns no shards
  // and decode() only succeeds when every data shard is present. WindowCodec
  // relies on it for the retransmission-only ablation arm.
  HG_ASSERT(k >= 1);
  HG_ASSERT_MSG(k + m <= 255, "GF(256) supports at most 255 shards");
  // E = V * inverse(V_top): top k rows become the identity while every
  // k-row subset stays invertible (right-multiplication by an invertible
  // matrix preserves the rank of any row selection).
  const Matrix v = Matrix::vandermonde(k + m, k);
  std::vector<std::size_t> top(k);
  for (std::size_t i = 0; i < k; ++i) top[i] = i;
  enc_ = v.multiply(v.select_rows(top).inverted());
  // Sanity: systematic part must be the identity.
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      HG_ASSERT(enc_.at(r, c) == (r == c ? 1 : 0));
    }
  }
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    std::span<const std::vector<std::uint8_t>> data) const {
  HG_ASSERT(data.size() == k_);
  const std::size_t shard_len = data[0].size();
  for (const auto& d : data) HG_ASSERT_MSG(d.size() == shard_len, "shards must be equal size");

  std::vector<std::vector<std::uint8_t>> parity(m_, std::vector<std::uint8_t>(shard_len, 0));
  for (std::size_t p = 0; p < m_; ++p) {
    const std::uint8_t* coeffs = enc_.row(k_ + p);
    for (std::size_t d = 0; d < k_; ++d) {
      GF256::mul_add_slice(parity[p].data(), data[d].data(), shard_len, coeffs[d]);
    }
  }
  return parity;
}

std::optional<std::vector<std::vector<std::uint8_t>>> ReedSolomon::decode(
    std::span<const std::optional<std::vector<std::uint8_t>>> shards) const {
  HG_ASSERT(shards.size() == k_ + m_);

  // Shards come off the wire, so treat malformed input as undecodable, not
  // as a programming error: every present shard — whether it feeds the fast
  // path, the elimination, or is merely carried along — must agree on length.
  std::size_t shard_len = 0;
  bool saw_present = false;
  for (const auto& s : shards) {
    if (!s.has_value()) continue;
    if (!saw_present) {
      shard_len = s->size();
      saw_present = true;
    } else if (s->size() != shard_len) {
      return std::nullopt;
    }
  }

  // Fast path: all data shards present.
  bool all_data = true;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!shards[i].has_value()) {
      all_data = false;
      break;
    }
  }
  if (all_data) {
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) out.push_back(*shards[i]);
    return out;
  }

  // Gather the first k present shards (data shards first keeps the system
  // mostly-identity, so elimination touches fewer rows).
  std::vector<std::size_t> rows;
  rows.reserve(k_);
  for (std::size_t i = 0; i < k_ + m_ && rows.size() < k_; ++i) {
    if (shards[i].has_value()) rows.push_back(i);
  }
  if (rows.size() < k_) return std::nullopt;

  const Matrix sub = enc_.select_rows(rows);
  const Matrix inv = sub.inverted();

  std::vector<std::vector<std::uint8_t>> out(k_);
  for (std::size_t d = 0; d < k_; ++d) {
    if (shards[d].has_value()) {
      out[d] = *shards[d];  // present data shard: copy through
      continue;
    }
    out[d].assign(shard_len, 0);
    const std::uint8_t* coeffs = inv.row(d);
    for (std::size_t j = 0; j < k_; ++j) {
      GF256::mul_add_slice(out[d].data(), shards[rows[j]]->data(), shard_len, coeffs[j]);
    }
  }
  return out;
}

}  // namespace hg::fec
