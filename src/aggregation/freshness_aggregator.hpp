// Gossip-based capability aggregation (paper Algorithm 2, "Aggregation
// Protocol").
//
// Every aggPeriod (200 ms), a node sends the 10 freshest capability records
// it knows (always refreshing its own) to agg_fanout random peers; received
// records are merged by origin, keeping the freshest per origin. The
// estimate of the system-wide average capability b̄ is the mean over all
// non-expired records. Expiry makes the estimate track churn: records of
// crashed nodes age out and b̄ re-converges to the surviving population.
//
// Cost note: the paper quotes ~1 KB/s for this protocol, which corresponds
// to one partner per period (10 records * ~20 B * 5/s); agg_fanout defaults
// to 1 to match, and is configurable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "gossip/messages.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace hg::aggregation {

// Anything that can answer "what is the average capability right now".
class CapabilityEstimator {
 public:
  virtual ~CapabilityEstimator() = default;
  [[nodiscard]] virtual double average_capability_bps() const = 0;
};

struct AggregationConfig {
  sim::SimTime period = sim::SimTime::ms(200);
  std::size_t records_per_gossip = 10;  // "the 10 freshest values"
  std::size_t fanout = 1;               // partners per period (see cost note)
  sim::SimTime record_expiry = sim::SimTime::sec(30.0);
  // Cap on tracked origins (0 = unlimited, the paper's behaviour). At 100k
  // nodes an uncapped table converges on every-origin-everywhere — O(N) per
  // node — while the b̄ estimate needs only a running sample of the
  // population; when full, a new origin evicts the stalest record (ties
  // broken by origin id) or is dropped if it is the stalest itself.
  std::size_t max_records = 0;
};

class FreshnessAggregator final : public CapabilityEstimator {
 public:
  FreshnessAggregator(sim::Simulator& simulator, net::NetworkFabric& fabric,
                      membership::LocalView& view, NodeId self, BitRate own_capability,
                      AggregationConfig config);

  void start();
  void stop();

  // Handles an incoming kAggregation datagram.
  void on_datagram(const net::Datagram& d);

  // The node's capability changed (e.g., user reconfigured the cap).
  void set_own_capability(BitRate capability) { own_capability_ = capability; }
  [[nodiscard]] BitRate own_capability() const { return own_capability_; }

  // Mean capability over own + all known, non-expired records. Before any
  // record arrives this is just the node's own capability — HEAP then
  // behaves like standard gossip until the estimate warms up.
  [[nodiscard]] double average_capability_bps() const override;

  [[nodiscard]] std::size_t known_origins() const { return records_.size(); }

  struct Stats {
    std::uint64_t gossips_sent = 0;
    std::uint64_t records_merged = 0;
    std::uint64_t records_stale_dropped = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void gossip_round();

  sim::Simulator& sim_;
  net::NetworkFabric& fabric_;
  membership::LocalView& view_;
  NodeId self_;
  BitRate own_capability_;
  AggregationConfig config_;
  Rng rng_;

  // Freshest record per origin (self excluded; own value is implicit), kept
  // as a flat map: a vector sorted by origin id. The table is iterated on
  // every 200ms round (freshness ranking) and every estimate read (expiry
  // scan) — with a hash container those visits run in bucket-layout order,
  // which is libstdc++-internal and feeds straight into which records gossip
  // next; id-sorted storage makes every scan platform-independent (and the
  // determinism linter now rejects unordered containers tree-wide). Lookup
  // is O(log n); the O(n) insert memmove is bounded by max_records at scale
  // and beaten by the per-round scans everywhere else.
  struct Known {
    NodeId origin;
    std::int64_t capability_bps = 0;
    sim::SimTime measured_at;
  };
  std::vector<Known> records_;  // sorted by origin id
  [[nodiscard]] std::size_t lower_bound_index(NodeId origin) const;
  sim::Simulator::PeriodicHandle timer_;
  std::vector<NodeId> targets_scratch_;
  Stats stats_;
};

}  // namespace hg::aggregation
