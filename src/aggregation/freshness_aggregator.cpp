#include "aggregation/freshness_aggregator.hpp"

#include <algorithm>

namespace hg::aggregation {

FreshnessAggregator::FreshnessAggregator(sim::Simulator& simulator, net::NetworkFabric& fabric,
                                         membership::LocalView& view, NodeId self,
                                         BitRate own_capability, AggregationConfig config)
    : sim_(simulator),
      fabric_(fabric),
      view_(view),
      self_(self),
      own_capability_(own_capability),
      config_(config),
      rng_(simulator.make_rng(0x41474752ULL ^ (std::uint64_t{self.value()} << 24))) {}

void FreshnessAggregator::start() {
  const auto phase = sim::SimTime::us(static_cast<std::int64_t>(
      rng_.below(static_cast<std::uint64_t>(config_.period.as_us()))));
  timer_ = sim_.every(phase, config_.period, [this]() { gossip_round(); });
}

void FreshnessAggregator::stop() { timer_.cancel(); }

void FreshnessAggregator::gossip_round() {
  // Assemble the freshest `records_per_gossip` records, own value first
  // (refreshed to now — the node keeps advertising what it can do).
  std::vector<gossip::CapabilityRecord> fresh;
  fresh.reserve(config_.records_per_gossip);
  fresh.push_back({self_, own_capability_.bits_per_sec(), sim_.now()});

  std::vector<std::pair<sim::SimTime, NodeId>> by_age;
  by_age.reserve(records_.size());
  for (const auto& [origin, known] : records_) {
    by_age.emplace_back(known.measured_at, origin);
  }
  const std::size_t want = config_.records_per_gossip - 1;
  if (by_age.size() > want) {
    std::partial_sort(by_age.begin(), by_age.begin() + static_cast<std::ptrdiff_t>(want),
                      by_age.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
    by_age.resize(want);
  }
  for (const auto& [ts, origin] : by_age) {
    fresh.push_back({origin, records_[origin].capability_bps, ts});
  }

  const auto bytes = gossip::encode(gossip::AggregationMsg{self_, fresh});
  view_.select_nodes(config_.fanout, targets_scratch_, rng_);
  for (NodeId target : targets_scratch_) {
    fabric_.send(self_, target, net::MsgClass::kAggregation, bytes);
    ++stats_.gossips_sent;
  }
}

void FreshnessAggregator::on_datagram(const net::Datagram& d) {
  auto msg = gossip::decode_aggregation(d.bytes);
  if (!msg) return;
  for (const gossip::CapabilityRecord& rec : msg->records) {
    if (rec.origin == self_) continue;  // own value is authoritative locally
    if (config_.max_records > 0 && !records_.contains(rec.origin) &&
        records_.size() >= config_.max_records) {
      // Table full: the stalest record loses. A full scan per eviction is
      // fine (the cap is small) and — unlike "evict first in iteration
      // order" — independent of the hash table's bucket layout, keeping
      // runs deterministic. Ties break toward the larger origin id.
      auto stalest = records_.begin();
      for (auto it = records_.begin(); it != records_.end(); ++it) {
        if (it->second.measured_at < stalest->second.measured_at ||
            (it->second.measured_at == stalest->second.measured_at &&
             it->first.value() > stalest->first.value())) {
          stalest = it;
        }
      }
      if (stalest->second.measured_at >= rec.measured_at) {
        ++stats_.records_stale_dropped;
        continue;  // the incoming record is the stalest of them all
      }
      records_.erase(stalest);
    }
    auto [it, inserted] = records_.try_emplace(rec.origin);
    if (!inserted && it->second.measured_at >= rec.measured_at) {
      ++stats_.records_stale_dropped;
      continue;  // keep the fresher record
    }
    it->second.capability_bps = rec.capability_bps;
    it->second.measured_at = rec.measured_at;
    ++stats_.records_merged;
  }
}

double FreshnessAggregator::average_capability_bps() const {
  double sum = static_cast<double>(own_capability_.bits_per_sec());
  std::size_t count = 1;
  const sim::SimTime now = sim_.now();
  for (const auto& [origin, known] : records_) {
    if (now - known.measured_at > config_.record_expiry) continue;
    sum += static_cast<double>(known.capability_bps);
    ++count;
  }
  return sum / static_cast<double>(count);
}

}  // namespace hg::aggregation
