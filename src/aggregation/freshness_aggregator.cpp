#include "aggregation/freshness_aggregator.hpp"

#include <algorithm>

namespace hg::aggregation {

FreshnessAggregator::FreshnessAggregator(sim::Simulator& simulator, net::NetworkFabric& fabric,
                                         membership::LocalView& view, NodeId self,
                                         BitRate own_capability, AggregationConfig config)
    : sim_(simulator),
      fabric_(fabric),
      view_(view),
      self_(self),
      own_capability_(own_capability),
      config_(config),
      rng_(simulator.make_rng(0x41474752ULL ^ (std::uint64_t{self.value()} << 24))) {}

void FreshnessAggregator::start() {
  const auto phase = sim::SimTime::us(static_cast<std::int64_t>(
      rng_.below(static_cast<std::uint64_t>(config_.period.as_us()))));
  timer_ = sim_.every(phase, config_.period, [this]() { gossip_round(); });
}

void FreshnessAggregator::stop() { timer_.cancel(); }

void FreshnessAggregator::gossip_round() {
  // Assemble the freshest `records_per_gossip` records, own value first
  // (refreshed to now — the node keeps advertising what it can do).
  std::vector<gossip::CapabilityRecord> fresh;
  fresh.reserve(config_.records_per_gossip);
  fresh.push_back({self_, own_capability_.bits_per_sec(), sim_.now()});

  // Rank by freshness; equal timestamps break toward the smaller origin id
  // (records_ indices ascend with origin), a total order — which records
  // propagate can never depend on container layout or sort internals.
  std::vector<std::uint32_t> by_age(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) by_age[i] = i;
  const std::size_t want = config_.records_per_gossip - 1;
  if (by_age.size() > want) {
    std::partial_sort(by_age.begin(), by_age.begin() + static_cast<std::ptrdiff_t>(want),
                      by_age.end(), [this](std::uint32_t a, std::uint32_t b) {
                        if (records_[a].measured_at != records_[b].measured_at) {
                          return records_[a].measured_at > records_[b].measured_at;
                        }
                        return a < b;
                      });
    by_age.resize(want);
  }
  for (std::uint32_t i : by_age) {
    fresh.push_back({records_[i].origin, records_[i].capability_bps, records_[i].measured_at});
  }

  const auto bytes = gossip::encode(gossip::AggregationMsg{self_, fresh});
  view_.select_nodes(config_.fanout, targets_scratch_, rng_);
  for (NodeId target : targets_scratch_) {
    fabric_.send(self_, target, net::MsgClass::kAggregation, bytes);
    ++stats_.gossips_sent;
  }
}

std::size_t FreshnessAggregator::lower_bound_index(NodeId origin) const {
  const auto it =
      std::lower_bound(records_.begin(), records_.end(), origin,
                       [](const Known& k, NodeId o) { return k.origin.value() < o.value(); });
  return static_cast<std::size_t>(it - records_.begin());
}

void FreshnessAggregator::on_datagram(const net::Datagram& d) {
  auto msg = gossip::decode_aggregation(d.bytes);
  if (!msg) return;
  for (const gossip::CapabilityRecord& rec : msg->records) {
    if (rec.origin == self_) continue;  // own value is authoritative locally
    std::size_t pos = lower_bound_index(rec.origin);
    const bool present = pos < records_.size() && records_[pos].origin == rec.origin;
    if (config_.max_records > 0 && !present && records_.size() >= config_.max_records) {
      // Table full: the stalest record loses. A full scan per eviction is
      // fine (the cap is small) and independent of storage layout: ties
      // break toward the larger origin id, a total order.
      std::size_t stalest = 0;
      for (std::size_t i = 1; i < records_.size(); ++i) {
        // Ascending origin scan: a strictly staler record always wins the
        // slot, an equally stale one has the larger origin and wins too.
        if (records_[i].measured_at <= records_[stalest].measured_at) stalest = i;
      }
      if (records_[stalest].measured_at >= rec.measured_at) {
        ++stats_.records_stale_dropped;
        continue;  // the incoming record is the stalest of them all
      }
      records_.erase(records_.begin() + static_cast<std::ptrdiff_t>(stalest));
      pos = lower_bound_index(rec.origin);
    }
    if (present) {
      if (records_[pos].measured_at >= rec.measured_at) {
        ++stats_.records_stale_dropped;
        continue;  // keep the fresher record
      }
    } else {
      records_.insert(records_.begin() + static_cast<std::ptrdiff_t>(pos),
                      Known{rec.origin, 0, sim::SimTime::zero()});
    }
    records_[pos].capability_bps = rec.capability_bps;
    records_[pos].measured_at = rec.measured_at;
    ++stats_.records_merged;
  }
}

double FreshnessAggregator::average_capability_bps() const {
  // Integer accumulation: the sum is exact, so the estimate is independent of
  // visit order by construction (a double running sum is only incidentally
  // so while partial sums stay under 2^53).
  std::int64_t sum = own_capability_.bits_per_sec();
  std::size_t count = 1;
  const sim::SimTime now = sim_.now();
  for (const Known& known : records_) {
    if (now - known.measured_at > config_.record_expiry) continue;
    sum += known.capability_bps;
    ++count;
  }
  return static_cast<double>(sum) / static_cast<double>(count);
}

}  // namespace hg::aggregation
