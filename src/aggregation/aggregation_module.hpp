// Mounts the freshness-based capability aggregation on a NodeRuntime,
// claiming the kAggregation tag. The wrapped aggregator doubles as the
// CapabilityEstimator an AdaptiveFanout policy reads b̄ from — the heap()
// preset constructs this module first and points the policy at it.
#pragma once

#include "aggregation/freshness_aggregator.hpp"
#include "core/node_runtime.hpp"

namespace hg::aggregation {

class AggregationModule final : public core::Protocol {
 public:
  AggregationModule(core::NodeRuntime& runtime, BitRate own_capability, AggregationConfig config)
      : aggregator_(runtime.sim(), runtime.fabric(), runtime.view(), runtime.self(),
                    own_capability, config),
        tag_(runtime.register_tag(gossip::MsgTag::kAggregation, this)) {}

  void start() override { aggregator_.start(); }
  void stop() override { aggregator_.stop(); }
  [[nodiscard]] const char* name() const override { return "aggregation"; }

  void on_datagram(const net::Datagram& d) { aggregator_.on_datagram(d); }

  [[nodiscard]] FreshnessAggregator& aggregator() { return aggregator_; }
  [[nodiscard]] const FreshnessAggregator& aggregator() const { return aggregator_; }

 private:
  FreshnessAggregator aggregator_;
  core::TagRegistration tag_;
};

}  // namespace hg::aggregation
