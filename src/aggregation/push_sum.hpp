// Push-sum aggregation (Kempe et al. / Jelasity et al. [13]) — extension.
//
// The paper notes "a similar protocol can be used to continuously
// approximate the size of the system [13]". This is that protocol: each
// node holds (sum, weight); every period it splits both in half and pushes
// one half to a random peer. sum/weight converges exponentially to the true
// average at every node. Estimating the system size is the same machinery
// with value 1 at every node and weight 1 at a single initiator.
//
// Compared to the FreshnessAggregator this converges faster per message and
// needs no per-origin state, but is sensitive to message loss (mass leaves
// the system), which is why HEAP's default is the freshness scheme.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "membership/directory.hpp"
#include "net/fabric.hpp"
#include "net/serde.hpp"
#include "sim/simulator.hpp"

namespace hg::aggregation {

struct PushSumConfig {
  sim::SimTime period = sim::SimTime::ms(200);
};

class PushSumNode {
 public:
  // `initial_sum`: the quantity this node contributes (e.g. capability in
  // bps for averaging, 1.0 for size estimation).
  // `initial_weight`: 1.0 at every node for averaging; for size estimation
  // 1.0 only at the initiator and 0.0 elsewhere (estimates then converge
  // to sum-of-sums / sum-of-weights = n).
  PushSumNode(sim::Simulator& simulator, net::NetworkFabric& fabric,
              membership::LocalView& view, NodeId self, double initial_sum,
              double initial_weight, PushSumConfig config);

  void start();
  void stop();
  void on_datagram(const net::Datagram& d);

  // Current estimate sum/weight; NaN while weight is (near) zero.
  [[nodiscard]] double estimate() const;
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double weight() const { return weight_; }

 private:
  void round();

  sim::Simulator& sim_;
  net::NetworkFabric& fabric_;
  membership::LocalView& view_;
  NodeId self_;
  PushSumConfig config_;
  Rng rng_;
  double sum_;
  double weight_;
  sim::Simulator::PeriodicHandle timer_;
  std::vector<NodeId> target_scratch_;
};

}  // namespace hg::aggregation
