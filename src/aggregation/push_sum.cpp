#include "aggregation/push_sum.hpp"

#include <cmath>
#include <limits>

#include "gossip/messages.hpp"

namespace hg::aggregation {

namespace {
// Push-sum shares the kAggregation traffic class but uses its own tag-less
// compact encoding prefixed with 0xf5 to stay out of the MsgTag space.
constexpr std::uint8_t kPushSumTag = 0xf5;
}  // namespace

PushSumNode::PushSumNode(sim::Simulator& simulator, net::NetworkFabric& fabric,
                         membership::LocalView& view, NodeId self, double initial_sum,
                         double initial_weight, PushSumConfig config)
    : sim_(simulator),
      fabric_(fabric),
      view_(view),
      self_(self),
      config_(config),
      rng_(simulator.make_rng(0x50534d31ULL ^ (std::uint64_t{self.value()} << 24))),
      sum_(initial_sum),
      weight_(initial_weight) {}

void PushSumNode::start() {
  const auto phase = sim::SimTime::us(static_cast<std::int64_t>(
      rng_.below(static_cast<std::uint64_t>(config_.period.as_us()))));
  timer_ = sim_.every(phase, config_.period, [this]() { round(); });
}

void PushSumNode::stop() { timer_.cancel(); }

void PushSumNode::round() {
  view_.select_nodes(1, target_scratch_, rng_);
  if (target_scratch_.empty()) return;
  // Keep half, push half.
  sum_ *= 0.5;
  weight_ *= 0.5;
  net::ByteWriter w(24);
  w.u8(kPushSumTag);
  w.u32(self_.value());
  w.f64(sum_);
  w.f64(weight_);
  fabric_.send(self_, target_scratch_[0], net::MsgClass::kAggregation, w.finish());
}

void PushSumNode::on_datagram(const net::Datagram& d) {
  net::ByteReader r(d.bytes);
  const auto tag = r.u8();
  if (!tag || *tag != kPushSumTag) return;
  const auto from = r.u32();
  const auto s = r.f64();
  const auto w = r.f64();
  if (!from || !s || !w) return;
  sum_ += *s;
  weight_ += *w;
}

double PushSumNode::estimate() const {
  if (weight_ < 1e-12) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / weight_;
}

}  // namespace hg::aggregation
